//! Property-based invariants across the workspace (proptest).

use openserdes::core::{
    bits_to_frame, frame_to_bits, oversample_bits, CdrConfig, Deserializer, OversamplingCdr,
    PrbsChecker, PrbsGenerator, PrbsOrder, Serializer, FRAME_BITS, LANES,
};
use openserdes::digital::{CycleSim, Logic};
use openserdes::flow::ir::{Design, IrSim};
use openserdes::flow::synthesize;
use openserdes::netlist::Netlist;
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::library::Library;
use openserdes::pdk::stdcell::{DriveStrength, LogicFn};
use openserdes::pdk::units::{Farad, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serializer followed by deserializer is the identity on any frame.
    #[test]
    fn serdes_round_trip(frame in prop::array::uniform8(any::<u32>())) {
        let mut ser = Serializer::new();
        let mut des = Deserializer::new();
        let bits = ser.serialize(frame);
        prop_assert_eq!(bits.len(), FRAME_BITS);
        let out = des.push_bits(&bits);
        prop_assert_eq!(out, vec![frame]);
    }

    /// Frame <-> bit conversion is a bijection.
    #[test]
    fn frame_bits_bijection(frame in prop::array::uniform8(any::<u32>())) {
        prop_assert_eq!(bits_to_frame(&frame_to_bits(&frame)), frame);
    }

    /// The PRBS checker synchronizes on any clean window of the sequence.
    #[test]
    fn prbs_checker_syncs_anywhere(offset in 0usize..5000, len in 200usize..1000) {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs23);
        let bits = g.take_bits(offset + len);
        let mut c = PrbsChecker::new(PrbsOrder::Prbs23);
        c.push_all(&bits[offset..]);
        prop_assert_eq!(c.errors(), 0);
    }

    /// The CDR recovers any clean oversampled stream at any static phase
    /// offset, modulo one bit of alignment.
    #[test]
    fn cdr_recovers_any_offset(
        offset in 0.0f64..1.0,
        seed in 0u64..1000,
        n in prop::sample::select(vec![3usize, 4, 5, 7]),
    ) {
        let bits = PrbsGenerator::with_seed(PrbsOrder::Prbs15, 1 + seed as u32)
            .take_bits(1500);
        let stream = oversample_bits(&bits, n, offset, 0.0, seed);
        let mut cfg = CdrConfig::paper_default();
        cfg.oversampling = n;
        let mut cdr = OversamplingCdr::new(cfg);
        let out = cdr.recover(&stream);
        let skip = 4 * cfg.window;
        let best = [-1isize, 0, 1]
            .iter()
            .map(|&lag| {
                out[skip..]
                    .iter()
                    .zip(&bits[(skip as isize + lag) as usize..])
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .min()
            .expect("lags");
        prop_assert_eq!(best, 0, "offset {} with {}x oversampling", offset, n);
    }

    /// Synthesized random expression networks are functionally equal to
    /// the IR golden model on every input vector.
    #[test]
    fn synthesis_preserves_function(ops in prop::collection::vec(0u8..6, 1..24), vectors in prop::collection::vec(any::<u8>(), 8)) {
        let mut d = Design::new("rand_expr");
        let inputs: Vec<_> = (0..4).map(|i| d.input(format!("i{i}"))).collect();
        let mut sigs = inputs.clone();
        for (k, &op) in ops.iter().enumerate() {
            let a = sigs[k % sigs.len()];
            let b = sigs[(k * 7 + 3) % sigs.len()];
            let c = sigs[(k * 5 + 1) % sigs.len()];
            let s = match op {
                0 => d.not(a),
                1 => d.and(a, b),
                2 => d.or(a, b),
                3 => d.xor(a, b),
                4 => d.mux(a, b, c),
                _ => {
                    let t = d.and(a, b);
                    d.not(t)
                }
            };
            sigs.push(s);
        }
        let out = *sigs.last().expect("nonempty");
        d.output("y", out);

        let library = Library::sky130(Pvt::nominal());
        let res = synthesize(&d, &library).expect("synthesizes");
        let mut golden = IrSim::new(&d);
        let mut gate = CycleSim::new(&res.netlist).expect("valid");
        gate.reset_flops();
        if let Some(c0) = res.const0 { gate.set_bit(c0, false); }
        if let Some(c1) = res.const1 { gate.set_bit(c1, true); }
        for &vec in &vectors {
            for (i, &sig) in inputs.iter().enumerate() {
                golden.set(sig, vec >> i & 1 == 1);
            }
            for (i, &net) in res.inputs.iter().enumerate() {
                gate.set_bit(net, vec >> i & 1 == 1);
            }
            golden.settle();
            gate.settle();
            let expect = golden.get(out);
            let got = res.outputs[0].1;
            prop_assert_eq!(gate.value(got), Logic::from_bool(expect));
        }
    }

    /// NLDM delays are monotone in load for every cell of the library.
    #[test]
    fn library_delay_monotone_in_load(
        slew_ps in 5.0f64..300.0,
        load_a in 1.0f64..150.0,
        delta in 1.0f64..150.0,
    ) {
        let library = Library::sky130(Pvt::nominal());
        for cell in library.iter() {
            let d1 = cell.arc(Time::from_ps(slew_ps), Farad::from_ff(load_a)).delay;
            let d2 = cell
                .arc(Time::from_ps(slew_ps), Farad::from_ff(load_a + delta))
                .delay;
            prop_assert!(d2 >= d1, "{} delay fell with load", cell.name);
        }
    }

    /// Event simulation of an inverter tree is deterministic and ends in
    /// a consistent state regardless of stimulus order within a step.
    #[test]
    fn gate_sim_settles_consistently(bits in prop::collection::vec(any::<bool>(), 1..12)) {
        let mut nl = Netlist::new("tree");
        let a = nl.add_input("a");
        let x1 = nl.gate(LogicFn::Inv, DriveStrength::X1, &[a]);
        let x2 = nl.gate(LogicFn::Inv, DriveStrength::X2, &[x1]);
        let y = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[x1, x2]);
        nl.mark_output("y", y);
        let library = Library::sky130(Pvt::nominal());
        let mut sim = openserdes::digital::EventSim::new(&nl, &library).expect("valid");
        sim.drive_bits(a, 0, 1_000, &bits);
        sim.run_until(bits.len() as u64 * 1_000 + 10_000);
        // An inverter and its complement always XOR to one.
        prop_assert_eq!(sim.value(y), Logic::One);
    }

    /// All LANES * 32 bit positions survive a serializer round trip even
    /// under single-bit frames.
    #[test]
    fn single_bit_frames_round_trip(lane in 0usize..LANES, bit in 0usize..32) {
        let mut frame = [0u32; LANES];
        frame[lane] = 1 << bit;
        let mut ser = Serializer::new();
        let mut des = Deserializer::new();
        let out = des.push_bits(&ser.serialize(frame));
        prop_assert_eq!(out, vec![frame]);
    }
}
