//! Cross-crate integration: the RTL→layout flow on the real SerDes
//! blocks, including gate-level equivalence of the mapped netlists
//! against the behavioural FSMs.

use openserdes::core::{
    cdr_design, deserializer_design, frame_to_bits, serializer_design, Serializer, FRAME_BITS,
};
use openserdes::digital::CycleSim;
use openserdes::flow::{synthesize, Flow, FlowConfig};
use openserdes::pdk::corner::{ProcessCorner, Pvt};
use openserdes::pdk::library::Library;
use openserdes::pdk::units::Hertz;

#[test]
fn serializer_netlist_equals_behavioural_fsm() {
    // Synthesize the serializer RTL and run the *gate-level* netlist
    // cycle by cycle against the behavioural model.
    let library = Library::sky130(Pvt::nominal());
    let design = serializer_design();
    let synth = synthesize(&design, &library).expect("synthesizes");
    let mut sim = CycleSim::new(&synth.netlist).expect("valid netlist");
    sim.reset_flops();
    if let Some(c0) = synth.const0 {
        sim.set_bit(c0, false);
    }
    if let Some(c1) = synth.const1 {
        sim.set_bit(c1, true);
    }
    let name_of = |n: &str| -> openserdes::netlist::NetId {
        let idx = design
            .input_names()
            .iter()
            .position(|x| x == n)
            .unwrap_or_else(|| panic!("no input {n}"));
        synth.inputs[idx]
    };
    let out_net = synth
        .outputs
        .iter()
        .find(|(n, _)| n == "serial_out")
        .expect("out")
        .1;

    let frame = [
        0x0F1E_2D3C_u32,
        0x4B5A_6978,
        0x8796_A5B4,
        0xC3D2_E1F0,
        1,
        2,
        3,
        4,
    ];
    let bits = frame_to_bits(&frame);

    sim.set_bit(name_of("load"), true);
    for (i, &b) in bits.iter().enumerate() {
        sim.set_bit(name_of(&format!("data[{i}]")), b);
    }
    sim.tick();
    sim.set_bit(name_of("load"), false);

    let mut behavioural = Serializer::new();
    behavioural.load(frame);
    for k in 0..FRAME_BITS {
        let expect = behavioural.tick().expect("busy");
        let got = sim.value(out_net).to_bool().expect("driven");
        assert_eq!(got, expect, "bit {k} diverged");
        sim.tick();
    }
}

#[test]
fn all_three_blocks_complete_the_flow() {
    let cfg = {
        let mut c = FlowConfig::at_clock(Hertz::from_ghz(2.0));
        c.anneal_iterations = 2_000;
        c
    };
    let flow = Flow::new().with_config(cfg);
    let ser = flow.run(&serializer_design()).expect("serializer flow");
    let des = flow.run(&deserializer_design()).expect("deserializer flow");
    let cdr = flow.run(&cdr_design(5)).expect("cdr flow");

    // Area ordering of Fig. 11: DES > SER > CDR.
    assert!(des.area().value() > ser.area().value());
    assert!(ser.area().value() > cdr.area().value());

    // Every block produces nonzero power, wirelength and a finite fmax.
    for (name, r) in [("ser", &ser), ("des", &des), ("cdr", &cdr)] {
        assert!(r.total_power().mw() > 0.0, "{name} power");
        assert!(r.route.total_length.value() > 0.0, "{name} wirelength");
        assert!(r.timing.fmax.ghz().is_finite(), "{name} fmax");
        assert!(r.stats.flop_count > 0, "{name} flops");
    }
}

#[test]
fn flow_retargets_across_corners_without_rtl_changes() {
    // The paper's process-portability claim: the identical Design runs
    // at every corner; timing and power move the right way.
    let design = cdr_design(5);
    let run_at = |pvt: Pvt| {
        let mut cfg = FlowConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.pvt = pvt;
        cfg.anneal_iterations = 1_000;
        Flow::new()
            .with_config(cfg)
            .run(&design)
            .expect("flow runs")
    };
    let tt = run_at(Pvt::nominal());
    let ss = run_at(Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0));
    let ff = run_at(Pvt::new(ProcessCorner::FastFast, 1.98, -40.0));
    assert!(ss.timing.fmax.value() < tt.timing.fmax.value());
    assert!(tt.timing.fmax.value() < ff.timing.fmax.value());
    // Identical netlist structure at every corner (same RTL, same map).
    assert_eq!(ss.stats.cell_count, tt.stats.cell_count);
    assert_eq!(ff.stats.flop_count, tt.stats.flop_count);
}

#[test]
fn serializer_timing_envelope() {
    // The paper claims 2 Gb/s operation; the serial *datapath* (shift
    // register, one mux level) meets that easily, while the bit counter
    // is the flow's critical path. Our deliberately conservative NLDM
    // characterization signs the counter off around 1.3 GHz at tt —
    // within the envelope real sky130 silicon exhibits (official FO4
    // ≈ 90 ps). EXPERIMENTS.md discusses the gap to the paper's claim.
    let mut cfg = FlowConfig::at_clock(Hertz::from_ghz(2.0));
    cfg.anneal_iterations = 4_000;
    let r = Flow::new()
        .with_config(cfg)
        .run(&serializer_design())
        .expect("flow runs");
    assert!(
        r.timing.fmax.ghz() >= 1.1,
        "serializer fmax = {:.2} GHz",
        r.timing.fmax.ghz()
    );
    // The counter (sequential depth through the incrementer) must be the
    // limiter, not the shift-register datapath: the critical path ends
    // at a counter/flag flop, not a bank flop fed by the 1-mux shift.
    assert!(
        r.timing.critical_path.len() > 3,
        "critical path should be the multi-level counter, got {} cells",
        r.timing.critical_path.len()
    );
}

#[test]
fn deserializer_dominates_cell_count() {
    let library = Library::sky130(Pvt::nominal());
    let des = synthesize(&deserializer_design(), &library).expect("ok");
    let ser = synthesize(&serializer_design(), &library).expect("ok");
    let cdr = synthesize(&cdr_design(5), &library).expect("ok");
    assert!(des.netlist.cell_count() > ser.netlist.cell_count());
    assert!(ser.netlist.cell_count() > cdr.netlist.cell_count());
    // The deserializer's decoder makes it a multi-thousand-cell block.
    assert!(des.netlist.cell_count() > 1_000);
}

#[test]
fn whole_chip_top_completes_the_flow() {
    // The composed serdes_top (serializer + CDR + deserializer + scan)
    // through the full flow: one die, one clock, multicycle exceptions
    // carried through composition.
    let mut cfg = FlowConfig::at_clock(Hertz::from_ghz(2.0));
    cfg.anneal_iterations = 2_000;
    let top = openserdes::core::serdes_digital_top(5);
    let flow = Flow::new().with_config(cfg);
    let r = flow.run(&top).expect("top-level flow");
    assert_eq!(r.stats.flop_count, 583);
    assert!(r.stats.cell_count > 2_000);
    // The whole digital chip is bigger than any single block.
    let des = flow.run(&deserializer_design()).expect("des flow");
    assert!(r.area().value() > des.area().value());
    // Hold-clean and with a finite setup envelope.
    assert_eq!(r.timing.hold_violations, 0);
    assert!(r.timing.fmax.ghz() > 0.8);
}
