//! Loopback integration tests for `openserdes-serve`: responses over
//! the wire are bit-identical to direct `Session::submit`, identical
//! in-flight submissions coalesce, repeats hit the content-addressed
//! cache, overload sheds with a typed `Response::Shed`, and a job that
//! panics inside the engine is isolated without killing its worker.
//!
//! The hardening tests drive the seeded server-plane fault taxonomy
//! from `openserdes-fault` (dropped/truncated/oversized frames,
//! stalled readers, worker panics, deadline storms, connection
//! floods) and assert the `serve.*` robustness counters account for
//! every injected fault, identically at 1/2/4/8 workers.

use openserdes::core::job::{DesignSpec, Request, Response, SweepSpec};
use openserdes::core::LinkConfig;
use openserdes::fault::{server_campaign, ServerFaultKind};
use openserdes::pdk::units::Hertz;
use openserdes::serve::{
    wire, Client, ClientConfig, ClientError, Server, ServerConfig, ServerStats,
};
use openserdes::Session;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Binds a loopback server, runs `body` against its address, then
/// stops it and returns the lifetime stats.
fn with_server(config: ServerConfig, body: impl FnOnce(std::net::SocketAddr)) -> ServerStats {
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());
    body(addr);
    handle.stop();
    let (stats, record) = serving
        .join()
        .expect("server thread")
        .expect("serve returns cleanly");
    assert_eq!(
        record.counter("serve.requests"),
        stats.requests,
        "serve.* counters flow through telemetry"
    );
    stats
}

fn quick_bathtub(bits: usize) -> Request {
    Request::Bathtub {
        config: LinkConfig::paper_default(),
        sweep: SweepSpec {
            bits,
            phases: 8,
            frames: 2,
            tol_db: 1.0,
        },
    }
}

#[test]
fn wire_responses_are_bit_identical_to_direct_submit() {
    let stim: Vec<[u32; 8]> = (0..2)
        .map(|i| std::array::from_fn(|k| (i * 8 + k) as u32 ^ 0x0BAD_F00D))
        .collect();
    let jobs = vec![
        (
            11u64,
            Request::RunLink {
                config: LinkConfig::paper_default(),
                frames: stim,
            },
        ),
        (12, quick_bathtub(1_000)),
        (
            13,
            Request::MaxLoss {
                config: LinkConfig::paper_default(),
                sweep: SweepSpec {
                    bits: 800,
                    phases: 4,
                    frames: 2,
                    tol_db: 2.0,
                },
            },
        ),
        (
            14,
            Request::Sta {
                design: DesignSpec::Serializer,
                pvt: openserdes::pdk::corner::Pvt::nominal(),
                clock: Hertz::from_ghz(2.0),
            },
        ),
        (
            15,
            Request::Lint {
                design: DesignSpec::Cdr { oversampling: 5 },
            },
        ),
    ];

    let jobs_for_server = jobs.clone();
    let stats = with_server(ServerConfig::default(), move |addr| {
        let mut client = Client::connect(addr, "bit-identity").expect("connect");
        for (seed, request) in &jobs_for_server {
            let wire_bytes = client.submit_raw(1, *seed, request).expect("served reply");
            let direct_bytes = Session::new()
                .with_seed(*seed)
                .with_threads(1)
                .submit(request)
                .expect("direct submit")
                .to_canonical_json();
            assert_eq!(
                wire_bytes, direct_bytes,
                "seed {seed}: served bytes must equal direct Session::submit"
            );
        }
    });
    assert_eq!(stats.requests, jobs.len() as u64);
    assert_eq!(stats.completed, jobs.len() as u64);
    assert_eq!(stats.errored, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn identical_submissions_coalesce_and_then_hit_the_cache() {
    // One worker: an occupying job serializes everything behind it, so
    // two identical submissions arriving while it runs must coalesce
    // into one execution.
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let occupier = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "occupier").expect("connect");
            client
                .submit(1, 77, &quick_bathtub(1_000_000))
                .expect("slow job")
        });
        // Let the occupier reach the worker before the twins arrive.
        std::thread::sleep(Duration::from_millis(200));

        let twins: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, format!("twin-{i}")).expect("connect");
                    client
                        .submit_raw(1, 99, &quick_bathtub(1_200))
                        .expect("twin job")
                })
            })
            .collect();
        let replies: Vec<String> = twins
            .into_iter()
            .map(|t| t.join().expect("twin thread"))
            .collect();
        assert_eq!(replies[0], replies[1], "coalesced waiters share one result");
        assert!(matches!(
            occupier.join().expect("occupier thread"),
            Response::Bathtub(_)
        ));

        // Same (request, seed) again, after completion: a cache hit
        // with the same bytes.
        let mut client = Client::connect(addr, "replayer").expect("connect");
        let replay = client
            .submit_raw(1, 99, &quick_bathtub(1_200))
            .expect("replay");
        assert_eq!(replay, replies[0], "cache returns byte-identical response");
    });
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.coalesced, 1, "second twin coalesced");
    assert_eq!(stats.cache_hits, 1, "replay served from cache");
    assert_eq!(
        stats.cache_misses, 2,
        "occupier + first twin + nothing else"
    );
    assert_eq!(stats.completed, 2, "only two jobs actually executed");
}

#[test]
fn overload_sheds_with_a_typed_response() {
    // One worker, queue of one: once a slow job is in flight and the
    // queue holds a priority-3 job, a priority-1 arrival is shed
    // immediately, and a priority-9 arrival evicts the queued job —
    // whose waiter gets the typed shed response, not a dead socket.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let occupier = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "occupier").expect("connect");
            client
                .submit(5, 177, &quick_bathtub(1_000_000))
                .expect("slow job")
        });
        std::thread::sleep(Duration::from_millis(200));

        let queued = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "mid").expect("connect");
            client
                .submit(3, 178, &quick_bathtub(1_200))
                .expect("queued job reply")
        });
        std::thread::sleep(Duration::from_millis(200));

        // Lower priority than anything queued: shed on arrival.
        let mut low = Client::connect(addr, "low").expect("connect");
        match low
            .submit(1, 179, &quick_bathtub(1_300))
            .expect("shed reply")
        {
            Response::Shed(info) => {
                assert_eq!(info.tenant, "low");
                assert_eq!(info.priority, 1);
                assert!(info.queue_depth >= 1);
            }
            other => panic!("expected shed, got {other:?}"),
        }

        // Higher priority: evicts the queued priority-3 job.
        let winner = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "high").expect("connect");
            client
                .submit(9, 180, &quick_bathtub(1_400))
                .expect("high job")
        });
        match queued.join().expect("queued thread") {
            Response::Shed(info) => {
                assert_eq!(info.tenant, "mid");
                assert_eq!(info.priority, 3);
            }
            other => panic!("expected evicted job to be shed, got {other:?}"),
        }
        assert!(matches!(
            winner.join().expect("winner thread"),
            Response::Bathtub(_)
        ));
        assert!(matches!(
            occupier.join().expect("occupier thread"),
            Response::Bathtub(_)
        ));
    });
    assert_eq!(stats.shed, 2, "one shed on arrival, one evicted");
    assert_eq!(stats.completed, 2, "occupier and the priority-9 winner");
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn engine_panic_is_isolated_and_the_worker_survives() {
    // cdr.oversampling = 0 passes wire validation (LinkConfig is
    // accepted verbatim) but violates the engine's internal assert —
    // the canonical panic-isolation vector.
    let mut poison = LinkConfig::paper_default();
    poison.cdr.oversampling = 0;
    let poison_request = Request::RunLink {
        config: poison,
        frames: vec![[7u32; 8]],
    };

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let mut client = Client::connect(addr, "panicker").expect("connect");
        match client.submit(1, 21, &poison_request) {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("panicked"),
                    "panic surfaces as a typed error frame, got: {msg}"
                );
            }
            other => panic!("expected server error, got {other:?}"),
        }
        // Same connection, same (sole) worker: still alive and serving.
        let reply = client
            .submit(1, 22, &quick_bathtub(1_000))
            .expect("worker survived the panic");
        assert!(matches!(reply, Response::Bathtub(_)));
    });
    assert_eq!(stats.panics_isolated, 1);
    assert_eq!(stats.errored, 0, "a panic counts as isolated, not errored");
    assert_eq!(stats.completed, 1);
}

#[test]
fn dead_server_times_out_typed_instead_of_hanging() {
    // A socket that accepts and never replies — the regression this
    // hardening PR exists for: the old blocking client hung forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accepting = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = listener.accept() {
            held.push(s);
        }
    });

    let config = ClientConfig {
        read_timeout_ms: 50,
        retries: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, "patient", config).expect("connect");
    let started = std::time::Instant::now();
    match client.submit(1, 1, &quick_bathtub(1_000)) {
        Err(ClientError::Timeout(_)) => {}
        other => panic!("expected typed timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "bounded failure, not a hang"
    );
    let stats = client.retry_stats();
    assert_eq!(stats.attempts, 3, "first try plus the two retries");
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.reconnects, 2, "each retry reconnects fresh");
    // The accept thread dies with the process; nothing to join.
    drop(accepting);
}

#[test]
fn hostile_length_prefix_gets_a_typed_error_and_clean_close() {
    let stats = with_server(ServerConfig::default(), |addr| {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&u32::MAX.to_be_bytes()).expect("hostile prefix");
        let reply = wire::read_frame_blocking(&mut s)
            .expect("typed reply, not a dropped connection")
            .expect("frame before close");
        let text = String::from_utf8(reply).expect("utf8");
        match wire::parse_reply(&text).expect("reply parses") {
            Err(msg) => {
                assert!(msg.contains("MAX_FRAME"), "typed oversize error: {msg}");
                assert!(
                    msg.contains(&u32::MAX.to_string()),
                    "echoes the announced length: {msg}"
                );
            }
            Ok(other) => panic!("expected an error frame, got {other:?}"),
        }
        assert_eq!(
            wire::read_frame_blocking(&mut s).expect("clean close"),
            None,
            "server closes cleanly after the typed reply"
        );
    });
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.conn_errors, 0);
}

#[test]
fn queued_jobs_past_deadline_come_back_typed() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let occupier = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "occupier").expect("connect");
            client
                .submit(1, 277, &quick_bathtub(1_000_000))
                .expect("slow job")
        });
        std::thread::sleep(Duration::from_millis(200));

        // Queued behind the occupier with a 1 ms deadline: by the time
        // the sole worker frees up, the deadline has long lapsed, so
        // the job is retired typed instead of burning the worker.
        let mut client = Client::connect(addr, "hurried").expect("connect");
        match client
            .submit_with_deadline(2, 278, Some(1), &quick_bathtub(1_500))
            .expect("typed reply")
        {
            Response::DeadlineExceeded(info) => {
                assert_eq!(info.tenant, "hurried");
                assert_eq!(info.deadline_ms, 1);
                assert!(info.queued_ms >= 1);
            }
            other => panic!("expected deadline exceeded, got {other:?}"),
        }

        // A zero deadline short-circuits before queueing at all.
        match client
            .submit_with_deadline(2, 279, Some(0), &quick_bathtub(1_500))
            .expect("typed reply")
        {
            Response::DeadlineExceeded(info) => assert_eq!(info.deadline_ms, 0),
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
        assert!(matches!(
            occupier.join().expect("occupier thread"),
            Response::Bathtub(_)
        ));
    });
    assert_eq!(stats.deadline_expired, 2);
    assert_eq!(stats.completed, 1, "only the occupier actually ran");
}

/// Executes one server-plane fault event against a live server — the
/// loopback driver for the seeded chaos taxonomy. Every arm is bounded
/// (no unbounded reads) so a hang is a test failure, not a deadlock.
fn inject(addr: SocketAddr, kind: ServerFaultKind) {
    match kind {
        ServerFaultKind::DropMidFrame => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&100u32.to_be_bytes()).expect("prefix");
            s.write_all(&[0x78; 10]).expect("partial payload");
            drop(s);
            std::thread::sleep(Duration::from_millis(30));
        }
        ServerFaultKind::TruncatedFrame { promised } => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&promised.to_be_bytes()).expect("prefix");
            s.write_all(&vec![0x79; (promised / 2) as usize])
                .expect("half payload");
            drop(s);
            std::thread::sleep(Duration::from_millis(30));
        }
        ServerFaultKind::OversizedPrefix { announced } => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .expect("bounded read");
            let prefix = announced.min(u64::from(u32::MAX)) as u32;
            s.write_all(&prefix.to_be_bytes()).expect("hostile prefix");
            let reply = wire::read_frame_blocking(&mut s)
                .expect("typed reply")
                .expect("frame before close");
            let text = String::from_utf8(reply).expect("utf8");
            match wire::parse_reply(&text).expect("parses") {
                Err(msg) => assert!(msg.contains("MAX_FRAME"), "typed: {msg}"),
                Ok(other) => panic!("expected error frame, got {other:?}"),
            }
            assert_eq!(wire::read_frame_blocking(&mut s).expect("close"), None);
        }
        ServerFaultKind::StalledReader { hold_ms } => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&64u32.to_be_bytes()).expect("prefix");
            s.write_all(b"stall").expect("first bytes");
            // Hold the frame half-fed past the server's read idle
            // limit; the server must cut us off, not wait forever.
            std::thread::sleep(Duration::from_millis(hold_ms));
            drop(s);
        }
        ServerFaultKind::WorkerPanic => {
            let mut poison = LinkConfig::paper_default();
            poison.cdr.oversampling = 0;
            let request = Request::RunLink {
                config: poison,
                frames: vec![[7u32; 8]],
            };
            let mut client = Client::connect(addr, "chaos-panic").expect("connect");
            match client.submit(1, 31_337, &request) {
                Err(ClientError::Server(msg)) => {
                    assert!(msg.contains("panicked"), "isolated typed: {msg}")
                }
                other => panic!("expected isolated panic, got {other:?}"),
            }
        }
        ServerFaultKind::DeadlineStorm { jobs } => {
            let mut client = Client::connect(addr, "chaos-storm").expect("connect");
            for i in 0..jobs {
                match client
                    .submit_with_deadline(1, 50_000 + i, Some(0), &quick_bathtub(1_000))
                    .expect("typed reply")
                {
                    Response::DeadlineExceeded(info) => assert_eq!(info.deadline_ms, 0),
                    other => panic!("expected deadline exceeded, got {other:?}"),
                }
            }
        }
        ServerFaultKind::ConnFlood { conns } => {
            // Let EOFs from earlier events settle first, so the cap is
            // filled by exactly these holders and nothing stale.
            std::thread::sleep(Duration::from_millis(50));
            let holders: Vec<TcpStream> = (0..4)
                .map(|_| TcpStream::connect(addr).expect("holder"))
                .collect();
            std::thread::sleep(Duration::from_millis(50));
            for _ in 0..conns {
                let mut s = TcpStream::connect(addr).expect("flood conn");
                s.set_read_timeout(Some(Duration::from_millis(500)))
                    .expect("bounded read");
                let reply = wire::read_frame_blocking(&mut s)
                    .expect("typed rejection")
                    .expect("frame");
                let text = String::from_utf8(reply).expect("utf8");
                match wire::parse_reply(&text).expect("parses") {
                    Err(msg) => assert!(msg.contains("capacity"), "typed: {msg}"),
                    Ok(other) => panic!("expected typed rejection, got {other:?}"),
                }
            }
            drop(holders);
            std::thread::sleep(Duration::from_millis(30));
        }
    }
}

#[test]
fn chaos_counters_are_deterministic_at_1_2_4_8_workers() {
    // Seven events: the full server-plane taxonomy, seeded. The same
    // plan runs against a fresh server at each worker count; every
    // robustness counter must come out identical, every fault must be
    // accounted to its contracted counter, and a survivor job must
    // still be bit-identical to direct `Session::submit`.
    let plan = server_campaign(0xC4A0_5EED, 7);
    let worker_counts = [1usize, 2, 4, 8];
    let mut all_stats: Vec<ServerStats> = Vec::new();
    for workers in worker_counts {
        let config = ServerConfig {
            workers,
            max_connections: 4,
            read_idle_ms: 25,
            ..ServerConfig::default()
        };
        let plan = plan.clone();
        let stats = with_server(config, move |addr| {
            for event in plan.events() {
                inject(addr, event.kind);
            }
            let mut client = Client::connect(addr, "survivor").expect("connect");
            let wire_bytes = client
                .submit_raw(1, 4242, &quick_bathtub(1_000))
                .expect("survivor job");
            let direct_bytes = Session::new()
                .with_seed(4242)
                .with_threads(1)
                .submit(&quick_bathtub(1_000))
                .expect("direct submit")
                .to_canonical_json();
            assert_eq!(wire_bytes, direct_bytes, "survivor bit-identity");
            // Let async billing of the last connection events settle.
            std::thread::sleep(Duration::from_millis(100));
        });
        all_stats.push(stats);
    }

    let first = all_stats[0];
    for (i, stats) in all_stats.iter().enumerate() {
        assert_eq!(
            *stats, first,
            "counters must not depend on worker count (got a diff at {} workers)",
            worker_counts[i]
        );
    }
    for (counter, hits) in plan.expected_ledger() {
        let got = match counter {
            "serve.conn_errors" => first.conn_errors,
            "serve.protocol_errors" => first.protocol_errors,
            "serve.timeouts" => first.timeouts,
            "serve.panics_isolated" => first.panics_isolated,
            "serve.deadline_expired" => first.deadline_expired,
            "serve.conns_rejected" => first.conns_rejected,
            other => panic!("unknown counter in ledger: {other}"),
        };
        assert_eq!(got, hits, "{counter} accounts exactly its injected faults");
    }
    assert_eq!(first.completed, 1, "the survivor job");
}
