//! Loopback integration tests for `openserdes-serve`: responses over
//! the wire are bit-identical to direct `Session::submit`, identical
//! in-flight submissions coalesce, repeats hit the content-addressed
//! cache, overload sheds with a typed `Response::Shed`, and a job that
//! panics inside the engine is isolated without killing its worker.

use openserdes::core::job::{DesignSpec, Request, Response, SweepSpec};
use openserdes::core::LinkConfig;
use openserdes::pdk::units::Hertz;
use openserdes::serve::{Client, ClientError, Server, ServerConfig, ServerStats};
use openserdes::Session;
use std::time::Duration;

/// Binds a loopback server, runs `body` against its address, then
/// stops it and returns the lifetime stats.
fn with_server(config: ServerConfig, body: impl FnOnce(std::net::SocketAddr)) -> ServerStats {
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());
    body(addr);
    handle.stop();
    let (stats, record) = serving
        .join()
        .expect("server thread")
        .expect("serve returns cleanly");
    assert_eq!(
        record.counter("serve.requests"),
        stats.requests,
        "serve.* counters flow through telemetry"
    );
    stats
}

fn quick_bathtub(bits: usize) -> Request {
    Request::Bathtub {
        config: LinkConfig::paper_default(),
        sweep: SweepSpec {
            bits,
            phases: 8,
            frames: 2,
            tol_db: 1.0,
        },
    }
}

#[test]
fn wire_responses_are_bit_identical_to_direct_submit() {
    let stim: Vec<[u32; 8]> = (0..2)
        .map(|i| std::array::from_fn(|k| (i * 8 + k) as u32 ^ 0x0BAD_F00D))
        .collect();
    let jobs = vec![
        (
            11u64,
            Request::RunLink {
                config: LinkConfig::paper_default(),
                frames: stim,
            },
        ),
        (12, quick_bathtub(1_000)),
        (
            13,
            Request::MaxLoss {
                config: LinkConfig::paper_default(),
                sweep: SweepSpec {
                    bits: 800,
                    phases: 4,
                    frames: 2,
                    tol_db: 2.0,
                },
            },
        ),
        (
            14,
            Request::Sta {
                design: DesignSpec::Serializer,
                pvt: openserdes::pdk::corner::Pvt::nominal(),
                clock: Hertz::from_ghz(2.0),
            },
        ),
        (
            15,
            Request::Lint {
                design: DesignSpec::Cdr { oversampling: 5 },
            },
        ),
    ];

    let jobs_for_server = jobs.clone();
    let stats = with_server(ServerConfig::default(), move |addr| {
        let mut client = Client::connect(addr, "bit-identity").expect("connect");
        for (seed, request) in &jobs_for_server {
            let wire_bytes = client.submit_raw(1, *seed, request).expect("served reply");
            let direct_bytes = Session::new()
                .with_seed(*seed)
                .with_threads(1)
                .submit(request)
                .expect("direct submit")
                .to_canonical_json();
            assert_eq!(
                wire_bytes, direct_bytes,
                "seed {seed}: served bytes must equal direct Session::submit"
            );
        }
    });
    assert_eq!(stats.requests, jobs.len() as u64);
    assert_eq!(stats.completed, jobs.len() as u64);
    assert_eq!(stats.errored, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn identical_submissions_coalesce_and_then_hit_the_cache() {
    // One worker: an occupying job serializes everything behind it, so
    // two identical submissions arriving while it runs must coalesce
    // into one execution.
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let occupier = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "occupier").expect("connect");
            client
                .submit(1, 77, &quick_bathtub(1_000_000))
                .expect("slow job")
        });
        // Let the occupier reach the worker before the twins arrive.
        std::thread::sleep(Duration::from_millis(200));

        let twins: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, format!("twin-{i}")).expect("connect");
                    client
                        .submit_raw(1, 99, &quick_bathtub(1_200))
                        .expect("twin job")
                })
            })
            .collect();
        let replies: Vec<String> = twins
            .into_iter()
            .map(|t| t.join().expect("twin thread"))
            .collect();
        assert_eq!(replies[0], replies[1], "coalesced waiters share one result");
        assert!(matches!(
            occupier.join().expect("occupier thread"),
            Response::Bathtub(_)
        ));

        // Same (request, seed) again, after completion: a cache hit
        // with the same bytes.
        let mut client = Client::connect(addr, "replayer").expect("connect");
        let replay = client
            .submit_raw(1, 99, &quick_bathtub(1_200))
            .expect("replay");
        assert_eq!(replay, replies[0], "cache returns byte-identical response");
    });
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.coalesced, 1, "second twin coalesced");
    assert_eq!(stats.cache_hits, 1, "replay served from cache");
    assert_eq!(
        stats.cache_misses, 2,
        "occupier + first twin + nothing else"
    );
    assert_eq!(stats.completed, 2, "only two jobs actually executed");
}

#[test]
fn overload_sheds_with_a_typed_response() {
    // One worker, queue of one: once a slow job is in flight and the
    // queue holds a priority-3 job, a priority-1 arrival is shed
    // immediately, and a priority-9 arrival evicts the queued job —
    // whose waiter gets the typed shed response, not a dead socket.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let occupier = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "occupier").expect("connect");
            client
                .submit(5, 177, &quick_bathtub(1_000_000))
                .expect("slow job")
        });
        std::thread::sleep(Duration::from_millis(200));

        let queued = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "mid").expect("connect");
            client
                .submit(3, 178, &quick_bathtub(1_200))
                .expect("queued job reply")
        });
        std::thread::sleep(Duration::from_millis(200));

        // Lower priority than anything queued: shed on arrival.
        let mut low = Client::connect(addr, "low").expect("connect");
        match low
            .submit(1, 179, &quick_bathtub(1_300))
            .expect("shed reply")
        {
            Response::Shed(info) => {
                assert_eq!(info.tenant, "low");
                assert_eq!(info.priority, 1);
                assert!(info.queue_depth >= 1);
            }
            other => panic!("expected shed, got {other:?}"),
        }

        // Higher priority: evicts the queued priority-3 job.
        let winner = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "high").expect("connect");
            client
                .submit(9, 180, &quick_bathtub(1_400))
                .expect("high job")
        });
        match queued.join().expect("queued thread") {
            Response::Shed(info) => {
                assert_eq!(info.tenant, "mid");
                assert_eq!(info.priority, 3);
            }
            other => panic!("expected evicted job to be shed, got {other:?}"),
        }
        assert!(matches!(
            winner.join().expect("winner thread"),
            Response::Bathtub(_)
        ));
        assert!(matches!(
            occupier.join().expect("occupier thread"),
            Response::Bathtub(_)
        ));
    });
    assert_eq!(stats.shed, 2, "one shed on arrival, one evicted");
    assert_eq!(stats.completed, 2, "occupier and the priority-9 winner");
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn engine_panic_is_isolated_and_the_worker_survives() {
    // cdr.oversampling = 0 passes wire validation (LinkConfig is
    // accepted verbatim) but violates the engine's internal assert —
    // the canonical panic-isolation vector.
    let mut poison = LinkConfig::paper_default();
    poison.cdr.oversampling = 0;
    let poison_request = Request::RunLink {
        config: poison,
        frames: vec![[7u32; 8]],
    };

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let mut client = Client::connect(addr, "panicker").expect("connect");
        match client.submit(1, 21, &poison_request) {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("panicked"),
                    "panic surfaces as a typed error frame, got: {msg}"
                );
            }
            other => panic!("expected server error, got {other:?}"),
        }
        // Same connection, same (sole) worker: still alive and serving.
        let reply = client
            .submit(1, 22, &quick_bathtub(1_000))
            .expect("worker survived the panic");
        assert!(matches!(reply, Response::Bathtub(_)));
    });
    assert_eq!(stats.panics_isolated, 1);
    assert_eq!(stats.errored, 0, "a panic counts as isolated, not errored");
    assert_eq!(stats.completed, 1);
}
