//! The Session API contract: every deprecated entry point and its
//! [`Session`]/builder replacement drive the *same engine*, so the
//! outputs agree exactly — migration changes spelling, never results.

#![allow(deprecated)]

use openserdes::core::link::SerdesLink;
use openserdes::core::sweep::{bathtub, max_loss_bisect, sensitivity_sweep};
use openserdes::core::{cdr_design, LinkConfig, PrbsGenerator, PrbsOrder, Sweep, LANES};
use openserdes::flow::{run_flow, FlowConfig};
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::units::Hertz;
use openserdes::Session;

fn prbs_frames(count: usize) -> Vec<[u32; LANES]> {
    let mut g = PrbsGenerator::new(PrbsOrder::Prbs31);
    (0..count)
        .map(|_| {
            let mut f = [0u32; LANES];
            for w in f.iter_mut() {
                for b in 0..32 {
                    if g.next_bit() {
                        *w |= 1 << b;
                    }
                }
            }
            f
        })
        .collect()
}

#[test]
fn link_reports_are_identical() {
    let frames = prbs_frames(6);
    let old = SerdesLink::new(LinkConfig::paper_default())
        .run_frames(&frames, 17)
        .expect("old API runs");
    let new = Session::new()
        .with_seed(17)
        .run_link(&frames)
        .expect("session runs");
    assert_eq!(old, new, "Session must reproduce the deprecated output");
}

#[test]
fn flow_results_are_identical() {
    let mut cfg = FlowConfig::at_clock(Hertz::from_ghz(1.0));
    cfg.anneal_iterations = 1_000;
    let design = cdr_design(5);
    let old = run_flow(&design, &cfg).expect("old API runs");
    let new = Session::new()
        .with_flow_config(cfg)
        .run_flow(&design)
        .expect("session runs");
    assert_eq!(old.stats.cell_count, new.stats.cell_count);
    assert_eq!(old.stats.flop_count, new.stats.flop_count);
    assert_eq!(old.area().value().to_bits(), new.area().value().to_bits());
    assert_eq!(
        old.timing.fmax.value().to_bits(),
        new.timing.fmax.value().to_bits()
    );
    assert_eq!(
        old.total_power().value().to_bits(),
        new.total_power().value().to_bits()
    );
    assert_eq!(old.log, new.log, "stage logs must match line for line");
}

#[test]
fn lint_reports_are_identical() {
    let design = cdr_design(5);
    let old = openserdes::flow::lint::lint(&design, &openserdes::lint::LintConfig::default());
    let new = Session::new().lint(&design);
    assert_eq!(old.findings().len(), new.findings().len());
    for (a, b) in old.findings().iter().zip(new.findings()) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.message, b.message);
    }
}

#[test]
fn sweeps_are_identical() {
    let cfg = LinkConfig::paper_default();

    // Bathtub: deprecated free function vs Sweep builder vs Session.
    let old = bathtub(&cfg, 2_000, 8, 5).expect("old bathtub");
    let via_builder = Sweep::new()
        .with_bits(2_000)
        .with_phases(8)
        .with_seed(5)
        .bathtub(&cfg)
        .expect("builder bathtub");
    assert_eq!(old, via_builder);
    let via_session = Session::new()
        .with_sweep(Sweep::new().with_bits(2_000).with_phases(8))
        .with_seed(5)
        .bathtub()
        .expect("session bathtub");
    assert_eq!(old, via_session);

    // Loss bisection.
    let old = max_loss_bisect(&cfg, 4, 1.0).expect("old bisect");
    let new = Session::new()
        .with_sweep(Sweep::new().with_frames(4).with_tolerance_db(1.0))
        .max_loss()
        .expect("session bisect");
    assert_eq!(old.to_bits(), new.to_bits());

    // Sensitivity sweep.
    let rates = [Hertz::from_ghz(1.0), Hertz::from_ghz(2.0)];
    let old = sensitivity_sweep(Pvt::nominal(), &rates).expect("old sweep");
    let new = Session::new()
        .sensitivity_sweep(&rates)
        .expect("session sweep");
    assert_eq!(old, new);
}

#[test]
fn transient_config_builder_matches_old_constructors() {
    use openserdes::analog::solver::TransientConfig;
    assert_eq!(TransientConfig::to(5e-9), TransientConfig::until(5e-9));
    assert_eq!(
        TransientConfig::with_dt(5e-9, 2e-12),
        TransientConfig::until(5e-9).with_fixed_dt(2e-12)
    );
    assert_eq!(
        TransientConfig::adaptive(5e-9, 1e-12, 64e-12, 1e-3),
        TransientConfig::until(5e-9).with_adaptive_steps(1e-12, 64e-12, 1e-3)
    );
}
