//! Cross-crate integration: vector-driven (trace-based) power analysis —
//! the event simulator's activity feeding the power analyzer, the
//! VCD-to-signoff loop of a real flow.

use openserdes::digital::{EventSim, Logic};
use openserdes::flow::{analyze_power, PowerConfig};
use openserdes::netlist::Netlist;
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::library::Library;
use openserdes::pdk::stdcell::{DriveStrength, LogicFn};
use openserdes::pdk::units::Hertz;

/// An 8-stage register pipeline fed by a data input.
fn pipeline() -> Netlist {
    let mut nl = Netlist::new("pipe8");
    let clk = nl.add_input("clk");
    let d = nl.add_input("d");
    let mut s = d;
    for _ in 0..8 {
        s = nl.dff(s, clk, DriveStrength::X1);
        s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
    }
    nl.mark_output("q", s);
    nl
}

fn trace_power(toggle_every: Option<u64>) -> f64 {
    let nl = pipeline();
    let lib = Library::sky130(Pvt::nominal());
    let mut sim = EventSim::new(&nl, &lib).expect("valid");
    let clk = nl.primary_inputs()[0];
    let d = nl.primary_inputs()[1];
    let period = 1_000u64; // 1 ns = 1 GHz
    let cycles = 64u64;
    sim.set_input(d, Logic::Zero);
    sim.drive_clock(clk, period, period / 2, cycles * period);
    if let Some(n) = toggle_every {
        for k in 0..cycles / n {
            let v = if k % 2 == 0 { Logic::One } else { Logic::Zero };
            sim.schedule(k * n * period + 10, d, v);
        }
    }
    sim.run_until(cycles * period + period);
    let cfg = PowerConfig::from_trace(Hertz::from_ghz(1.0), &nl, sim.trace(), cycles);
    analyze_power(&nl, &lib, None, &cfg).total().value()
}

#[test]
fn busy_data_burns_more_than_idle() {
    let idle = trace_power(None);
    let slow = trace_power(Some(8));
    let fast = trace_power(Some(1));
    assert!(
        fast > slow && slow > idle,
        "power must track activity: {fast:.3e} > {slow:.3e} > {idle:.3e}"
    );
    // Idle still burns clock-tree power (the flops keep clocking).
    assert!(idle > 0.0);
}

#[test]
fn trace_power_bounded_by_uniform_worst_case() {
    // Measured activity can never exceed a uniform α=1 analysis of the
    // same netlist (every net toggling every cycle).
    let nl = pipeline();
    let lib = Library::sky130(Pvt::nominal());
    let mut worst = PowerConfig::at_clock(Hertz::from_ghz(1.0));
    worst.activity = 1.0;
    let upper = analyze_power(&nl, &lib, None, &worst).total().value();
    let measured = trace_power(Some(1));
    assert!(
        measured <= upper * 1.05,
        "measured {measured:.3e} must stay under the α=1 bound {upper:.3e}"
    );
}

#[test]
fn event_counts_track_stimulus() {
    let nl = pipeline();
    let lib = Library::sky130(Pvt::nominal());
    let run = |toggles: bool| {
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        let clk = nl.primary_inputs()[0];
        let d = nl.primary_inputs()[1];
        sim.set_input(d, Logic::Zero);
        sim.drive_clock(clk, 1_000, 500, 32_000);
        if toggles {
            for k in 0..16u64 {
                sim.schedule(k * 2_000 + 10, d, Logic::from_bool(k % 2 == 0));
            }
        }
        sim.run_until(40_000);
        sim.events_processed()
    };
    assert!(run(true) > run(false), "more stimulus, more events");
}
