//! Cross-crate integration: synthesized netlists executed in the
//! *event-driven* (timing-accurate) simulator — RTL → gates → events,
//! with real NLDM delays between clock edges.

use openserdes::digital::{EventSim, Logic};
use openserdes::flow::ir::Design;
use openserdes::flow::synthesize;
use openserdes::pdk::corner::{ProcessCorner, Pvt};
use openserdes::pdk::library::Library;

/// A 4-bit counter design.
fn counter4() -> Design {
    let mut d = Design::new("cnt4");
    let q = d.reg_bus(4);
    let next = d.incr(&q);
    d.connect_reg_bus(&q, &next);
    d.output_bus("q", &q);
    d
}

#[test]
fn synthesized_counter_counts_under_a_real_clock() {
    let library = Library::sky130(Pvt::nominal());
    let synth = synthesize(&counter4(), &library).expect("synthesizes");
    let mut sim = EventSim::new(&synth.netlist, &library).expect("valid");
    // Reset the state by forcing the register outputs low once.
    let q_nets: Vec<_> = synth.outputs.iter().map(|(_, n)| *n).collect();
    for &q in &q_nets {
        sim.schedule(10, q, Logic::Zero);
    }
    if let Some(c0) = synth.const0 {
        sim.set_input(c0, Logic::Zero);
    }
    if let Some(c1) = synth.const1 {
        sim.set_input(c1, Logic::One);
    }
    // 1 GHz clock, rising edges at 1000, 2000, ...
    let period = 1_000u64;
    sim.drive_clock(synth.clk, period, period, 12 * period);
    // Sample just before each edge: the counter must have settled.
    for k in 1..=10u64 {
        sim.run_until(k * period + period - 50);
        let got: u64 = q_nets
            .iter()
            .enumerate()
            .map(|(i, &n)| ((sim.value(n) == Logic::One) as u64) << i)
            .sum();
        assert_eq!(got, k % 16, "count after edge {k}");
    }
}

#[test]
fn slow_corner_needs_a_longer_period() {
    // At a too-fast clock the combinational cloud misses the next edge
    // and the counter skips/corrupts; at a comfortable clock it counts.
    // The threshold period is corner-dependent.
    let run = |pvt: Pvt, period: u64| -> bool {
        let library = Library::sky130(pvt);
        let synth = synthesize(&counter4(), &library).expect("ok");
        let mut sim = EventSim::new(&synth.netlist, &library).expect("valid");
        let q_nets: Vec<_> = synth.outputs.iter().map(|(_, n)| *n).collect();
        for &q in &q_nets {
            sim.schedule(5, q, Logic::Zero);
        }
        if let Some(c1) = synth.const1 {
            sim.set_input(c1, Logic::One);
        }
        if let Some(c0) = synth.const0 {
            sim.set_input(c0, Logic::Zero);
        }
        sim.drive_clock(synth.clk, period, period, 10 * period);
        let mut ok = true;
        for k in 1..=8u64 {
            sim.run_until(k * period + period - 10);
            let got: u64 = q_nets
                .iter()
                .enumerate()
                .map(|(i, &n)| ((sim.value(n) == Logic::One) as u64) << i)
                .sum();
            ok &= got == k % 16;
        }
        ok
    };
    let tt = Pvt::nominal();
    assert!(run(tt, 2_000), "tt counts at 500 MHz");
    // The slow corner still counts at a relaxed clock.
    let ss = Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0);
    assert!(run(ss, 4_000), "ss counts at 250 MHz");
}

#[test]
fn event_sim_matches_cycle_sim_on_the_counter() {
    let library = Library::sky130(Pvt::nominal());
    let synth = synthesize(&counter4(), &library).expect("ok");
    // Cycle-accurate reference.
    let mut cyc = openserdes::digital::CycleSim::new(&synth.netlist).expect("valid");
    cyc.reset_flops();
    if let Some(c1) = synth.const1 {
        cyc.set_bit(c1, true);
    }
    if let Some(c0) = synth.const0 {
        cyc.set_bit(c0, false);
    }
    // Timing simulation.
    let mut evt = EventSim::new(&synth.netlist, &library).expect("valid");
    let q_nets: Vec<_> = synth.outputs.iter().map(|(_, n)| *n).collect();
    for &q in &q_nets {
        evt.schedule(5, q, Logic::Zero);
    }
    if let Some(c1) = synth.const1 {
        evt.set_input(c1, Logic::One);
    }
    if let Some(c0) = synth.const0 {
        evt.set_input(c0, Logic::Zero);
    }
    let period = 2_000u64;
    evt.drive_clock(synth.clk, period, period, 9 * period);
    for k in 1..=8u64 {
        cyc.tick();
        evt.run_until(k * period + period - 10);
        for &q in &q_nets {
            assert_eq!(
                cyc.value(q),
                evt.value(q),
                "cycle vs event divergence at edge {k}"
            );
        }
    }
}
