//! Cross-crate integration: the complete SerDes link exercised at the
//! paper's operating points and across PVT corners.

use openserdes::core::{
    frame_to_bits, BerTest, Deserializer, LinkConfig, PrbsGenerator, PrbsOrder, Serializer, LANES,
};
use openserdes::pdk::corner::{ProcessCorner, Pvt};
use openserdes::pdk::units::Hertz;
use openserdes::phy::ChannelModel;
use openserdes::Session;

fn prbs_frames(count: usize, order: PrbsOrder) -> Vec<[u32; LANES]> {
    let mut g = PrbsGenerator::new(order);
    (0..count)
        .map(|_| {
            let mut f = [0u32; LANES];
            for w in f.iter_mut() {
                for b in 0..32 {
                    if g.next_bit() {
                        *w |= 1 << b;
                    }
                }
            }
            f
        })
        .collect()
}

#[test]
fn paper_figure8_scenario_is_error_free() {
    // 2 Gb/s, PRBS-31, 34 dB — the paper's central claim.
    let report = Session::new()
        .with_seed(8)
        .run_link(&prbs_frames(60, PrbsOrder::Prbs31))
        .expect("link runs");
    assert!(report.cdr_locked);
    assert!(report.error_free(), "ber = {:.2e}", report.ber());
    assert!(report.bits > 14_000);
}

#[test]
fn loss_sweep_has_a_sharp_waterfall() {
    // Below the budget: clean. Above: broken. The transition is where
    // Fig. 9's max-loss curve sits.
    let at = |db: f64| {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::lossy(db);
        Session::new()
            .with_link_config(cfg)
            .with_seed(5)
            .run_link(&prbs_frames(12, PrbsOrder::Prbs31))
            .expect("runs")
            .ber()
    };
    assert_eq!(at(25.0), 0.0, "25 dB must be clean");
    assert_eq!(at(32.0), 0.0, "32 dB must be clean");
    assert!(at(42.0) > 1e-2, "42 dB must fail hard");
}

#[test]
fn rate_scaling_trades_against_loss() {
    // At low loss, higher rates still work; at the 2 GHz loss budget,
    // pushing the rate breaks the link (Fig. 9's tradeoff).
    let run = |ghz: f64, db: f64| {
        let mut cfg = LinkConfig::paper_default();
        cfg.data_rate = Hertz::from_ghz(ghz);
        cfg.channel = ChannelModel::lossy(db);
        Session::new()
            .with_link_config(cfg)
            .with_seed(3)
            .run_link(&prbs_frames(10, PrbsOrder::Prbs31))
            .expect("runs")
            .ber()
    };
    assert_eq!(run(3.0, 20.0), 0.0, "3 GHz over 20 dB is inside budget");
    assert!(run(3.0, 34.0) > 0.0, "3 GHz over 34 dB must fail");
}

#[test]
fn serdes_identity_through_an_ideal_phy() {
    // With the PHY removed from the equation the FSM pair is exact.
    let frames = prbs_frames(20, PrbsOrder::Prbs23);
    let mut ser = Serializer::new();
    let mut des = Deserializer::new();
    for &f in &frames {
        let bits = ser.serialize(f);
        assert_eq!(bits, frame_to_bits(&f));
        assert_eq!(des.push_bits(&bits), vec![f]);
    }
}

#[test]
fn corners_shift_the_operating_envelope() {
    // The same link config marginally passes at nominal and fails at the
    // slow corner — the reason signoff uses corners at all.
    let at_pvt = |pvt: Pvt, db: f64| {
        let mut cfg = LinkConfig::paper_default();
        cfg.pvt = pvt;
        cfg.channel = ChannelModel::lossy(db);
        Session::new()
            .with_link_config(cfg)
            .with_seed(11)
            .run_link(&prbs_frames(10, PrbsOrder::Prbs31))
            .expect("runs")
            .ber()
    };
    let nominal = at_pvt(Pvt::nominal(), 33.0);
    let slow = at_pvt(Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0), 33.0);
    assert_eq!(nominal, 0.0, "nominal must pass at 33 dB");
    assert!(
        slow >= nominal,
        "the slow corner can only be worse: {slow} vs {nominal}"
    );
}

#[test]
fn ber_harness_confidence_bounds() {
    let t = BerTest::prbs31(LinkConfig::paper_default(), 30);
    let est = t.run().expect("runs");
    assert_eq!(est.errors, 0);
    // Rule of three: < 3/7000 at 95 %.
    assert!(est.ber_upper95() < 5e-4);
}

#[test]
fn different_prbs_orders_all_pass() {
    for order in [PrbsOrder::Prbs7, PrbsOrder::Prbs15, PrbsOrder::Prbs23] {
        let mut t = BerTest::prbs31(LinkConfig::paper_default(), 10);
        t.prbs = order;
        assert!(
            t.is_error_free().expect("runs"),
            "order {order} must pass at the paper point"
        );
    }
}
