//! The telemetry layer's central promise: parallel sweeps aggregate
//! *identically* for any worker count. Counters and histograms are
//! integer sums absorbed in input-index order, and span trees fold by
//! name, so everything except wall times is bit-identical whether a
//! sweep ran on 1 worker or 8 — [`Record::deterministic_digest`] is
//! that invariant as a comparable string.

use openserdes::core::{LinkConfig, Sweep};
use openserdes::telemetry;

#[test]
fn sweep_telemetry_is_worker_count_invariant() {
    let cfg = LinkConfig::paper_default();
    telemetry::set_enabled(true);
    let run_at = |threads: usize| {
        let sweep = Sweep::new()
            .with_bits(2_000)
            .with_phases(8)
            .with_frames(4)
            .with_tolerance_db(1.0)
            .with_seed(5)
            .with_threads(threads);
        let (results, rec) = telemetry::collect(|| {
            let curve = sweep.bathtub(&cfg).expect("bathtub");
            let corners = sweep.corner_sweep(&cfg).expect("corners");
            (curve, corners)
        });
        (results, rec)
    };

    let ((curve1, corners1), rec1) = run_at(1);
    let digest1 = rec1.deterministic_digest();

    // The record is non-trivial: every phase and corner left a mark.
    assert_eq!(rec1.counter("sweep.eye_phases"), 8);
    assert_eq!(rec1.counter("sweep.corner_points"), 3);
    assert!(rec1.counter("sweep.bisect_probes") > 0);
    assert!(rec1.span("sweep.bathtub").is_some());
    // The corner sweep's bias pre-pass runs through the batched
    // multi-point engine: one lockstep point per corner, none retired.
    assert_eq!(rec1.counter("analog.batched_points"), 3);
    assert_eq!(rec1.counter("analog.batch_retirements"), 0);
    assert!(rec1.counter("analog.batched_factorizations") > 0);
    assert!(
        rec1.span("sweep.corner_sweep")
            .and_then(|s| s.child("analog.batched_dc"))
            .is_some(),
        "the batched DC span must nest under the corner sweep"
    );
    assert!(
        rec1.histogram("sweep.phase_errors")
            .is_some_and(|h| h.count() == 8),
        "one phase-error sample per bathtub phase"
    );

    for threads in [2usize, 4, 8] {
        let ((curve, corners), rec) = run_at(threads);
        assert_eq!(curve, curve1, "results diverge at {threads} workers");
        assert_eq!(corners, corners1, "corners diverge at {threads} workers");
        assert_eq!(
            rec.deterministic_digest(),
            digest1,
            "telemetry digest diverges at {threads} workers"
        );
    }
    telemetry::set_enabled(false);
}
