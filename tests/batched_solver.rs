//! Contract of the batched multi-point lockstep solver (DESIGN.md §16):
//! on random circuits and batch compositions, `run_transient_batched`
//! in `Fixed` mode must be **bit-identical per point** to a sequential
//! solve of that point's materialized circuit — including batches where
//! some points retire into the sequential recovery ladder — and in
//! `Adaptive` mode must track the sequential adaptive run within a
//! small multiple of `lte_tol`. The `dc_sweep` shim must return exactly
//! the batched engine's output at every thread count.

use openserdes::analog::primitives::{add_inverter_chain, InverterSize};
use openserdes::analog::solver::{dc_sweep_with_threads, Solver, TransientConfig};
use openserdes::analog::{
    dc_sweep_batched, Circuit, Element, Node, PointOverride, Stimulus, Waveform,
};
use openserdes::pdk::corner::Pvt;
use proptest::prelude::*;

/// The batch sizes the contract is exercised at: degenerate (1), tiny,
/// odd (not a lane multiple) and large.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 32];

const LTE_TOL: f64 = 1.0e-3;

fn pattern(mask: u8, n: usize) -> Vec<bool> {
    (0..n).map(|i| mask >> i & 1 == 1).collect()
}

/// A single-pole RC low-pass driven by an NRZ source. Stimulus-only
/// overrides (per-point swing) keep the topology uniform and linear —
/// the shared-LU lockstep fast path.
fn rc_fixture(r_ohms: f64, c_farads: f64, mask: u8) -> (Circuit, Vec<Node>, f64, f64) {
    let bits = pattern(mask, 4);
    let ui = 200e-12;
    let input = Waveform::nrz(&bits, ui, ui / 10.0, 0.0, 1.8, 32);
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let vout = c.node("vout");
    c.vsource(vin, Stimulus::Wave(input));
    c.resistor(vin, vout, r_ohms);
    c.capacitor(vout, c.gnd(), c_farads);
    let t_end = (bits.len() + 1) as f64 * ui;
    (c, vec![vin, vout], t_end, 2e-12)
}

/// Per-point swings for the RC fixture: override source 0 with a
/// rescaled copy of the NRZ drive.
fn rc_points(mask: u8, np: usize) -> Vec<PointOverride> {
    let bits = pattern(mask, 4);
    let ui = 200e-12;
    (0..np)
        .map(|p| {
            let swing = 0.6 + 0.05 * p as f64;
            let wave = Waveform::nrz(&bits, ui, ui / 10.0, 0.0, swing, 32);
            PointOverride::new().with_source(0, Stimulus::Wave(wave))
        })
        .collect()
}

/// A two-stage inverter chain into a load cap. Element overrides
/// (per-point load) force the per-point-LU lockstep path through the
/// nonlinear MOS stamps.
fn chain_fixture(mask: u8, scale: f64) -> (Circuit, Vec<Node>, usize, f64, f64) {
    let pvt = Pvt::nominal();
    let bits = pattern(mask, 4);
    let ui = 200e-12;
    let input = Waveform::nrz(&bits, ui, ui / 10.0, 0.0, pvt.vdd.value(), 32);
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("vin");
    c.vsource(vdd, Stimulus::Dc(pvt.vdd.value()));
    c.vsource(vin, Stimulus::Wave(input));
    let sizes = [
        InverterSize::scaled(scale),
        InverterSize::scaled(scale * 3.0),
    ];
    let outs = add_inverter_chain(&mut c, &pvt, &sizes, vin, vdd);
    let out = *outs.last().expect("stages");
    c.capacitor(out, c.gnd(), 50e-15);
    let load_index = c.elements().len() - 1;
    let t_end = (bits.len() + 1) as f64 * ui;
    (c, vec![vin, out], load_index, t_end, 2e-12)
}

fn chain_points(base: &Circuit, load_index: usize, out: Node, np: usize) -> Vec<PointOverride> {
    (0..np)
        .map(|p| {
            PointOverride::new().with_element(
                load_index,
                Element::Capacitor {
                    a: out,
                    b: base.gnd(),
                    farads: (20.0 + 15.0 * p as f64) * 1e-15,
                },
            )
        })
        .collect()
}

/// Asserts every batched point's waveforms match a sequential
/// `run_transient` of the materialized circuit bit for bit at `nodes`.
fn assert_batched_bit_identical(
    base: &Circuit,
    points: &[PointOverride],
    cfg: &TransientConfig,
    nodes: &[Node],
) {
    let mut solver = Solver::new(base);
    let batched = solver.run_transient_batched(points, cfg);
    assert_eq!(batched.results().len(), points.len());
    assert_eq!(batched.stats().batched_points, points.len() as u64);
    for (p, (ov, got)) in points.iter().zip(batched.results()).enumerate() {
        let pc = ov.circuit_for_point(base);
        let want = Solver::new(&pc).run_transient(cfg);
        match (got, &want) {
            (Ok(got), Ok(want)) => {
                for &node in nodes {
                    let g = got.waveform(node).samples();
                    let w = want.waveform(node).samples();
                    assert_eq!(g.len(), w.len(), "point {p}: sample count");
                    for (i, (a, b)) in g.iter().zip(w).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "point {p}, node {node}, sample {i}: {a:e} vs {b:e}"
                        );
                    }
                }
            }
            (Err(ge), Err(we)) => {
                assert_eq!(ge.to_string(), we.to_string(), "point {p}: error mismatch")
            }
            (g, w) => panic!("point {p}: outcome mismatch: {g:?} vs {w:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shared-LU path: uniform linear batches are bit-identical to the
    /// sequential solver at every batch size.
    #[test]
    fn fixed_batched_rc_bit_identical(
        r in 100.0f64..10_000.0,
        cap_ff in 100.0f64..5_000.0,
        mask in any::<u8>(),
        bs_idx in 0usize..4,
    ) {
        let np = BATCH_SIZES[bs_idx];
        let (c, nodes, t_end, dt) = rc_fixture(r, cap_ff * 1e-15, mask);
        let cfg = TransientConfig::until(t_end).with_fixed_dt(dt);
        assert_batched_bit_identical(&c, &rc_points(mask, np), &cfg, &nodes);
    }

    /// Per-point-LU path: element-overridden nonlinear batches are
    /// bit-identical to the sequential solver at every batch size.
    #[test]
    fn fixed_batched_chain_bit_identical(
        mask in any::<u8>(),
        scale in 1.0f64..6.0,
        bs_idx in 0usize..4,
    ) {
        let np = BATCH_SIZES[bs_idx].min(7); // MOS batches are pricey; cap the sweep
        let (c, nodes, load_index, t_end, dt) = chain_fixture(mask, scale);
        let cfg = TransientConfig::until(t_end).with_fixed_dt(dt);
        let points = chain_points(&c, load_index, nodes[1], np);
        assert_batched_bit_identical(&c, &points, &cfg, &nodes);
    }

    /// Adaptive lockstep shares one step controller, so it is not
    /// bit-identical — but every point must stay within a small
    /// multiple of `lte_tol` of its own sequential adaptive solve.
    #[test]
    fn adaptive_batched_tracks_sequential(
        r in 100.0f64..10_000.0,
        cap_ff in 100.0f64..5_000.0,
        mask in any::<u8>(),
        bs_idx in 0usize..4,
    ) {
        let np = BATCH_SIZES[bs_idx];
        let (c, nodes, t_end, dt) = rc_fixture(r, cap_ff * 1e-15, mask);
        let cfg = TransientConfig::until(t_end).with_adaptive_steps(dt, 64.0 * dt, LTE_TOL);
        let points = rc_points(mask, np);
        let mut solver = Solver::new(&c);
        let batched = solver.run_transient_batched(&points, &cfg);
        // Compare solved nodes only: the emitted waveform at a *source*
        // node lerps the stimulus across accepted steps, so two runs on
        // different step grids smear NRZ edges differently — a grid
        // artifact, not solver error.
        let vout = nodes[1];
        for (p, (ov, got)) in points.iter().zip(batched.results()).enumerate() {
            let got = got.as_ref().expect("batched adaptive converges");
            let pc = ov.circuit_for_point(&c);
            let want = Solver::new(&pc).run_transient(&cfg).expect("sequential converges");
            let dev = got.waveform(vout).max_abs_diff(want.waveform(vout));
            prop_assert!(
                dev <= 10.0 * LTE_TOL,
                "point {p}, node {vout}: adaptive deviation {dev:.2e} V"
            );
        }
    }
}

/// A batch where some points retire into the recovery ladder and others
/// don't: a starved Newton budget makes the sharp-edged points fail
/// their lockstep steps while the DC-driven points never break a sweat.
/// Every point — retired or not — must still match its sequential solve
/// bit for bit, and the retirements must be counted.
#[test]
fn mixed_recovery_batch_stays_bit_identical() {
    let (c, nodes, _load_index, t_end, dt) = chain_fixture(0b0101, 2.0);
    let vdd_v = Pvt::nominal().vdd.value();
    // Sharp edges (fast NRZ) vs flat drives: with max_newton = 2 the
    // former blow the lockstep budget at the edges, the latter do not.
    let sharp = Waveform::nrz(&[true, false, true, false], 200e-12, 5e-12, 0.0, vdd_v, 32);
    let points = vec![
        PointOverride::new().with_source_dc(1, 0.0),
        PointOverride::new().with_source(1, Stimulus::Wave(sharp.clone())),
        PointOverride::new().with_source_dc(1, vdd_v),
        PointOverride::new().with_source(1, Stimulus::Wave(sharp)),
    ];
    let cfg = TransientConfig::until(t_end)
        .with_fixed_dt(dt)
        .with_max_newton(2);
    let mut solver = Solver::new(&c);
    let batched = solver.run_transient_batched(&points, &cfg);
    assert!(
        batched.stats().batch_retirements > 0,
        "expected the sharp-edged points to retire (stats: {:?})",
        batched.stats()
    );
    assert_batched_bit_identical(&c, &points, &cfg, &nodes);
}

/// The identity override on an empty batch and a one-point batch both
/// behave: no points, no stats; one point, the base circuit's solution.
#[test]
fn empty_and_identity_batches() {
    let (c, nodes, t_end, dt) = rc_fixture(1e3, 1e-12, 0b0011);
    let cfg = TransientConfig::until(t_end).with_fixed_dt(dt);
    let mut solver = Solver::new(&c);
    let empty = solver.run_transient_batched(&[], &cfg);
    assert!(empty.results().is_empty());
    assert_eq!(empty.stats().batched_points, 0);
    let ov = PointOverride::new();
    assert!(ov.is_identity());
    assert_batched_bit_identical(&c, &[ov], &cfg, &nodes);
}

/// `PointOverride::diff` recovers value-only deltas and rejects
/// topology changes.
#[test]
fn point_override_diff_roundtrip() {
    let (base, _nodes, load_index, _t_end, _dt) = chain_fixture(0b0101, 2.0);
    let mut variant = base.clone();
    variant.set_element(
        load_index,
        match base.elements()[load_index] {
            Element::Capacitor { a, b, .. } => Element::Capacitor {
                a,
                b,
                farads: 123e-15,
            },
            _ => unreachable!("load is a capacitor"),
        },
    );
    variant.set_source_stimulus(0, Stimulus::Dc(1.65));
    let ov = PointOverride::diff(&base, &variant).expect("same topology");
    assert!(!ov.is_identity());
    let rebuilt = ov.circuit_for_point(&base);
    assert_eq!(rebuilt.elements(), variant.elements());
    // A structurally different circuit has no override.
    let mut other = base.clone();
    other.capacitor(other.gnd(), other.gnd(), 1e-15);
    assert!(PointOverride::diff(&base, &other).is_none());
}

/// The `dc_sweep_with_threads` shim must return exactly the batched
/// engine's output, bit for bit, at every worker count — the PR 4
/// exact-equivalence style.
#[test]
fn dc_sweep_shim_matches_batched_engine_exactly() {
    let pvt = Pvt::nominal();
    let vdd_v = pvt.vdd.value();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("vin");
    c.vsource(vdd, Stimulus::Dc(vdd_v));
    c.vsource(vin, Stimulus::Dc(0.0));
    let sizes = [InverterSize::unit(), InverterSize::scaled(2.0)];
    let outs = add_inverter_chain(&mut c, &pvt, &sizes, vin, vdd);
    c.capacitor(*outs.last().expect("stages"), c.gnd(), 10e-15);
    // 70 points spans three 32-point batches unevenly.
    let xs: Vec<f64> = (0..70).map(|i| vdd_v * i as f64 / 69.0).collect();
    let want = dc_sweep_batched(&c, 1, &xs).expect("batched sweep");
    for threads in [1usize, 2, 4, 8] {
        let got = dc_sweep_with_threads(&c, 1, &xs, threads).expect("threaded sweep");
        assert_eq!(got.len(), want.len());
        for (i, (gp, wp)) in got.iter().zip(want.iter()).enumerate() {
            for (j, (a, b)) in gp.iter().zip(wp).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads}, point {i}, node {j}: {a:e} vs {b:e}"
                );
            }
        }
    }
}
