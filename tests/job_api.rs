//! The serializable job API's contract: canonical encodings round-trip
//! byte-for-byte (proptest over the whole `Request` space), submit
//! matches the typed `Session` methods exactly, and the content address
//! plus response bytes of a `(Request, seed)` pair are invariant under
//! the worker count — the properties `openserdes-serve`'s cache and
//! coalescer assume.

use openserdes::core::job::{DesignSpec, Request, Response, SweepSpec};
use openserdes::core::{JobKey, LinkConfig, Sweep};
use openserdes::fault::{campaign, CampaignKind};
use openserdes::pdk::corner::{ProcessCorner, Pvt};
use openserdes::pdk::units::Hertz;
use openserdes::Session;
use proptest::prelude::*;

fn pvt_options() -> Vec<Pvt> {
    vec![
        Pvt::nominal(),
        Pvt::worst_case(),
        Pvt::best_case(),
        Pvt::new(ProcessCorner::SlowFast, 1.7, 30.0),
        Pvt::new(ProcessCorner::FastSlow, 1.9, 70.0),
    ]
}

#[allow(clippy::too_many_arguments)]
fn build_request(
    kind: usize,
    config: LinkConfig,
    sweep: SweepSpec,
    frames: Vec<[u32; 8]>,
    design: DesignSpec,
    pvt: Pvt,
    fault_seed: u64,
) -> Request {
    match kind {
        0 => Request::RunLink { config, frames },
        1 => Request::RunLinkWithFaults {
            config,
            frames,
            schedule: campaign(CampaignKind::Mixed, fault_seed, 20_000),
        },
        2 => Request::RunFlow { design, pvt },
        3 => Request::Bathtub { config, sweep },
        4 => Request::MaxLoss { config, sweep },
        5 => Request::RateSweep {
            config,
            sweep,
            rates: vec![Hertz::from_ghz(1.0), Hertz::from_ghz(2.5)],
        },
        6 => Request::CornerSweep { config, sweep },
        7 => Request::Sta {
            design,
            pvt,
            clock: Hertz::from_ghz(2.0),
        },
        _ => Request::Lint { design },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical JSON is a bijection on the request space: parse inverts
    /// encode, re-encoding is byte-identical, and the job key (content
    /// address) is a pure function of `(Request, seed)`.
    #[test]
    fn canonical_encoding_round_trips(
        kind in 0usize..9,
        atten_db in 0.0f64..40.0,
        rate_ghz in prop::sample::select(vec![0.5f64, 1.0, 2.0, 3.3]),
        noise_uv in 0.0f64..2000.0,
        corner in 0usize..5,
        frames in prop::collection::vec(prop::array::uniform8(any::<u32>()), 0..3),
        bits in 100usize..5_000,
        phases in 1usize..33,
        probe_frames in 1usize..9,
        tol_db in prop::sample::select(vec![0.125f64, 0.5, 1.0, 2.0]),
        oversampling in 3usize..9,
        seed in any::<u64>(),
    ) {
        let mut config = LinkConfig::paper_default();
        config.channel.attenuation_db = atten_db;
        config.channel.noise_sigma = openserdes::pdk::units::Volt::new(noise_uv * 1e-6);
        config.data_rate = Hertz::from_ghz(rate_ghz);
        config.pvt = pvt_options()[corner];
        let sweep = SweepSpec { bits, phases, frames: probe_frames, tol_db };
        let design = [
            DesignSpec::Serializer,
            DesignSpec::Deserializer,
            DesignSpec::Cdr { oversampling },
            DesignSpec::ScanChain,
            DesignSpec::DigitalTop { oversampling },
        ][kind % 5];
        let request = build_request(
            kind, config, sweep, frames, design, pvt_options()[(kind + corner) % 5], seed,
        );

        let json = request.to_canonical_json();
        let back = match Request::from_json(&json) {
            Ok(b) => b,
            Err(e) => return Err(format!("parse failed: {e} on {json}")),
        };
        prop_assert_eq!(&back, &request);
        prop_assert_eq!(back.to_canonical_json(), json.clone(), "re-encode must be byte-identical");

        let k1 = JobKey::of(&request, seed);
        let k2 = JobKey::of(&back, seed);
        prop_assert_eq!(&k1.canonical, &k2.canonical);
        prop_assert_eq!(&k1.digest, &k2.digest);
        prop_assert_eq!(k1.digest.len(), 32);
        let other = JobKey::of(&request, seed.wrapping_add(1));
        prop_assert!(other.canonical != k1.canonical, "seed must be part of the address");
    }
}

/// `Session::submit` reproduces the typed methods' results exactly —
/// the wrappers and the job path share one engine.
#[test]
fn submit_reproduces_typed_session_methods() {
    let stim: Vec<[u32; 8]> = (0..3)
        .map(|i| std::array::from_fn(|k| (i * 8 + k) as u32 ^ 0xC0FF_EE00))
        .collect();
    let config = LinkConfig::paper_default();
    let sweep = Sweep::new()
        .with_bits(1_500)
        .with_phases(8)
        .with_frames(4)
        .with_tolerance_db(1.0);
    let spec = SweepSpec::from(&sweep);

    let mut typed = Session::new().with_seed(9).with_sweep(sweep).with_seed(9);
    let mut jobs = Session::new().with_seed(9);

    let link = typed.run_link(&stim).expect("typed link");
    match jobs
        .submit(&Request::RunLink {
            config: config.clone(),
            frames: stim.clone(),
        })
        .expect("job link")
    {
        Response::Link(report) => assert_eq!(report, link),
        other => panic!("wrong response kind: {other:?}"),
    }

    let schedule = campaign(CampaignKind::Mixed, 3, 30_000);
    let faulted = typed
        .run_link_with_faults(&stim, &schedule)
        .expect("typed faults");
    match jobs
        .submit(&Request::RunLinkWithFaults {
            config: config.clone(),
            frames: stim.clone(),
            schedule,
        })
        .expect("job faults")
    {
        Response::Faulted(report) => assert_eq!(report, faulted),
        other => panic!("wrong response kind: {other:?}"),
    }

    let bathtub = typed.bathtub().expect("typed bathtub");
    match jobs
        .submit(&Request::Bathtub {
            config: config.clone(),
            sweep: spec,
        })
        .expect("job bathtub")
    {
        Response::Bathtub(points) => assert_eq!(points, bathtub),
        other => panic!("wrong response kind: {other:?}"),
    }

    let max_loss = typed.max_loss().expect("typed max_loss");
    match jobs
        .submit(&Request::MaxLoss {
            config: config.clone(),
            sweep: spec,
        })
        .expect("job max_loss")
    {
        Response::MaxLoss { max_loss_db } => assert_eq!(max_loss_db, max_loss),
        other => panic!("wrong response kind: {other:?}"),
    }

    let corners = typed.corner_sweep().expect("typed corners");
    match jobs
        .submit(&Request::CornerSweep {
            config,
            sweep: spec,
        })
        .expect("job corners")
    {
        Response::Corners(points) => assert_eq!(points, corners),
        other => panic!("wrong response kind: {other:?}"),
    }

    // Lint: finding counts line up with the typed path.
    let design = DesignSpec::DigitalTop { oversampling: 5 };
    let report = typed.lint(&design.build());
    match jobs.submit(&Request::Lint { design }).expect("job lint") {
        Response::Lint(summary) => {
            assert_eq!(summary.findings.len(), report.findings().len());
        }
        other => panic!("wrong response kind: {other:?}"),
    }
}

/// The serve-layer caching contract: identical `(Request, seed)` pairs
/// produce byte-identical canonical keys *and* byte-identical canonical
/// response payloads at 1/2/4/8 workers. On this single-core bench
/// container the worker counts prove determinism, not speed.
#[test]
fn cache_keys_and_responses_are_worker_count_invariant() {
    let config = LinkConfig::paper_default();
    let sweep = SweepSpec {
        bits: 1_500,
        phases: 8,
        frames: 4,
        tol_db: 1.0,
    };
    let stim: Vec<[u32; 8]> = (0..2)
        .map(|i| std::array::from_fn(|k| (i * 8 + k) as u32 ^ 0x5151_A0A0))
        .collect();
    let requests = [
        Request::RunLink {
            config: config.clone(),
            frames: stim.clone(),
        },
        Request::RunLinkWithFaults {
            config: config.clone(),
            frames: stim,
            schedule: campaign(CampaignKind::Mixed, 5, 25_000),
        },
        Request::Bathtub {
            config: config.clone(),
            sweep,
        },
        Request::MaxLoss {
            config: config.clone(),
            sweep,
        },
        Request::RateSweep {
            config: config.clone(),
            sweep,
            rates: vec![Hertz::from_ghz(1.0), Hertz::from_ghz(2.0)],
        },
        Request::CornerSweep { config, sweep },
        Request::Sta {
            design: DesignSpec::Serializer,
            pvt: Pvt::nominal(),
            clock: Hertz::from_ghz(2.0),
        },
        Request::Lint {
            design: DesignSpec::Cdr { oversampling: 5 },
        },
    ];

    for (i, request) in requests.iter().enumerate() {
        let seed = 40 + i as u64;
        let key_ref = JobKey::of(request, seed);
        let payload_ref = Session::new()
            .with_seed(seed)
            .with_threads(1)
            .submit(request)
            .expect("runs at 1 worker")
            .to_canonical_json();
        for workers in [2usize, 4, 8] {
            let key = JobKey::of(request, seed);
            assert_eq!(key.canonical, key_ref.canonical, "request {i}");
            assert_eq!(key.digest, key_ref.digest, "request {i}");
            let payload = Session::new()
                .with_seed(seed)
                .with_threads(workers)
                .submit(request)
                .expect("runs")
                .to_canonical_json();
            assert_eq!(
                payload, payload_ref,
                "request {i} response diverged at {workers} workers"
            );
        }
    }
}

/// The documented `with_threads(0)` contract: clamps to one worker on
/// both the `Session` and the underlying `Sweep`, and a clamped
/// configuration still runs.
#[test]
fn zero_threads_clamp_regression() {
    assert_eq!(Sweep::new().with_threads(0).threads(), 1);
    assert_eq!(Session::new().with_threads(0).sweep_options().threads(), 1);
    let mut session = Session::new().with_threads(0).with_seed(3);
    let response = session
        .submit(&Request::MaxLoss {
            config: LinkConfig::paper_default(),
            sweep: SweepSpec {
                bits: 500,
                phases: 4,
                frames: 2,
                tol_db: 2.0,
            },
        })
        .expect("clamped session still serves sweeps");
    assert!(matches!(response, Response::MaxLoss { .. }));
}
