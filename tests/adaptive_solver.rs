//! Property-based contract of the adaptive transient engine: on random
//! circuits and stimuli, the LTE-controlled run must track a fine
//! fixed-step reference on the same output grid to within a small
//! multiple of `lte_tol` (the local bound is per step; the global
//! deviation of a contractive backward-Euler integration stays within
//! one order of it).

use openserdes::analog::primitives::{add_inverter_chain, InverterSize};
use openserdes::analog::solver::{transient, TransientConfig};
use openserdes::analog::{Circuit, Node, Stimulus, Waveform};
use openserdes::pdk::corner::Pvt;
use proptest::prelude::*;

const LTE_TOL: f64 = 1.0e-3;
/// Global-deviation allowance in units of `lte_tol`.
const K: f64 = 10.0;

fn pattern(mask: u8, n: usize) -> Vec<bool> {
    (0..n).map(|i| mask >> i & 1 == 1).collect()
}

/// A single-pole RC low-pass driven by an NRZ source — pure linear,
/// exercising the flat-LU fast path and the plain-step estimator.
fn rc_circuit(r_ohms: f64, c_farads: f64, mask: u8) -> (Circuit, Node, f64, f64) {
    let bits = pattern(mask, 4);
    let ui = 200e-12;
    let input = Waveform::nrz(&bits, ui, ui / 10.0, 0.0, 1.8, 32);
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let vout = c.node("vout");
    c.vsource(vin, Stimulus::Wave(input));
    c.resistor(vin, vout, r_ohms);
    c.capacitor(vout, c.gnd(), c_farads);
    let t_end = (bits.len() + 1) as f64 * ui;
    (c, vout, t_end, 2e-12)
}

/// A two-stage inverter chain into a load — the nonlinear MOS path with
/// source ramps, step growth and rejection all in play.
fn chain(mask: u8, load_ff: f64, scale: f64) -> (Circuit, Node, f64, f64) {
    let pvt = Pvt::nominal();
    let bits = pattern(mask, 4);
    let ui = 200e-12;
    let input = Waveform::nrz(&bits, ui, ui / 10.0, 0.0, pvt.vdd.value(), 32);
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("vin");
    c.vsource(vdd, Stimulus::Dc(pvt.vdd.value()));
    c.vsource(vin, Stimulus::Wave(input));
    let sizes = [
        InverterSize::scaled(scale),
        InverterSize::scaled(scale * 3.0),
    ];
    let outs = add_inverter_chain(&mut c, &pvt, &sizes, vin, vdd);
    let out = *outs.last().expect("stages");
    c.capacitor(out, c.gnd(), load_ff * 1e-15);
    let t_end = (bits.len() + 1) as f64 * ui;
    (c, out, t_end, 2e-12)
}

fn assert_adaptive_tracks_fixed(
    c: &Circuit,
    out: Node,
    t_end: f64,
    dt: f64,
) -> Result<f64, String> {
    let fixed = transient(c, &TransientConfig::until(t_end).with_fixed_dt(dt))
        .map_err(|e| format!("fixed: {e}"))?;
    let adaptive = transient(
        c,
        &TransientConfig::until(t_end).with_adaptive_steps(dt, 64.0 * dt, LTE_TOL),
    )
    .map_err(|e| format!("adaptive: {e}"))?;
    let wf = fixed.waveform(out);
    let wa = adaptive.waveform(out);
    if wf.samples().len() != wa.samples().len() {
        return Err(format!(
            "grid mismatch: {} vs {} samples",
            wf.samples().len(),
            wa.samples().len()
        ));
    }
    Ok(wa.max_abs_diff(wf))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Linear RC: the adaptive run lands on the fine fixed grid within
    /// K x lte_tol for any pole location and bit pattern.
    #[test]
    fn adaptive_tracks_fixed_on_rc(
        r in 100.0f64..10_000.0,
        cap_ff in 100.0f64..5_000.0,
        mask in any::<u8>(),
    ) {
        let (c, out, t_end, dt) = rc_circuit(r, cap_ff * 1e-15, mask);
        let dev = assert_adaptive_tracks_fixed(&c, out, t_end, dt)
            .map_err(|e| e.to_string()).unwrap();
        prop_assert!(
            dev <= K * LTE_TOL,
            "RC deviation {dev:.2e} V > {} x lte_tol (R={r:.0}, C={cap_ff:.0} fF, mask={mask:#04x})",
            K
        );
    }

    /// Nonlinear inverter chain: same contract through MOS device
    /// models, Newton rejection and LU-bank invalidation.
    #[test]
    fn adaptive_tracks_fixed_on_inverter_chain(
        mask in any::<u8>(),
        load_ff in 20.0f64..400.0,
        scale in 1.0f64..6.0,
    ) {
        let (c, out, t_end, dt) = chain(mask, load_ff, scale);
        let dev = assert_adaptive_tracks_fixed(&c, out, t_end, dt)
            .map_err(|e| e.to_string()).unwrap();
        prop_assert!(
            dev <= K * LTE_TOL,
            "chain deviation {dev:.2e} V > {} x lte_tol (mask={mask:#04x}, load={load_ff:.0} fF, scale={scale:.1})",
            K
        );
    }
}
