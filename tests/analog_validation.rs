//! Cross-crate integration: the analog substrate validated against the
//! behavioural models that the fast link path uses.

use openserdes::analog::{EyeDiagram, Waveform};
use openserdes::core::sweep::parallel;
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::units::{Hertz, Time, Volt};
use openserdes::phy::{AnalogLink, BehavioralLink, ChannelModel, FrontEndConfig, RxFrontEnd};

#[test]
fn analog_transient_brackets_behavioural_sensitivity() {
    // The behavioural sensitivity (~32 mV pp at 2 Gb/s) carries a
    // deliberate guardband for mismatch, noise and PVT that the ideal
    // (mismatch-free) transistor simulation does not exhibit. The
    // bracket that must hold: at the modelled sensitivity the ideal
    // front end restores rail-to-rail comfortably (the guardband is
    // conservative, never optimistic), while far below it — sub-mV
    // inputs — restoration collapses.
    let pvt = Pvt::nominal();
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), pvt);
    let sens = fe.sensitivity(Hertz::from_ghz(2.0)).expect("model");
    assert!(sens.mv() > 10.0, "guardbanded sensitivity is tens of mV");
    let bits = [
        true, false, true, false, true, true, false, false, true, false,
    ];

    let run = |pp: f64| {
        let mid = 0.9;
        let input = Waveform::nrz(&bits, 500e-12, 25e-12, mid - pp / 2.0, mid + pp / 2.0, 128);
        fe.receive(&input).expect("transient").restored.amplitude()
    };
    let at_sens = run(sens.value());
    let tiny = run(0.4e-3);
    assert!(
        at_sens > 1.5,
        "the modelled sensitivity must restore rail-to-rail, got {at_sens:.2} V"
    );
    assert!(tiny < 1.2, "0.4 mV must fail to restore, got {tiny:.2} V");
    assert!(tiny < at_sens);
}

#[test]
fn channel_eye_closes_with_attenuation() {
    let bits: Vec<bool> = (0..48).map(|i| (i * 5) % 3 != 0).collect();
    let tx = Waveform::nrz(&bits, 500e-12, 50e-12, 0.0, 1.8, 64);
    let eye_at = |db: f64| {
        let out = ChannelModel::lossy(db).apply(&tx);
        EyeDiagram::analyze(&out, 500e-12, 2e-9, out.mean())
            .map(|e| e.height)
            .unwrap_or(0.0)
    };
    let open = eye_at(10.0);
    let tight = eye_at(34.0);
    assert!(open > 10.0 * tight, "attenuation must shrink the eye");
    assert!(tight > 0.0, "34 dB still leaves a usable eye");
}

#[test]
fn behavioural_link_margin_predicts_analog_recovery() {
    // Where the fast model says the margin is comfortably positive, the
    // transistor-level path recovers bits with zero errors.
    let pvt = Pvt::nominal();
    let channel = ChannelModel::lossy(24.0);
    let analog = AnalogLink::paper_default(pvt, channel);
    let fast = BehavioralLink::from_analog(&analog, Hertz::from_ghz(2.0)).expect("model");
    assert!(
        fast.margin().value() > 0.005,
        "24 dB leaves ample margin: {}",
        fast.margin().value()
    );
    let bits = [
        true, false, true, true, false, false, true, false, true, true, false, true,
    ];
    let run = analog
        .transmit(&bits, Time::from_ps(500.0))
        .expect("transients");
    let (_, errors) = run.recover(&analog.sampler, 3);
    assert_eq!(errors, 0, "analog path must agree with the positive margin");
}

#[test]
fn driver_output_feeds_channel_with_full_swing() {
    let analog = AnalogLink::paper_default(Pvt::nominal(), ChannelModel::lossy(34.0));
    let bits = [false, true, true, false, true, false];
    let run = analog
        .transmit(&bits, Time::from_ps(500.0))
        .expect("transients");
    assert!(run.tx.output.amplitude() > 1.7, "TX swings rail-to-rail");
    let rx_pp = run.channel_out.amplitude();
    // 34 dB of 1.8 V ≈ 36 mV, plus noise.
    assert!(
        (0.02..0.08).contains(&rx_pp),
        "RX sees {:.1} mV",
        rx_pp * 1e3
    );
}

#[test]
fn front_end_self_bias_tracks_supply() {
    // The self-biased input must ride at the inverter threshold at any
    // supply — the property that makes the circuit process-portable.
    // The supplies are independent DC solves, so they fan out over the
    // deterministic parallel map.
    let supplies = [1.62, 1.8, 1.98];
    let biases = parallel::map(&supplies, |_, &vdd| {
        let pvt = Pvt::new(openserdes::pdk::corner::ProcessCorner::Typical, vdd, 25.0);
        let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), pvt);
        fe.self_bias().expect("solves").value()
    });
    for (&vdd, &bias) in supplies.iter().zip(&biases) {
        let rel = bias / vdd;
        assert!(
            (0.38..0.62).contains(&rel),
            "bias/vdd = {rel:.2} at vdd = {vdd}"
        );
    }
}

#[test]
fn analog_sweeps_are_worker_count_independent() {
    // The acceptance contract for the parallel analog sweep engine:
    // thread count changes wall time, never results. Both the chunked
    // DC transfer sweep and the speculative sensitivity bisection must
    // return bit-identical numbers at 1, 2, 4 and 8 workers.
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), Pvt::nominal());
    let vtc_base = fe.vtc_with_threads(17, 1).expect("vtc");
    let sens_base = fe
        .sensitivity_measured(Hertz::from_ghz(2.0), 1)
        .expect("sensitivity");
    for threads in [2, 4, 8] {
        let vtc = fe.vtc_with_threads(17, threads).expect("vtc");
        assert_eq!(vtc.len(), vtc_base.len());
        for (a, b) in vtc.iter().zip(&vtc_base) {
            assert_eq!(
                a.0.to_bits(),
                b.0.to_bits(),
                "vtc input differs at {threads} workers"
            );
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "vtc output differs at {threads} workers"
            );
        }
        let sens = fe
            .sensitivity_measured(Hertz::from_ghz(2.0), threads)
            .expect("sensitivity");
        assert_eq!(
            sens.value().to_bits(),
            sens_base.value().to_bits(),
            "sensitivity differs at {threads} workers"
        );
    }
}

#[test]
fn sensitivity_model_consistent_between_api_layers() {
    // phy's sensitivity and core's sweep must report the same numbers.
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), Pvt::nominal());
    let direct = fe.sensitivity(Hertz::from_ghz(2.0)).expect("ok");
    let swept = openserdes::core::Sweep::new()
        .sensitivity(Pvt::nominal(), &[Hertz::from_ghz(2.0)])
        .expect("ok")[0]
        .sensitivity;
    assert!((direct.value() - swept.value()).abs() < 1e-12);
    let _ = Volt::from_mv(direct.mv());
}
