//! Property fuzz of the `openserdes-serve/1` wire layer: no input —
//! arbitrary bytes, truncations of valid frames, or bit-flipped
//! envelopes — may ever panic the parser or the frame reader. Hostile
//! peers get typed `Err`s, never a crashed connection task.
//!
//! Runs on the vendored deterministic `proptest` stand-in: every case
//! is seeded from the test name, so failures reproduce exactly.

use openserdes::core::job::{DesignSpec, Request, SweepSpec};
use openserdes::core::LinkConfig;
use openserdes::serve::wire::{self, Envelope};
use proptest::prelude::*;

/// A small pool of valid envelopes to mutate.
fn valid_envelope(pick: usize, seed: u64, deadline_ms: Option<u64>) -> Envelope {
    let request = match pick % 3 {
        0 => Request::Lint {
            design: DesignSpec::Serializer,
        },
        1 => Request::MaxLoss {
            config: LinkConfig::paper_default(),
            sweep: SweepSpec::default(),
        },
        _ => Request::Bathtub {
            config: LinkConfig::paper_default(),
            sweep: SweepSpec {
                bits: 500,
                phases: 4,
                frames: 2,
                tol_db: 1.0,
            },
        },
    };
    Envelope {
        tenant: "fuzz".to_string(),
        priority: (pick % 256) as u8,
        seed,
        deadline_ms,
        request,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes (as lossy UTF-8) never panic the envelope or
    /// reply parsers — they return typed errors.
    #[test]
    fn arbitrary_bytes_never_panic_the_parsers(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Envelope::from_json(&text);
        let _ = wire::parse_reply(&text);
    }

    /// Every truncation of a valid envelope parses to a typed error or
    /// (at full length) the original — never a panic.
    #[test]
    fn truncated_envelopes_never_panic(
        pick in 0usize..3,
        seed in any::<u64>(),
        deadline in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let deadline_ms = (deadline % 2 == 0).then_some(deadline >> 1);
        let json = valid_envelope(pick, seed, deadline_ms).to_json();
        let cut = (cut as usize) % (json.len() + 1);
        // Truncate on a char boundary (canonical JSON here is ASCII).
        let _ = Envelope::from_json(&json[..cut]);
        if cut == json.len() {
            prop_assert!(Envelope::from_json(&json).is_ok(), "full frame parses");
        }
    }

    /// Bit-flipped envelopes never panic: any surviving parse must
    /// also re-encode without panicking.
    #[test]
    fn bit_flipped_envelopes_never_panic(
        pick in 0usize..3,
        seed in any::<u64>(),
        flips in prop::collection::vec(any::<u32>(), 1..6),
    ) {
        let json = valid_envelope(pick, seed, Some(250)).to_json();
        let mut bytes = json.into_bytes();
        for flip in flips {
            let pos = (flip as usize / 8) % bytes.len();
            bytes[pos] ^= 1 << (flip % 8);
        }
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(parsed) = Envelope::from_json(&text) {
            let _ = parsed.to_json();
        }
    }

    /// The blocking frame reader never panics on arbitrary streams:
    /// garbage prefixes, truncated payloads, hostile lengths — all
    /// come back as `Ok`/`Err`, and an announced length beyond
    /// `MAX_FRAME` is always refused.
    #[test]
    fn frame_reader_never_panics_on_arbitrary_streams(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        announced in any::<u32>(),
    ) {
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let _ = wire::read_frame_blocking(&mut cursor);

        // A syntactically valid prefix over a truncated body.
        let mut framed = announced.to_be_bytes().to_vec();
        framed.extend_from_slice(&bytes);
        let mut cursor = std::io::Cursor::new(framed);
        match wire::read_frame_blocking(&mut cursor) {
            Ok(Some(payload)) => prop_assert_eq!(payload.len(), announced as usize),
            Ok(None) => return Err("nonempty stream read as clean close".to_string()),
            Err(_) => {} // truncated or oversized: typed error, no panic
        }
        if announced as usize > wire::MAX_FRAME {
            let mut cursor = std::io::Cursor::new(announced.to_be_bytes().to_vec());
            prop_assert!(
                wire::read_frame_blocking(&mut cursor).is_err(),
                "hostile length prefix must be refused"
            );
        }
    }
}
