#!/usr/bin/env python3
"""Validate BENCH_serve.json against schemas/BENCH_serve.schema.json.

A dependency-free subset of JSON Schema draft-07 — enough for the
serve schema (type/required/properties/additionalProperties/const/
minimum/array). CI runs this after the serve smoke; exits non-zero on
the first violation. Also re-checks the run-level invariants the bin
asserts: bit identity against direct `Session::submit`, a non-zero
cache hit rate, at least one coalesced request, an overload burst that
shed with zero isolated worker panics, and — when the run carried
`--chaos` — the server chaos proof: every injected fault accounted to
its contracted serve.* counter, zero hangs, survivor bit identity.
"""

import json
import sys

SCHEMA_PATH = "schemas/BENCH_serve.schema.json"
DOC_PATH = "BENCH_serve.json"


def main() -> None:
    schema = json.load(open(SCHEMA_PATH))
    doc = json.load(open(DOC_PATH))

    def check(inst, sch, path="$"):
        if "const" in sch:
            assert inst == sch["const"], f"{path}: {inst!r} != {sch['const']!r}"
        t = sch.get("type")
        if t == "object":
            assert isinstance(inst, dict), f"{path}: not an object"
            for r in sch.get("required", []):
                assert r in inst, f"{path}: missing required key {r!r}"
            props = sch.get("properties", {})
            ap = sch.get("additionalProperties", True)
            for k, v in inst.items():
                if k in props:
                    check(v, props[k], f"{path}.{k}")
                elif isinstance(ap, dict):
                    check(v, ap, f"{path}.{k}")
                elif ap is False:
                    raise AssertionError(f"{path}: unexpected key {k!r}")
        elif t == "integer":
            assert isinstance(inst, int) and not isinstance(inst, bool), f"{path}: not an integer"
        elif t == "number":
            assert isinstance(inst, (int, float)) and not isinstance(inst, bool), f"{path}: not a number"
        elif t == "string":
            assert isinstance(inst, str), f"{path}: not a string"
        elif t == "boolean":
            assert isinstance(inst, bool), f"{path}: not a boolean"
        elif t == "array":
            assert isinstance(inst, list), f"{path}: not an array"
            if "minItems" in sch:
                assert len(inst) >= sch["minItems"], f"{path}: fewer than {sch['minItems']} items"
            if "items" in sch:
                for i, item in enumerate(inst):
                    check(item, sch["items"], f"{path}[{i}]")
        if "minimum" in sch:
            assert inst >= sch["minimum"], f"{path}: {inst} below minimum {sch['minimum']}"

    check(doc, schema)

    # Run-level invariants beyond per-field shape.
    assert doc["bit_identity"]["identical"] is True
    assert doc["bit_identity"]["replies_checked"] == doc["workload"]["matrix_requests"]
    assert doc["cache"]["hits"] > 0, "cache hit rate must be exercised"
    assert doc["cache"]["coalesced"] > 0, "coalescing must be exercised"
    assert doc["cache"]["hit_rate"] > 0
    assert doc["shedding"]["shed"] > 0, "the overload burst must shed"
    assert doc["shedding"]["shed"] + doc["shedding"]["completed"] == doc["shedding"]["burst"]
    assert doc["shedding"]["panics_isolated"] == 0
    assert doc["throughput"]["requests_per_second"] > 0
    assert doc["throughput"]["p50_ms"] <= doc["throughput"]["p99_ms"] <= doc["throughput"]["max_ms"]
    expected_unique = (
        doc["workload"]["links"] + doc["workload"]["bathtubs"] + doc["workload"]["fault_campaigns"]
    )
    assert doc["workload"]["unique_jobs"] == expected_unique
    assert (
        doc["workload"]["matrix_requests"]
        == doc["workload"]["clients"] * doc["workload"]["passes"] * expected_unique
    )

    chaos = doc.get("chaos")
    if chaos is not None:
        assert chaos["faults_injected"] >= chaos["events"] > 0, "every event injects at least once"
        assert chaos["hangs"] == 0, "chaos must finish with zero hangs"
        assert chaos["accounted"] is True, "every fault billed to its contracted counter"
        assert chaos["bit_identity"] is True, "survivor replies must match direct Session::submit"
        assert sum(chaos["by_kind"].values()) == chaos["events"]
        assert sum(chaos["counters"].values()) == chaos["faults_injected"]
        assert chaos["worker_counts"] == sorted(set(chaos["worker_counts"]))

    chaos_note = (
        f", chaos: {chaos['faults_injected']} faults/0 hangs" if chaos is not None else ""
    )
    print(
        f"BENCH_serve.json validates against {SCHEMA_PATH} "
        f"({doc['workload']['matrix_requests']} requests, "
        f"{doc['throughput']['requests_per_second']:.1f} req/s, "
        f"p99 {doc['throughput']['p99_ms']:.2f} ms, "
        f"hit rate {doc['cache']['hit_rate']:.3f}, "
        f"{doc['shedding']['shed']} shed{chaos_note})"
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as e:
        print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
