#!/usr/bin/env python3
"""Validate BENCH_fault.json against schemas/BENCH_fault.schema.json.

A dependency-free subset of JSON Schema draft-07 — enough for the
fault schema (type/required/properties/additionalProperties/items/
const/minimum/$ref). CI runs this after the fault smoke; exits
non-zero on the first violation. Also re-checks the two run-level
invariants the bin asserts: reproducibility across worker counts and
a full matrix (both CDR configurations over every campaign kind).
"""

import json
import sys

SCHEMA_PATH = "schemas/BENCH_fault.schema.json"
DOC_PATH = "BENCH_fault.json"


def main() -> None:
    schema = json.load(open(SCHEMA_PATH))
    doc = json.load(open(DOC_PATH))

    def resolve(ref: str):
        node = schema
        for part in ref.lstrip("#/").split("/"):
            node = node[part]
        return node

    def check(inst, sch, path="$"):
        if "$ref" in sch:
            check(inst, resolve(sch["$ref"]), path)
        if "const" in sch:
            assert inst == sch["const"], f"{path}: {inst!r} != {sch['const']!r}"
        t = sch.get("type")
        if t == "object":
            assert isinstance(inst, dict), f"{path}: not an object"
            for r in sch.get("required", []):
                assert r in inst, f"{path}: missing required key {r!r}"
            props = sch.get("properties", {})
            ap = sch.get("additionalProperties", True)
            for k, v in inst.items():
                if k in props:
                    check(v, props[k], f"{path}.{k}")
                elif isinstance(ap, dict):
                    check(v, ap, f"{path}.{k}")
                elif ap is False:
                    raise AssertionError(f"{path}: unexpected key {k!r}")
        elif t == "array":
            assert isinstance(inst, list), f"{path}: not an array"
            for i, v in enumerate(inst):
                check(v, sch.get("items", {}), f"{path}[{i}]")
        elif t == "integer":
            assert isinstance(inst, int) and not isinstance(inst, bool), f"{path}: not an integer"
        elif t == "number":
            assert isinstance(inst, (int, float)) and not isinstance(inst, bool), f"{path}: not a number"
        elif t == "string":
            assert isinstance(inst, str), f"{path}: not a string"
        elif t == "boolean":
            assert isinstance(inst, bool), f"{path}: not a boolean"
        if "minimum" in sch:
            assert inst >= sch["minimum"], f"{path}: {inst} below minimum {sch['minimum']}"

    check(doc, schema)

    # Run-level invariants beyond per-field shape.
    assert doc["reproducibility"]["identical"] is True
    assert doc["reproducibility"]["worker_counts"] == [1, 2, 4, 8]
    cdrs = {c["cdr"] for c in doc["matrix"]}
    kinds = {c["campaign"] for c in doc["matrix"]}
    assert cdrs == {"paper_default", "rtl_equivalent"}, f"unexpected cdr set {cdrs}"
    expected_kinds = {"burst_noise", "dropouts", "supply_droop", "clock_glitches", "seu", "mixed"}
    assert kinds == expected_kinds, f"unexpected campaign set {kinds}"
    assert len(doc["matrix"]) == len(cdrs) * len(kinds), "matrix must be the full cross product"
    assert doc["fault_isolation"]["completed"] == len(doc["matrix"])

    print(
        f"BENCH_fault.json validates against {SCHEMA_PATH} "
        f"({len(doc['matrix'])} cells, workers {doc['reproducibility']['worker_counts']})"
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as e:
        print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
