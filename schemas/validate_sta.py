#!/usr/bin/env python3
"""Validate BENCH_sta.json against schemas/BENCH_sta.schema.json.

A dependency-free subset of JSON Schema draft-07 — enough for the
STA schema (type/required/properties/additionalProperties/items/
const/minimum/$ref). CI runs this after the sta smoke; exits
non-zero on the first violation. Also re-checks the run-level
invariants: all five example designs are present, every design is
timed at exactly the tt/ss/ff corners, per-design fmax is ordered
ss <= tt <= ff, and TNS is consistent with the violation count.
"""

import json
import sys

SCHEMA_PATH = "schemas/BENCH_sta.schema.json"
DOC_PATH = "BENCH_sta.json"


def main() -> None:
    schema = json.load(open(SCHEMA_PATH))
    doc = json.load(open(DOC_PATH))

    def resolve(ref: str):
        node = schema
        for part in ref.lstrip("#/").split("/"):
            node = node[part]
        return node

    def check(inst, sch, path="$"):
        if "$ref" in sch:
            check(inst, resolve(sch["$ref"]), path)
        if "const" in sch:
            assert inst == sch["const"], f"{path}: {inst!r} != {sch['const']!r}"
        t = sch.get("type")
        if t == "object":
            assert isinstance(inst, dict), f"{path}: not an object"
            for r in sch.get("required", []):
                assert r in inst, f"{path}: missing required key {r!r}"
            props = sch.get("properties", {})
            ap = sch.get("additionalProperties", True)
            for k, v in inst.items():
                if k in props:
                    check(v, props[k], f"{path}.{k}")
                elif isinstance(ap, dict):
                    check(v, ap, f"{path}.{k}")
                elif ap is False:
                    raise AssertionError(f"{path}: unexpected key {k!r}")
        elif t == "array":
            assert isinstance(inst, list), f"{path}: not an array"
            for i, v in enumerate(inst):
                check(v, sch.get("items", {}), f"{path}[{i}]")
        elif t == "integer":
            assert isinstance(inst, int) and not isinstance(inst, bool), f"{path}: not an integer"
        elif t == "number":
            assert isinstance(inst, (int, float)) and not isinstance(inst, bool), f"{path}: not a number"
        elif t == "string":
            assert isinstance(inst, str), f"{path}: not a string"
        elif t == "boolean":
            assert isinstance(inst, bool), f"{path}: not a boolean"
        if "minimum" in sch:
            assert inst >= sch["minimum"], f"{path}: {inst} below minimum {sch['minimum']}"

    check(doc, schema)

    # Run-level invariants beyond per-field shape.
    names = [d["name"] for d in doc["designs"]]
    expected = {"serializer", "deserializer", "cdr", "cdr_scan", "serdes_top"}
    assert set(names) == expected, f"unexpected design set {sorted(names)}"
    assert len(names) == len(expected), "each design appears exactly once"
    for d in doc["designs"]:
        corners = {c["corner"]: c for c in d["corners"]}
        assert set(corners) == {"tt", "ss", "ff"}, f"{d['name']}: corners {sorted(corners)}"
        ss, tt, ff = corners["ss"], corners["tt"], corners["ff"]
        assert ss["fmax_ghz"] <= tt["fmax_ghz"] <= ff["fmax_ghz"], (
            f"{d['name']}: fmax must be ordered ss <= tt <= ff, got "
            f"{ss['fmax_ghz']} / {tt['fmax_ghz']} / {ff['fmax_ghz']}"
        )
        for label, c in corners.items():
            if c["violations"] == 0:
                assert c["tns_ps"] == 0.0, f"{d['name']}/{label}: clean corner with nonzero TNS"
                assert c["wns_ps"] >= 0.0, f"{d['name']}/{label}: clean corner with negative WNS"
            else:
                assert c["tns_ps"] < 0.0, f"{d['name']}/{label}: violations but TNS >= 0"
                assert c["wns_ps"] < 0.0, f"{d['name']}/{label}: violations but WNS >= 0"
            assert c["tns_ps"] >= c["wns_ps"] * c["violations"] - 1e-6, (
                f"{d['name']}/{label}: TNS cannot be worse than violations x WNS"
            )

    print(
        f"BENCH_sta.json validates against {SCHEMA_PATH} "
        f"({len(names)} designs x 3 corners at {doc['clock_ghz']} GHz)"
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as e:
        print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
