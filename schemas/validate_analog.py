#!/usr/bin/env python3
"""Validate BENCH_analog.json against schemas/BENCH_analog.schema.json.

A dependency-free subset of JSON Schema draft-07 — enough for the
analog schema (type/required/properties/additionalProperties/items/
const/minimum/$ref). CI runs this after the analog smoke; exits
non-zero on the first violation. Also re-checks the run-level
invariants the bin asserts: both bit-identity proofs, a batch of at
least 16 points, and — on full (non-smoke) runs only, where the bin
enforces them — the >=5x headline and >=3x batched-kernel floors.
"""

import json
import sys

SCHEMA_PATH = "schemas/BENCH_analog.schema.json"
DOC_PATH = "BENCH_analog.json"


def main() -> None:
    schema = json.load(open(SCHEMA_PATH))
    doc = json.load(open(DOC_PATH))

    def resolve(ref: str):
        node = schema
        for part in ref.lstrip("#/").split("/"):
            node = node[part]
        return node

    def check(inst, sch, path="$"):
        if "$ref" in sch:
            check(inst, resolve(sch["$ref"]), path)
        if "const" in sch:
            assert inst == sch["const"], f"{path}: {inst!r} != {sch['const']!r}"
        t = sch.get("type")
        if t == "object":
            assert isinstance(inst, dict), f"{path}: not an object"
            for r in sch.get("required", []):
                assert r in inst, f"{path}: missing required key {r!r}"
            props = sch.get("properties", {})
            ap = sch.get("additionalProperties", True)
            for k, v in inst.items():
                if k in props:
                    check(v, props[k], f"{path}.{k}")
                elif isinstance(ap, dict):
                    check(v, ap, f"{path}.{k}")
                elif ap is False:
                    raise AssertionError(f"{path}: unexpected key {k!r}")
        elif t == "array":
            assert isinstance(inst, list), f"{path}: not an array"
            for i, v in enumerate(inst):
                check(v, sch.get("items", {}), f"{path}[{i}]")
        elif t == "integer":
            assert isinstance(inst, int) and not isinstance(inst, bool), f"{path}: not an integer"
        elif t == "number":
            assert isinstance(inst, (int, float)) and not isinstance(inst, bool), f"{path}: not a number"
        elif t == "string":
            assert isinstance(inst, str), f"{path}: not a string"
        elif t == "boolean":
            assert isinstance(inst, bool), f"{path}: not a boolean"
        if "minimum" in sch:
            assert inst >= sch["minimum"], f"{path}: {inst} below minimum {sch['minimum']}"

    check(doc, schema)

    # Run-level invariants beyond per-field shape.
    batched = doc["kernels"]["batched_vs_loop"]
    assert batched["bit_identical"] is True
    assert batched["points"] >= 16, "the batched kernel must run a real corner fan"
    assert doc["kernels"]["fixed_step_stamped_vs_dense"]["bit_identical"] is True
    if not doc["smoke"]:
        # Full runs assert these floors in-process; re-check the
        # recorded numbers so a stale or hand-edited report fails too.
        headline = doc["headline"]["speedup"]
        assert headline >= 5.0, f"headline speedup {headline} below the 5x floor"
        assert batched["speedup"] >= 3.0, (
            f"batched kernel speedup {batched['speedup']} below the 3x floor"
        )

    print(
        f"BENCH_analog.json validates against {SCHEMA_PATH} "
        f"(headline {doc['headline']['speedup']}x, "
        f"batched {batched['speedup']}x over {batched['points']} points)"
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as e:
        print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
