#!/usr/bin/env python3
"""Validate BENCH_profile.json against schemas/BENCH_profile.schema.json.

A dependency-free subset of JSON Schema draft-07 — enough for the
profile schema (type/required/properties/additionalProperties/items/
const/minimum/exclusiveMinimum/exclusiveMaximum/$ref/allOf). CI runs
this after the profile smoke; exits non-zero on the first violation.
"""

import json
import sys

SCHEMA_PATH = "schemas/BENCH_profile.schema.json"
DOC_PATH = "BENCH_profile.json"


def main() -> None:
    schema = json.load(open(SCHEMA_PATH))
    doc = json.load(open(DOC_PATH))

    def resolve(ref: str):
        node = schema
        for part in ref.lstrip("#/").split("/"):
            node = node[part]
        return node

    def check(inst, sch, path="$"):
        if "$ref" in sch:
            check(inst, resolve(sch["$ref"]), path)
        for sub in sch.get("allOf", []):
            check(inst, sub, path)
        if "const" in sch:
            assert inst == sch["const"], f"{path}: {inst!r} != {sch['const']!r}"
        t = sch.get("type")
        if t == "object":
            assert isinstance(inst, dict), f"{path}: not an object"
            for r in sch.get("required", []):
                assert r in inst, f"{path}: missing required key {r!r}"
            props = sch.get("properties", {})
            ap = sch.get("additionalProperties", True)
            for k, v in inst.items():
                if k in props:
                    check(v, props[k], f"{path}.{k}")
                elif isinstance(ap, dict):
                    check(v, ap, f"{path}.{k}")
                elif ap is False:
                    raise AssertionError(f"{path}: unexpected key {k!r}")
        elif t == "array":
            assert isinstance(inst, list), f"{path}: not an array"
            for i, v in enumerate(inst):
                check(v, sch.get("items", {}), f"{path}[{i}]")
        elif t == "integer":
            assert isinstance(inst, int) and not isinstance(inst, bool), f"{path}: not an integer"
        elif t == "number":
            assert isinstance(inst, (int, float)) and not isinstance(inst, bool), f"{path}: not a number"
        elif t == "string":
            assert isinstance(inst, str), f"{path}: not a string"
        elif t == "boolean":
            assert isinstance(inst, bool), f"{path}: not a boolean"
        if "minimum" in sch:
            assert inst >= sch["minimum"], f"{path}: {inst} below minimum {sch['minimum']}"
        if "exclusiveMinimum" in sch:
            assert inst > sch["exclusiveMinimum"], f"{path}: {inst} not above {sch['exclusiveMinimum']}"
        if "exclusiveMaximum" in sch:
            assert inst < sch["exclusiveMaximum"], f"{path}: {inst} not below {sch['exclusiveMaximum']}"

    check(doc, schema)
    pct = doc["overhead"]["overhead_pct"]
    print(f"BENCH_profile.json validates against {SCHEMA_PATH} (disabled overhead {pct} %)")


if __name__ == "__main__":
    try:
        main()
    except AssertionError as e:
        print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
