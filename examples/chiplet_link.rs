//! EMIB-style chiplet interconnect scenario (paper §VI-b): short-reach
//! die-to-die links with only 1–5 dB of loss, where data rates of
//! 1–4 GHz matter more than loss budget. Sweeps rate at low loss and
//! finds the maximum clean rate.
//!
//! ```sh
//! cargo run --release --example chiplet_link
//! ```

use openserdes::core::{BerTest, LinkConfig, Sweep};
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::units::Hertz;
use openserdes::phy::ChannelModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("EMIB chiplet interconnect (paper §VI-b: 1-5 dB, 1-4 GHz)\n");

    println!(
        "{:>10} {:>8} {:>12} {:>8} {:>8}",
        "rate", "loss", "bits", "errors", "verdict"
    );
    let mut max_clean_ghz: f64 = 0.0;
    for ghz in [1.0, 2.0, 3.0, 4.0] {
        for loss_db in [1.0, 5.0] {
            let mut cfg = LinkConfig::paper_default();
            cfg.data_rate = Hertz::from_ghz(ghz);
            cfg.channel = ChannelModel::emib(loss_db);
            let est = BerTest::prbs31(cfg, 16).run()?;
            if est.errors == 0 {
                max_clean_ghz = max_clean_ghz.max(ghz);
            }
            println!(
                "{:>7.1} G {:>5.0} dB {:>12} {:>8} {:>8}",
                ghz,
                loss_db,
                est.bits,
                est.errors,
                if est.errors == 0 { "PASS" } else { "FAIL" }
            );
        }
    }

    println!();
    println!("max clean rate at chiplet-class loss: {max_clean_ghz:.1} GHz");

    // Why the low-loss regime is so forgiving: the sensitivity budget.
    let pts = Sweep::new().sensitivity(
        Pvt::nominal(),
        &[Hertz::from_ghz(2.0), Hertz::from_ghz(4.0)],
    )?;
    println!();
    for p in pts {
        println!(
            "at {:.0} GHz the receiver needs {:.1} mV — an EMIB channel \
             delivers {:.0} mV",
            p.data_rate.ghz(),
            p.sensitivity.mv(),
            1800.0 * 10f64.powf(-5.0 / 20.0)
        );
    }
    Ok(())
}
