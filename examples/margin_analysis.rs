//! Margin analysis: the two plots a link designer signs off with —
//! the BER bathtub (horizontal margin at the sampler) and the mismatch
//! Monte-Carlo (vertical margin of the receiver front end). Both are
//! extensions past the paper's own evaluation, built on the same models.
//!
//! ```sh
//! cargo run --release --example margin_analysis
//! ```

use openserdes::core::{eye_width_at, LinkConfig, Sweep};
use openserdes::pdk::corner::Pvt;
use openserdes::phy::{mismatch, FrontEndConfig, RxFrontEnd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- BER bathtub at the paper's operating point -------------------
    let cfg = LinkConfig::paper_default();
    println!(
        "BER bathtub @ {} Gb/s over {} dB (PRBS-31, 50k bits/phase)\n",
        cfg.data_rate.ghz(),
        cfg.channel.attenuation_db
    );
    let curve = Sweep::new()
        .with_bits(50_000)
        .with_phases(24)
        .with_seed(7)
        .bathtub(&cfg)?;
    for p in &curve {
        let bar_len = if p.ber > 0.0 {
            ((p.ber.log10() + 6.0).max(0.0) * 8.0) as usize
        } else {
            0
        };
        println!(
            "  phase {:>5.2} UI  BER {:>8}  {}",
            p.phase_ui,
            if p.ber > 0.0 {
                format!("{:.1e}", p.ber)
            } else {
                "<2e-5".to_string()
            },
            "#".repeat(bar_len)
        );
    }
    println!(
        "\nhorizontal eye at BER 1e-3: {:.2} UI\n",
        eye_width_at(&curve, 1e-3)
    );

    // --- Mismatch Monte-Carlo of the front end ------------------------
    let pvt = Pvt::nominal();
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), pvt);
    let stats = mismatch::monte_carlo(&fe, &pvt, 2_000, 42)?;
    println!(
        "front-end mismatch Monte-Carlo ({} samples):",
        stats.samples
    );
    println!("  input-referred offset σ : {:.2} mV", stats.sigma.mv());
    println!("  p99.7 |offset|          : {:.2} mV", stats.p997.mv());
    println!("  worst sample            : {:.2} mV", stats.worst.mv());
    println!(
        "  configured guardband    : {:.0} mV — {}",
        fe.config().offset_margin.mv(),
        if stats.covered_by(fe.config().offset_margin) {
            "covers the population"
        } else {
            "INSUFFICIENT"
        }
    );
    Ok(())
}
