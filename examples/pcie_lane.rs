//! PCIe-lane scenario (paper §VI-b): the SerDes serving PCIe 1.x–4.0
//! lanes, whose per-lane rates span 250 Mb/s … 2 Gb/s, over
//! progressively harder board channels. Sweeps every generation and
//! reports margin and BER.
//!
//! ```sh
//! cargo run --release --example pcie_lane
//! ```

use openserdes::core::{BerTest, LinkConfig};
use openserdes::pdk::units::Hertz;
use openserdes::phy::ChannelModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("PCIe lane scenarios (paper §VI-b: 250 Mb/s … 2 Gb/s per lane)\n");
    let generations = [
        ("PCIe 1.x", 0.25, 18.0),
        ("PCIe 2.x", 0.5, 20.0),
        ("PCIe 3.x", 1.0, 24.0),
        ("PCIe 4.0", 2.0, 28.0),
    ];
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "gen", "rate", "loss", "bits", "errors", "verdict"
    );
    for (name, ghz, loss_db) in generations {
        let mut cfg = LinkConfig::paper_default();
        cfg.data_rate = Hertz::from_ghz(ghz);
        cfg.channel = ChannelModel::pcie(loss_db);
        let test = BerTest::prbs31(cfg, 24);
        let est = test.run()?;
        println!(
            "{:<10} {:>7.2} Gb/s {:>7.0} dB {:>12} {:>10} {:>8}",
            name,
            ghz,
            loss_db,
            est.bits,
            est.errors,
            if est.errors == 0 { "PASS" } else { "FAIL" }
        );
    }
    println!();
    println!("All four generations fit inside the SerDes's loss budget —");
    println!("the application window the paper claims in §VI-b.");
    Ok(())
}
