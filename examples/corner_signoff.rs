//! Corner signoff: the link and the flow-timed digital blocks across
//! the five process corners with supply and temperature excursions —
//! the signoff matrix a real tapeout of the paper's SerDes would run.
//!
//! ```sh
//! cargo run --release --example corner_signoff
//! ```

use openserdes::core::sweep::parallel;
use openserdes::core::{cdr_design, BerTest, LinkConfig, Sweep};
use openserdes::flow::{Flow, FlowConfig};
use openserdes::pdk::corner::{ProcessCorner, Pvt};
use openserdes::pdk::units::Hertz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("corner signoff @ 2 Gb/s (link: 30 dB channel; flow: CDR block)\n");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>10}",
        "corner", "sens (mV)", "max loss (dB)", "link BER", "CDR fmax"
    );
    let corners = [
        Pvt::nominal(),
        Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0),
        Pvt::new(ProcessCorner::FastFast, 1.98, -40.0),
        Pvt::new(ProcessCorner::SlowFast, 1.8, 25.0),
        Pvt::new(ProcessCorner::FastSlow, 1.8, 25.0),
    ];
    // The corners are independent, so the whole signoff matrix fans out
    // over the deterministic parallel map — rows come back in corner
    // order no matter which worker finishes first. Errors are carried
    // as strings because `Box<dyn Error>` is not `Send`.
    let rows = parallel::map(&corners, |_, &pvt| -> Result<String, String> {
        let sweep = Sweep::new()
            .sensitivity(pvt, &[Hertz::from_ghz(2.0)])
            .map_err(|e| e.to_string())?[0];
        let mut link = LinkConfig::paper_default();
        link.pvt = pvt;
        link.channel.attenuation_db = 30.0;
        let ber = BerTest::prbs31(link, 12).run().map_err(|e| e.to_string())?;
        let mut flow_cfg = FlowConfig::at_clock(Hertz::from_ghz(2.0));
        flow_cfg.pvt = pvt;
        flow_cfg.anneal_iterations = 2_000;
        let flow = Flow::new()
            .with_config(flow_cfg)
            .run(&cdr_design(5))
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "{:<16} {:>12.1} {:>14.1} {:>12} {:>7.2} GHz",
            pvt.to_string(),
            sweep.sensitivity.mv(),
            sweep.max_loss_db,
            if ber.errors == 0 {
                "clean".to_string()
            } else {
                format!("{:.1e}", ber.ber())
            },
            flow.timing.fmax.ghz()
        ))
    });
    for row in rows {
        println!("{}", row?);
    }
    println!();
    println!("Slow silicon loses sensitivity and loss budget; the identical RTL");
    println!("re-times at each corner — the paper's process-portability thesis.");
    Ok(())
}
