//! The "automated SerDes design" flow of the paper's §IV and Fig. 12:
//! push the serializer, deserializer and CDR RTL through the
//! OpenLANE-substitute flow (synthesis → floorplan → placement → CTS →
//! routing → STA → power) and print each stage's report.
//!
//! Re-running this at a different PVT point is the paper's
//! process-portability claim in action: nothing about the RTL changes.
//!
//! ```sh
//! cargo run --release --example rtl_to_gds
//! ```

use openserdes::core::{cdr_design, deserializer_design, serializer_design};
use openserdes::flow::{Flow, FlowConfig};
use openserdes::pdk::corner::Pvt;
use openserdes::pdk::units::Hertz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = FlowConfig::at_clock(Hertz::from_ghz(2.0));
    cfg.anneal_iterations = 10_000;

    for (name, design) in [
        ("serializer", serializer_design()),
        ("deserializer", deserializer_design()),
        ("cdr", cdr_design(5)),
    ] {
        println!("=== {name}: RTL -> layout at {} ===", cfg.pvt);
        let result = Flow::new().with_config(cfg.clone()).run(&design)?;
        println!("{result}");
        println!(
            "    {} cells, {:.0} µm², fmax {:.2} GHz, hold wns {:.0} ps, {:.2} mW",
            result.stats.cell_count,
            result.area().value(),
            result.timing.fmax.ghz(),
            result.timing.hold_wns.ps(),
            result.total_power().mw()
        );
        // The final hand-off: a DEF layout (the paper's GDS step).
        let library = openserdes::pdk::library::Library::sky130(cfg.pvt);
        let def = openserdes::flow::to_def(
            &result.synth.netlist,
            &library,
            &result.placement,
            &result.floorplan,
        );
        let path = std::env::temp_dir().join(format!("openserdes_{name}.def"));
        std::fs::write(&path, &def)?;
        println!(
            "    DEF written: {} ({} lines)\n",
            path.display(),
            def.lines().count()
        );
    }

    // Process portability: the same RTL retargets by re-characterizing.
    println!("=== process portability: the CDR across corners ===");
    for pvt in [Pvt::nominal(), Pvt::worst_case(), Pvt::best_case()] {
        let mut corner_cfg = cfg.clone();
        corner_cfg.pvt = pvt;
        let r = Flow::new().with_config(corner_cfg).run(&cdr_design(5))?;
        println!(
            "  {:<16} fmax {:>6.2} GHz   power {:>7.3} mW   area {:>7.0} µm²",
            pvt.to_string(),
            r.timing.fmax.ghz(),
            r.total_power().mw(),
            r.area().value()
        );
    }
    Ok(())
}
