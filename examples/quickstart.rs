//! Quickstart: run the paper's headline link — 8×32-bit frames at
//! 2 Gb/s, PRBS-31-like payloads, over the 34 dB evaluation channel —
//! and print a link report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use openserdes::core::{LinkConfig, PrbsGenerator, PrbsOrder, LANES};
use openserdes::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LinkConfig::paper_default();
    println!(
        "OpenSerDes quickstart: {} Gb/s over a {} dB channel at {}",
        config.data_rate.ghz(),
        config.channel.attenuation_db,
        config.pvt
    );

    // Build 64 frames of PRBS-31 payload (8 lanes x 32 bits each).
    let mut prbs = PrbsGenerator::new(PrbsOrder::Prbs31);
    let frames: Vec<[u32; LANES]> = (0..64)
        .map(|_| {
            let mut frame = [0u32; LANES];
            for word in frame.iter_mut() {
                for bit in 0..32 {
                    if prbs.next_bit() {
                        *word |= 1 << bit;
                    }
                }
            }
            frame
        })
        .collect();

    let mut session = Session::new()
        .with_link_config(config)
        .with_seed(2021)
        .with_telemetry(true);
    let report = session.run_link(&frames)?;

    println!();
    println!("frames sent       : {}", report.frames_sent);
    println!("bits compared     : {}", report.bits);
    println!("bit errors        : {}", report.bit_errors);
    println!("BER               : {:.2e}", report.ber().max(1e-12));
    println!("CDR locked        : {}", report.cdr_locked);
    println!("CDR phase updates : {}", report.cdr_phase_updates);
    println!(
        "verdict           : {}",
        if report.error_free() {
            "error-free (the paper's zero-BER claim reproduces)"
        } else {
            "errors observed"
        }
    );

    // The same run, as the telemetry layer saw it.
    println!("\ntelemetry:\n{}", session.telemetry().to_tree_string());
    Ok(())
}
