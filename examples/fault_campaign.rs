//! Fault campaign: replay a deterministic schedule of lab-style faults
//! — noise bursts, signal dropouts, supply droop, sampling-clock
//! glitches and single-event upsets — against the paper link, and
//! compare how the full paper CDR (glitch filter + vote hysteresis)
//! and the bare RTL decision logic degrade under the *same* schedule.
//!
//! Every schedule is seeded and serializable, so a campaign re-runs
//! bit-identically on any machine — the whole standard matrix lives in
//! `cargo run --release -p openserdes-bench --bin fault`.
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```

use openserdes::core::{CdrConfig, LinkConfig, PrbsGenerator, PrbsOrder, FRAME_BITS, LANES};
use openserdes::fault::{campaign, CampaignKind, FaultEvent, FaultKind, FaultSchedule};
use openserdes::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 frames of PRBS-31 payload (8 lanes x 32 bits each).
    let mut prbs = PrbsGenerator::new(PrbsOrder::Prbs31);
    let frames: Vec<[u32; LANES]> = (0..40)
        .map(|_| {
            let mut frame = [0u32; LANES];
            for word in frame.iter_mut() {
                for bit in 0..32 {
                    if prbs.next_bit() {
                        *word |= 1 << bit;
                    }
                }
            }
            frame
        })
        .collect();
    let uis = frames.len() as u64 * FRAME_BITS as u64;

    // A hand-written schedule: one 48-UI dropout, then an SEU that
    // flips a bit of the CDR's phase register 400 UIs later.
    let schedule = FaultSchedule::new(7)
        .with_event(FaultEvent {
            at_ui: uis / 2,
            kind: FaultKind::Dropout {
                duration_ui: 48,
                level: false,
            },
        })
        .with_event(FaultEvent {
            at_ui: uis / 2 + 400,
            kind: FaultKind::SeuCdrPhase { bit: 1 },
        });

    let mut session = Session::new().with_seed(2021);
    let report = session.run_link_with_faults(&frames, &schedule)?;
    println!("hand-written schedule ({} events):", schedule.len());
    println!("  bit errors     : {}", report.link.bit_errors);
    println!(
        "  frames correct : {}/{}",
        report.link.frames_correct, report.link.frames_sent
    );
    println!("  lock losses    : {}", report.lock_losses);
    println!(
        "  re-lock times  : {} episodes closed, worst {} UIs",
        report.relock_times_ui.len(),
        report.relock_times_ui.iter().max().copied().unwrap_or(0)
    );

    // A standard campaign: burst noise, replayed against both CDR
    // feature sets. Identical schedule, identical channel and seed —
    // the delta is what the glitch filter and hysteresis buy.
    let burst = campaign(CampaignKind::BurstNoise, 21, uis);
    let mut rtl_link = LinkConfig::paper_default();
    rtl_link.cdr = CdrConfig::rtl_equivalent(rtl_link.cdr.oversampling);

    let paper = session.run_link_with_faults(&frames, &burst)?;
    let mut rtl_session = Session::new().with_link_config(rtl_link).with_seed(2021);
    let rtl = rtl_session.run_link_with_faults(&frames, &burst)?;

    println!("\nburst-noise campaign ({} strikes):", burst.len());
    println!(
        "  paper_default  : {} bit errors, {} lock losses",
        paper.link.bit_errors, paper.lock_losses
    );
    println!(
        "  rtl_equivalent : {} bit errors, {} lock losses",
        rtl.link.bit_errors, rtl.lock_losses
    );
    println!(
        "  verdict        : the paper CDR absorbs {} more errors",
        rtl.link.bit_errors.saturating_sub(paper.link.bit_errors)
    );

    // Schedules serialize to JSON for archiving and replay elsewhere.
    let json = burst.to_json();
    let replayed = FaultSchedule::from_json(&json)?;
    assert_eq!(replayed.events(), burst.events());
    println!("\nschedule round-trips through JSON ({} bytes)", json.len());
    Ok(())
}
