//! TX feed-forward equalization over band-limited channels — the TX
//! equalization block of the paper's generic architecture (§III,
//! Fig. 3), provided here as an extension: the paper's own design omits
//! it because its evaluation channels are flat, but longer PCIe-class
//! traces are not.
//!
//! ```sh
//! cargo run --release --example equalized_link
//! ```

use openserdes::core::{PrbsGenerator, PrbsOrder};
use openserdes::pdk::units::Hertz;
use openserdes::phy::{ChannelModel, TxFfe};

fn main() {
    println!("2-tap TX FFE over band-limited channels, 2 Gb/s\n");
    let bits = PrbsGenerator::new(PrbsOrder::Prbs15).take_bits(400);

    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>8}",
        "channel pole", "eye w/o FFE", "post tap", "eye w/ FFE", "gain"
    );
    for pole_mhz in [2_000.0, 900.0, 500.0, 350.0, 250.0] {
        let mut ch = ChannelModel::ideal();
        ch.bandwidth = Hertz::from_mhz(pole_mhz);
        ch.attenuation_db = 6.0;
        // Analytic optimum for a single-pole channel:
        // a = e^(−T/τ), post = a / (1 + a).
        let tau = 1.0 / (2.0 * std::f64::consts::PI * ch.bandwidth.value());
        let a = (-500e-12 / tau).exp();
        let post = a / (1.0 + a);
        let ffe = TxFfe::two_tap(post);
        let (without, with) = ffe.eye_improvement(&bits, 500e-12, 1.8, &ch);
        println!(
            "{:>11.0} MHz {:>10.0} mV {:>12.2} {:>10.0} mV {:>7.2}x",
            pole_mhz,
            without * 1e3,
            post,
            with * 1e3,
            with / without.max(1e-9)
        );
    }
    println!();
    println!("The optimal post-cursor grows as the channel pole drops below the");
    println!("bit rate; on wideband channels de-emphasis only costs swing —");
    println!("which is why the paper's flat-channel design can omit the FFE.");
}
