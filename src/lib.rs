//! # openserdes
//!
//! A from-scratch Rust reproduction of *"OpenSerDes: An Open Source
//! Process-Portable All-Digital Serial Link"* (DATE 2021): the first
//! open-source all-digital SerDes, originally built on the Skywater
//! 130 nm open PDK with the OpenLANE RTL→GDS flow.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | layer | crate | stands in for |
//! |-------|-------|----------------|
//! | [`pdk`] | `openserdes-pdk` | the sky130 PDK (devices, cells, corners) |
//! | [`netlist`] | `openserdes-netlist` | yosys/OpenLANE netlists |
//! | [`digital`] | `openserdes-digital` | Verilog event/cycle simulation |
//! | [`flow`] | `openserdes-flow` | OpenLANE (synth, P&R, STA, power) |
//! | [`analog`] | `openserdes-analog` | SPICE/Virtuoso transients |
//! | [`phy`] | `openserdes-phy` | driver, channel, RX front end |
//! | [`core`] | `openserdes-core` | the SerDes itself |
//! | [`lint`] | `openserdes-lint` | DRC/ERC signoff (rule catalog in DESIGN.md §12) |
//! | [`telemetry`] | `openserdes-telemetry` | spans/counters/histograms over every engine |
//! | [`fault`] | `openserdes-fault` | lab fault campaigns (noise bursts, dropouts, SEUs) |
//! | [`serve`] | `openserdes-serve` | a characterization farm's job front door |
//!
//! ## Quickstart
//!
//! ```
//! use openserdes::Session;
//!
//! // The paper's headline operating point: 2 Gb/s over a 34 dB channel.
//! let mut session = Session::new().with_seed(42);
//! let frames = [[0xDEAD_BEEF_u32, 1, 2, 3, 4, 5, 6, 7]; 4];
//! let report = session.run_link(&frames)?;
//! assert!(report.error_free());
//! # Ok::<(), openserdes::Error>(())
//! ```
//!
//! See `examples/` for runnable scenarios (PCIe lanes, EMIB chiplet
//! links, pushing the RTL through the flow) and `crates/bench` for the
//! binaries regenerating every figure of the paper.

#![warn(missing_docs)]

pub use openserdes_analog as analog;
pub use openserdes_core as core;
pub use openserdes_digital as digital;
pub use openserdes_fault as fault;
pub use openserdes_flow as flow;
pub use openserdes_lint as lint;
pub use openserdes_netlist as netlist;
pub use openserdes_pdk as pdk;
pub use openserdes_phy as phy;
pub use openserdes_serve as serve;
pub use openserdes_telemetry as telemetry;

pub use openserdes_core::error::Error;
pub use openserdes_core::job::{Request, Response};
pub use openserdes_core::session::Session;
