//! Packed bitstreams for the link's hot path.
//!
//! Monte-Carlo link scoring spends its time comparing and shuttling
//! multi-million-bit streams. A `Vec<bool>` burns one byte and one
//! branch per bit; [`BitVec`] packs 64 bits per `u64` word so that
//! error counting collapses to XOR + popcount and frame I/O moves
//! 32-bit lane words at a time.
//!
//! Layout: bit `i` lives in word `i / 64` at bit position `i % 64`
//! (little-endian bit order, matching the serializer's LSB-first lane
//! order — `frame_to_bits` index `i` is `BitVec` index `i`). All bits at
//! positions `>= len` in the last word are kept zero, which makes
//! word-level equality, popcounts and windowed reads safe without
//! masking at every call site.

/// A growable bit vector packed 64 bits per word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bitstream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitstream with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (the last word's unused high bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("just ensured") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends the `nbits` least-significant bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64`.
    pub fn push_word(&mut self, value: u64, nbits: usize) {
        assert!(nbits <= 64, "at most one word per push");
        if nbits == 0 {
            return;
        }
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        let s = self.len % 64;
        if s == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("non-empty at s > 0") |= value << s;
            if s + nbits > 64 {
                self.words.push(value >> (64 - s));
            }
        }
        self.len += nbits;
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit {index} of {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(index < self.len, "bit {index} of {}", self.len);
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn toggle(&mut self, index: usize) {
        assert!(index < self.len, "bit {index} of {}", self.len);
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// Reads 64 bits starting at bit `offset` (bits beyond `len` read as
    /// zero), packed LSB-first into the returned word.
    pub fn window64(&self, offset: usize) -> u64 {
        let w = offset / 64;
        let s = offset % 64;
        if w >= self.words.len() {
            return 0;
        }
        let mut out = self.words[w] >> s;
        if s > 0 && w + 1 < self.words.len() {
            out |= self.words[w + 1] << (64 - s);
        }
        out
    }

    /// Reads 32 bits starting at bit `offset` (bits beyond `len` read as
    /// zero).
    pub fn window32(&self, offset: usize) -> u32 {
        self.window64(offset) as u32
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Counts mismatching bits between `self[self_offset ..
    /// self_offset + bits]` and `other[other_offset .. other_offset +
    /// bits]` — XOR + popcount, 64 bits per step.
    ///
    /// # Panics
    ///
    /// Panics if either range runs past its stream.
    pub fn xor_errors(
        &self,
        self_offset: usize,
        other: &BitVec,
        other_offset: usize,
        bits: usize,
    ) -> u64 {
        assert!(self_offset + bits <= self.len, "self range out of bounds");
        assert!(
            other_offset + bits <= other.len,
            "other range out of bounds"
        );
        let mut errors = 0u64;
        let mut done = 0usize;
        while done < bits {
            let chunk = (bits - done).min(64);
            let mut x = self.window64(self_offset + done) ^ other.window64(other_offset + done);
            if chunk < 64 {
                x &= (1u64 << chunk) - 1;
            }
            errors += x.count_ones() as u64;
            done += chunk;
        }
        errors
    }

    /// Builds a packed stream from a slice of bools.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bv = Self::with_capacity(bits.len());
        for chunk in bits.chunks(64) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << i;
            }
            bv.push_word(w, chunk.len());
        }
        bv
    }

    /// Unpacks into a slice of bools (the slow interchange format — for
    /// tests and the non-hot APIs).
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Iterates the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut bv = BitVec::with_capacity(iter.size_hint().0);
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let mut bv = BitVec::new();
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 200);
        assert!(!bv.is_empty());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
        assert_eq!(bv.to_bools(), pattern);
    }

    #[test]
    fn from_bools_matches_pushes() {
        let pattern: Vec<bool> = (0..131).map(|i| i % 5 < 2).collect();
        let a = BitVec::from_bools(&pattern);
        let b: BitVec = pattern.iter().copied().collect();
        assert_eq!(a, b);
        assert_eq!(
            a.count_ones(),
            pattern.iter().filter(|&&x| x).count() as u64
        );
    }

    #[test]
    fn push_word_crosses_word_boundaries() {
        let mut bv = BitVec::new();
        bv.push_word(0b1011, 4);
        bv.push_word(u64::MAX, 64); // straddles the first word boundary
        bv.push_word(0b10, 3);
        assert_eq!(bv.len(), 71);
        let mut expect = vec![true, true, false, true];
        expect.extend(std::iter::repeat_n(true, 64));
        expect.extend([false, true, false]);
        assert_eq!(bv.to_bools(), expect);
    }

    #[test]
    fn push_word_masks_high_bits() {
        let mut bv = BitVec::new();
        bv.push_word(u64::MAX, 3);
        assert_eq!(bv.len(), 3);
        assert_eq!(bv.count_ones(), 3);
        assert_eq!(bv.words()[0], 0b111, "tail bits must stay zero");
    }

    #[test]
    fn window_reads_at_odd_offsets() {
        let pattern: Vec<bool> = (0..300).map(|i| (i * 17 + 3) % 5 == 0).collect();
        let bv = BitVec::from_bools(&pattern);
        for off in [0usize, 1, 31, 63, 64, 65, 100, 250] {
            let w = bv.window64(off);
            for j in 0..64 {
                let expect = pattern.get(off + j).copied().unwrap_or(false);
                assert_eq!(w >> j & 1 == 1, expect, "offset {off} bit {j}");
            }
            assert_eq!(bv.window32(off), bv.window64(off) as u32);
        }
    }

    #[test]
    fn xor_errors_counts_mismatches_at_offsets() {
        let a: Vec<bool> = (0..500).map(|i| i % 2 == 0).collect();
        let mut b = a.clone();
        // 7 mismatches within [100, 400).
        for &i in &[100usize, 163, 200, 264, 300, 363, 399] {
            b[i] = !b[i];
        }
        let pa = BitVec::from_bools(&a);
        let pb = BitVec::from_bools(&b);
        assert_eq!(pa.xor_errors(100, &pb, 100, 300), 7);
        assert_eq!(pa.xor_errors(0, &pb, 0, 100), 0);
        // Shifted self-comparison: a vs a lagged by 1 differs everywhere
        // (alternating pattern).
        assert_eq!(pa.xor_errors(1, &pa, 0, 400), 400);
        // Equal ranges across word boundaries.
        assert_eq!(pa.xor_errors(3, &pa, 3, 497), 0);
    }

    #[test]
    fn set_and_toggle() {
        let mut bv = BitVec::from_bools(&[false; 70]);
        bv.set(69, true);
        bv.toggle(0);
        bv.toggle(64);
        assert_eq!(bv.count_ones(), 3);
        bv.toggle(64);
        bv.set(69, false);
        assert_eq!(bv.count_ones(), 1);
        assert!(bv.get(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn xor_errors_rejects_overrun() {
        let a = BitVec::from_bools(&[true; 10]);
        let _ = a.xor_errors(5, &a, 0, 6);
    }

    #[test]
    fn equality_ignores_capacity_not_content() {
        let mut a = BitVec::with_capacity(1000);
        a.extend([true, false, true]);
        let b = BitVec::from_bools(&[true, false, true]);
        assert_eq!(a, b);
        let c = BitVec::from_bools(&[true, false, false]);
        assert_ne!(a, c);
    }
}
