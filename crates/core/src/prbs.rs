//! PRBS pattern generation and checking.
//!
//! The paper evaluates the link with PRBS-31 stimulus (Fig. 8). This
//! module provides the standard ITU-T PRBS polynomials as Fibonacci
//! LFSRs plus a self-synchronizing checker for BER measurement on
//! recovered data with unknown alignment.

use std::fmt;

/// Standard PRBS polynomial orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrbsOrder {
    /// x⁷ + x⁶ + 1 (period 127).
    Prbs7,
    /// x¹⁵ + x¹⁴ + 1 (period 32 767).
    Prbs15,
    /// x²³ + x¹⁸ + 1 (period 8 388 607).
    Prbs23,
    /// x³¹ + x²⁸ + 1 (period 2³¹ − 1) — the paper's stimulus.
    Prbs31,
}

impl PrbsOrder {
    /// The register length.
    pub fn order(self) -> u32 {
        match self {
            PrbsOrder::Prbs7 => 7,
            PrbsOrder::Prbs15 => 15,
            PrbsOrder::Prbs23 => 23,
            PrbsOrder::Prbs31 => 31,
        }
    }

    /// Feedback tap (the second tap besides the MSB), 1-indexed.
    fn tap(self) -> u32 {
        match self {
            PrbsOrder::Prbs7 => 6,
            PrbsOrder::Prbs15 => 14,
            PrbsOrder::Prbs23 => 18,
            PrbsOrder::Prbs31 => 28,
        }
    }

    /// Sequence period, `2^order − 1`.
    pub fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }
}

impl fmt::Display for PrbsOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PRBS-{}", self.order())
    }
}

/// A Fibonacci-form PRBS generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrbsGenerator {
    order: PrbsOrder,
    state: u32,
}

impl PrbsGenerator {
    /// Creates a generator seeded with all-ones (the conventional seed),
    /// warmed up past the seed's degenerate prefix (an all-ones Fibonacci
    /// LFSR emits ~`order` zeros before the feedback mixes).
    pub fn new(order: PrbsOrder) -> Self {
        let mut g = Self {
            order,
            state: (1u32 << order.order()) - 1,
        };
        for _ in 0..4 * order.order() {
            let _ = g.next_bit();
        }
        g
    }

    /// Creates a generator with an explicit non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the LFSR would lock up) or wider than
    /// the register.
    pub fn with_seed(order: PrbsOrder, seed: u32) -> Self {
        assert!(seed != 0, "LFSR seed must be non-zero");
        assert!(
            seed < (1u32 << order.order()) || order.order() == 31,
            "seed wider than the register"
        );
        Self { order, state: seed }
    }

    /// The pattern order.
    pub fn order(&self) -> PrbsOrder {
        self.order
    }

    /// Produces the next bit.
    pub fn next_bit(&mut self) -> bool {
        let n = self.order.order();
        let fb = ((self.state >> (n - 1)) ^ (self.state >> (self.order.tap() - 1))) & 1;
        self.state = ((self.state << 1) | fb) & (((1u64 << n) - 1) as u32);
        fb == 1
    }

    /// Produces `n` bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Produces `n` bits as a packed bitstream (the hot-path variant of
    /// [`Self::take_bits`]: one word write per 64 bits).
    pub fn take_bitvec(&mut self, n: usize) -> crate::bitstream::BitVec {
        let mut bv = crate::bitstream::BitVec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(64);
            let mut word = 0u64;
            for i in 0..chunk {
                word |= (self.next_bit() as u64) << i;
            }
            bv.push_word(word, chunk);
            remaining -= chunk;
        }
        bv
    }
}

impl Iterator for PrbsGenerator {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

/// A self-synchronizing PRBS checker.
///
/// Feeds received bits through the same polynomial in self-synchronizing
/// form: after `order` clean bits the checker locks onto the sequence at
/// any alignment, and every later mismatch counts one error.
#[derive(Debug, Clone)]
pub struct PrbsChecker {
    order: PrbsOrder,
    history: u32,
    primed: u32,
    bits: u64,
    errors: u64,
}

impl PrbsChecker {
    /// Creates an unsynchronized checker.
    pub fn new(order: PrbsOrder) -> Self {
        Self {
            order,
            history: 0,
            primed: 0,
            bits: 0,
            errors: 0,
        }
    }

    /// Feeds one received bit; returns `Some(error)` once synchronized,
    /// `None` while still priming.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        let n = self.order.order();
        let result = if self.primed >= n {
            let predicted =
                ((self.history >> (n - 1)) ^ (self.history >> (self.order.tap() - 1))) & 1 == 1;
            let err = predicted != bit;
            self.bits += 1;
            if err {
                self.errors += 1;
            }
            Some(err)
        } else {
            self.primed += 1;
            None
        };
        self.history = ((self.history << 1) | bit as u32) & (((1u64 << n) - 1) as u32);
        result
    }

    /// Feeds a slice of bits.
    pub fn push_all(&mut self, bits: &[bool]) {
        for &b in bits {
            let _ = self.push(b);
        }
    }

    /// Bits checked since synchronization.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Errors counted since synchronization.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The measured bit-error ratio.
    pub fn ber(&self) -> f64 {
        self.errors as f64 / self.bits.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs7_has_full_period() {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs7);
        let first: Vec<bool> = g.take_bits(127);
        let second: Vec<bool> = g.take_bits(127);
        assert_eq!(first, second, "period must be 127");
        // No shorter period: shifting by less than 127 never matches.
        let doubled: Vec<bool> = first.iter().chain(&first).copied().collect();
        for p in [1usize, 7, 63, 126] {
            assert_ne!(doubled[p..p + 127], first[..], "period divides {p}?");
        }
        // Balanced: 64 ones, 63 zeros in one period.
        let ones = first.iter().filter(|&&b| b).count();
        assert_eq!(ones, 64);
    }

    #[test]
    fn prbs15_balance() {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs15);
        let period = PrbsOrder::Prbs15.period() as usize;
        let bits = g.take_bits(period);
        let ones = bits.iter().filter(|&&b| b).count();
        assert_eq!(ones as u64, PrbsOrder::Prbs15.period().div_ceil(2));
        // Periodicity.
        let again = g.take_bits(16);
        assert_eq!(again[..], bits[..16]);
    }

    #[test]
    fn prbs31_looks_random() {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs31);
        let bits = g.take_bits(100_000);
        let ones = bits.iter().filter(|&&b| b).count();
        // Roughly balanced.
        assert!((48_000..52_000).contains(&ones), "ones = {ones}");
        // No runs longer than the register width.
        let mut run = 0usize;
        let mut max_run = 0usize;
        let mut prev = !bits[0];
        for &b in &bits {
            if b == prev {
                run += 1;
            } else {
                run = 1;
                prev = b;
            }
            max_run = max_run.max(run);
        }
        assert!(max_run <= 31, "max run = {max_run}");
    }

    #[test]
    fn checker_syncs_on_clean_stream_any_offset() {
        for offset in [0usize, 1, 17, 100] {
            let mut g = PrbsGenerator::new(PrbsOrder::Prbs31);
            let bits = g.take_bits(2_000 + offset);
            let mut c = PrbsChecker::new(PrbsOrder::Prbs31);
            c.push_all(&bits[offset..]);
            assert_eq!(c.errors(), 0, "offset {offset}");
            assert!(c.bits() > 1_900);
        }
    }

    #[test]
    fn checker_counts_injected_errors() {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs15);
        let mut bits = g.take_bits(5_000);
        // Flip isolated bits well after sync; each flip disturbs the
        // checker's predicted bit once when it is compared, and again as
        // it corrupts the history — standard self-sync error
        // multiplication by the number of taps (2 here) plus the direct
        // mismatch.
        for &i in &[1_000usize, 2_000, 3_000] {
            bits[i] = !bits[i];
        }
        let mut c = PrbsChecker::new(PrbsOrder::Prbs15);
        c.push_all(&bits);
        // 3 flips × (1 direct + 2 tap hits) = 9 errors.
        assert_eq!(c.errors(), 9);
    }

    #[test]
    fn checker_reports_garbage_as_errors() {
        let mut c = PrbsChecker::new(PrbsOrder::Prbs7);
        let junk: Vec<bool> = (0..1_000).map(|i| i % 3 == 0).collect();
        c.push_all(&junk);
        assert!(c.ber() > 0.2, "ber = {}", c.ber());
    }

    #[test]
    fn seeded_generators_differ_then_align() {
        let mut a = PrbsGenerator::with_seed(PrbsOrder::Prbs7, 1);
        let mut b = PrbsGenerator::with_seed(PrbsOrder::Prbs7, 0x55);
        let bits_a = a.take_bits(127);
        let bits_b = b.take_bits(127);
        assert_ne!(bits_a, bits_b, "different phase");
        // Same sequence up to rotation: concatenation contains the other.
        let doubled: Vec<bool> = bits_a.iter().chain(&bits_a).copied().collect();
        let found = (0..127).any(|s| doubled[s..s + 127] == bits_b[..]);
        assert!(found, "same cycle, rotated");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        let _ = PrbsGenerator::with_seed(PrbsOrder::Prbs31, 0);
    }

    #[test]
    fn take_bitvec_matches_take_bits() {
        for n in [0usize, 1, 63, 64, 65, 1_000] {
            let mut a = PrbsGenerator::new(PrbsOrder::Prbs15);
            let mut b = PrbsGenerator::new(PrbsOrder::Prbs15);
            assert_eq!(a.take_bitvec(n).to_bools(), b.take_bits(n), "n = {n}");
            // Generators stay in lockstep afterwards.
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn iterator_interface() {
        let g = PrbsGenerator::new(PrbsOrder::Prbs7);
        let v: Vec<bool> = g.take(10).collect();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn display_names() {
        assert_eq!(PrbsOrder::Prbs31.to_string(), "PRBS-31");
        assert_eq!(PrbsOrder::Prbs31.period(), 2_147_483_647);
    }
}
