//! Minimal dependency-free JSON: a value tree, a recursive-descent
//! parser, and the canonical-encoding helpers the serializable job API
//! ([`crate::job`]) and the `openserdes-serve` wire protocol share.
//!
//! The encoding contract is *canonical*: object fields are written in a
//! fixed, code-defined order with no whitespace, `f64` uses `{:?}`
//! (Rust's shortest exact round-trip formatting) and `u64` is written
//! in full — so encoding the same value twice yields byte-identical
//! text, and `encode(decode(encode(x))) == encode(x)` byte-for-byte.
//! That property is what makes content-addressed caching exact:
//! everything downstream of a request is deterministic, so identical
//! canonical bytes imply identical results.
//!
//! Numbers keep their raw text when parsed (a detour through `f64`
//! would truncate `u64` seeds above 2^53). Non-finite floats have no
//! JSON spelling; [`push_f64`] writes them as the quoted strings
//! `"inf"`, `"-inf"` and `"nan"`, and [`Json::as_f64`] accepts those
//! spellings back.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (exactness above 2^53).
    Num(String),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object's fields, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(format!("{what}: expected object")),
        }
    }

    /// The array's items, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected array")),
        }
    }

    /// The string payload, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    /// The boolean payload, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected bool")),
        }
    }

    /// The number as a `u64`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a number or does not fit a `u64`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: `{raw}` is not a u64")),
            _ => Err(format!("{what}: expected number")),
        }
    }

    /// The number as a `usize`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a number or does not fit a `usize`.
    pub fn as_usize(&self, what: &str) -> Result<usize, String> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: `{raw}` is not a usize")),
            _ => Err(format!("{what}: expected number")),
        }
    }

    /// The number as a `u32`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a number or does not fit a `u32`.
    pub fn as_u32(&self, what: &str) -> Result<u32, String> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: `{raw}` is not a u32")),
            _ => Err(format!("{what}: expected number")),
        }
    }

    /// The number as an `i32`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a number or does not fit an `i32`.
    pub fn as_i32(&self, what: &str) -> Result<i32, String> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: `{raw}` is not an i32")),
            _ => Err(format!("{what}: expected number")),
        }
    }

    /// The number as an `f64`. Also accepts the canonical non-finite
    /// spellings `"inf"`, `"-inf"` and `"nan"` (see [`push_f64`]).
    ///
    /// # Errors
    ///
    /// When the value is neither a number nor a non-finite spelling.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: `{raw}` is not a number")),
            Json::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err(format!("{what}: expected number")),
            },
            _ => Err(format!("{what}: expected number")),
        }
    }
}

/// Looks up `key` in an object's field list.
///
/// # Errors
///
/// When the field is absent.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

/// Parses one JSON document (with nothing but whitespace after it).
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Appends a JSON string literal (quotes + escapes) for `s`.
pub fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the canonical encoding of an `f64`: `{:?}` (shortest exact
/// round-trip) for finite values, the quoted strings `"inf"` / `"-inf"`
/// / `"nan"` otherwise. [`Json::as_f64`] reverses both forms; finite
/// values survive bit-exactly.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim — input came from a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if raw.parse::<f64>().is_err() {
            return Err(self.err(&format!("`{raw}` is not a number")));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).expect("parses");
        let obj = v.as_obj("doc").expect("object");
        let arr = get(obj, "a").expect("a").as_arr("a").expect("array");
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_u64("n").expect("u64"), 1);
        assert!((arr[1].as_f64("f").expect("f64") - 2.5).abs() < 1e-12);
        assert_eq!(arr[2].as_str("s").expect("str"), "x\n");
        assert!(arr[3].as_bool("b").expect("bool"));
        assert_eq!(arr[4], Json::Null);
        let b = get(obj, "b").expect("b").as_obj("b").expect("object");
        assert_eq!(get(b, "c").expect("c").as_i32("c").expect("i32"), -3);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "12 tail", "\"unterminated"] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn f64_canonical_round_trip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            f64::MAX,
            -271.828_182_845,
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = parse(&s).expect("parses").as_f64("v").expect("f64");
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip_via_strings() {
        for (v, text) in [(f64::INFINITY, "\"inf\""), (f64::NEG_INFINITY, "\"-inf\"")] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, text);
            let back = parse(&s).expect("parses").as_f64("v").expect("f64");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "\"nan\"");
        assert!(parse(&s)
            .expect("parses")
            .as_f64("v")
            .expect("f64")
            .is_nan());
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let text = format!("{}", u64::MAX);
        assert_eq!(
            parse(&text).expect("parses").as_u64("seed").expect("u64"),
            u64::MAX
        );
    }

    #[test]
    fn quoting_escapes_and_parses_back() {
        let nasty = "weird \"s\"\\π\n\t\u{0001}";
        let mut s = String::new();
        push_quoted(&mut s, nasty);
        assert_eq!(parse(&s).expect("parses").as_str("s").expect("str"), nasty);
    }
}
