//! The serializable job API: one [`Request`] / [`Response`] vocabulary
//! for every engine the [`crate::session::Session`] fronts.
//!
//! The ergonomic path stays the typed `Session` methods
//! (`run_link`, `bathtub`, `corner_sweep`, ...); this module is the
//! *wire-shaped* spelling of the same jobs. A [`Request`] is fully
//! self-contained — it carries its own operating point (link config,
//! sweep knobs, PVT, design spec) — so the pair `(Request, seed)`
//! determines the [`Response`] exactly, bit for bit, at any worker
//! count. That is the property `openserdes-serve` builds on: the
//! canonical encoding of `(Request, seed)` ([`JobKey`]) is a *content
//! address* for the result, so cache hits are exact and identical
//! in-flight requests can be coalesced.
//!
//! Canonical encoding: [`Request::to_canonical_json`] and
//! [`Response::to_canonical_json`] write compact JSON with a fixed,
//! code-defined field order, `{:?}`-formatted floats (shortest exact
//! round-trip) and full-width integers — see [`crate::json`]. Both
//! directions round-trip: `to_canonical_json` after `from_json` is
//! byte-identical.
//!
//! ```
//! use openserdes_core::job::{Request, Response, SweepSpec};
//! use openserdes_core::link::LinkConfig;
//! use openserdes_core::session::Session;
//!
//! let request = Request::MaxLoss {
//!     config: LinkConfig::paper_default(),
//!     sweep: SweepSpec::default(),
//! };
//! let mut session = Session::new().with_seed(7);
//! let response = session.submit(&request)?;
//! assert!(matches!(response, Response::MaxLoss { .. }));
//! // The canonical bytes round-trip exactly.
//! let json = request.to_canonical_json();
//! assert_eq!(Request::from_json(&json)?.to_canonical_json(), json);
//! # Ok::<(), openserdes_core::error::Error>(())
//! ```

use crate::error::Error;
use crate::json::{self, Json};
use crate::link::{FaultReport, LinkConfig, LinkReport, LinkStats};
use crate::serializer::{Frame, LANES};
use crate::sweep::parallel::CornerPoint;
use crate::sweep::{BathtubPoint, Sweep, SweepPoint};
use openserdes_fault::{FaultEvent, FaultKind, FaultSchedule};
use openserdes_flow::ir::Design;
use openserdes_flow::{FlowResult, StaReport};
use openserdes_lint::{LintReport, Severity};
use openserdes_netlist::NetlistStats;
use openserdes_pdk::corner::{ProcessCorner, Pvt};
use openserdes_pdk::units::{Hertz, Time, Volt};
use openserdes_phy::ChannelModel;
use std::fmt::Write as _;

/// One job for any engine behind the Session front door. Every variant
/// carries its full operating point, so a request means the same thing
/// on every server and in every process — nothing is implied by session
/// state except the run seed and the worker count (which never changes
/// results).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run frames through the fast link (serializer → statistical PHY →
    /// CDR → deserializer). [`crate::session::Session::run_link`].
    RunLink {
        /// Operating point.
        config: LinkConfig,
        /// Payload frames.
        frames: Vec<Frame>,
    },
    /// Link run under an injected fault schedule.
    /// [`crate::session::Session::run_link_with_faults`].
    RunLinkWithFaults {
        /// Operating point.
        config: LinkConfig,
        /// Payload frames.
        frames: Vec<Frame>,
        /// The fault campaign to inject.
        schedule: FaultSchedule,
    },
    /// RTL→layout flow over a named example design.
    /// [`crate::session::Session::run_flow`].
    RunFlow {
        /// Which design to push through the flow.
        design: DesignSpec,
        /// Corner to characterize the library at.
        pvt: Pvt,
    },
    /// BER bathtub. [`crate::session::Session::bathtub`].
    Bathtub {
        /// Operating point.
        config: LinkConfig,
        /// Monte-Carlo knobs.
        sweep: SweepSpec,
    },
    /// Maximum error-free channel loss.
    /// [`crate::session::Session::max_loss`].
    MaxLoss {
        /// Operating point.
        config: LinkConfig,
        /// Monte-Carlo knobs.
        sweep: SweepSpec,
    },
    /// Maximum loss at each data rate.
    /// [`crate::session::Session::rate_sweep`].
    RateSweep {
        /// Operating point (the rate field is overridden per point).
        config: LinkConfig,
        /// Monte-Carlo knobs.
        sweep: SweepSpec,
        /// Data rates to probe.
        rates: Vec<Hertz>,
    },
    /// Loss and sensitivity at the tt/ss/ff corners.
    /// [`crate::session::Session::corner_sweep`].
    CornerSweep {
        /// Operating point.
        config: LinkConfig,
        /// Monte-Carlo knobs.
        sweep: SweepSpec,
    },
    /// Static timing signoff over a named design synthesized at a
    /// corner. [`crate::session::Session::sta`].
    Sta {
        /// Which design to synthesize and time.
        design: DesignSpec,
        /// Corner to characterize the library at.
        pvt: Pvt,
        /// Clock to check against.
        clock: Hertz,
    },
    /// `IR0xx` lint over a named design at the default policy.
    /// [`crate::session::Session::lint`].
    Lint {
        /// Which design to lint.
        design: DesignSpec,
    },
}

/// The result vocabulary matching [`Request`], plus the scheduler's
/// [`Response::Shed`] — the typed "overloaded, dropped before running"
/// answer `openserdes-serve` returns instead of failing or panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of [`Request::RunLink`]. Wall-clock stage times inside
    /// [`LinkStats`] are run-specific noise: they are *not* serialized
    /// (parsing restores them as zeros) and they are excluded from
    /// [`LinkReport`] equality.
    Link(LinkReport),
    /// Result of [`Request::RunLinkWithFaults`].
    Faulted(FaultReport),
    /// Result of [`Request::RunFlow`].
    Flow(FlowSummary),
    /// Result of [`Request::Bathtub`].
    Bathtub(Vec<BathtubPoint>),
    /// Result of [`Request::MaxLoss`].
    MaxLoss {
        /// Maximum error-free channel attenuation in dB.
        max_loss_db: f64,
    },
    /// Result of [`Request::RateSweep`].
    Rates(Vec<SweepPoint>),
    /// Result of [`Request::CornerSweep`].
    Corners(Vec<CornerPoint>),
    /// Result of [`Request::Sta`].
    Sta(StaSummary),
    /// Result of [`Request::Lint`].
    Lint(LintSummary),
    /// The job was dropped by an overloaded scheduler before running.
    Shed(ShedInfo),
    /// The job's deadline expired while it was queued; it was retired
    /// at dequeue instead of burning a worker on a result nobody is
    /// waiting for.
    DeadlineExceeded(DeadlineInfo),
}

/// A serializable reference to one of the shipped example designs —
/// the wire-safe stand-in for passing a whole
/// [`openserdes_flow::ir::Design`] by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignSpec {
    /// The 256-bit frame serializer ([`crate::serializer_design`]).
    Serializer,
    /// The frame deserializer ([`crate::deserializer_design`]).
    Deserializer,
    /// The oversampling CDR ([`crate::cdr_design`]).
    Cdr {
        /// Samples per unit interval (3..=8, what [`crate::cdr_design`]
        /// accepts).
        oversampling: usize,
    },
    /// The scan chain ([`crate::scan_chain_design`]).
    ScanChain,
    /// The integrated digital top ([`crate::serdes_digital_top`]).
    DigitalTop {
        /// Samples per unit interval (3..=8).
        oversampling: usize,
    },
}

impl DesignSpec {
    /// Stable wire tag, also used as the design label in summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            DesignSpec::Serializer => "serializer",
            DesignSpec::Deserializer => "deserializer",
            DesignSpec::Cdr { .. } => "cdr",
            DesignSpec::ScanChain => "scan_chain",
            DesignSpec::DigitalTop { .. } => "digital_top",
        }
    }

    /// Materializes the referenced design.
    pub fn build(&self) -> Design {
        match *self {
            DesignSpec::Serializer => crate::serializer::serializer_design(),
            DesignSpec::Deserializer => crate::deserializer::deserializer_design(),
            DesignSpec::Cdr { oversampling } => crate::cdr::cdr_design(oversampling),
            DesignSpec::ScanChain => crate::scan::scan_chain_design(),
            DesignSpec::DigitalTop { oversampling } => crate::top::serdes_digital_top(oversampling),
        }
    }
}

/// The Monte-Carlo knobs of a [`Sweep`], minus the seed and worker
/// count: the seed comes from the job envelope (it is half of the
/// content address) and the worker count can never change results, so
/// neither belongs in the serialized request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// PRBS bits measured per bathtub phase.
    pub bits: usize,
    /// Sampling phases across the unit interval.
    pub phases: usize,
    /// Frames per error-free probe in the loss bisections.
    pub frames: usize,
    /// Bisection tolerance in dB.
    pub tol_db: f64,
}

impl Default for SweepSpec {
    /// The paper-default knobs of [`Sweep::new`].
    fn default() -> Self {
        SweepSpec::from(&Sweep::new())
    }
}

impl From<&Sweep> for SweepSpec {
    fn from(sweep: &Sweep) -> Self {
        Self {
            bits: sweep.bits(),
            phases: sweep.phases(),
            frames: sweep.frames(),
            tol_db: sweep.tolerance_db(),
        }
    }
}

impl SweepSpec {
    /// Applies these knobs onto `base`, keeping `base`'s seed and
    /// worker count.
    pub fn apply(&self, base: Sweep) -> Sweep {
        base.with_bits(self.bits)
            .with_phases(self.phases)
            .with_frames(self.frames)
            .with_tolerance_db(self.tol_db)
    }
}

/// Serializable digest of a [`FlowResult`] — the numbers a remote
/// caller acts on, without the netlists and placements behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Design label (the [`DesignSpec::tag`]).
    pub design: String,
    /// Placed cell count.
    pub cells: usize,
    /// Flip-flop count.
    pub flops: usize,
    /// Net count.
    pub nets: usize,
    /// Block area (cells + clock buffers) in µm².
    pub area_um2: f64,
    /// Total power (including clock tree) in mW.
    pub power_mw: f64,
    /// Maximum clock frequency in GHz.
    pub fmax_ghz: f64,
    /// Worst negative setup slack in ps.
    pub wns_ps: f64,
    /// Total negative setup slack in ps.
    pub tns_ps: f64,
    /// Violated setup endpoints.
    pub violations: usize,
    /// Violated hold endpoints.
    pub hold_violations: usize,
}

impl FlowSummary {
    /// Digests a flow result under the given design label.
    pub fn from_result(design: &DesignSpec, result: &FlowResult) -> Self {
        let stats: &NetlistStats = &result.stats;
        Self {
            design: design.tag().to_string(),
            cells: stats.cell_count,
            flops: stats.flop_count,
            nets: stats.net_count,
            area_um2: result.area().value(),
            power_mw: result.total_power().value() * 1e3,
            fmax_ghz: result.timing.fmax.ghz(),
            wns_ps: result.timing.wns.value() * 1e12,
            tns_ps: result.timing.tns.value() * 1e12,
            violations: result.timing.violations,
            hold_violations: result.timing.hold_violations,
        }
    }
}

/// Serializable digest of a [`StaReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StaSummary {
    /// Design label (the [`DesignSpec::tag`]).
    pub design: String,
    /// Clock the design was checked against, in GHz.
    pub clock_ghz: f64,
    /// Maximum clock frequency in GHz.
    pub fmax_ghz: f64,
    /// Worst negative setup slack in ps.
    pub wns_ps: f64,
    /// Total negative setup slack in ps.
    pub tns_ps: f64,
    /// Violated setup endpoints.
    pub violations: usize,
    /// Worst hold slack in ps (positive = clean).
    pub hold_wns_ps: f64,
    /// Violated hold endpoints.
    pub hold_violations: usize,
    /// Timed endpoint count.
    pub endpoints: usize,
    /// Clock domain count.
    pub domains: usize,
}

impl StaSummary {
    /// Digests an STA report under the given design label.
    pub fn from_report(design: &DesignSpec, report: &StaReport) -> Self {
        Self {
            design: design.tag().to_string(),
            clock_ghz: report.clock.ghz(),
            fmax_ghz: report.fmax.ghz(),
            wns_ps: report.wns.value() * 1e12,
            tns_ps: report.tns.value() * 1e12,
            violations: report.violations,
            hold_wns_ps: report.hold_wns.value() * 1e12,
            hold_violations: report.hold_violations,
            endpoints: report.endpoints.len(),
            domains: report.domains.len(),
        }
    }
}

/// One serialized lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindingSummary {
    /// Stable rule code (`IR001`, ...).
    pub rule: String,
    /// Effective severity: `info`, `warn` or `error`.
    pub severity: String,
    /// Human-readable message.
    pub message: String,
}

/// Serializable digest of a [`LintReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-level finding count.
    pub errors: usize,
    /// Warn-level finding count.
    pub warnings: usize,
    /// Info-level finding count.
    pub infos: usize,
    /// Findings dropped by the policy's `allow` list.
    pub suppressed: usize,
    /// The findings, in emission order.
    pub findings: Vec<FindingSummary>,
}

impl LintSummary {
    /// Digests a lint report.
    pub fn from_report(report: &LintReport) -> Self {
        Self {
            errors: report.count(Severity::Error),
            warnings: report.count(Severity::Warn),
            infos: report.count(Severity::Info),
            suppressed: report.suppressed(),
            findings: report
                .findings()
                .iter()
                .map(|f| FindingSummary {
                    rule: f.rule.code().to_string(),
                    severity: severity_tag(f.severity).to_string(),
                    message: f.message.clone(),
                })
                .collect(),
        }
    }
}

/// Why and where a job was shed by an overloaded scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedInfo {
    /// Tenant whose job was dropped.
    pub tenant: String,
    /// The dropped job's priority (higher survives longer).
    pub priority: u8,
    /// Jobs queued ahead of the drop decision.
    pub queue_depth: usize,
}

/// Why a job was retired with [`Response::DeadlineExceeded`]: its
/// envelope deadline elapsed before a worker picked it up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineInfo {
    /// Tenant whose job expired.
    pub tenant: String,
    /// The deadline the envelope asked for, in milliseconds from
    /// submission.
    pub deadline_ms: u64,
    /// How long the job actually sat queued before being retired, in
    /// milliseconds (wall clock; informational, not part of any
    /// determinism contract).
    pub queued_ms: u64,
}

fn severity_tag(sev: Severity) -> &'static str {
    match sev {
        Severity::Info => "info",
        Severity::Warn => "warn",
        Severity::Error => "error",
    }
}

fn parse_err(msg: impl Into<String>) -> Error {
    Error::Parse(msg.into())
}

// ====================================================================
// Canonical encoding
// ====================================================================

fn push_pvt(out: &mut String, pvt: &Pvt) {
    let corner = match pvt.corner {
        ProcessCorner::Typical => "tt",
        ProcessCorner::SlowSlow => "ss",
        ProcessCorner::FastFast => "ff",
        ProcessCorner::SlowFast => "sf",
        ProcessCorner::FastSlow => "fs",
    };
    out.push_str("{\"corner\":\"");
    out.push_str(corner);
    out.push_str("\",\"vdd_v\":");
    json::push_f64(out, pvt.vdd.value());
    out.push_str(",\"temp_c\":");
    json::push_f64(out, pvt.temp_c);
    out.push('}');
}

fn parse_pvt(v: &Json) -> Result<Pvt, String> {
    let obj = v.as_obj("pvt")?;
    let corner = match json::get(obj, "corner")?.as_str("corner")? {
        "tt" => ProcessCorner::Typical,
        "ss" => ProcessCorner::SlowSlow,
        "ff" => ProcessCorner::FastFast,
        "sf" => ProcessCorner::SlowFast,
        "fs" => ProcessCorner::FastSlow,
        other => return Err(format!("unknown process corner `{other}`")),
    };
    Ok(Pvt {
        corner,
        vdd: Volt::new(json::get(obj, "vdd_v")?.as_f64("vdd_v")?),
        temp_c: json::get(obj, "temp_c")?.as_f64("temp_c")?,
    })
}

fn push_channel(out: &mut String, ch: &ChannelModel) {
    out.push_str("{\"attenuation_db\":");
    json::push_f64(out, ch.attenuation_db);
    out.push_str(",\"bandwidth_hz\":");
    json::push_f64(out, ch.bandwidth.value());
    out.push_str(",\"noise_sigma_v\":");
    json::push_f64(out, ch.noise_sigma.value());
    out.push_str(",\"rj_sigma_s\":");
    json::push_f64(out, ch.rj_sigma.value());
    out.push_str(",\"dj_pp_s\":");
    json::push_f64(out, ch.dj_pp.value());
    out.push_str(",\"dj_freq_hz\":");
    json::push_f64(out, ch.dj_freq.value());
    let _ = write!(out, ",\"seed\":{}}}", ch.seed);
}

fn parse_channel(v: &Json) -> Result<ChannelModel, String> {
    let obj = v.as_obj("channel")?;
    Ok(ChannelModel {
        attenuation_db: json::get(obj, "attenuation_db")?.as_f64("attenuation_db")?,
        bandwidth: Hertz::new(json::get(obj, "bandwidth_hz")?.as_f64("bandwidth_hz")?),
        noise_sigma: Volt::new(json::get(obj, "noise_sigma_v")?.as_f64("noise_sigma_v")?),
        rj_sigma: Time::new(json::get(obj, "rj_sigma_s")?.as_f64("rj_sigma_s")?),
        dj_pp: Time::new(json::get(obj, "dj_pp_s")?.as_f64("dj_pp_s")?),
        dj_freq: Hertz::new(json::get(obj, "dj_freq_hz")?.as_f64("dj_freq_hz")?),
        seed: json::get(obj, "seed")?.as_u64("seed")?,
    })
}

fn push_link_config(out: &mut String, cfg: &LinkConfig) {
    out.push_str("{\"data_rate_hz\":");
    json::push_f64(out, cfg.data_rate.value());
    out.push_str(",\"channel\":");
    push_channel(out, &cfg.channel);
    out.push_str(",\"pvt\":");
    push_pvt(out, &cfg.pvt);
    let _ = write!(
        out,
        ",\"cdr\":{{\"oversampling\":{},\"glitch_filter\":{},\"phase_hysteresis\":{},\"window\":{}}}}}",
        cfg.cdr.oversampling, cfg.cdr.glitch_filter, cfg.cdr.phase_hysteresis, cfg.cdr.window
    );
}

fn parse_link_config(v: &Json) -> Result<LinkConfig, String> {
    let obj = v.as_obj("config")?;
    let cdr_obj = json::get(obj, "cdr")?.as_obj("cdr")?;
    let cdr = crate::cdr::CdrConfig {
        oversampling: json::get(cdr_obj, "oversampling")?.as_usize("oversampling")?,
        glitch_filter: json::get(cdr_obj, "glitch_filter")?.as_bool("glitch_filter")?,
        phase_hysteresis: json::get(cdr_obj, "phase_hysteresis")?.as_u32("phase_hysteresis")?,
        window: json::get(cdr_obj, "window")?.as_usize("window")?,
    };
    Ok(LinkConfig {
        data_rate: Hertz::new(json::get(obj, "data_rate_hz")?.as_f64("data_rate_hz")?),
        channel: parse_channel(json::get(obj, "channel")?)?,
        pvt: parse_pvt(json::get(obj, "pvt")?)?,
        cdr,
    })
}

fn push_sweep_spec(out: &mut String, s: &SweepSpec) {
    let _ = write!(
        out,
        "{{\"bits\":{},\"phases\":{},\"frames\":{},\"tol_db\":",
        s.bits, s.phases, s.frames
    );
    json::push_f64(out, s.tol_db);
    out.push('}');
}

fn parse_sweep_spec(v: &Json) -> Result<SweepSpec, String> {
    let obj = v.as_obj("sweep")?;
    Ok(SweepSpec {
        bits: json::get(obj, "bits")?.as_usize("bits")?,
        phases: json::get(obj, "phases")?.as_usize("phases")?,
        frames: json::get(obj, "frames")?.as_usize("frames")?,
        tol_db: json::get(obj, "tol_db")?.as_f64("tol_db")?,
    })
}

fn push_frames(out: &mut String, frames: &[Frame]) {
    out.push('[');
    for (i, f) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (k, w) in f.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{w}");
        }
        out.push(']');
    }
    out.push(']');
}

fn parse_frames(v: &Json) -> Result<Vec<Frame>, String> {
    v.as_arr("frames")?
        .iter()
        .enumerate()
        .map(|(i, fv)| {
            let words = fv.as_arr("frame")?;
            if words.len() != LANES {
                return Err(format!("frames[{i}]: expected {LANES} words"));
            }
            let mut frame: Frame = [0u32; LANES];
            for (k, w) in words.iter().enumerate() {
                frame[k] = w.as_u32("frame word")?;
            }
            Ok(frame)
        })
        .collect()
}

fn push_design(out: &mut String, d: &DesignSpec) {
    out.push_str("{\"name\":\"");
    out.push_str(d.tag());
    out.push('"');
    match d {
        DesignSpec::Cdr { oversampling } | DesignSpec::DigitalTop { oversampling } => {
            let _ = write!(out, ",\"oversampling\":{oversampling}");
        }
        _ => {}
    }
    out.push('}');
}

fn parse_design(v: &Json) -> Result<DesignSpec, String> {
    let obj = v.as_obj("design")?;
    let oversampling = |what: &str| -> Result<usize, String> {
        let n = json::get(obj, "oversampling")?.as_usize("oversampling")?;
        if (3..=8).contains(&n) {
            Ok(n)
        } else {
            Err(format!("{what}: oversampling {n} outside 3..=8"))
        }
    };
    match json::get(obj, "name")?.as_str("name")? {
        "serializer" => Ok(DesignSpec::Serializer),
        "deserializer" => Ok(DesignSpec::Deserializer),
        "cdr" => Ok(DesignSpec::Cdr {
            oversampling: oversampling("cdr")?,
        }),
        "scan_chain" => Ok(DesignSpec::ScanChain),
        "digital_top" => Ok(DesignSpec::DigitalTop {
            oversampling: oversampling("digital_top")?,
        }),
        other => Err(format!("unknown design `{other}`")),
    }
}

fn push_fault_schedule(out: &mut String, s: &FaultSchedule) {
    let _ = write!(out, "{{\"seed\":{},\"events\":[", s.seed());
    for (i, e) in s.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"at_ui\":{},\"kind\":\"{}\"", e.at_ui, e.kind.tag());
        match &e.kind {
            FaultKind::BurstNoise {
                duration_ui,
                flip_prob,
            } => {
                let _ = write!(out, ",\"duration_ui\":{duration_ui},\"flip_prob\":");
                json::push_f64(out, *flip_prob);
            }
            FaultKind::Dropout { duration_ui, level } => {
                let _ = write!(out, ",\"duration_ui\":{duration_ui},\"level\":{level}");
            }
            FaultKind::SupplyDroop {
                duration_ui,
                peak_flip_prob,
            } => {
                let _ = write!(out, ",\"duration_ui\":{duration_ui},\"peak_flip_prob\":");
                json::push_f64(out, *peak_flip_prob);
            }
            FaultKind::PhaseGlitch { offset_samples } => {
                let _ = write!(out, ",\"offset_samples\":{offset_samples}");
            }
            FaultKind::ClockDrift {
                duration_ui,
                slip_period_ui,
                late,
            } => {
                let _ = write!(
                    out,
                    ",\"duration_ui\":{duration_ui},\"slip_period_ui\":{slip_period_ui},\"late\":{late}"
                );
            }
            FaultKind::SeuCdrPhase { bit } => {
                let _ = write!(out, ",\"bit\":{bit}");
            }
            FaultKind::SeuDeserializer { lane, bit } => {
                let _ = write!(out, ",\"lane\":{lane},\"bit\":{bit}");
            }
            FaultKind::StuckAtNet { net, value } => {
                out.push_str(",\"net\":");
                json::push_quoted(out, net);
                let _ = write!(out, ",\"value\":{value}");
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

fn parse_fault_schedule(v: &Json) -> Result<FaultSchedule, String> {
    let obj = v.as_obj("faults")?;
    let mut schedule = FaultSchedule::new(json::get(obj, "seed")?.as_u64("seed")?);
    for (i, ev) in json::get(obj, "events")?
        .as_arr("events")?
        .iter()
        .enumerate()
    {
        let eobj = ev.as_obj("event")?;
        let at_ui = json::get(eobj, "at_ui")?.as_u64("at_ui")?;
        let tag = json::get(eobj, "kind")?.as_str("kind")?;
        let kind = match tag {
            "burst_noise" => FaultKind::BurstNoise {
                duration_ui: json::get(eobj, "duration_ui")?.as_u64("duration_ui")?,
                flip_prob: json::get(eobj, "flip_prob")?.as_f64("flip_prob")?,
            },
            "dropout" => FaultKind::Dropout {
                duration_ui: json::get(eobj, "duration_ui")?.as_u64("duration_ui")?,
                level: json::get(eobj, "level")?.as_bool("level")?,
            },
            "supply_droop" => FaultKind::SupplyDroop {
                duration_ui: json::get(eobj, "duration_ui")?.as_u64("duration_ui")?,
                peak_flip_prob: json::get(eobj, "peak_flip_prob")?.as_f64("peak_flip_prob")?,
            },
            "phase_glitch" => FaultKind::PhaseGlitch {
                offset_samples: json::get(eobj, "offset_samples")?.as_i32("offset_samples")?,
            },
            "clock_drift" => FaultKind::ClockDrift {
                duration_ui: json::get(eobj, "duration_ui")?.as_u64("duration_ui")?,
                slip_period_ui: json::get(eobj, "slip_period_ui")?.as_u64("slip_period_ui")?,
                late: json::get(eobj, "late")?.as_bool("late")?,
            },
            "seu_cdr_phase" => FaultKind::SeuCdrPhase {
                bit: json::get(eobj, "bit")?.as_u32("bit")?,
            },
            "seu_deserializer" => FaultKind::SeuDeserializer {
                lane: json::get(eobj, "lane")?.as_u32("lane")?,
                bit: json::get(eobj, "bit")?.as_u32("bit")?,
            },
            "stuck_at_net" => FaultKind::StuckAtNet {
                net: json::get(eobj, "net")?.as_str("net")?.to_string(),
                value: json::get(eobj, "value")?.as_bool("value")?,
            },
            other => return Err(format!("events[{i}]: unknown fault kind `{other}`")),
        };
        schedule.push(FaultEvent { at_ui, kind });
    }
    Ok(schedule)
}

fn push_link_report(out: &mut String, r: &LinkReport) {
    let _ = write!(
        out,
        "{{\"frames_sent\":{},\"frames_correct\":{},\"bits\":{},\"bit_errors\":{},\"cdr_locked\":{},\"cdr_phase_updates\":{},\"alignment_lag\":{}}}",
        r.frames_sent,
        r.frames_correct,
        r.bits,
        r.bit_errors,
        r.cdr_locked,
        r.cdr_phase_updates,
        r.alignment_lag
    );
}

fn parse_link_report(v: &Json) -> Result<LinkReport, String> {
    let obj = v.as_obj("report")?;
    Ok(LinkReport {
        frames_sent: json::get(obj, "frames_sent")?.as_usize("frames_sent")?,
        frames_correct: json::get(obj, "frames_correct")?.as_usize("frames_correct")?,
        bits: json::get(obj, "bits")?.as_u64("bits")?,
        bit_errors: json::get(obj, "bit_errors")?.as_u64("bit_errors")?,
        cdr_locked: json::get(obj, "cdr_locked")?.as_bool("cdr_locked")?,
        cdr_phase_updates: json::get(obj, "cdr_phase_updates")?.as_u64("cdr_phase_updates")?,
        alignment_lag: json::get(obj, "alignment_lag")?.as_usize("alignment_lag")?,
        stats: LinkStats::default(),
    })
}

impl Request {
    /// The canonical, field-order-stable compact JSON encoding.
    /// Encoding is deterministic: equal requests produce byte-identical
    /// text, and [`Request::from_json`] inverts it exactly.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Request::RunLink { config, frames } => {
                out.push_str("{\"kind\":\"run_link\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"frames\":");
                push_frames(out, frames);
                out.push('}');
            }
            Request::RunLinkWithFaults {
                config,
                frames,
                schedule,
            } => {
                out.push_str("{\"kind\":\"run_link_with_faults\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"frames\":");
                push_frames(out, frames);
                out.push_str(",\"faults\":");
                push_fault_schedule(out, schedule);
                out.push('}');
            }
            Request::RunFlow { design, pvt } => {
                out.push_str("{\"kind\":\"run_flow\",\"design\":");
                push_design(out, design);
                out.push_str(",\"pvt\":");
                push_pvt(out, pvt);
                out.push('}');
            }
            Request::Bathtub { config, sweep } => {
                out.push_str("{\"kind\":\"bathtub\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"sweep\":");
                push_sweep_spec(out, sweep);
                out.push('}');
            }
            Request::MaxLoss { config, sweep } => {
                out.push_str("{\"kind\":\"max_loss\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"sweep\":");
                push_sweep_spec(out, sweep);
                out.push('}');
            }
            Request::RateSweep {
                config,
                sweep,
                rates,
            } => {
                out.push_str("{\"kind\":\"rate_sweep\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"sweep\":");
                push_sweep_spec(out, sweep);
                out.push_str(",\"rates_hz\":[");
                for (i, r) in rates.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_f64(out, r.value());
                }
                out.push_str("]}");
            }
            Request::CornerSweep { config, sweep } => {
                out.push_str("{\"kind\":\"corner_sweep\",\"config\":");
                push_link_config(out, config);
                out.push_str(",\"sweep\":");
                push_sweep_spec(out, sweep);
                out.push('}');
            }
            Request::Sta { design, pvt, clock } => {
                out.push_str("{\"kind\":\"sta\",\"design\":");
                push_design(out, design);
                out.push_str(",\"pvt\":");
                push_pvt(out, pvt);
                out.push_str(",\"clock_hz\":");
                json::push_f64(out, clock.value());
                out.push('}');
            }
            Request::Lint { design } => {
                out.push_str("{\"kind\":\"lint\",\"design\":");
                push_design(out, design);
                out.push('}');
            }
        }
    }

    /// Parses a request from its canonical (or any equivalent) JSON.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on malformed JSON, unknown kinds, missing
    /// fields or out-of-range values.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let v = json::parse(text).map_err(parse_err)?;
        Self::from_value(&v).map_err(parse_err)
    }

    /// Parses a request from an already-parsed JSON value — the entry
    /// point for callers (like the wire layer) that hold the request as
    /// a sub-value of a larger document.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_value(v: &Json) -> Result<Self, String> {
        let obj = v.as_obj("request")?;
        match json::get(obj, "kind")?.as_str("kind")? {
            "run_link" => Ok(Request::RunLink {
                config: parse_link_config(json::get(obj, "config")?)?,
                frames: parse_frames(json::get(obj, "frames")?)?,
            }),
            "run_link_with_faults" => Ok(Request::RunLinkWithFaults {
                config: parse_link_config(json::get(obj, "config")?)?,
                frames: parse_frames(json::get(obj, "frames")?)?,
                schedule: parse_fault_schedule(json::get(obj, "faults")?)?,
            }),
            "run_flow" => Ok(Request::RunFlow {
                design: parse_design(json::get(obj, "design")?)?,
                pvt: parse_pvt(json::get(obj, "pvt")?)?,
            }),
            "bathtub" => Ok(Request::Bathtub {
                config: parse_link_config(json::get(obj, "config")?)?,
                sweep: parse_sweep_spec(json::get(obj, "sweep")?)?,
            }),
            "max_loss" => Ok(Request::MaxLoss {
                config: parse_link_config(json::get(obj, "config")?)?,
                sweep: parse_sweep_spec(json::get(obj, "sweep")?)?,
            }),
            "rate_sweep" => Ok(Request::RateSweep {
                config: parse_link_config(json::get(obj, "config")?)?,
                sweep: parse_sweep_spec(json::get(obj, "sweep")?)?,
                rates: json::get(obj, "rates_hz")?
                    .as_arr("rates_hz")?
                    .iter()
                    .map(|r| Ok(Hertz::new(r.as_f64("rate")?)))
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "corner_sweep" => Ok(Request::CornerSweep {
                config: parse_link_config(json::get(obj, "config")?)?,
                sweep: parse_sweep_spec(json::get(obj, "sweep")?)?,
            }),
            "sta" => Ok(Request::Sta {
                design: parse_design(json::get(obj, "design")?)?,
                pvt: parse_pvt(json::get(obj, "pvt")?)?,
                clock: Hertz::new(json::get(obj, "clock_hz")?.as_f64("clock_hz")?),
            }),
            "lint" => Ok(Request::Lint {
                design: parse_design(json::get(obj, "design")?)?,
            }),
            other => Err(format!("unknown request kind `{other}`")),
        }
    }
}

impl Response {
    /// The canonical, field-order-stable compact JSON encoding.
    /// Deterministic runs produce byte-identical response text — the
    /// property the serve-layer bit-identity checks assert.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Response::Link(r) => {
                out.push_str("{\"kind\":\"link\",\"report\":");
                push_link_report(out, r);
                out.push('}');
            }
            Response::Faulted(r) => {
                out.push_str("{\"kind\":\"faulted\",\"report\":{\"link\":");
                push_link_report(out, &r.link);
                let _ = write!(
                    out,
                    ",\"lock_losses\":{},\"relock_times_ui\":[",
                    r.lock_losses
                );
                for (i, t) in r.relock_times_ui.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{t}");
                }
                let _ = write!(
                    out,
                    "],\"injected_channel\":{},\"injected_clock\":{},\"injected_digital\":{}}}}}",
                    r.injected_channel, r.injected_clock, r.injected_digital
                );
            }
            Response::Flow(s) => {
                out.push_str("{\"kind\":\"flow\",\"summary\":{\"design\":");
                json::push_quoted(out, &s.design);
                let _ = write!(
                    out,
                    ",\"cells\":{},\"flops\":{},\"nets\":{},\"area_um2\":",
                    s.cells, s.flops, s.nets
                );
                json::push_f64(out, s.area_um2);
                out.push_str(",\"power_mw\":");
                json::push_f64(out, s.power_mw);
                out.push_str(",\"fmax_ghz\":");
                json::push_f64(out, s.fmax_ghz);
                out.push_str(",\"wns_ps\":");
                json::push_f64(out, s.wns_ps);
                out.push_str(",\"tns_ps\":");
                json::push_f64(out, s.tns_ps);
                let _ = write!(
                    out,
                    ",\"violations\":{},\"hold_violations\":{}}}}}",
                    s.violations, s.hold_violations
                );
            }
            Response::Bathtub(points) => {
                out.push_str("{\"kind\":\"bathtub\",\"points\":[");
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"phase_ui\":");
                    json::push_f64(out, p.phase_ui);
                    out.push_str(",\"ber\":");
                    json::push_f64(out, p.ber);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Response::MaxLoss { max_loss_db } => {
                out.push_str("{\"kind\":\"max_loss\",\"max_loss_db\":");
                json::push_f64(out, *max_loss_db);
                out.push('}');
            }
            Response::Rates(points) => {
                out.push_str("{\"kind\":\"rates\",\"points\":[");
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"data_rate_hz\":");
                    json::push_f64(out, p.data_rate.value());
                    out.push_str(",\"sensitivity_v\":");
                    json::push_f64(out, p.sensitivity.value());
                    out.push_str(",\"max_loss_db\":");
                    json::push_f64(out, p.max_loss_db);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Response::Corners(points) => {
                out.push_str("{\"kind\":\"corners\",\"points\":[");
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"pvt\":");
                    push_pvt(out, &p.pvt);
                    out.push_str(",\"max_loss_db\":");
                    json::push_f64(out, p.max_loss_db);
                    out.push_str(",\"sensitivity_v\":");
                    json::push_f64(out, p.sensitivity.value());
                    out.push('}');
                }
                out.push_str("]}");
            }
            Response::Sta(s) => {
                out.push_str("{\"kind\":\"sta\",\"summary\":{\"design\":");
                json::push_quoted(out, &s.design);
                out.push_str(",\"clock_ghz\":");
                json::push_f64(out, s.clock_ghz);
                out.push_str(",\"fmax_ghz\":");
                json::push_f64(out, s.fmax_ghz);
                out.push_str(",\"wns_ps\":");
                json::push_f64(out, s.wns_ps);
                out.push_str(",\"tns_ps\":");
                json::push_f64(out, s.tns_ps);
                let _ = write!(out, ",\"violations\":{},\"hold_wns_ps\":", s.violations);
                json::push_f64(out, s.hold_wns_ps);
                let _ = write!(
                    out,
                    ",\"hold_violations\":{},\"endpoints\":{},\"domains\":{}}}}}",
                    s.hold_violations, s.endpoints, s.domains
                );
            }
            Response::Lint(s) => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"lint\",\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{},\"suppressed\":{},\"findings\":[",
                    s.errors, s.warnings, s.infos, s.suppressed
                );
                for (i, f) in s.findings.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"rule\":");
                    json::push_quoted(out, &f.rule);
                    out.push_str(",\"severity\":");
                    json::push_quoted(out, &f.severity);
                    out.push_str(",\"message\":");
                    json::push_quoted(out, &f.message);
                    out.push('}');
                }
                out.push_str("]}}");
            }
            Response::Shed(s) => {
                out.push_str("{\"kind\":\"shed\",\"tenant\":");
                json::push_quoted(out, &s.tenant);
                let _ = write!(
                    out,
                    ",\"priority\":{},\"queue_depth\":{}}}",
                    s.priority, s.queue_depth
                );
            }
            Response::DeadlineExceeded(d) => {
                out.push_str("{\"kind\":\"deadline_exceeded\",\"tenant\":");
                json::push_quoted(out, &d.tenant);
                let _ = write!(
                    out,
                    ",\"deadline_ms\":{},\"queued_ms\":{}}}",
                    d.deadline_ms, d.queued_ms
                );
            }
        }
    }

    /// Parses a response from its canonical (or any equivalent) JSON.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on malformed JSON, unknown kinds or missing
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let v = json::parse(text).map_err(parse_err)?;
        Self::from_value(&v).map_err(parse_err)
    }

    /// Parses a response from an already-parsed JSON value — the entry
    /// point for callers (like the wire layer) that hold the response
    /// as a sub-value of a larger document.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_value(v: &Json) -> Result<Self, String> {
        let obj = v.as_obj("response")?;
        match json::get(obj, "kind")?.as_str("kind")? {
            "link" => Ok(Response::Link(parse_link_report(json::get(
                obj, "report",
            )?)?)),
            "faulted" => {
                let robj = json::get(obj, "report")?.as_obj("report")?;
                Ok(Response::Faulted(FaultReport {
                    link: parse_link_report(json::get(robj, "link")?)?,
                    lock_losses: json::get(robj, "lock_losses")?.as_u64("lock_losses")?,
                    relock_times_ui: json::get(robj, "relock_times_ui")?
                        .as_arr("relock_times_ui")?
                        .iter()
                        .map(|t| t.as_u64("relock time"))
                        .collect::<Result<Vec<_>, String>>()?,
                    injected_channel: json::get(robj, "injected_channel")?
                        .as_usize("injected_channel")?,
                    injected_clock: json::get(robj, "injected_clock")?
                        .as_usize("injected_clock")?,
                    injected_digital: json::get(robj, "injected_digital")?
                        .as_usize("injected_digital")?,
                }))
            }
            "flow" => {
                let s = json::get(obj, "summary")?.as_obj("summary")?;
                Ok(Response::Flow(FlowSummary {
                    design: json::get(s, "design")?.as_str("design")?.to_string(),
                    cells: json::get(s, "cells")?.as_usize("cells")?,
                    flops: json::get(s, "flops")?.as_usize("flops")?,
                    nets: json::get(s, "nets")?.as_usize("nets")?,
                    area_um2: json::get(s, "area_um2")?.as_f64("area_um2")?,
                    power_mw: json::get(s, "power_mw")?.as_f64("power_mw")?,
                    fmax_ghz: json::get(s, "fmax_ghz")?.as_f64("fmax_ghz")?,
                    wns_ps: json::get(s, "wns_ps")?.as_f64("wns_ps")?,
                    tns_ps: json::get(s, "tns_ps")?.as_f64("tns_ps")?,
                    violations: json::get(s, "violations")?.as_usize("violations")?,
                    hold_violations: json::get(s, "hold_violations")?
                        .as_usize("hold_violations")?,
                }))
            }
            "bathtub" => Ok(Response::Bathtub(
                json::get(obj, "points")?
                    .as_arr("points")?
                    .iter()
                    .map(|p| {
                        let pobj = p.as_obj("point")?;
                        Ok(BathtubPoint {
                            phase_ui: json::get(pobj, "phase_ui")?.as_f64("phase_ui")?,
                            ber: json::get(pobj, "ber")?.as_f64("ber")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "max_loss" => Ok(Response::MaxLoss {
                max_loss_db: json::get(obj, "max_loss_db")?.as_f64("max_loss_db")?,
            }),
            "rates" => Ok(Response::Rates(
                json::get(obj, "points")?
                    .as_arr("points")?
                    .iter()
                    .map(|p| {
                        let pobj = p.as_obj("point")?;
                        Ok(SweepPoint {
                            data_rate: Hertz::new(
                                json::get(pobj, "data_rate_hz")?.as_f64("data_rate_hz")?,
                            ),
                            sensitivity: Volt::new(
                                json::get(pobj, "sensitivity_v")?.as_f64("sensitivity_v")?,
                            ),
                            max_loss_db: json::get(pobj, "max_loss_db")?.as_f64("max_loss_db")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "corners" => Ok(Response::Corners(
                json::get(obj, "points")?
                    .as_arr("points")?
                    .iter()
                    .map(|p| {
                        let pobj = p.as_obj("point")?;
                        Ok(CornerPoint {
                            pvt: parse_pvt(json::get(pobj, "pvt")?)?,
                            max_loss_db: json::get(pobj, "max_loss_db")?.as_f64("max_loss_db")?,
                            sensitivity: Volt::new(
                                json::get(pobj, "sensitivity_v")?.as_f64("sensitivity_v")?,
                            ),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "sta" => {
                let s = json::get(obj, "summary")?.as_obj("summary")?;
                Ok(Response::Sta(StaSummary {
                    design: json::get(s, "design")?.as_str("design")?.to_string(),
                    clock_ghz: json::get(s, "clock_ghz")?.as_f64("clock_ghz")?,
                    fmax_ghz: json::get(s, "fmax_ghz")?.as_f64("fmax_ghz")?,
                    wns_ps: json::get(s, "wns_ps")?.as_f64("wns_ps")?,
                    tns_ps: json::get(s, "tns_ps")?.as_f64("tns_ps")?,
                    violations: json::get(s, "violations")?.as_usize("violations")?,
                    hold_wns_ps: json::get(s, "hold_wns_ps")?.as_f64("hold_wns_ps")?,
                    hold_violations: json::get(s, "hold_violations")?
                        .as_usize("hold_violations")?,
                    endpoints: json::get(s, "endpoints")?.as_usize("endpoints")?,
                    domains: json::get(s, "domains")?.as_usize("domains")?,
                }))
            }
            "lint" => {
                let s = json::get(obj, "summary")?.as_obj("summary")?;
                Ok(Response::Lint(LintSummary {
                    errors: json::get(s, "errors")?.as_usize("errors")?,
                    warnings: json::get(s, "warnings")?.as_usize("warnings")?,
                    infos: json::get(s, "infos")?.as_usize("infos")?,
                    suppressed: json::get(s, "suppressed")?.as_usize("suppressed")?,
                    findings: json::get(s, "findings")?
                        .as_arr("findings")?
                        .iter()
                        .map(|f| {
                            let fobj = f.as_obj("finding")?;
                            Ok(FindingSummary {
                                rule: json::get(fobj, "rule")?.as_str("rule")?.to_string(),
                                severity: json::get(fobj, "severity")?
                                    .as_str("severity")?
                                    .to_string(),
                                message: json::get(fobj, "message")?.as_str("message")?.to_string(),
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                }))
            }
            "shed" => Ok(Response::Shed(ShedInfo {
                tenant: json::get(obj, "tenant")?.as_str("tenant")?.to_string(),
                priority: json::get(obj, "priority")?.as_u64("priority")? as u8,
                queue_depth: json::get(obj, "queue_depth")?.as_usize("queue_depth")?,
            })),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded(DeadlineInfo {
                tenant: json::get(obj, "tenant")?.as_str("tenant")?.to_string(),
                deadline_ms: json::get(obj, "deadline_ms")?.as_u64("deadline_ms")?,
                queued_ms: json::get(obj, "queued_ms")?.as_u64("queued_ms")?,
            })),
            other => Err(format!("unknown response kind `{other}`")),
        }
    }
}

// ====================================================================
// Content addressing
// ====================================================================

/// The content address of a job: the canonical bytes of
/// `(request, seed)` plus a 128-bit hex digest over them. Everything
/// downstream of a request is deterministic, so two jobs with equal
/// canonical bytes have byte-identical responses — a cache hit on this
/// key is exact, never approximate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobKey {
    /// Canonical encoding of `{"request":...,"seed":N}`.
    pub canonical: String,
    /// 32-hex-character FNV-1a-128 style digest of the canonical bytes.
    pub digest: String,
}

impl JobKey {
    /// Computes the content address of `(request, seed)`.
    pub fn of(request: &Request, seed: u64) -> Self {
        let mut canonical = String::with_capacity(256);
        canonical.push_str("{\"request\":");
        request.write_json(&mut canonical);
        let _ = write!(canonical, ",\"seed\":{seed}}}");
        let digest = digest_hex(canonical.as_bytes());
        Self { canonical, digest }
    }
}

/// Two independent FNV-1a-64 passes (different offset bases) over the
/// bytes, concatenated to 32 hex characters. Not cryptographic — the
/// cache also compares canonical bytes on a digest hit, so a collision
/// costs a miss, never a wrong answer.
fn digest_hex(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let fnv = |basis: u64| -> u64 {
        let mut h = basis;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    let a = fnv(0xCBF2_9CE4_8422_2325);
    let b = fnv(0x6C62_272E_07BB_0142);
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = [0u32; LANES];
                for (k, w) in f.iter_mut().enumerate() {
                    *w = (i * LANES + k) as u32 ^ 0x5A5A_A5A5;
                }
                f
            })
            .collect()
    }

    fn sample_requests() -> Vec<Request> {
        let cfg = LinkConfig::paper_default();
        vec![
            Request::RunLink {
                config: cfg.clone(),
                frames: frames(2),
            },
            Request::RunLinkWithFaults {
                config: cfg.clone(),
                frames: frames(1),
                schedule: openserdes_fault::campaign(
                    openserdes_fault::CampaignKind::Mixed,
                    9,
                    10_000,
                ),
            },
            Request::RunFlow {
                design: DesignSpec::Serializer,
                pvt: Pvt::worst_case(),
            },
            Request::Bathtub {
                config: cfg.clone(),
                sweep: SweepSpec::default(),
            },
            Request::MaxLoss {
                config: cfg.clone(),
                sweep: SweepSpec {
                    bits: 1000,
                    phases: 8,
                    frames: 4,
                    tol_db: 1.0,
                },
            },
            Request::RateSweep {
                config: cfg.clone(),
                sweep: SweepSpec::default(),
                rates: vec![Hertz::from_ghz(1.0), Hertz::from_ghz(2.0)],
            },
            Request::CornerSweep {
                config: cfg,
                sweep: SweepSpec::default(),
            },
            Request::Sta {
                design: DesignSpec::Cdr { oversampling: 5 },
                pvt: Pvt::nominal(),
                clock: Hertz::from_ghz(2.0),
            },
            Request::Lint {
                design: DesignSpec::DigitalTop { oversampling: 5 },
            },
        ]
    }

    #[test]
    fn every_request_round_trips_canonically() {
        for req in sample_requests() {
            let json = req.to_canonical_json();
            let back = Request::from_json(&json).expect("parses");
            assert_eq!(back, req);
            assert_eq!(back.to_canonical_json(), json, "byte-identical re-encode");
        }
    }

    #[test]
    fn responses_round_trip_canonically() {
        let responses = vec![
            Response::MaxLoss { max_loss_db: 34.25 },
            Response::Bathtub(vec![
                BathtubPoint {
                    phase_ui: 0.25,
                    ber: 1e-3,
                },
                BathtubPoint {
                    phase_ui: 0.75,
                    ber: 0.0,
                },
            ]),
            Response::Rates(vec![SweepPoint {
                data_rate: Hertz::from_ghz(2.0),
                sensitivity: Volt::from_mv(32.0),
                max_loss_db: 34.0,
            }]),
            Response::Corners(vec![CornerPoint {
                pvt: Pvt::best_case(),
                max_loss_db: 36.5,
                sensitivity: Volt::from_mv(28.0),
            }]),
            Response::Lint(LintSummary {
                errors: 1,
                warnings: 2,
                infos: 0,
                suppressed: 3,
                findings: vec![FindingSummary {
                    rule: "IR001".into(),
                    severity: "error".into(),
                    message: "weird \"net\"\n".into(),
                }],
            }),
            Response::Shed(ShedInfo {
                tenant: "acme".into(),
                priority: 3,
                queue_depth: 17,
            }),
            Response::DeadlineExceeded(DeadlineInfo {
                tenant: "acme".into(),
                deadline_ms: 250,
                queued_ms: 512,
            }),
        ];
        for resp in responses {
            let json = resp.to_canonical_json();
            let back = Response::from_json(&json).expect("parses");
            assert_eq!(back, resp);
            assert_eq!(back.to_canonical_json(), json);
        }
    }

    #[test]
    fn job_key_is_stable_and_seed_sensitive() {
        let req = Request::MaxLoss {
            config: LinkConfig::paper_default(),
            sweep: SweepSpec::default(),
        };
        let a = JobKey::of(&req, 7);
        let b = JobKey::of(&req, 7);
        assert_eq!(a, b, "same (request, seed) → same key");
        let c = JobKey::of(&req, 8);
        assert_ne!(a.canonical, c.canonical);
        assert_ne!(a.digest, c.digest);
        assert_eq!(a.digest.len(), 32);
        assert!(a.canonical.contains("\"seed\":7"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{}",
            "{\"kind\":\"warp\"}",
            "{\"kind\":\"lint\",\"design\":{\"name\":\"nonesuch\"}}",
            "{\"kind\":\"lint\",\"design\":{\"name\":\"cdr\",\"oversampling\":0}}",
            "{\"kind\":\"lint\",\"design\":{\"name\":\"cdr\",\"oversampling\":9}}",
        ] {
            assert!(Request::from_json(bad).is_err(), "must reject {bad:?}");
        }
        assert!(Response::from_json("{\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn design_specs_build_their_designs() {
        assert_eq!(DesignSpec::Serializer.build().name(), "serializer");
        assert_eq!(DesignSpec::Cdr { oversampling: 5 }.tag(), "cdr");
        assert!(DesignSpec::DigitalTop { oversampling: 3 }
            .build()
            .name()
            .contains("serdes"));
    }
}
