//! The FSM deserializer (paper §IV-B-c).
//!
//! Collects serial bits back into 8 parallel streams of 32 bits and
//! raises a frame-valid flag every 256 bits. The synthesizable RTL
//! ([`deserializer_design`]) carries a 256-bit capture bank with a full
//! 8-bit write decoder, which is exactly why the deserializer dominates
//! the paper's layout area (60 % in Fig. 11).

use crate::bitstream::BitVec;
use crate::serializer::{Frame, FRAME_BITS, LANES, WORD_BITS};
use openserdes_flow::ir::Design;

/// Cycle-accurate behavioural deserializer FSM.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Deserializer {
    bank: Frame,
    index: usize,
    frames_received: u64,
}

impl Deserializer {
    /// Creates an empty deserializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bits captured into the current partial frame.
    pub fn fill_level(&self) -> usize {
        self.index
    }

    /// Frames completed so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// One clock with the received serial bit; returns the completed
    /// frame on every 256th bit.
    pub fn tick(&mut self, bit: bool) -> Option<Frame> {
        let lane = self.index / WORD_BITS;
        let pos = self.index % WORD_BITS;
        if bit {
            self.bank[lane] |= 1 << pos;
        } else {
            self.bank[lane] &= !(1 << pos);
        }
        self.index += 1;
        if self.index == FRAME_BITS {
            self.index = 0;
            self.frames_received += 1;
            Some(self.bank)
        } else {
            None
        }
    }

    /// Pushes a slice of bits, returning every completed frame.
    pub fn push_bits(&mut self, bits: &[bool]) -> Vec<Frame> {
        bits.iter().filter_map(|&b| self.tick(b)).collect()
    }

    /// Packed fast path of [`Self::push_bits`]: consumes `len` bits of
    /// `bits` starting at `offset`. Whole 32-bit lane words are captured
    /// with single windowed reads whenever the FSM is word-aligned;
    /// stragglers fall back to per-bit ticks, so the FSM state is
    /// identical to the bit-at-a-time path throughout.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` runs past the stream.
    pub fn push_packed(&mut self, bits: &BitVec, offset: usize, len: usize) -> Vec<Frame> {
        assert!(offset + len <= bits.len(), "range out of bounds");
        let mut out = Vec::with_capacity(len / FRAME_BITS);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            if self.index.is_multiple_of(WORD_BITS) && end - pos >= WORD_BITS {
                self.bank[self.index / WORD_BITS] = bits.window32(pos);
                pos += WORD_BITS;
                self.index += WORD_BITS;
                if self.index == FRAME_BITS {
                    self.index = 0;
                    self.frames_received += 1;
                    out.push(self.bank);
                }
            } else {
                if let Some(f) = self.tick(bits.get(pos)) {
                    out.push(f);
                }
                pos += 1;
            }
        }
        out
    }

    /// The partially filled capture bank and its fill level. Lane bits
    /// at positions `>= fill` are stale (left over from the previous
    /// frame) — callers must mask to the filled span. Used to score a
    /// trailing partial frame when alignment lag truncates the stream.
    pub fn partial_frame(&self) -> (Frame, usize) {
        (self.bank, self.index)
    }

    /// Resets the bit counter (frame alignment), e.g. after CDR lock.
    pub fn realign(&mut self) {
        self.index = 0;
    }

    /// Single-event upset: flips bit `bit` of capture lane `lane`
    /// (both folded into range). Bits at or past the fill level are
    /// overwritten before the frame completes, so only strikes below
    /// [`Self::fill_level`] in the struck lane corrupt data — exactly
    /// the exposure window of the real 256-bit bank.
    pub fn inject_seu(&mut self, lane: u32, bit: u32) {
        self.bank[lane as usize % LANES] ^= 1 << (bit % WORD_BITS as u32);
    }
}

/// Emits the deserializer as synthesizable RTL: an 8-bit position
/// counter, a 256-bit capture bank with per-bit write-enable decode, and
/// a frame-valid output.
pub fn deserializer_design() -> Design {
    let mut d = Design::new("deserializer");
    let serial_in = d.input("serial_in");
    let enable = d.input("enable");
    let counter = d.reg_bus(8);
    let bank = d.reg_bus(FRAME_BITS);

    // Counter advances whenever enabled.
    let inc = d.incr(&counter);
    let cnt_next = d.mux_bus(&counter, &inc, enable);
    d.connect_reg_bus(&counter, &cnt_next);

    // Per-bit capture: bank[i] <= (counter == i && enable) ? serial_in.
    for (i, &q) in bank.iter().enumerate() {
        let hit = d.eq_const(&counter, i as u64);
        let we = d.and(hit, enable);
        let next = d.mux(q, serial_in, we);
        d.connect_reg(q, next);
    }

    // Frame valid pulses while the counter points at the last bit.
    let last = d.eq_const(&counter, (FRAME_BITS - 1) as u64);
    let valid = d.and(last, enable);
    let valid_q = d.reg();
    d.connect_reg(valid_q, valid);
    d.output("frame_valid", valid_q);
    d.output_bus("data", &bank);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::{frame_to_bits, Serializer, LANES};
    use openserdes_flow::ir::IrSim;

    fn test_frame() -> Frame {
        [
            0xCAFE_BABE,
            0x0000_0001,
            0x8000_0000,
            0x5555_AAAA,
            0xF0F0_F0F0,
            0x0F0F_0F0F,
            0x1111_2222,
            0x3333_4444,
        ]
    }

    #[test]
    fn serializer_deserializer_identity() {
        let mut ser = Serializer::new();
        let mut des = Deserializer::new();
        let frames = [test_frame(), [0u32; LANES], [u32::MAX; LANES]];
        for f in frames {
            let bits = ser.serialize(f);
            let out = des.push_bits(&bits);
            assert_eq!(out, vec![f], "round trip must be the identity");
        }
        assert_eq!(des.frames_received(), 3);
    }

    #[test]
    fn partial_frame_not_emitted() {
        let mut des = Deserializer::new();
        let out = des.push_bits(&[true; 255]);
        assert!(out.is_empty());
        assert_eq!(des.fill_level(), 255);
        let done = des.tick(false);
        assert!(done.is_some());
        assert_eq!(des.fill_level(), 0);
    }

    #[test]
    fn packed_push_matches_bit_path() {
        let frames = [test_frame(), [0x1234_5678u32; LANES], [u32::MAX; LANES]];
        let mut bits = Vec::new();
        for f in &frames {
            bits.extend(frame_to_bits(f));
        }
        let packed = BitVec::from_bools(&bits);
        // Unaligned start (offset 5) exercises the per-bit fallback
        // until the FSM word-aligns, then the window32 fast path.
        for offset in [0usize, 5, 32, 100] {
            let mut a = Deserializer::new();
            let mut b = Deserializer::new();
            let out_a = a.push_bits(&bits[offset..]);
            let out_b = b.push_packed(&packed, offset, packed.len() - offset);
            assert_eq!(out_a, out_b, "offset {offset}");
            assert_eq!(a, b, "FSM state must agree at offset {offset}");
            assert_eq!(b.partial_frame().1, b.fill_level());
        }
    }

    #[test]
    fn seu_flips_exactly_one_captured_bit() {
        let f = test_frame();
        let bits = frame_to_bits(&f);
        let mut des = Deserializer::new();
        // Capture half the frame, strike a bit already filled.
        let half = FRAME_BITS / 2;
        let _ = des.push_bits(&bits[..half]);
        des.inject_seu(1, 7);
        let frames = des.push_bits(&bits[half..]);
        assert_eq!(frames.len(), 1);
        let mut expect = f;
        expect[1] ^= 1 << 7;
        assert_eq!(frames[0], expect, "exactly lane 1 bit 7 flips");
        // Out-of-range indices fold instead of panicking.
        des.inject_seu(9, 40);
        assert_eq!(des.fill_level(), 0);
    }

    #[test]
    fn realign_restarts_frame() {
        let mut des = Deserializer::new();
        let _ = des.push_bits(&[true; 100]);
        des.realign();
        assert_eq!(des.fill_level(), 0);
        let frames = des.push_bits(&frame_to_bits(&test_frame()));
        assert_eq!(frames, vec![test_frame()]);
    }

    #[test]
    fn rtl_matches_behavioural_model() {
        let design = deserializer_design();
        let mut sim = IrSim::new(&design);
        let f = test_frame();
        let bits = frame_to_bits(&f);
        sim.set_by_name("enable", true);
        let valid_sig = design
            .outputs()
            .iter()
            .find(|(n, _)| n == "frame_valid")
            .expect("valid")
            .1;
        let data_sigs: Vec<_> = (0..FRAME_BITS)
            .map(|i| {
                design
                    .outputs()
                    .iter()
                    .find(|(n, _)| *n == format!("data[{i}]"))
                    .expect("data bit")
                    .1
            })
            .collect();
        let mut seen_valid = 0;
        for &b in &bits {
            sim.set_by_name("serial_in", b);
            sim.tick();
            if sim.get(valid_sig) {
                seen_valid += 1;
            }
        }
        assert_eq!(seen_valid, 1, "one frame_valid pulse per frame");
        let got: Vec<bool> = data_sigs.iter().map(|&s| sim.get(s)).collect();
        assert_eq!(got, bits, "captured bank must equal the sent frame");
    }

    #[test]
    fn rtl_enable_gates_capture() {
        let design = deserializer_design();
        let mut sim = IrSim::new(&design);
        sim.set_by_name("enable", false);
        sim.set_by_name("serial_in", true);
        for _ in 0..10 {
            sim.tick();
        }
        let any_set = design
            .outputs()
            .iter()
            .filter(|(n, _)| n.starts_with("data"))
            .any(|(_, s)| sim.get(*s));
        assert!(!any_set, "disabled deserializer must not capture");
    }

    #[test]
    fn rtl_is_bigger_than_serializer() {
        // The decoder makes the deserializer the largest block (Fig. 11).
        let lib = openserdes_pdk::library::Library::sky130(openserdes_pdk::corner::Pvt::nominal());
        let des = openserdes_flow::synthesize(&deserializer_design(), &lib).expect("ok");
        let ser =
            openserdes_flow::synthesize(&crate::serializer::serializer_design(), &lib).expect("ok");
        assert!(
            des.netlist.cell_count() > ser.netlist.cell_count(),
            "des {} vs ser {}",
            des.netlist.cell_count(),
            ser.netlist.cell_count()
        );
    }
}
