//! # openserdes-core
//!
//! The OpenSerDes system itself — a Rust reproduction of *"OpenSerDes:
//! An Open Source Process-Portable All-Digital Serial Link"*
//! (DATE 2021): an all-digital, fully synthesizable SerDes for a sky130
//! 130 nm open-PDK node.
//!
//! * [`Serializer`] / [`Deserializer`] — the 8-lane × 32-bit FSMs, each
//!   as a cycle-accurate model **and** as synthesizable RTL pushed
//!   through the [`openserdes_flow`] OpenLANE-substitute,
//! * [`OversamplingCdr`] — the fully digital clock-and-data recovery
//!   with scan-configurable glitch and jitter correction (Fig. 7),
//! * [`SerdesLink`] — the assembled link over the analog PHY (Figs. 3, 8),
//! * [`PrbsGenerator`] / [`PrbsChecker`] / [`BerTest`] — PRBS-31 BER
//!   testing,
//! * [`sweep`] — the sensitivity / maximum-loss sweeps (Fig. 9),
//! * [`LinkBudget`] — the power and area budget (Figs. 10–11),
//! * [`cost`] — the open-vs-traditional PDK cost model (Fig. 2).
//!
//! ```
//! use openserdes_core::{Deserializer, Serializer};
//!
//! let mut ser = Serializer::new();
//! let mut des = Deserializer::new();
//! let frame = [0xDEAD_BEEF, 1, 2, 3, 4, 5, 6, 7];
//! let bits = ser.serialize(frame);
//! let frames = des.push_bits(&bits);
//! assert_eq!(frames, vec![frame]);
//! ```

#![warn(missing_docs)]

pub mod ber;
pub mod bitstream;
pub mod budget;
pub mod cdr;
pub mod cost;
pub mod error;
pub mod job;
pub mod json;
pub mod link;
pub mod prbs;
pub mod scan;
pub mod serializer;
pub mod session;
pub mod sweep;
pub mod top;

mod deserializer;

pub use ber::BerTest;
pub use bitstream::BitVec;
pub use budget::{BlockBudget, LinkBudget};
pub use cdr::{cdr_design, oversample_bits, oversample_bits_packed, CdrConfig, OversamplingCdr};
pub use deserializer::{deserializer_design, Deserializer};
pub use error::{Error, FaultInfo, LinkError};
pub use job::{
    DeadlineInfo, DesignSpec, FlowSummary, JobKey, LintSummary, Request, Response, ShedInfo,
    StaSummary, SweepSpec,
};
pub use link::{
    run_frames_with_faults, AnalogFrameReport, FaultReport, LinkConfig, LinkReport, LinkStats,
    SerdesLink,
};
pub use prbs::{PrbsChecker, PrbsGenerator, PrbsOrder};
pub use scan::{scan_chain_design, ScanChain, SCAN_BITS};
pub use serializer::{
    bits_to_frame, frame_to_bits, serializer_design, Frame, Serializer, FRAME_BITS, LANES,
    WORD_BITS,
};
pub use session::Session;
pub use sweep::parallel::CornerPoint;
#[allow(deprecated)]
pub use sweep::{bathtub, max_loss_bisect, sensitivity_sweep};
pub use sweep::{eye_width_at, BathtubPoint, Sweep, SweepOutcome, SweepPoint};
pub use top::serdes_digital_top;
