//! The fully digital oversampling clock-and-data recovery block
//! (paper §IV-C, Fig. 7).
//!
//! A phase generator derives N clock phases from the external reference;
//! the received data is sampled N times per unit interval and pushed
//! through FIFO registers into a decision block that histograms where
//! transitions land and selects the sampling phase farthest from the
//! data edges. Scan-configurable **glitch correction** (majority-of-3
//! sample smoothing) and **jitter correction** (phase-update hysteresis)
//! clean up the decision, exactly as the paper's external scan bits do.
//!
//! Two implementations, behaviourally identical where their feature sets
//! overlap:
//!
//! * [`OversamplingCdr`] — the cycle-accurate behavioural model used in
//!   link simulation,
//! * [`cdr_design`] — synthesizable RTL (edge detector, per-phase edge
//!   counters, argmax comparator tree, phase register, output mux) for
//!   the flow's area/power budget.

use crate::bitstream::BitVec;
use openserdes_flow::ir::Design;

/// CDR configuration (the paper's scan bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdrConfig {
    /// Samples per unit interval (number of clock phases).
    pub oversampling: usize,
    /// Enable majority-of-3 sample smoothing (glitch correction).
    pub glitch_filter: bool,
    /// Consecutive agreeing evaluations required before the sampling
    /// phase moves (jitter correction). 1 = move immediately.
    pub phase_hysteresis: u32,
    /// Unit intervals per decision window.
    pub window: usize,
}

impl CdrConfig {
    /// The paper's configuration: 5× oversampling, both corrections on.
    pub fn paper_default() -> Self {
        Self {
            oversampling: 5,
            glitch_filter: true,
            phase_hysteresis: 2,
            window: 32,
        }
    }

    /// The configuration the RTL implements: no glitch filter,
    /// hysteresis of one (the RTL keeps the decision datapath minimal
    /// and leaves smoothing to the scan-bypassable wrapper).
    pub fn rtl_equivalent(oversampling: usize) -> Self {
        Self {
            oversampling,
            glitch_filter: false,
            phase_hysteresis: 1,
            window: 32,
        }
    }
}

impl Default for CdrConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Behavioural oversampling CDR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OversamplingCdr {
    cfg: CdrConfig,
    phase: usize,
    edge_hist: Vec<u32>,
    win_count: usize,
    pending_target: Option<usize>,
    pending_votes: u32,
    last_sample: bool,
    locked: bool,
    phase_updates: u64,
    uis: u64,
    // Resilience bookkeeping (fault campaigns): pure observers of the
    // decision stream — they never influence phase moves or recovered
    // bits, so the fault-free path stays bit-identical.
    lock_losses: u64,
    unlock_at_ui: Option<u64>,
    relock_times: Vec<u64>,
}

impl OversamplingCdr {
    /// Creates a CDR starting at the centre phase.
    ///
    /// # Panics
    ///
    /// Panics if `oversampling` is outside `3..=64` or `window == 0`.
    pub fn new(cfg: CdrConfig) -> Self {
        assert!(cfg.oversampling >= 3, "need at least 3x oversampling");
        assert!(
            cfg.oversampling <= 64,
            "one UI must fit a 64-bit sample word"
        );
        assert!(cfg.window > 0, "decision window must be positive");
        Self {
            phase: cfg.oversampling / 2,
            edge_hist: vec![0; cfg.oversampling],
            win_count: 0,
            pending_target: None,
            pending_votes: 0,
            last_sample: false,
            locked: false,
            phase_updates: 0,
            uis: 0,
            lock_losses: 0,
            unlock_at_ui: None,
            relock_times: Vec::new(),
            cfg,
        }
    }

    /// The currently selected sampling phase index.
    pub fn selected_phase(&self) -> usize {
        self.phase
    }

    /// `true` once a decision window confirmed the current phase.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Number of phase changes so far (a jitter-tracking metric).
    pub fn phase_updates(&self) -> u64 {
        self.phase_updates
    }

    /// Unit intervals processed.
    pub fn uis_processed(&self) -> u64 {
        self.uis
    }

    /// Times the decision block, after first lock, found the data eye
    /// disagreeing with the selected phase (the resilience metric fault
    /// campaigns quantify: each loss pairs with a re-lock time once the
    /// CDR re-acquires).
    pub fn lock_losses(&self) -> u64 {
        self.lock_losses
    }

    /// Re-acquisition time of each completed lock-loss episode, in UIs
    /// from the disagreeing decision window to the next agreeing one.
    pub fn relock_times_ui(&self) -> &[u64] {
        &self.relock_times
    }

    /// When the CDR is mid-episode (lost lock, not yet re-agreed):
    /// the UI count at which disagreement was detected.
    pub fn unlocked_since_ui(&self) -> Option<u64> {
        self.unlock_at_ui
    }

    /// Processes one unit interval packed into the low `oversampling`
    /// bits of `samples` (sample 0 in bit 0; higher bits ignored),
    /// returning the recovered bit. This is the public form of the
    /// packed fast path — fault runners drive the CDR UI by UI through
    /// it so they can flip state between UIs.
    pub fn step_word(&mut self, samples: u64) -> bool {
        self.process_ui_word(samples)
    }

    /// Single-event upset: flips bit `bit` of the phase register. The
    /// result is folded back into range (a real SEU leaves the register
    /// arbitrary; the decision mux masks it the same way). Pure state
    /// corruption — lock flags and metrics are left for the decision
    /// logic to discover.
    pub fn inject_phase_flip(&mut self, bit: u32) {
        self.phase = (self.phase ^ (1usize << (bit % usize::BITS))) % self.cfg.oversampling;
    }

    /// Processes one unit interval worth of samples, returning the
    /// recovered bit.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != oversampling`.
    pub fn process_ui(&mut self, samples: &[bool]) -> bool {
        let n = self.cfg.oversampling;
        assert_eq!(samples.len(), n, "one UI is {n} samples");
        let mut word = 0u64;
        for (i, &s) in samples.iter().enumerate() {
            word |= (s as u64) << i;
        }
        self.process_ui_word(word)
    }

    /// One UI packed into the low `oversampling` bits of a word (sample
    /// 0 in bit 0). Higher bits are ignored.
    fn process_ui_word(&mut self, samples: u64) -> bool {
        let n = self.cfg.oversampling;
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let samples = samples & mask;

        // Glitch correction: majority-of-3 smoothing over the sample
        // window (previous UI's last sample patches the left edge, the
        // right edge duplicates the last sample), computed word-wide.
        let smoothed = if self.cfg.glitch_filter {
            let prev = (samples << 1) | self.last_sample as u64;
            let next = (samples >> 1) | (samples & (1u64 << (n - 1)));
            ((prev & samples) | (prev & next) | (samples & next)) & mask
        } else {
            samples
        };

        let bit = smoothed >> self.phase & 1 == 1;

        // Window bookkeeping matches the RTL: on the window's last UI the
        // decision is evaluated from the accumulated histogram and the
        // histogram clears (that UI's edges are not counted).
        if self.win_count == self.cfg.window - 1 {
            self.evaluate();
            self.edge_hist.iter_mut().for_each(|c| *c = 0);
            self.win_count = 0;
        } else {
            let mut edges = (smoothed ^ ((smoothed << 1) | self.last_sample as u64)) & mask;
            while edges != 0 {
                self.edge_hist[edges.trailing_zeros() as usize] += 1;
                edges &= edges - 1;
            }
            self.win_count += 1;
        }

        self.last_sample = smoothed >> (n - 1) & 1 == 1;
        self.uis += 1;
        bit
    }

    fn evaluate(&mut self) {
        let n = self.cfg.oversampling;
        if self.edge_hist.iter().all(|&c| c == 0) {
            // No transitions (long run): keep the phase, keep lock state.
            return;
        }
        // Modal edge position; first maximum wins (matches the RTL fold).
        let mut best = 0usize;
        for i in 1..n {
            if self.edge_hist[i] > self.edge_hist[best] {
                best = i;
            }
        }
        let target = (best + n / 2) % n;
        if target == self.phase {
            if let Some(since) = self.unlock_at_ui.take() {
                self.relock_times.push(self.uis - since);
            }
            self.locked = true;
            self.pending_target = None;
            self.pending_votes = 0;
            return;
        }
        // Resilience metric: a post-lock window disagreeing with the
        // selected phase opens a lock-loss episode; it closes at the
        // next agreeing window (directly above, or after a hysteresis
        // move below). Observers only — phase decisions are unchanged.
        if self.locked && self.unlock_at_ui.is_none() {
            self.lock_losses += 1;
            self.unlock_at_ui = Some(self.uis);
        }
        // Jitter correction: require `phase_hysteresis` consecutive
        // windows agreeing on the same move.
        if self.pending_target == Some(target) {
            self.pending_votes += 1;
        } else {
            self.pending_target = Some(target);
            self.pending_votes = 1;
        }
        if self.pending_votes >= self.cfg.phase_hysteresis {
            self.phase = target;
            self.phase_updates += 1;
            if let Some(since) = self.unlock_at_ui.take() {
                self.relock_times.push(self.uis - since);
            }
            self.locked = true;
            self.pending_target = None;
            self.pending_votes = 0;
        }
    }

    /// Convenience: processes a flattened oversampled stream
    /// (`len = k · oversampling`), returning the recovered bits.
    ///
    /// # Panics
    ///
    /// Panics if the stream length is not a whole number of UIs.
    pub fn recover(&mut self, stream: &[bool]) -> Vec<bool> {
        assert_eq!(
            stream.len() % self.cfg.oversampling,
            0,
            "stream must be whole UIs"
        );
        stream
            .chunks(self.cfg.oversampling)
            .map(|ui| self.process_ui(ui))
            .collect()
    }

    /// Packed fast path of [`Self::recover`]: each UI is one windowed
    /// word read, the recovered bits come back packed.
    ///
    /// # Panics
    ///
    /// Panics if the stream length is not a whole number of UIs.
    pub fn recover_packed(&mut self, stream: &BitVec) -> BitVec {
        let n = self.cfg.oversampling;
        assert_eq!(stream.len() % n, 0, "stream must be whole UIs");
        let uis = stream.len() / n;
        let mut out = BitVec::with_capacity(uis);
        for k in 0..uis {
            out.push(self.process_ui_word(stream.window64(k * n)));
        }
        out
    }
}

/// Generates an oversampled sample stream from a bit sequence: `n`
/// samples per UI, the whole stream shifted by `phase_frac` of a UI,
/// each edge additionally jittered by a deterministic per-edge offset
/// drawn from a seeded Gaussian of `rj_sigma_ui` UIs.
///
/// Jitter is symmetric: a positive draw moves an edge late (early
/// samples of the bit still see the previous bit), a negative draw
/// moves it early (late samples of the previous bit already see the
/// next bit).
pub fn oversample_bits(
    bits: &[bool],
    n: usize,
    phase_frac: f64,
    rj_sigma_ui: f64,
    seed: u64,
) -> Vec<bool> {
    oversample_bits_packed(&BitVec::from_bools(bits), n, phase_frac, rj_sigma_ui, seed).to_bools()
}

/// Packed fast path of [`oversample_bits`]: same stream, bit for bit.
pub fn oversample_bits_packed(
    bits: &BitVec,
    n: usize,
    phase_frac: f64,
    rj_sigma_ui: f64,
    seed: u64,
) -> BitVec {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let jitter: Vec<f64> = (0..=bits.len())
        .map(|_| {
            if rj_sigma_ui <= 0.0 {
                0.0
            } else {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * rj_sigma_ui
            }
        })
        .collect();
    let len = bits.len();
    let mut out = BitVec::with_capacity(len * n);
    for i in 0..len {
        for j in 0..n {
            // Sample time in UI units, then locate the governing bit.
            let t = i as f64 + (j as f64 + 0.5) / n as f64 + phase_frac;
            let idx = t.floor() as isize;
            let frac = t - idx as f64;
            let idx = idx.clamp(0, len as isize - 1) as usize;
            // The edge at the start of bit `idx` moves by jitter[idx],
            // the one at its end by jitter[idx + 1]; either can hand the
            // sample to a neighbouring bit.
            let bit = if idx > 0 && frac < jitter[idx] {
                bits.get(idx - 1)
            } else if idx + 1 < len && frac >= 1.0 + jitter[idx + 1] {
                bits.get(idx + 1)
            } else {
                bits.get(idx)
            };
            out.push(bit);
        }
    }
    out
}

/// Emits the CDR decision datapath as synthesizable RTL (for the area
/// and power budget): edge detector, per-phase 6-bit edge counters, a
/// 5-bit window counter, an argmax comparator tree, the phase register
/// and the output sample mux. Implements
/// [`CdrConfig::rtl_equivalent`] semantics.
///
/// # Panics
///
/// Panics if `oversampling` is not in `3..=8`.
pub fn cdr_design(oversampling: usize) -> Design {
    assert!((3..=8).contains(&oversampling), "RTL supports 3..=8 phases");
    let n = oversampling;
    let mut d = Design::new("cdr");
    let samples = d.input_bus("samples", n);
    let last = d.reg();
    d.connect_reg(last, samples[n - 1]);

    // Edge detector.
    let edges: Vec<_> = (0..n)
        .map(|i| {
            let prev = if i == 0 { last } else { samples[i - 1] };
            d.xor(prev, samples[i])
        })
        .collect();

    // Window counter: 0..=31.
    let win = d.reg_bus(5);
    let win_inc = d.incr(&win);
    let window_end = d.eq_const(&win, 31);
    let zero5 = d.const_bus(5, 0);
    let win_next = d.mux_bus(&win_inc, &zero5, window_end);
    d.connect_reg_bus(&win, &win_next);

    // Per-phase 6-bit edge counters, cleared at window end.
    let zero6 = d.const_bus(6, 0);
    let counters: Vec<Vec<_>> = (0..n)
        .map(|i| {
            let cnt = d.reg_bus(6);
            let inc = d.incr(&cnt);
            let bumped = d.mux_bus(&cnt, &inc, edges[i]);
            let next = d.mux_bus(&bumped, &zero6, window_end);
            d.connect_reg_bus(&cnt, &next);
            cnt
        })
        .collect();

    // Argmax fold: first maximum wins (strict greater-than to advance).
    let mut best_val = counters[0].clone();
    let mut best_idx = d.const_bus(3, 0);
    for (i, cnt) in counters.iter().enumerate().skip(1) {
        let is_gt = d.gt(cnt, &best_val);
        // The running maximum feeds only later comparisons; updating
        // it on the final iteration would be dead logic.
        if i + 1 < counters.len() {
            best_val = d.mux_bus(&best_val, cnt, is_gt);
        }
        let idx_const = d.const_bus(3, i as u64);
        best_idx = d.mux_bus(&best_idx, &idx_const, is_gt);
    }

    // Any edges seen this window?
    let all_cnt_bits: Vec<_> = counters.iter().flatten().copied().collect();
    let any_edges = d.or_reduce(&all_cnt_bits);

    // The register stores the modal *edge* position; at power-up (0) the
    // sampling phase is the centre `n/2`, matching the behavioural model.
    let edge_pos = d.reg_bus(3);
    let update = d.and(window_end, any_edges);
    let edge_next = d.mux_bus(&edge_pos, &best_idx, update);
    d.connect_reg_bus(&edge_pos, &edge_next);
    // The argmax is consumed only once per 32-UI window and the link
    // tolerates the phase decision landing several UIs late, so the
    // comparator tree is a declared multicycle path (factor 8,
    // conservative against the 32-cycle window).
    for &q in &edge_pos {
        d.set_multicycle(q, 8);
    }

    // Sampling phase = (edge_pos + n/2) mod n, via constant lookup.
    let sel: Vec<_> = (0..3)
        .map(|b| {
            let leaves: Vec<_> = (0..8)
                .map(|idx| {
                    let t = if idx < n { (idx + n / 2) % n } else { 0 };
                    d.constant(t >> b & 1 == 1)
                })
                .collect();
            d.mux_tree(&leaves, &edge_pos)
        })
        .collect();

    // Recovered bit: samples[sel] (leaves padded to 8).
    let padded: Vec<_> = (0..8).map(|i| samples[i.min(n - 1)]).collect();
    let bit = d.mux_tree(&padded, &sel);
    d.output("bit_out", bit);
    d.output_bus("phase", &sel);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbs::{PrbsGenerator, PrbsOrder};
    use openserdes_flow::ir::IrSim;

    fn prbs_bits(n: usize) -> Vec<bool> {
        PrbsGenerator::new(PrbsOrder::Prbs15).take_bits(n)
    }

    #[test]
    fn locks_and_recovers_clean_stream() {
        let bits = prbs_bits(2_000);
        let stream = oversample_bits(&bits, 5, 0.0, 0.0, 1);
        let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
        let out = cdr.recover(&stream);
        assert!(cdr.is_locked());
        // After the first decision window everything matches.
        let skip = 2 * 32;
        assert_eq!(out[skip..], bits[skip..], "post-lock recovery is exact");
    }

    #[test]
    fn finds_optimal_phase_for_offset_stream() {
        // Shift the eye by 2/5 UI: the edge lands near sample 0/1, so the
        // best sampling phase moves away from the initial centre.
        let bits = prbs_bits(3_000);
        for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let stream = oversample_bits(&bits, 5, frac, 0.0, 1);
            let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
            let out = cdr.recover(&stream);
            let skip = 4 * 32;
            // Allow ±1 bit of alignment slack: phase offsets near a UI
            // boundary legitimately shift the recovered stream by one
            // bit (leading or lagging).
            let errors_at = |lag: isize| -> usize {
                out[skip..]
                    .iter()
                    .zip(&bits[(skip as isize + lag) as usize..])
                    .filter(|(a, b)| a != b)
                    .count()
            };
            let best = [-1, 0, 1].map(errors_at);
            assert!(
                best.contains(&0),
                "offset {frac}: errors at lags -1/0/+1 = {best:?}"
            );
        }
    }

    #[test]
    fn tracks_jittered_stream() {
        let bits = prbs_bits(5_000);
        let stream = oversample_bits(&bits, 5, 0.1, 0.05, 7);
        let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
        let out = cdr.recover(&stream);
        let skip = 4 * 32;
        let errors = out[skip..]
            .iter()
            .zip(&bits[skip..])
            .filter(|(a, b)| a != b)
            .count();
        let ber = errors as f64 / (out.len() - skip) as f64;
        assert!(ber < 0.01, "jittered BER = {ber}");
        assert!(cdr.is_locked());
    }

    #[test]
    fn glitch_filter_cleans_single_sample_glitches() {
        let bits = prbs_bits(2_000);
        let mut stream = oversample_bits(&bits, 5, 0.0, 0.0, 1);
        // Inject isolated glitch samples (every 37th sample flipped).
        for i in (0..stream.len()).step_by(37) {
            stream[i] = !stream[i];
        }
        let run = |filter: bool| {
            let mut cfg = CdrConfig::paper_default();
            cfg.glitch_filter = filter;
            let mut cdr = OversamplingCdr::new(cfg);
            let out = cdr.recover(&stream);
            let skip = 4 * 32;
            out[skip..]
                .iter()
                .zip(&bits[skip..])
                .filter(|(a, b)| a != b)
                .count()
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without,
            "glitch filter must help: {with} vs {without}"
        );
        assert_eq!(with, 0, "filtered stream recovers perfectly");
    }

    #[test]
    fn hysteresis_suppresses_phase_hunting() {
        // Alternate the stream offset every window to tempt the CDR into
        // hunting; high hysteresis should move the phase less.
        let bits = prbs_bits(4_000);
        let run = |hyst: u32| {
            let mut cfg = CdrConfig::paper_default();
            cfg.phase_hysteresis = hyst;
            let mut cdr = OversamplingCdr::new(cfg);
            for (k, chunk) in bits.chunks(32).enumerate() {
                let frac = if k % 2 == 0 { 0.05 } else { 0.25 };
                let stream = oversample_bits(chunk, 5, frac, 0.0, 3);
                let _ = cdr.recover(&stream);
            }
            cdr.phase_updates()
        };
        let nervous = run(1);
        let calm = run(4);
        assert!(calm <= nervous, "hysteresis: {calm} vs {nervous}");
    }

    #[test]
    fn long_runs_hold_phase() {
        // All-zero data has no edges: the CDR must keep its phase.
        let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
        let before = cdr.selected_phase();
        let stream = vec![false; 5 * 500];
        let out = cdr.recover(&stream);
        assert_eq!(cdr.selected_phase(), before);
        assert!(out.iter().all(|&b| !b));
        assert_eq!(cdr.phase_updates(), 0);
    }

    #[test]
    fn rtl_matches_behavioural_on_clean_stream() {
        let bits = prbs_bits(1_500);
        let stream = oversample_bits(&bits, 5, 0.3, 0.0, 1);
        // Behavioural reference in RTL-equivalent mode.
        let mut cdr = OversamplingCdr::new(CdrConfig::rtl_equivalent(5));
        let expect = cdr.recover(&stream);

        let design = cdr_design(5);
        let mut sim = IrSim::new(&design);
        let out_sig = design
            .outputs()
            .iter()
            .find(|(n, _)| n == "bit_out")
            .expect("bit_out")
            .1;
        let mut got = Vec::new();
        for ui in stream.chunks(5) {
            for (i, &s) in ui.iter().enumerate() {
                sim.set_by_name(&format!("samples[{i}]"), s);
            }
            // Output is combinational from the current samples + phase.
            sim.settle();
            got.push(sim.get(out_sig));
            sim.tick();
        }
        assert_eq!(got, expect, "RTL and behavioural CDR must agree");
    }

    #[test]
    fn rtl_synthesizes() {
        let lib = openserdes_pdk::library::Library::sky130(openserdes_pdk::corner::Pvt::nominal());
        let res = openserdes_flow::synthesize(&cdr_design(5), &lib).expect("ok");
        // 1 last + 5 win + 5×6 counters + 3 phase = 39 flops.
        assert_eq!(res.netlist.flop_count(), 39);
        assert!(res.netlist.cell_count() > 100);
    }

    #[test]
    fn rtl_has_no_dead_logic() {
        // Regression: the argmax fold used to refresh its running
        // maximum after the final comparison, leaving a 6-bit mux bank
        // outside every output cone (IR002 dead logic per CDR).
        let report = cdr_design(5).lint(&openserdes_lint::LintConfig::default());
        assert!(
            report
                .findings()
                .iter()
                .all(|f| f.rule != openserdes_lint::Rule::DeadNode),
            "cdr_design must not carry dead IR nodes:\n{report}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 3x")]
    fn low_oversampling_rejected() {
        let mut cfg = CdrConfig::paper_default();
        cfg.oversampling = 2;
        let _ = OversamplingCdr::new(cfg);
    }

    #[test]
    fn jitter_moves_edges_both_directions() {
        // One rising edge at t = 1.0 UI; Gaussian jitter must shift it
        // early about as often as late. The old sampler only honoured
        // positive draws, so the recovered edge could never land early.
        let bits = [false, true];
        let n = 50;
        let (mut early, mut late) = (0u32, 0u32);
        for seed in 0..400 {
            let s = oversample_bits(&bits, n, 0.0, 0.2, seed);
            let edge = s.iter().position(|&b| b).unwrap_or(2 * n);
            match edge.cmp(&n) {
                std::cmp::Ordering::Less => early += 1,
                std::cmp::Ordering::Greater => late += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        assert!(early > 50, "edges must move early too: {early}");
        assert!(late > 50, "edges must still move late: {late}");
        let ratio = early as f64 / late as f64;
        assert!((0.5..2.0).contains(&ratio), "early/late = {early}/{late}");
    }

    #[test]
    fn packed_recover_matches_bool_path() {
        let bits = prbs_bits(2_000);
        let stream = oversample_bits(&bits, 5, 0.23, 0.04, 11);
        let packed = oversample_bits_packed(
            &crate::bitstream::BitVec::from_bools(&bits),
            5,
            0.23,
            0.04,
            11,
        );
        assert_eq!(packed.to_bools(), stream, "samplers agree bit for bit");
        let mut a = OversamplingCdr::new(CdrConfig::paper_default());
        let mut b = OversamplingCdr::new(CdrConfig::paper_default());
        let out_a = a.recover(&stream);
        let out_b = b.recover_packed(&packed);
        assert_eq!(out_b.to_bools(), out_a, "recovery agrees bit for bit");
        assert_eq!(a, b, "CDR state agrees");
    }

    #[test]
    fn fault_free_run_reports_no_lock_losses() {
        let bits = prbs_bits(4_000);
        let stream = oversample_bits(&bits, 5, 0.0, 0.0, 7);
        let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
        let _ = cdr.recover(&stream);
        assert!(cdr.is_locked());
        assert_eq!(cdr.lock_losses(), 0);
        assert!(cdr.relock_times_ui().is_empty());
        assert_eq!(cdr.unlocked_since_ui(), None);
    }

    #[test]
    fn injected_phase_flip_is_detected_and_relocked() {
        let bits = prbs_bits(4_000);
        let stream = oversample_bits(&bits, 5, 0.0, 0.0, 1);
        let mut cdr = OversamplingCdr::new(CdrConfig::paper_default());
        // Lock on the first half.
        let half = stream.len() / 2 / 5 * 5;
        let _ = cdr.recover(&stream[..half]);
        assert!(cdr.is_locked());
        let before = cdr.selected_phase();
        cdr.inject_phase_flip(1);
        assert_ne!(cdr.selected_phase(), before, "flip must change the phase");
        let _ = cdr.recover(&stream[half..]);
        assert_eq!(cdr.lock_losses(), 1, "the upset must be detected");
        assert_eq!(cdr.relock_times_ui().len(), 1);
        // Re-lock takes the disagreeing window plus `hysteresis` voting
        // windows — bound it at a handful of windows.
        assert!(
            cdr.relock_times_ui()[0] <= 4 * 32,
            "re-lock in {} UIs",
            cdr.relock_times_ui()[0]
        );
        assert_eq!(cdr.unlocked_since_ui(), None, "episode must be closed");
        assert_eq!(cdr.selected_phase(), before, "phase recovers");
    }

    #[test]
    fn step_word_matches_process_ui() {
        let bits = prbs_bits(500);
        let stream = oversample_bits(&bits, 5, 0.2, 0.03, 3);
        let mut a = OversamplingCdr::new(CdrConfig::paper_default());
        let mut b = OversamplingCdr::new(CdrConfig::paper_default());
        for ui in stream.chunks(5) {
            let mut word = 0u64;
            for (i, &s) in ui.iter().enumerate() {
                word |= (s as u64) << i;
            }
            assert_eq!(a.process_ui(ui), b.step_word(word));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn oversample_helper_produces_n_per_bit() {
        let bits = [true, false, true];
        let s = oversample_bits(&bits, 4, 0.0, 0.0, 1);
        assert_eq!(s.len(), 12);
        assert_eq!(&s[..4], &[true; 4]);
        assert_eq!(&s[4..8], &[false; 4]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The resilience contract the fault campaigns rely on: after
            /// an SEU flips any bit of the phase register at any stream
            /// alignment, `paper_default` detects the upset and re-locks
            /// within a bounded number of decision windows.
            #[test]
            fn paper_default_relocks_bounded_after_phase_glitch(
                phase_pm in 0u32..100,
                bit in 0u32..3,
            ) {
                let cfg = CdrConfig::paper_default();
                let bits = prbs_bits(4_000);
                let phase_frac = f64::from(phase_pm) / 125.0; // 0.0..0.8 UI
                let stream = oversample_bits(&bits, cfg.oversampling, phase_frac, 0.0, 1);
                let half = stream.len() / 2 / cfg.oversampling * cfg.oversampling;

                let mut cdr = OversamplingCdr::new(cfg);
                let _ = cdr.recover(&stream[..half]);
                prop_assert!(cdr.is_locked(), "must lock on the clean half");
                let baseline = cdr.lock_losses();
                prop_assert_eq!(baseline, 0, "clean jitter-free stream");

                let before = cdr.selected_phase();
                cdr.inject_phase_flip(bit);
                prop_assert!(cdr.selected_phase() != before, "flip must move the phase");
                let _ = cdr.recover(&stream[half..]);

                prop_assert!(cdr.lock_losses() >= 1, "the upset must be detected");
                prop_assert_eq!(cdr.unlocked_since_ui(), None, "episode must close");
                let bound = 6 * cfg.window as u64;
                for &t in cdr.relock_times_ui() {
                    prop_assert!(t <= bound, "re-lock took {t} UIs (bound {bound})");
                }
            }
        }
    }
}
