//! One coherent entry point over the whole workspace: link runs, analog
//! transients, the RTL→layout flow, design lint and the Monte-Carlo
//! sweeps, all behind a single consuming-builder [`Session`].
//!
//! Prior to the session API each subsystem had its own spelling
//! (`SerdesLink::run_frames`, `run_flow`, the `lint`/`bathtub`/…
//! free functions). Those entry points still exist as deprecated shims;
//! a `Session` reproduces their outputs exactly — it threads the same
//! configs into the same engines — while adding what the scattered
//! spellings could not: one place to set the operating point
//! (rate/corner/seed) for every run, and built-in telemetry capture.
//!
//! ```
//! use openserdes_core::session::Session;
//!
//! let mut session = Session::new().with_seed(42).with_telemetry(true);
//! let frames = [[0xDEAD_BEEF_u32, 1, 2, 3, 4, 5, 6, 7]; 2];
//! let report = session.run_link(&frames)?;
//! assert!(report.error_free());
//! // Telemetry captured by the run, merged deterministically:
//! assert!(session.telemetry().counter("link.tx_bits") > 0);
//! # Ok::<(), openserdes_core::error::Error>(())
//! ```

use crate::error::Error;
use crate::job::{FlowSummary, LintSummary, Request, Response, StaSummary};
use crate::link::{self, AnalogFrameReport, FaultReport, LinkConfig, LinkReport};
use crate::serializer::Frame;
use crate::sweep::parallel::CornerPoint;
use crate::sweep::{BathtubPoint, Sweep, SweepOutcome, SweepPoint};
use openserdes_fault::FaultSchedule;
use openserdes_flow::ir::Design;
use openserdes_flow::{Flow, FlowConfig, FlowResult, Sta, StaConfig, StaReport};
use openserdes_lint::{LintConfig, LintReport};
use openserdes_netlist::Netlist;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::Hertz;
use openserdes_phy::ChannelModel;
use openserdes_telemetry as telemetry;

/// The unified front door: holds one operating point (link config, flow
/// config, lint policy, sweep options, run seed) and runs any engine at
/// it. Construct with [`Session::new`], shape with the consuming
/// `with_*` builders, then call the `run_*`/sweep methods.
///
/// When telemetry is enabled ([`Session::with_telemetry`]) every run
/// executes under an enabled telemetry scope and its spans, counters
/// and histograms are merged into the session's accumulated
/// [`telemetry::Record`] — deterministically, so two sessions issuing
/// the same runs hold bit-identical records regardless of worker
/// counts. Inspect with [`Session::telemetry`], drain with
/// [`Session::take_telemetry`].
#[derive(Debug, Clone)]
pub struct Session {
    link: LinkConfig,
    flow: FlowConfig,
    sta: StaConfig,
    lint: LintConfig,
    sweep: Sweep,
    seed: u64,
    telemetry: bool,
    record: telemetry::Record,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session at the paper's operating point (2 Gb/s over a 34 dB
    /// channel, nominal corner), telemetry off.
    pub fn new() -> Self {
        Self {
            link: LinkConfig::paper_default(),
            flow: FlowConfig::default(),
            sta: StaConfig::default(),
            lint: LintConfig::default(),
            sweep: Sweep::new(),
            seed: 42,
            telemetry: false,
            record: telemetry::Record::new(),
        }
    }

    // ---- builders ---------------------------------------------------

    /// Replace the whole link configuration.
    #[must_use]
    pub fn with_link_config(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Set the data rate for link runs and sweeps.
    #[must_use]
    pub fn with_rate(mut self, rate: Hertz) -> Self {
        self.link.data_rate = rate;
        self
    }

    /// Set the PVT corner for both the link and the flow.
    #[must_use]
    pub fn with_corner(mut self, pvt: Pvt) -> Self {
        self.link.pvt = pvt;
        self.flow.pvt = pvt;
        self
    }

    /// Set the channel model (attenuation, jitter) for link runs.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelModel) -> Self {
        self.link.channel = channel;
        self
    }

    /// Replace the whole flow configuration.
    #[must_use]
    pub fn with_flow_config(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Replace the standalone timing-signoff configuration used by
    /// [`Session::sta`] (clock, slews, uncertainties, derates,
    /// secondary clocks, exceptions).
    #[must_use]
    pub fn with_sta_config(mut self, sta: StaConfig) -> Self {
        self.sta = sta;
        self
    }

    /// Set the lint policy, used by [`Session::lint`] /
    /// [`Session::lint_netlist`] and as the flow's lint gate.
    #[must_use]
    pub fn with_lint_config(mut self, lint: LintConfig) -> Self {
        self.flow.lint = lint.clone();
        self.lint = lint;
        self
    }

    /// Replace the sweep options (bits, phases, frames, tolerance).
    /// The sweep's own seed and thread count still apply.
    #[must_use]
    pub fn with_sweep(mut self, sweep: Sweep) -> Self {
        self.sweep = sweep;
        self
    }

    /// Set the run seed for link runs and Monte-Carlo sweeps.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.sweep = self.sweep.with_seed(seed);
        self
    }

    /// Set the worker-thread count for sweeps. Results are identical
    /// for any value; only wall time changes.
    ///
    /// Contract: `0` is clamped to `1` (see [`Sweep::with_threads`]),
    /// so wire-supplied configs can never poison the worker pool.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sweep = self.sweep.with_threads(threads);
        self
    }

    /// Enable or disable telemetry capture for every subsequent run.
    #[must_use]
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    // ---- accessors --------------------------------------------------

    /// The link configuration the session runs at.
    pub fn link_config(&self) -> &LinkConfig {
        &self.link
    }

    /// The flow configuration the session runs at.
    pub fn flow_config(&self) -> &FlowConfig {
        &self.flow
    }

    /// The standalone timing-signoff configuration.
    pub fn sta_config(&self) -> &StaConfig {
        &self.sta
    }

    /// The lint policy.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint
    }

    /// The sweep options.
    pub fn sweep_options(&self) -> &Sweep {
        &self.sweep
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Telemetry accumulated by this session's runs so far (empty when
    /// telemetry is disabled).
    pub fn telemetry(&self) -> &telemetry::Record {
        &self.record
    }

    /// Drain the accumulated telemetry, leaving the session's record
    /// empty — hand the result to the exporters in
    /// `openserdes_telemetry::export`.
    pub fn take_telemetry(&mut self) -> telemetry::Record {
        std::mem::take(&mut self.record)
    }

    // ---- runs -------------------------------------------------------

    /// Run `frames` through the full link (serializer → statistical PHY
    /// → CDR → deserializer) at the session's operating point and seed.
    ///
    /// # Errors
    ///
    /// Propagates link failures as the unified [`Error`].
    pub fn run_link(&mut self, frames: &[Frame]) -> Result<LinkReport, Error> {
        let (link, seed) = (self.link.clone(), self.seed);
        self.scoped(|| link::run_frames(&link, frames, seed))
            .map_err(Error::from)
    }

    /// Run one frame through the transistor-level analog PHY transient
    /// (slow; the full SPICE-style route).
    ///
    /// # Errors
    ///
    /// Propagates solver and link failures as the unified [`Error`].
    pub fn run_analog_link(&mut self, frame: Frame) -> Result<AnalogFrameReport, Error> {
        let link = self.link.clone();
        self.scoped(|| link::run_frame_analog(&link, frame))
            .map_err(Error::from)
    }

    /// Run `frames` through the link while injecting the faults in
    /// `schedule` (channel bursts/dropouts/droops, clock glitches and
    /// drift, SEUs), and report the link outcome together with the
    /// CDR's resilience metrics. An empty schedule reproduces
    /// [`Session::run_link`] bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates link failures as the unified [`Error`].
    pub fn run_link_with_faults(
        &mut self,
        frames: &[Frame],
        schedule: &FaultSchedule,
    ) -> Result<FaultReport, Error> {
        let (link, seed) = (self.link.clone(), self.seed);
        self.scoped(|| link::run_frames_with_faults(&link, frames, seed, schedule))
            .map_err(Error::from)
    }

    /// Push a design through the RTL→layout flow (synthesis → place →
    /// CTS → route → STA → power) at the session's corner.
    ///
    /// # Errors
    ///
    /// Propagates flow failures as the unified [`Error`].
    pub fn run_flow(&mut self, design: &Design) -> Result<FlowResult, Error> {
        let flow = Flow::new().with_config(self.flow.clone());
        self.scoped(|| flow.run(design)).map_err(Error::from)
    }

    /// Run standalone static timing signoff over a mapped netlist at
    /// the session's corner and STA configuration (see
    /// [`Session::with_sta_config`]). Pass a route for post-layout wire
    /// RC, or `None` for the pre-layout wireload estimate. The returned
    /// [`StaReport`] carries per-net slack, top-K path reports, clock
    /// domains and the `TM0xx` findings bridge.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures as the unified [`Error`].
    pub fn sta(
        &mut self,
        netlist: &Netlist,
        route: Option<&openserdes_flow::route::RouteResult>,
    ) -> Result<StaReport, Error> {
        let sta = Sta::new().with_config(self.sta.clone());
        let pvt = self.flow.pvt;
        self.scoped(|| {
            let library = openserdes_pdk::library::Library::sky130(pvt);
            sta.run(netlist, &library, route)
        })
        .map_err(Error::from)
    }

    /// Run the `IR0xx` lint rules over a design under the session's
    /// lint policy.
    pub fn lint(&mut self, design: &Design) -> LintReport {
        let lint = self.lint.clone();
        self.scoped(|| design.lint(&lint))
    }

    /// Run the `NL0xx` ERC rules over a gate-level netlist under the
    /// session's lint policy.
    pub fn lint_netlist(&mut self, netlist: &Netlist) -> LintReport {
        let lint = self.lint.clone();
        self.scoped(|| netlist.lint(&lint))
    }

    // ---- sweeps -----------------------------------------------------

    /// BER bathtub at the session's operating point.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as the unified [`Error`].
    pub fn bathtub(&mut self) -> Result<Vec<BathtubPoint>, Error> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.bathtub(&link)).map_err(Error::from)
    }

    /// Maximum error-free channel loss at the session's operating point.
    ///
    /// # Errors
    ///
    /// Propagates link failures as the unified [`Error`].
    pub fn max_loss(&mut self) -> Result<f64, Error> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.max_loss(&link)).map_err(Error::from)
    }

    /// Maximum channel loss at each data rate.
    ///
    /// # Errors
    ///
    /// Propagates the first link failure in rate order.
    pub fn rate_sweep(&mut self, rates: &[Hertz]) -> Result<Vec<SweepPoint>, Error> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.rate_sweep(&link, rates))
            .map_err(Error::from)
    }

    /// Maximum channel loss and front-end sensitivity at the tt/ss/ff
    /// corners. The corner bias points are solved in one batched
    /// lockstep DC solve before the loss bisections fan out.
    ///
    /// # Errors
    ///
    /// Propagates the first link failure in corner order.
    pub fn corner_sweep(&mut self) -> Result<Vec<CornerPoint>, Error> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.corner_sweep(&link))
            .map_err(Error::from)
    }

    /// Fault-isolated [`Session::bathtub`]: a panicking phase lands in
    /// [`SweepOutcome::failed`] instead of aborting the sweep.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the shared characterization.
    pub fn try_bathtub(&mut self) -> Result<SweepOutcome<BathtubPoint>, Error> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.try_bathtub(&link))
            .map_err(Error::from)
    }

    /// Fault-isolated [`Session::rate_sweep`]: each rate point is
    /// isolated; one poisoned rate reports in
    /// [`SweepOutcome::failed`] while the others complete.
    pub fn try_rate_sweep(&mut self, rates: &[Hertz]) -> SweepOutcome<SweepPoint> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.try_rate_sweep(&link, rates))
    }

    /// Fault-isolated [`Session::corner_sweep`], one isolated item per
    /// corner.
    pub fn try_corner_sweep(&mut self) -> SweepOutcome<CornerPoint> {
        let (sweep, link) = (self.sweep, self.link.clone());
        self.scoped(|| sweep.try_corner_sweep(&link))
    }

    /// Model-route sensitivity sweep across `rates` at the session's
    /// corner.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as the unified [`Error`].
    pub fn sensitivity_sweep(&mut self, rates: &[Hertz]) -> Result<Vec<SweepPoint>, Error> {
        let (sweep, pvt) = (self.sweep, self.link.pvt);
        self.scoped(|| sweep.sensitivity(pvt, rates))
            .map_err(Error::from)
    }

    // ---- serializable job API ---------------------------------------

    /// Run one serializable job. This is the same engine surface as the
    /// typed `run_*`/sweep methods behind one wire-shaped vocabulary:
    /// the [`Request`] carries its full operating point, and the only
    /// session state that participates is the run seed (half of the
    /// job's content address, see [`crate::job::JobKey`]), the sweep
    /// worker count (never changes results) and the telemetry policy.
    /// Identical `(Request, seed)` pairs therefore produce
    /// byte-identical canonical [`Response`] payloads on any host at
    /// any worker count — the property the `openserdes-serve` cache
    /// and coalescer are built on.
    ///
    /// The typed methods remain the ergonomic in-process path; `submit`
    /// is for callers that hold jobs as data (servers, queues, replay).
    ///
    /// # Errors
    ///
    /// Propagates engine failures as the unified [`Error`]; never
    /// returns [`Error::Parse`] (parsing happens before a `Request`
    /// exists).
    pub fn submit(&mut self, request: &Request) -> Result<Response, Error> {
        let seed = self.seed;
        let req_sweep =
            |spec: &crate::job::SweepSpec, base: Sweep| spec.apply(base).with_seed(seed);
        match request {
            Request::RunLink { config, frames } => {
                let config = config.clone();
                self.scoped(|| link::run_frames(&config, frames, seed))
                    .map(Response::Link)
                    .map_err(Error::from)
            }
            Request::RunLinkWithFaults {
                config,
                frames,
                schedule,
            } => {
                let config = config.clone();
                self.scoped(|| link::run_frames_with_faults(&config, frames, seed, schedule))
                    .map(Response::Faulted)
                    .map_err(Error::from)
            }
            Request::RunFlow { design, pvt } => {
                let flow = Flow::new().with_config(FlowConfig {
                    pvt: *pvt,
                    ..FlowConfig::default()
                });
                let built = design.build();
                self.scoped(|| flow.run(&built))
                    .map(|result| Response::Flow(FlowSummary::from_result(design, &result)))
                    .map_err(Error::from)
            }
            Request::Bathtub { config, sweep } => {
                let (sweep, config) = (req_sweep(sweep, self.sweep), config.clone());
                self.scoped(|| sweep.bathtub(&config))
                    .map(Response::Bathtub)
                    .map_err(Error::from)
            }
            Request::MaxLoss { config, sweep } => {
                let (sweep, config) = (req_sweep(sweep, self.sweep), config.clone());
                self.scoped(|| sweep.max_loss(&config))
                    .map(|max_loss_db| Response::MaxLoss { max_loss_db })
                    .map_err(Error::from)
            }
            Request::RateSweep {
                config,
                sweep,
                rates,
            } => {
                let (sweep, config) = (req_sweep(sweep, self.sweep), config.clone());
                self.scoped(|| sweep.rate_sweep(&config, rates))
                    .map(Response::Rates)
                    .map_err(Error::from)
            }
            Request::CornerSweep { config, sweep } => {
                let (sweep, config) = (req_sweep(sweep, self.sweep), config.clone());
                self.scoped(|| sweep.corner_sweep(&config))
                    .map(Response::Corners)
                    .map_err(Error::from)
            }
            Request::Sta { design, pvt, clock } => {
                let built = design.build();
                let (pvt, clock) = (*pvt, *clock);
                self.scoped(|| {
                    let library = openserdes_pdk::library::Library::sky130(pvt);
                    let synth = openserdes_flow::synthesize(&built, &library)?;
                    let mut cfg = StaConfig::at_clock(clock);
                    cfg.multicycle = synth.multicycle.clone();
                    let report = Sta::new()
                        .with_config(cfg)
                        .run(&synth.netlist, &library, None)?;
                    Ok(Response::Sta(StaSummary::from_report(design, &report)))
                })
                .map_err(|e: openserdes_netlist::NetlistError| e.into())
            }
            Request::Lint { design } => {
                let built = design.build();
                let lint = LintConfig::default();
                let report = self.scoped(|| built.lint(&lint));
                Ok(Response::Lint(LintSummary::from_report(&report)))
            }
        }
    }

    /// Run `f` under the session's telemetry policy: when capture is on,
    /// enable recording for the duration, collect what `f` records, and
    /// merge it into the session's accumulated record.
    fn scoped<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if !self.telemetry {
            return f();
        }
        let was = telemetry::is_enabled();
        telemetry::set_enabled(true);
        let (out, rec) = telemetry::collect(f);
        telemetry::set_enabled(was);
        self.record.merge(rec, telemetry::max_events());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = [0u32; 8];
                for (k, w) in f.iter_mut().enumerate() {
                    *w = (i * 8 + k) as u32 ^ 0xA5A5_5A5A;
                }
                f
            })
            .collect()
    }

    #[test]
    fn session_matches_link_engine() {
        let stim = frames(3);
        let direct = link::run_frames(&LinkConfig::paper_default(), &stim, 7).expect("direct");
        let via = Session::new()
            .with_seed(7)
            .run_link(&stim)
            .expect("session");
        assert_eq!(via, direct);
        assert_eq!(via.bit_errors, direct.bit_errors);
    }

    #[test]
    fn telemetry_accumulates_and_drains() {
        let mut s = Session::new().with_telemetry(true);
        s.run_link(&frames(1)).expect("runs");
        assert!(s.telemetry().counter("link.tx_bits") > 0);
        assert!(s.telemetry().span("link.run").is_some());
        let rec = s.take_telemetry();
        assert!(!rec.is_empty());
        assert!(s.telemetry().is_empty(), "drained");
        // Telemetry disabled: runs record nothing.
        let mut quiet = Session::new();
        quiet.run_link(&frames(1)).expect("runs");
        assert!(quiet.telemetry().is_empty());
    }

    #[test]
    fn operating_point_threads_through() {
        let s = Session::new()
            .with_rate(Hertz::from_ghz(1.0))
            .with_corner(Pvt::worst_case());
        assert_eq!(s.link_config().data_rate, Hertz::from_ghz(1.0));
        assert_eq!(s.link_config().pvt, Pvt::worst_case());
        assert_eq!(s.flow_config().pvt, Pvt::worst_case());
    }

    #[test]
    fn session_faulted_run_with_empty_schedule_matches_run_link() {
        let stim = frames(2);
        let mut s = Session::new().with_seed(7);
        let plain = s.run_link(&stim).expect("plain");
        let faulted = s
            .run_link_with_faults(&stim, &FaultSchedule::new(7))
            .expect("faulted");
        assert_eq!(faulted.link, plain);
        assert_eq!(faulted.injected_channel, 0);
        assert_eq!(faulted.injected_clock, 0);
        assert_eq!(faulted.injected_digital, 0);
    }

    #[test]
    fn session_try_sweeps_complete_when_healthy() {
        let mut s = Session::new().with_sweep(
            Sweep::new()
                .with_frames(4)
                .with_tolerance_db(1.0)
                .with_threads(4),
        );
        let corners = s.try_corner_sweep();
        assert_eq!(corners.len(), 3);
        assert!(corners.is_complete());
        let rates = s.try_rate_sweep(&[Hertz::from_ghz(2.0)]);
        assert!(rates.is_complete());
        assert_eq!(rates.completed[0].1.data_rate, Hertz::from_ghz(2.0));
    }

    #[test]
    fn session_sta_matches_direct_run() {
        use openserdes_flow::Sta;
        use openserdes_pdk::library::Library;
        use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
        let mut nl = Netlist::new("pipe");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q0 = nl.dff(d, clk, DriveStrength::X1);
        let s1 = nl.gate(LogicFn::Inv, DriveStrength::X1, &[q0]);
        let q1 = nl.dff(s1, clk, DriveStrength::X1);
        nl.mark_output("q", q1);
        let direct = Sta::new()
            .run(&nl, &Library::sky130(Pvt::nominal()), None)
            .expect("direct");
        let mut s = Session::new().with_telemetry(true);
        let via = s.sta(&nl, None).expect("session sta");
        assert_eq!(via, direct);
        let run = s.telemetry().span("sta.run").expect("sta.run span");
        assert!(run.child("sta.forward").is_some());
        assert!(run.child("sta.backward").is_some());
        assert!(run.child("sta.hold").is_some());
        assert!(run.child("sta.paths").is_some());
    }

    #[test]
    fn submit_matches_typed_methods() {
        use crate::job::{DesignSpec, Request, Response, SweepSpec};
        let stim = frames(2);
        let mut s = Session::new().with_seed(11);
        let direct = s.run_link(&stim).expect("typed");
        let via = s
            .submit(&Request::RunLink {
                config: s.link_config().clone(),
                frames: stim.clone(),
            })
            .expect("submitted");
        assert_eq!(via, Response::Link(direct));

        let mut s = Session::new()
            .with_seed(11)
            .with_sweep(Sweep::new().with_frames(4).with_tolerance_db(2.0));
        let direct = s.max_loss().expect("typed");
        let via = s
            .submit(&Request::MaxLoss {
                config: s.link_config().clone(),
                sweep: SweepSpec::from(s.sweep_options()),
            })
            .expect("submitted");
        assert_eq!(
            via,
            Response::MaxLoss {
                max_loss_db: direct
            }
        );

        let mut s = Session::new();
        let design = DesignSpec::Serializer;
        let direct = s.lint(&design.build());
        let via = s.submit(&Request::Lint { design }).expect("submitted");
        match via {
            Response::Lint(summary) => {
                assert_eq!(summary.findings.len(), direct.findings().len());
            }
            other => panic!("expected lint summary, got {other:?}"),
        }
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        let s = Session::new().with_threads(0);
        assert_eq!(s.sweep_options().threads(), 1);
        assert_eq!(Sweep::new().with_threads(0).threads(), 1);
        // A clamped session still runs sweeps.
        let mut s = s.with_sweep(
            Sweep::new()
                .with_frames(2)
                .with_tolerance_db(4.0)
                .with_threads(0),
        );
        assert_eq!(s.sweep_options().threads(), 1);
        s.max_loss().expect("single-worker sweep runs");
    }

    #[test]
    fn session_lint_matches_inherent() {
        let mut d = Design::new("t");
        let a = d.input("a");
        d.output("y", a);
        let direct = d.lint(&LintConfig::default());
        let via = Session::new().lint(&d);
        assert_eq!(via.findings().len(), direct.findings().len());
    }
}
