//! The complete SerDes link: serializer → PHY → CDR → deserializer.
//!
//! This is the system of the paper's Fig. 3/Fig. 8 assembled from the
//! blocks in this workspace. Two execution paths:
//!
//! * [`SerdesLink::run_frames`] — the fast path: bit-accurate serializer
//!   and deserializer FSMs, a statistical PHY calibrated from the analog
//!   models (amplitude margin + noise + jitter at sample granularity),
//!   and the cycle-accurate oversampling CDR. Scales to millions of
//!   bits.
//! * [`SerdesLink::run_frame_analog`] — the faithful path: a full
//!   transistor-level transient of driver, channel and front end for one
//!   frame, sliced at the oversampling rate and recovered by the same
//!   CDR. Used to regenerate Fig. 8 and to validate the fast path.

use crate::cdr::{oversample_bits, CdrConfig, OversamplingCdr};
use crate::deserializer::Deserializer;
use crate::error::LinkError;
use crate::serializer::{frame_to_bits, Frame, Serializer, FRAME_BITS};
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::{Hertz, Time};
use openserdes_phy::{q_function, AnalogLink, BehavioralLink, ChannelModel, LinkRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Serial data rate.
    pub data_rate: Hertz,
    /// Channel between TX and RX.
    pub channel: ChannelModel,
    /// Process/voltage/temperature point.
    pub pvt: Pvt,
    /// CDR settings.
    pub cdr: CdrConfig,
}

impl LinkConfig {
    /// The paper's headline operating point: 2 Gb/s over a 34 dB channel
    /// at nominal PVT.
    pub fn paper_default() -> Self {
        Self {
            data_rate: Hertz::from_ghz(2.0),
            channel: ChannelModel::lossy(34.0),
            pvt: Pvt::nominal(),
            cdr: CdrConfig::paper_default(),
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of a multi-frame link run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReport {
    /// Frames transmitted.
    pub frames_sent: usize,
    /// Frames recovered bit-exact.
    pub frames_correct: usize,
    /// Total payload bits compared.
    pub bits: u64,
    /// Bit errors after CDR recovery and alignment.
    pub bit_errors: u64,
    /// Whether the CDR declared lock.
    pub cdr_locked: bool,
    /// CDR phase movements during the run.
    pub cdr_phase_updates: u64,
    /// Bit lag the aligner settled on.
    pub alignment_lag: usize,
}

impl LinkReport {
    /// The measured bit-error ratio.
    pub fn ber(&self) -> f64 {
        self.bit_errors as f64 / self.bits.max(1) as f64
    }

    /// `true` when every frame was recovered exactly.
    pub fn error_free(&self) -> bool {
        self.bit_errors == 0 && self.frames_correct == self.frames_sent
    }
}

/// Result of a single-frame analog run.
#[derive(Debug, Clone)]
pub struct AnalogFrameReport {
    /// The transistor-level waveform record.
    pub run: LinkRun,
    /// Bit errors after CDR recovery and alignment.
    pub bit_errors: u64,
    /// Bits compared (after settling skip).
    pub bits: u64,
}

/// The assembled SerDes link.
#[derive(Debug, Clone, PartialEq)]
pub struct SerdesLink {
    config: LinkConfig,
}

impl SerdesLink {
    /// Creates a link.
    pub fn new(config: LinkConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Best alignment of `recv` against `sent` over small lags; returns
    /// `(lag, errors)` counting over the overlap beyond `skip`.
    fn align(sent: &[bool], recv: &[bool], skip: usize) -> (usize, u64) {
        let mut best = (0usize, u64::MAX);
        for lag in 0..4usize {
            if skip + lag >= recv.len() {
                break;
            }
            let errors = recv[skip + lag..]
                .iter()
                .zip(&sent[skip..])
                .filter(|(a, b)| a != b)
                .count() as u64;
            if errors < best.1 {
                best = (lag, errors);
            }
        }
        best
    }

    /// Runs frames through the fast statistical PHY path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the front-end characterization.
    pub fn run_frames(&self, frames: &[Frame], seed: u64) -> Result<LinkReport, LinkError> {
        // Serialize everything into one contiguous bit stream.
        let mut ser = Serializer::new();
        let mut bits = Vec::with_capacity(frames.len() * FRAME_BITS);
        for &f in frames {
            bits.extend(ser.serialize(f));
        }

        // PHY statistics from the analog models at this operating point.
        let analog = AnalogLink::paper_default(self.config.pvt, self.config.channel.clone());
        let beh = BehavioralLink::from_analog(&analog, self.config.data_rate)?;
        let ui = 1.0 / self.config.data_rate.value();
        let jitter_frac =
            self.config.channel.rj_sigma.value() / ui;
        let margin = beh.margin().value()
            * (1.0 - beh.jitter_slope * (jitter_frac + 0.5 * self.config.channel.dj_pp.value() / ui))
                .max(0.0);
        let sigma = self.config.channel.noise_sigma.value().max(1e-9);
        let flip_prob = if margin <= 0.0 {
            0.5
        } else {
            q_function(margin / sigma)
        };

        // Oversample with a deliberate phase offset (the reference clock
        // is not aligned to the data — the CDR's whole job), plus edge
        // jitter and per-sample noise flips.
        let n = self.config.cdr.oversampling;
        let mut stream = oversample_bits(&bits, n, 0.3, jitter_frac, seed ^ 0x0511);
        let mut rng = StdRng::seed_from_u64(seed);
        for s in stream.iter_mut() {
            if rng.gen::<f64>() < flip_prob {
                *s = !*s;
            }
        }

        // CDR recovery.
        let mut cdr = OversamplingCdr::new(self.config.cdr);
        let recovered = cdr.recover(&stream);

        // Score against the sent stream (skip the CDR's first two
        // decision windows) and deserialize from the aligned position.
        let skip = 2 * self.config.cdr.window;
        let (lag, bit_errors) = Self::align(&bits, &recovered, skip);
        let mut des = Deserializer::new();
        let aligned = &recovered[lag..];
        let mut frames_correct = 0usize;
        for (i, &sent_frame) in frames.iter().enumerate() {
            let lo = i * FRAME_BITS;
            let hi = lo + FRAME_BITS;
            if hi > aligned.len() {
                break;
            }
            let got = des.push_bits(&aligned[lo..hi]);
            if got.first() == Some(&sent_frame) {
                frames_correct += 1;
            }
        }
        // The settling window overlaps the first frame(s); a frame
        // corrupted only inside the settling window still counts, which
        // is why scoring uses the post-skip bit errors as ground truth.
        let bits_compared = (bits.len() - skip) as u64;

        Ok(LinkReport {
            frames_sent: frames.len(),
            frames_correct: frames_correct.max(
                if bit_errors == 0 { frames.len() } else { frames_correct },
            ),
            bits: bits_compared,
            bit_errors,
            cdr_locked: cdr.is_locked(),
            cdr_phase_updates: cdr.phase_updates(),
            alignment_lag: lag,
        })
    }

    /// Runs one frame through the full transistor-level path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the transients.
    pub fn run_frame_analog(&self, frame: Frame) -> Result<AnalogFrameReport, LinkError> {
        let bits = frame_to_bits(&frame);
        let ui = Time::new(1.0 / self.config.data_rate.value());
        let analog = AnalogLink::paper_default(self.config.pvt, self.config.channel.clone());
        let run = analog.transmit(&bits, ui)?;

        // Slice the restored output at the oversampling rate. The
        // three-stage driver inverts and the two-stage front end does
        // not, so polarity is inverted end-to-end.
        let n = self.config.cdr.oversampling;
        let threshold = 0.5 * self.config.pvt.vdd.value();
        let mut stream = Vec::with_capacity(bits.len() * n);
        for i in 0..bits.len() {
            for j in 0..n {
                let t = (i as f64 + (j as f64 + 0.5) / n as f64) * ui.value();
                stream.push(run.rx.restored.sample_at(t) <= threshold);
            }
        }

        let mut cdr = OversamplingCdr::new(self.config.cdr);
        let recovered = cdr.recover(&stream);
        let skip = 8;
        let (_, bit_errors) = Self::align(&bits, &recovered, skip);
        Ok(AnalogFrameReport {
            run,
            bit_errors,
            bits: (bits.len() - skip) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbs::{PrbsGenerator, PrbsOrder};
    use crate::serializer::LANES;

    fn prbs_frames(count: usize) -> Vec<Frame> {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs31);
        (0..count)
            .map(|_| {
                let mut f = [0u32; LANES];
                for w in f.iter_mut() {
                    for b in 0..32 {
                        if g.next_bit() {
                            *w |= 1 << b;
                        }
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn paper_operating_point_error_free() {
        // 2 Gb/s, 34 dB, PRBS-31 — the Fig. 8 scenario, fast path.
        let link = SerdesLink::new(LinkConfig::paper_default());
        let report = link.run_frames(&prbs_frames(40), 1).expect("runs");
        assert!(report.cdr_locked, "CDR must lock");
        assert_eq!(report.bit_errors, 0, "zero BER at the paper's point");
        assert!(report.error_free());
        assert!(report.bits > 9_000);
    }

    #[test]
    fn heavy_loss_breaks_the_link() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::lossy(46.0);
        let link = SerdesLink::new(cfg);
        let report = link.run_frames(&prbs_frames(10), 1).expect("runs");
        assert!(report.ber() > 0.05, "ber = {}", report.ber());
        assert!(!report.error_free());
    }

    #[test]
    fn clean_channel_many_frames() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::emib(3.0);
        let link = SerdesLink::new(cfg);
        let frames = prbs_frames(100);
        let report = link.run_frames(&frames, 9).expect("runs");
        assert!(report.error_free());
        assert_eq!(report.frames_sent, 100);
    }

    #[test]
    fn report_math() {
        let r = LinkReport {
            frames_sent: 4,
            frames_correct: 4,
            bits: 1000,
            bit_errors: 1,
            cdr_locked: true,
            cdr_phase_updates: 1,
            alignment_lag: 0,
        };
        assert!((r.ber() - 1e-3).abs() < 1e-12);
        assert!(!r.error_free());
    }

    #[test]
    fn deterministic_per_seed() {
        let link = SerdesLink::new(LinkConfig::paper_default());
        let frames = prbs_frames(5);
        let a = link.run_frames(&frames, 3).expect("runs");
        let b = link.run_frames(&frames, 3).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    #[ignore = "slow: full transistor-level frame (run with --ignored)"]
    fn analog_frame_matches_fast_path() {
        let mut cfg = LinkConfig::paper_default();
        // 1 Gb/s over a gentle channel keeps the analog run robust.
        cfg.data_rate = Hertz::from_ghz(1.0);
        cfg.channel = ChannelModel::lossy(20.0);
        let link = SerdesLink::new(cfg);
        let frame = prbs_frames(1)[0];
        let report = link.run_frame_analog(frame).expect("transients run");
        assert_eq!(report.bit_errors, 0, "analog path recovers the frame");
    }
}
