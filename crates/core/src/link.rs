//! The complete SerDes link: serializer → PHY → CDR → deserializer.
//!
//! This is the system of the paper's Fig. 3/Fig. 8 assembled from the
//! blocks in this workspace. Two execution paths:
//!
//! * [`SerdesLink::run_frames`] — the fast path: bit-accurate serializer
//!   and deserializer FSMs, a statistical PHY calibrated from the analog
//!   models (amplitude margin + noise + jitter at sample granularity),
//!   and the cycle-accurate oversampling CDR. Scales to millions of
//!   bits.
//! * [`SerdesLink::run_frame_analog`] — the faithful path: a full
//!   transistor-level transient of driver, channel and front end for one
//!   frame, sliced at the oversampling rate and recovered by the same
//!   CDR. Used to regenerate Fig. 8 and to validate the fast path.

use crate::bitstream::BitVec;
use crate::cdr::{oversample_bits_packed, CdrConfig, OversamplingCdr};
use crate::deserializer::Deserializer;
use crate::error::LinkError;
use crate::serializer::{frame_to_bits, Frame, Serializer, FRAME_BITS, LANES, WORD_BITS};
use openserdes_fault::{FaultEvent, FaultKind, FaultSchedule};
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::{Hertz, Time};
use openserdes_phy::{AnalogLink, BehavioralLink, ChannelModel, LinkRun};
use openserdes_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Serial data rate.
    pub data_rate: Hertz,
    /// Channel between TX and RX.
    pub channel: ChannelModel,
    /// Process/voltage/temperature point.
    pub pvt: Pvt,
    /// CDR settings.
    pub cdr: CdrConfig,
}

impl LinkConfig {
    /// The paper's headline operating point: 2 Gb/s over a 34 dB channel
    /// at nominal PVT.
    pub fn paper_default() -> Self {
        Self {
            data_rate: Hertz::from_ghz(2.0),
            channel: ChannelModel::lossy(34.0),
            pvt: Pvt::nominal(),
            cdr: CdrConfig::paper_default(),
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-stage instrumentation for one link run: how many bits each stage
/// moved and how long it took. Carried on [`LinkReport`] but excluded
/// from its equality (wall times are run-specific noise).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Payload bits serialized onto the wire.
    pub tx_bits: u64,
    /// Oversampled PHY samples generated.
    pub phy_samples: u64,
    /// Bits recovered by the CDR.
    pub recovered_bits: u64,
    /// Bits scored against the sent stream.
    pub compared_bits: u64,
    /// Time serializing frames.
    pub serialize_time: Duration,
    /// Time in the statistical PHY (oversampling + noise flips).
    pub phy_time: Duration,
    /// Time in CDR recovery.
    pub cdr_time: Duration,
    /// Time aligning, deserializing and scoring.
    pub score_time: Duration,
    /// Whole-run wall time.
    pub total_time: Duration,
}

/// Result of a multi-frame link run.
#[derive(Debug, Clone, Copy)]
pub struct LinkReport {
    /// Frames transmitted.
    pub frames_sent: usize,
    /// Frames recovered bit-exact over the compared span.
    pub frames_correct: usize,
    /// Total payload bits compared.
    pub bits: u64,
    /// Bit errors after CDR recovery and alignment.
    pub bit_errors: u64,
    /// Whether the CDR declared lock.
    pub cdr_locked: bool,
    /// CDR phase movements during the run.
    pub cdr_phase_updates: u64,
    /// Bit lag the aligner settled on.
    pub alignment_lag: usize,
    /// Per-stage bit counts and wall times.
    pub stats: LinkStats,
}

impl PartialEq for LinkReport {
    /// Compares the link-level outcome; [`LinkStats`] wall times are
    /// run-specific and excluded so identical seeds compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.frames_sent == other.frames_sent
            && self.frames_correct == other.frames_correct
            && self.bits == other.bits
            && self.bit_errors == other.bit_errors
            && self.cdr_locked == other.cdr_locked
            && self.cdr_phase_updates == other.cdr_phase_updates
            && self.alignment_lag == other.alignment_lag
    }
}

impl LinkReport {
    /// The measured bit-error ratio.
    pub fn ber(&self) -> f64 {
        self.bit_errors as f64 / self.bits.max(1) as f64
    }

    /// `true` when every frame was recovered exactly.
    pub fn error_free(&self) -> bool {
        self.bit_errors == 0 && self.frames_correct == self.frames_sent
    }
}

/// Result of a single-frame analog run.
#[derive(Debug, Clone)]
pub struct AnalogFrameReport {
    /// The transistor-level waveform record.
    pub run: LinkRun,
    /// Bit errors after CDR recovery and alignment.
    pub bit_errors: u64,
    /// Bits compared (after settling skip).
    pub bits: u64,
}

/// The assembled SerDes link.
#[derive(Debug, Clone, PartialEq)]
pub struct SerdesLink {
    config: LinkConfig,
}

impl SerdesLink {
    /// Creates a link.
    pub fn new(config: LinkConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Best alignment of `recv` against `sent` over small lags; returns
    /// `(lag, errors, overlap)` scored over the span beyond `skip`.
    ///
    /// Every lag is scored over the *same* overlap length (the largest
    /// span available to all candidate lags). Per-lag overlaps would
    /// hand larger lags fewer error opportunities and bias the choice
    /// toward them; with a common span the error counts are comparable
    /// and ties resolve to the smallest lag.
    fn align(sent: &BitVec, recv: &BitVec, skip: usize) -> (usize, u64, usize) {
        const MAX_LAG: usize = 3;
        if recv.len() <= skip + MAX_LAG || sent.len() <= skip {
            return (0, 0, 0);
        }
        let overlap = (recv.len() - skip - MAX_LAG).min(sent.len() - skip);
        let mut best = (0usize, u64::MAX);
        for lag in 0..=MAX_LAG {
            let errors = recv.xor_errors(skip + lag, sent, skip, overlap);
            if errors < best.1 {
                best = (lag, errors);
            }
        }
        (best.0, best.1, overlap)
    }

    /// Scores the deserializer's actual output against the sent frames
    /// over the compared span `[skip, skip + overlap)` (sent-bit
    /// coordinates). A frame counts correct when every captured bit of
    /// it inside the span matches; a frame that falls entirely outside
    /// the span (settling window, or the unaligned tail the aligner
    /// could not compare) counts correct when it was captured at all —
    /// the link is not blamed for bits that were never scored.
    fn score_frames(
        frames: &[Frame],
        got: &[Frame],
        partial: (Frame, usize),
        skip: usize,
        overlap: usize,
    ) -> usize {
        let mut correct = 0usize;
        for (i, sent) in frames.iter().enumerate() {
            let lo = i * FRAME_BITS;
            let (cap, fill) = if i < got.len() {
                (got[i], FRAME_BITS)
            } else if i == got.len() && partial.1 > 0 {
                partial
            } else {
                continue; // never captured
            };
            let scored_lo = lo.max(skip);
            let scored_hi = (lo + FRAME_BITS).min(skip + overlap).min(lo + fill);
            if scored_lo >= scored_hi {
                correct += 1;
                continue;
            }
            let mut ok = true;
            for w in 0..LANES {
                let wlo = lo + w * WORD_BITS;
                let a = scored_lo.max(wlo);
                let b = scored_hi.min(wlo + WORD_BITS);
                if a >= b {
                    continue;
                }
                let mask = (((1u64 << (b - wlo)) - 1) ^ ((1u64 << (a - wlo)) - 1)) as u32;
                if (cap[w] ^ sent[w]) & mask != 0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                correct += 1;
            }
        }
        correct
    }

    /// Runs frames through the fast statistical PHY path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the front-end characterization.
    #[deprecated(note = "use `Session::run_link` (openserdes::Session)")]
    pub fn run_frames(&self, frames: &[Frame], seed: u64) -> Result<LinkReport, LinkError> {
        run_frames(&self.config, frames, seed)
    }

    /// Runs one frame through the full transistor-level path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the transients.
    #[deprecated(note = "use `Session::run_analog_link` (openserdes::Session)")]
    pub fn run_frame_analog(&self, frame: Frame) -> Result<AnalogFrameReport, LinkError> {
        run_frame_analog(&self.config, frame)
    }
}

/// The fast-path link engine: serializer → statistical PHY → CDR →
/// deserializer → scoring, at `config`'s operating point. This is the
/// canonical implementation behind both the deprecated
/// [`SerdesLink::run_frames`] and `Session::run_link`.
///
/// # Errors
///
/// Propagates solver failures from the front-end characterization.
pub fn run_frames(
    config: &LinkConfig,
    frames: &[Frame],
    seed: u64,
) -> Result<LinkReport, LinkError> {
    let _span = telemetry::span("link.run");
    let t_start = Instant::now();
    // Serialize everything into one contiguous packed bit stream.
    let t_ser_span = telemetry::span("link.serialize");
    let mut ser = Serializer::new();
    let mut bits = BitVec::with_capacity(frames.len() * FRAME_BITS);
    for &f in frames {
        ser.serialize_into(f, &mut bits);
    }
    drop(t_ser_span);
    let serialize_time = t_start.elapsed();

    // PHY statistics from the analog models at this operating point.
    let t_phy = Instant::now();
    let phy_span = telemetry::span("link.phy");
    let analog = AnalogLink::paper_default(config.pvt, config.channel.clone());
    let beh = BehavioralLink::from_analog(&analog, config.data_rate)?;
    let ui = 1.0 / config.data_rate.value();
    let jitter_frac = config.channel.rj_sigma.value() / ui;
    let flip_prob = beh.flip_probability_jitter_eroded();

    // Oversample with a deliberate phase offset (the reference clock
    // is not aligned to the data — the CDR's whole job), plus edge
    // jitter and per-sample noise flips.
    let n = config.cdr.oversampling;
    let mut stream = oversample_bits_packed(&bits, n, 0.3, jitter_frac, seed ^ 0x0511);
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..stream.len() {
        if rng.gen::<f64>() < flip_prob {
            stream.toggle(s);
        }
    }
    drop(phy_span);
    let phy_time = t_phy.elapsed();

    // CDR recovery.
    let t_cdr = Instant::now();
    let cdr_span = telemetry::span("link.cdr");
    let mut cdr = OversamplingCdr::new(config.cdr);
    let recovered = cdr.recover_packed(&stream);
    drop(cdr_span);
    let cdr_time = t_cdr.elapsed();

    // Score against the sent stream (skip the CDR's first two
    // decision windows), then deserialize from the aligned position
    // and count frames from what the deserializer actually produced.
    let t_score = Instant::now();
    let score_span = telemetry::span("link.score");
    let skip = 2 * config.cdr.window;
    let (lag, bit_errors, overlap) = SerdesLink::align(&bits, &recovered, skip);
    let mut des = Deserializer::new();
    let got = des.push_packed(&recovered, lag, recovered.len() - lag);
    let frames_correct = SerdesLink::score_frames(frames, &got, des.partial_frame(), skip, overlap);
    drop(score_span);
    let score_time = t_score.elapsed();

    telemetry::counter("link.tx_bits", bits.len() as u64);
    telemetry::counter("link.phy_samples", stream.len() as u64);
    telemetry::counter("link.compared_bits", overlap as u64);
    telemetry::counter("link.bit_errors", bit_errors);
    telemetry::counter("link.cdr_phase_updates", cdr.phase_updates());
    telemetry::record_value("link.bit_errors_per_run", bit_errors);

    let stats = LinkStats {
        tx_bits: bits.len() as u64,
        phy_samples: stream.len() as u64,
        recovered_bits: recovered.len() as u64,
        compared_bits: overlap as u64,
        serialize_time,
        phy_time,
        cdr_time,
        score_time,
        total_time: t_start.elapsed(),
    };
    Ok(LinkReport {
        frames_sent: frames.len(),
        frames_correct,
        bits: overlap as u64,
        bit_errors,
        cdr_locked: cdr.is_locked(),
        cdr_phase_updates: cdr.phase_updates(),
        alignment_lag: lag,
        stats,
    })
}

/// Result of a fault-campaign link run: the ordinary [`LinkReport`]
/// plus the resilience metrics the campaign exists to measure.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// The link-level outcome under the injected schedule.
    pub link: LinkReport,
    /// Post-lock decision windows that disagreed with the selected
    /// phase (see [`OversamplingCdr::lock_losses`]).
    pub lock_losses: u64,
    /// Re-acquisition time of each completed lock-loss episode, in UIs.
    pub relock_times_ui: Vec<u64>,
    /// Channel-fault events that landed inside the run.
    pub injected_channel: usize,
    /// Clock-fault events that landed inside the run.
    pub injected_clock: usize,
    /// Digital SEU events that landed inside the run (structural
    /// stuck-at events are not the link runner's to apply and are
    /// never counted here).
    pub injected_digital: usize,
}

impl FaultReport {
    /// Worst completed re-lock time, in UIs.
    pub fn worst_relock_ui(&self) -> Option<u64> {
        self.relock_times_ui.iter().copied().max()
    }

    /// Mean completed re-lock time, in UIs.
    pub fn mean_relock_ui(&self) -> Option<f64> {
        if self.relock_times_ui.is_empty() {
            None
        } else {
            Some(
                self.relock_times_ui.iter().sum::<u64>() as f64 / self.relock_times_ui.len() as f64,
            )
        }
    }
}

/// Resamples the oversampled stream under the schedule's clock faults:
/// each UI's samples are read `offset` positions away, where `offset`
/// accumulates every phase glitch at or before that UI and every drift
/// slip elapsed so far (positive = late). Reads past either end clamp
/// to the stream boundary. Pure function of `(stream, schedule)`.
fn apply_clock_faults(stream: &BitVec, n: usize, schedule: &FaultSchedule) -> BitVec {
    let len = stream.len();
    let uis = len / n;
    let mut out = BitVec::with_capacity(len);
    for k in 0..uis {
        let mut offset: i64 = 0;
        for (_, ev) in schedule.clock_events() {
            if (k as u64) < ev.at_ui {
                continue;
            }
            match ev.kind {
                FaultKind::PhaseGlitch { offset_samples } => offset += offset_samples as i64,
                FaultKind::ClockDrift {
                    duration_ui,
                    slip_period_ui,
                    late,
                } => {
                    let into = (k as u64 - ev.at_ui).min(duration_ui);
                    let slips = (into / slip_period_ui.max(1)) as i64;
                    offset += if late { slips } else { -slips };
                }
                _ => {}
            }
        }
        for j in 0..n {
            let i = ((k * n + j) as i64 + offset).clamp(0, len as i64 - 1) as usize;
            out.push(stream.get(i));
        }
    }
    out
}

/// Applies one channel-fault event to the oversampled stream in place.
/// Random draws come from the event's own seeded stream
/// ([`FaultSchedule::event_seed`]) so the base PHY noise is untouched
/// and events inject identically in any order.
fn apply_channel_fault(stream: &mut BitVec, n: usize, ev: &FaultEvent, seed: u64) {
    let uis = (stream.len() / n) as u64;
    let start = ev.at_ui.min(uis) as usize;
    match ev.kind {
        FaultKind::BurstNoise {
            duration_ui,
            flip_prob,
        } => {
            let end = ev.at_ui.saturating_add(duration_ui).min(uis) as usize;
            let mut rng = StdRng::seed_from_u64(seed);
            for s in start * n..end * n {
                if rng.gen::<f64>() < flip_prob {
                    stream.toggle(s);
                }
            }
        }
        FaultKind::Dropout { duration_ui, level } => {
            let end = ev.at_ui.saturating_add(duration_ui).min(uis) as usize;
            for s in start * n..end * n {
                stream.set(s, level);
            }
        }
        FaultKind::SupplyDroop {
            duration_ui,
            peak_flip_prob,
        } => {
            let end = ev.at_ui.saturating_add(duration_ui).min(uis) as usize;
            let d = duration_ui.max(1) as f64;
            let mut rng = StdRng::seed_from_u64(seed);
            for s in start * n..end * n {
                // Triangular profile: 0 at the window edges, peak at
                // the midpoint — a VDD dip through a CMOS sampler.
                let into = (s / n) as u64 - ev.at_ui;
                let frac = (into as f64 + 0.5) / d;
                let p = peak_flip_prob * (1.0 - (2.0 * frac - 1.0).abs());
                if rng.gen::<f64>() < p {
                    stream.toggle(s);
                }
            }
        }
        _ => {}
    }
}

/// The fast-path link engine under a deterministic fault campaign:
/// the same serializer → statistical PHY → CDR → deserializer pipeline
/// as [`run_frames`], with [`FaultSchedule`] events injected at their
/// UI timestamps — channel faults perturb the oversampled stream,
/// clock faults resample it, SEUs flip CDR/deserializer state between
/// UIs. With an empty schedule the result is bit-identical to
/// [`run_frames`] at the same seed; with any schedule it is a pure
/// function of `(config, frames, seed, schedule)`.
///
/// Structural [`FaultKind::StuckAtNet`] events are outside the link
/// runner's jurisdiction (apply them to a netlist with
/// `openserdes_fault::apply_stuck_at`) and are ignored here.
///
/// # Errors
///
/// Propagates solver failures from the front-end characterization.
pub fn run_frames_with_faults(
    config: &LinkConfig,
    frames: &[Frame],
    seed: u64,
    schedule: &FaultSchedule,
) -> Result<FaultReport, LinkError> {
    let _span = telemetry::span("link.run_faulted");
    let t_start = Instant::now();
    let t_ser_span = telemetry::span("link.serialize");
    let mut ser = Serializer::new();
    let mut bits = BitVec::with_capacity(frames.len() * FRAME_BITS);
    for &f in frames {
        ser.serialize_into(f, &mut bits);
    }
    drop(t_ser_span);
    let serialize_time = t_start.elapsed();

    // PHY statistics from the analog models — identical to the
    // fault-free path, including the RNG stream the noise flips draw.
    let t_phy = Instant::now();
    let phy_span = telemetry::span("link.phy");
    let analog = AnalogLink::paper_default(config.pvt, config.channel.clone());
    let beh = BehavioralLink::from_analog(&analog, config.data_rate)?;
    let ui = 1.0 / config.data_rate.value();
    let jitter_frac = config.channel.rj_sigma.value() / ui;
    let flip_prob = beh.flip_probability_jitter_eroded();

    let n = config.cdr.oversampling;
    let mut stream = oversample_bits_packed(&bits, n, 0.3, jitter_frac, seed ^ 0x0511);
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..stream.len() {
        if rng.gen::<f64>() < flip_prob {
            stream.toggle(s);
        }
    }

    // Fault injection on the sampled stream: clock faults first (they
    // move *when* everything else is seen), then amplitude faults at
    // their scheduled UIs.
    let uis = (stream.len() / n) as u64;
    let mut injected_clock = 0;
    let mut injected_channel = 0;
    if schedule.clock_events().any(|(_, e)| e.at_ui < uis) {
        stream = apply_clock_faults(&stream, n, schedule);
    }
    injected_clock += schedule
        .clock_events()
        .filter(|(_, e)| e.at_ui < uis)
        .count();
    for (idx, ev) in schedule.channel_events() {
        if ev.at_ui < uis {
            apply_channel_fault(&mut stream, n, ev, schedule.event_seed(idx));
            injected_channel += 1;
        }
    }
    drop(phy_span);
    let phy_time = t_phy.elapsed();

    // CDR recovery, UI by UI so SEUs can strike between UIs.
    let t_cdr = Instant::now();
    let cdr_span = telemetry::span("link.cdr");
    let mut cdr = OversamplingCdr::new(config.cdr);
    let mut injected_digital = 0;
    let phase_seus: Vec<&FaultEvent> = schedule
        .digital_events()
        .filter(|(_, e)| matches!(e.kind, FaultKind::SeuCdrPhase { .. }) && e.at_ui < uis)
        .map(|(_, e)| e)
        .collect();
    let mut recovered = BitVec::with_capacity(uis as usize);
    let mut next_seu = 0usize;
    for k in 0..uis {
        while next_seu < phase_seus.len() && phase_seus[next_seu].at_ui == k {
            if let FaultKind::SeuCdrPhase { bit } = phase_seus[next_seu].kind {
                cdr.inject_phase_flip(bit);
                injected_digital += 1;
            }
            next_seu += 1;
        }
        recovered.push(cdr.step_word(stream.window64(k as usize * n)));
    }
    drop(cdr_span);
    let cdr_time = t_cdr.elapsed();

    // Score against the sent stream, deserializing around any
    // deserializer SEU strikes.
    let t_score = Instant::now();
    let score_span = telemetry::span("link.score");
    let skip = 2 * config.cdr.window;
    let (lag, bit_errors, overlap) = SerdesLink::align(&bits, &recovered, skip);
    let mut des = Deserializer::new();
    let mut got = Vec::new();
    let mut pos = lag;
    for (_, ev) in schedule.digital_events() {
        if let FaultKind::SeuDeserializer { lane, bit } = ev.kind {
            if ev.at_ui >= recovered.len() as u64 {
                continue;
            }
            let at = (ev.at_ui as usize).max(pos);
            got.extend(des.push_packed(&recovered, pos, at - pos));
            des.inject_seu(lane, bit);
            injected_digital += 1;
            pos = at;
        }
    }
    got.extend(des.push_packed(&recovered, pos, recovered.len() - pos));
    let frames_correct = SerdesLink::score_frames(frames, &got, des.partial_frame(), skip, overlap);
    drop(score_span);
    let score_time = t_score.elapsed();

    telemetry::counter("link.fault_events", schedule.len() as u64);
    telemetry::counter("link.lock_losses", cdr.lock_losses());
    for &t in cdr.relock_times_ui() {
        telemetry::record_value("link.relock_ui", t);
    }

    let stats = LinkStats {
        tx_bits: bits.len() as u64,
        phy_samples: stream.len() as u64,
        recovered_bits: recovered.len() as u64,
        compared_bits: overlap as u64,
        serialize_time,
        phy_time,
        cdr_time,
        score_time,
        total_time: t_start.elapsed(),
    };
    Ok(FaultReport {
        link: LinkReport {
            frames_sent: frames.len(),
            frames_correct,
            bits: overlap as u64,
            bit_errors,
            cdr_locked: cdr.is_locked(),
            cdr_phase_updates: cdr.phase_updates(),
            alignment_lag: lag,
            stats,
        },
        lock_losses: cdr.lock_losses(),
        relock_times_ui: cdr.relock_times_ui().to_vec(),
        injected_channel,
        injected_clock,
        injected_digital,
    })
}

/// The faithful-path link engine: one frame through the full
/// transistor-level transient (driver → channel → front end), sliced at
/// the oversampling rate and recovered by the same CDR. The canonical
/// implementation behind the deprecated [`SerdesLink::run_frame_analog`]
/// and `Session::run_analog_link`.
///
/// # Errors
///
/// Propagates solver failures from the transients.
pub fn run_frame_analog(config: &LinkConfig, frame: Frame) -> Result<AnalogFrameReport, LinkError> {
    let _span = telemetry::span("link.analog_frame");
    let bits = frame_to_bits(&frame);
    let ui = Time::new(1.0 / config.data_rate.value());
    let analog = AnalogLink::paper_default(config.pvt, config.channel.clone());
    let run = analog.transmit(&bits, ui)?;

    // Slice the restored output at the oversampling rate. The
    // three-stage driver inverts and the two-stage front end does
    // not, so polarity is inverted end-to-end.
    let n = config.cdr.oversampling;
    let threshold = 0.5 * config.pvt.vdd.value();
    let mut stream = BitVec::with_capacity(bits.len() * n);
    for i in 0..bits.len() {
        for j in 0..n {
            let t = (i as f64 + (j as f64 + 0.5) / n as f64) * ui.value();
            stream.push(run.rx.restored.sample_at(t) <= threshold);
        }
    }

    let cdr_span = telemetry::span("link.cdr");
    let mut cdr = OversamplingCdr::new(config.cdr);
    let recovered = cdr.recover_packed(&stream);
    drop(cdr_span);
    let skip = 8;
    let (_, bit_errors, overlap) = SerdesLink::align(&BitVec::from_bools(&bits), &recovered, skip);
    telemetry::counter("link.bit_errors", bit_errors);
    telemetry::counter("link.cdr_phase_updates", cdr.phase_updates());
    Ok(AnalogFrameReport {
        run,
        bit_errors,
        bits: overlap as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbs::{PrbsGenerator, PrbsOrder};
    use crate::serializer::LANES;

    fn prbs_frames(count: usize) -> Vec<Frame> {
        let mut g = PrbsGenerator::new(PrbsOrder::Prbs31);
        (0..count)
            .map(|_| {
                let mut f = [0u32; LANES];
                for w in f.iter_mut() {
                    for b in 0..32 {
                        if g.next_bit() {
                            *w |= 1 << b;
                        }
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn paper_operating_point_error_free() {
        // 2 Gb/s, 34 dB, PRBS-31 — the Fig. 8 scenario, fast path.
        let report = run_frames(&LinkConfig::paper_default(), &prbs_frames(40), 1).expect("runs");
        assert!(report.cdr_locked, "CDR must lock");
        assert_eq!(report.bit_errors, 0, "zero BER at the paper's point");
        assert!(report.error_free());
        assert!(report.bits > 9_000);
    }

    #[test]
    fn heavy_loss_breaks_the_link() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::lossy(46.0);
        let report = run_frames(&cfg, &prbs_frames(10), 1).expect("runs");
        assert!(report.ber() > 0.05, "ber = {}", report.ber());
        assert!(!report.error_free());
    }

    #[test]
    fn clean_channel_many_frames() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::emib(3.0);
        let frames = prbs_frames(100);
        let report = run_frames(&cfg, &frames, 9).expect("runs");
        assert!(report.error_free());
        assert_eq!(report.frames_sent, 100);
    }

    #[test]
    fn report_math() {
        let r = LinkReport {
            frames_sent: 4,
            frames_correct: 4,
            bits: 1000,
            bit_errors: 1,
            cdr_locked: true,
            cdr_phase_updates: 1,
            alignment_lag: 0,
            stats: LinkStats::default(),
        };
        assert!((r.ber() - 1e-3).abs() < 1e-12);
        assert!(!r.error_free());
    }

    #[test]
    fn align_overlap_is_lag_invariant() {
        // Idle (all-zero) data whose last three sent bits are high. With
        // per-lag overlaps, lag 3's comparison silently dropped exactly
        // those trailing sent bits and won with zero errors even though
        // nothing supports a lag. Scoring every lag over a common span
        // keeps lag 0 and reports the span that was actually compared.
        let mut sent = BitVec::from_bools(&[false; 400]);
        for i in 397..400 {
            sent.set(i, true);
        }
        let recv = BitVec::from_bools(&[false; 400]);
        let (lag, errors, overlap) = SerdesLink::align(&sent, &recv, 64);
        assert_eq!(lag, 0, "no evidence for any lag");
        assert_eq!(errors, 0);
        assert_eq!(overlap, 400 - 64 - 3, "common span excludes the tail");
    }

    #[test]
    fn align_finds_true_lag_on_shifted_stream() {
        let pattern: Vec<bool> = PrbsGenerator::new(PrbsOrder::Prbs15).take_bits(600);
        let sent = BitVec::from_bools(&pattern);
        for true_lag in 0..4usize {
            let mut shifted = vec![false; true_lag];
            shifted.extend_from_slice(&pattern[..600 - true_lag]);
            let recv = BitVec::from_bools(&shifted);
            let (lag, errors, _) = SerdesLink::align(&sent, &recv, 64);
            assert_eq!(lag, true_lag);
            assert_eq!(errors, 0, "lag {true_lag} must align cleanly");
        }
    }

    #[test]
    fn align_degenerate_spans_report_zero_bits() {
        let sent = BitVec::from_bools(&[true; 10]);
        let recv = BitVec::from_bools(&[true; 10]);
        let (lag, errors, overlap) = SerdesLink::align(&sent, &recv, 10);
        assert_eq!((lag, errors, overlap), (0, 0, 0));
    }

    #[test]
    fn oversized_settling_window_reports_zero_compared_bits() {
        // A settling skip beyond the whole stream used to underflow the
        // compared-bit count (and the align loop returned u64::MAX
        // errors). It must degrade to "nothing compared" instead.
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::emib(3.0);
        cfg.cdr.window = 512; // skip = 1024 > 2 frames = 512 bits
        let report = run_frames(&cfg, &prbs_frames(2), 1).expect("runs");
        assert_eq!(report.bits, 0, "nothing survives the settling skip");
        assert_eq!(report.bit_errors, 0);
    }

    #[test]
    fn frames_correct_reflects_captured_output() {
        // score_frames counts only frames the deserializer produced;
        // the old scorer could report every frame correct whenever the
        // post-skip error count happened to be zero, captured or not.
        let frames = prbs_frames(3);
        // Deserializer emitted frame 0 intact, frame 1 corrupted inside
        // the compared span, and 100 bits of frame 2.
        let mut bad = frames[1];
        bad[3] ^= 0x10;
        let got = vec![frames[0], bad];
        let partial = (frames[2], 100);
        let correct = SerdesLink::score_frames(&frames, &got, partial, 64, 700);
        // Frame 0 matches, frame 1 differs at a scored bit, frame 2's
        // captured prefix (bits 512..612, inside [64, 764)) matches.
        assert_eq!(correct, 2);
        // Same situation but the corruption sits inside the settling
        // window: the frame is not blamed for unscored bits.
        let mut settling_bad = frames[0];
        settling_bad[0] ^= 0x1; // bit 0 < skip = 64
        let got = vec![settling_bad, frames[1]];
        let correct = SerdesLink::score_frames(&frames, &got, (frames[2], 100), 64, 700);
        assert_eq!(correct, 3);
        // A frame that was never captured can never count.
        let correct = SerdesLink::score_frames(&frames, &[], ([0u32; LANES], 0), 64, 700);
        assert_eq!(correct, 0);
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_fault_free_path() {
        let cfg = LinkConfig::paper_default();
        let frames = prbs_frames(20);
        let plain = run_frames(&cfg, &frames, 5).expect("runs");
        let faulted =
            run_frames_with_faults(&cfg, &frames, 5, &FaultSchedule::new(99)).expect("runs");
        assert_eq!(faulted.link, plain, "empty schedule must be a no-op");
        // The paper channel is jittery, so post-lock disagreeing windows
        // exist even fault-free — but at most the final episode may
        // still be open when the stream ends.
        assert!(faulted.lock_losses - faulted.relock_times_ui.len() as u64 <= 1);
        assert_eq!(faulted.injected_channel, 0);
        assert_eq!(faulted.injected_clock, 0);
        assert_eq!(faulted.injected_digital, 0);
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let cfg = LinkConfig::paper_default();
        let frames = prbs_frames(20);
        let schedule = openserdes_fault::campaign(
            openserdes_fault::CampaignKind::Mixed,
            13,
            frames.len() as u64 * FRAME_BITS as u64,
        );
        let a = run_frames_with_faults(&cfg, &frames, 5, &schedule).expect("runs");
        let b = run_frames_with_faults(&cfg, &frames, 5, &schedule).expect("runs");
        assert_eq!(a, b, "same seed + schedule => identical report");
        assert!(a.injected_channel + a.injected_clock + a.injected_digital > 0);
    }

    #[test]
    fn dropout_burst_disturbs_and_cdr_relocks() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::emib(3.0); // clean channel isolates the fault
        let frames = prbs_frames(40);
        let uis = frames.len() as u64 * FRAME_BITS as u64;
        let schedule = FaultSchedule::new(7)
            .with_event(FaultEvent {
                at_ui: uis / 2,
                kind: FaultKind::Dropout {
                    duration_ui: 48,
                    level: false,
                },
            })
            .with_event(FaultEvent {
                at_ui: uis / 2 + 400,
                kind: FaultKind::PhaseGlitch { offset_samples: 2 },
            });
        let report = run_frames_with_faults(&cfg, &frames, 5, &schedule).expect("runs");
        assert!(report.link.cdr_locked, "link must end the run locked");
        assert!(
            report.link.bit_errors > 0,
            "a 48-UI dropout must cost something"
        );
        // Whatever lock disturbance happened must have healed.
        assert!(
            report.relock_times_ui.len() as u64 >= report.lock_losses.min(1),
            "episodes must close"
        );
    }

    #[test]
    fn deserializer_seu_corrupts_one_frame() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::emib(3.0);
        let frames = prbs_frames(40);
        let uis = frames.len() as u64 * FRAME_BITS as u64;
        // Strike mid-frame (fill ≈ 200) at a bank bit already captured
        // (lane 2 bit 5 = absolute bit 69 < 200): it will not be
        // overwritten before the frame completes.
        let schedule = FaultSchedule::new(3).with_event(FaultEvent {
            at_ui: uis / 2 + 200,
            kind: FaultKind::SeuDeserializer { lane: 2, bit: 5 },
        });
        let clean = run_frames(&cfg, &frames, 9).expect("runs");
        let hit = run_frames_with_faults(&cfg, &frames, 9, &schedule).expect("runs");
        assert_eq!(hit.injected_digital, 1);
        assert_eq!(
            hit.link.bit_errors, clean.bit_errors,
            "a bank SEU happens after alignment scoring"
        );
        assert_eq!(
            hit.link.frames_correct,
            clean.frames_correct - 1,
            "exactly one captured frame corrupts"
        );
    }

    #[test]
    fn rtl_equivalent_degrades_more_under_burst_noise() {
        // Identical burst-noise schedule, channel and seed — the only
        // difference is the CDR feature set. The paper configuration's
        // glitch filter plus vote hysteresis must buy measurably fewer
        // bit errors than the bare RTL decision logic, which is the
        // degradation the fault campaigns exist to quantify.
        let frames = prbs_frames(40);
        let uis = frames.len() as u64 * FRAME_BITS as u64;
        let schedule =
            openserdes_fault::campaign(openserdes_fault::CampaignKind::BurstNoise, 21, uis);

        let paper_cfg = LinkConfig::paper_default();
        let mut rtl_cfg = LinkConfig::paper_default();
        rtl_cfg.cdr = CdrConfig::rtl_equivalent(paper_cfg.cdr.oversampling);

        let paper = run_frames_with_faults(&paper_cfg, &frames, 5, &schedule).expect("runs");
        let rtl = run_frames_with_faults(&rtl_cfg, &frames, 5, &schedule).expect("runs");
        assert_eq!(
            paper.injected_channel, rtl.injected_channel,
            "both runs must see the same schedule"
        );
        assert!(
            rtl.link.bit_errors > paper.link.bit_errors,
            "rtl_equivalent must degrade strictly more: rtl {} vs paper {}",
            rtl.link.bit_errors,
            paper.link.bit_errors
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deterministic_per_seed_and_shim_equivalence() {
        let link = SerdesLink::new(LinkConfig::paper_default());
        let frames = prbs_frames(5);
        // The deprecated method is a shim over the free function: both
        // runs of either spelling agree bit-exactly.
        let a = link.run_frames(&frames, 3).expect("runs");
        let b = run_frames(link.config(), &frames, 3).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    #[ignore = "slow: full transistor-level frame (run with --ignored)"]
    fn analog_frame_matches_fast_path() {
        let mut cfg = LinkConfig::paper_default();
        // 1 Gb/s over a gentle channel keeps the analog run robust.
        cfg.data_rate = Hertz::from_ghz(1.0);
        cfg.channel = ChannelModel::lossy(20.0);
        let frame = prbs_frames(1)[0];
        let report = run_frame_analog(&cfg, frame).expect("transients run");
        assert_eq!(report.bit_errors, 0, "analog path recovers the frame");
    }
}
