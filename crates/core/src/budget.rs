//! Power and area budgets (the paper's Fig. 10 and Fig. 11).
//!
//! The digital blocks (serializer, deserializer, CDR) are pushed through
//! the full RTL→layout flow at the link clock to obtain their power and
//! area; the analog blocks (driver, receiver front end, sampler) come
//! from the PHY estimates. The paper's corresponding numbers at 2 GHz:
//! TX 4.5 mW, RX 11.2 mW, serializer 235 mW, deserializer 128 mW, CDR
//! 59 mW, total 437.7 mW → 219 pJ/bit; area 0.24 mm² with the
//! deserializer at 60 %, the driver at 0.2 % and the RX front end at
//! 1.1 %. Absolute flow numbers differ from the authors' silicon (see
//! EXPERIMENTS.md), but the ordering — SER/DES/CDR dwarfing the link
//! power, the deserializer dominating area — reproduces.

use crate::cdr::{cdr_design, oversample_bits};
use crate::deserializer::deserializer_design;
use crate::error::LinkError;
use crate::prbs::{PrbsGenerator, PrbsOrder};
use crate::serializer::{serializer_design, FRAME_BITS};
use openserdes_digital::CycleSim;
use openserdes_flow::ir::Design;
use openserdes_flow::{analyze_power, Flow, FlowConfig, FlowResult, PowerConfig};
use openserdes_netlist::NetId;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::library::Library;
use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
use openserdes_pdk::units::{AreaUm2, Hertz, Joule, Watt};
use openserdes_phy::{DriverConfig, FrontEndConfig, RxFrontEnd, TxDriver};
use std::collections::HashMap;
use std::fmt;

/// Runs a vector-based power analysis: simulate the mapped netlist with
/// representative stimulus, extract per-net toggle rates, and hand them
/// to the power analyzer (the flow's equivalent of VCD-driven signoff).
fn measured_power(
    design: &Design,
    flow: &FlowResult,
    library: &Library,
    clock: Hertz,
    cycles: usize,
    mut drive: impl FnMut(&mut CycleSim<'_>, usize, &HashMap<&str, NetId>),
) -> Result<Watt, LinkError> {
    let netlist = &flow.synth.netlist;
    let names: HashMap<&str, NetId> = design
        .input_names()
        .iter()
        .map(String::as_str)
        .zip(flow.synth.inputs.iter().copied())
        .collect();
    let mut sim = CycleSim::new(netlist)?;
    sim.reset_flops();
    if let Some(c0) = flow.synth.const0 {
        sim.set_bit(c0, false);
    }
    if let Some(c1) = flow.synth.const1 {
        sim.set_bit(c1, true);
    }
    sim.settle();
    let mut toggles = vec![0u64; netlist.net_count()];
    let mut prev: Vec<openserdes_digital::Logic> =
        netlist.net_ids().map(|n| sim.value(n)).collect();
    for cycle in 0..cycles {
        drive(&mut sim, cycle, &names);
        sim.tick();
        for (i, n) in netlist.net_ids().enumerate() {
            let v = sim.value(n);
            if v.is_known() && prev[i].is_known() && v != prev[i] {
                toggles[i] += 1;
            }
            prev[i] = v;
        }
    }
    let rates: Vec<f64> = toggles.iter().map(|&t| t as f64 / cycles as f64).collect();
    let pcfg = PowerConfig {
        clock,
        activity: 0.5,
        net_activity: Some(rates),
    };
    let p = analyze_power(netlist, library, Some(&flow.route), &pcfg);
    Ok(p.total() + flow.cts.power)
}

/// One block's contribution to the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBudget {
    /// Block name.
    pub name: &'static str,
    /// Average power at the budget's data rate.
    pub power: Watt,
    /// Placed area.
    pub area: AreaUm2,
}

/// The complete link budget at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBudget {
    /// Data rate the budget was computed at.
    pub data_rate: Hertz,
    /// Per-block numbers, in the paper's order: driver, RX front end,
    /// serializer, deserializer, CDR.
    pub blocks: Vec<BlockBudget>,
}

impl LinkBudget {
    /// Computes the budget at a PVT point and data rate by running the
    /// flow on the digital blocks and the PHY estimates on the analog
    /// ones.
    ///
    /// # Errors
    ///
    /// Propagates solver and synthesis failures.
    pub fn compute(pvt: Pvt, data_rate: Hertz) -> Result<Self, LinkError> {
        let driver = TxDriver::new(DriverConfig::paper_default(), pvt);
        let frontend = RxFrontEnd::new(FrontEndConfig::paper_default(), pvt);
        let library = Library::sky130(pvt);

        // Receiver: static bias + switched capacitance + the sampler flop.
        let fe_static = frontend.static_power()?;
        let vdd = pvt.vdd.value();
        let fe_dynamic = Watt::new(0.5 * 120.0e-15 * vdd * vdd * data_rate.value());
        let dff = library
            .cell(LogicFn::Dff, DriveStrength::X2)
            .expect("library flop");
        let sampler_power = Watt::new(dff.internal_energy_j * 2.0 * data_rate.value())
            + Watt::new(dff.clock_cap.value() * vdd * vdd * data_rate.value());
        let rx_power = fe_static + fe_dynamic + sampler_power;
        let rx_area = AreaUm2::new(frontend.area().value() + dff.area.value());

        // Digital blocks through the flow. Serializer and deserializer
        // shift at the bit rate; the CDR's decision logic runs at the UI
        // rate with the sampling flops at the oversampled rate (folded
        // into its activity factor).
        let mut flow_cfg = FlowConfig::at_clock(data_rate);
        flow_cfg.pvt = pvt;
        flow_cfg.activity = 0.5;
        flow_cfg.anneal_iterations = 5_000;

        let ser_design = serializer_design();
        let des_design = deserializer_design();
        let cdr_design5 = cdr_design(5);
        let flow = Flow::new().with_config(flow_cfg.clone());
        let ser = flow.run(&ser_design).map_err(LinkError::from)?;
        let des = flow.run(&des_design).map_err(LinkError::from)?;
        let cdr = flow.run(&cdr_design5).map_err(LinkError::from)?;

        // Vector-based power: drive each block with PRBS traffic and
        // measure real per-net toggle rates (the shift-register
        // serializer toggles everywhere every bit; the deserializer's
        // decoder nets pulse rarely — the asymmetry behind Fig. 10).
        let cycles = 2 * FRAME_BITS;
        let mut prbs = PrbsGenerator::new(PrbsOrder::Prbs31);
        let mut frame_bits: Vec<bool> = prbs.take_bits(FRAME_BITS);
        let ser_power = measured_power(
            &ser_design,
            &ser,
            &library,
            data_rate,
            cycles,
            |sim, cycle, names| {
                let load = cycle % FRAME_BITS == 0;
                sim.set_bit(names["load"], load);
                if load {
                    frame_bits = prbs.take_bits(FRAME_BITS);
                    for (i, &b) in frame_bits.iter().enumerate() {
                        sim.set_bit(names[format!("data[{i}]").as_str()], b);
                    }
                }
            },
        )?;
        let mut prbs_des = PrbsGenerator::new(PrbsOrder::Prbs31);
        let des_power = measured_power(
            &des_design,
            &des,
            &library,
            data_rate,
            cycles,
            |sim, _, names| {
                sim.set_bit(names["enable"], true);
                sim.set_bit(names["serial_in"], prbs_des.next_bit());
            },
        )?;
        let cdr_bits = PrbsGenerator::new(PrbsOrder::Prbs31).take_bits(cycles);
        let cdr_stream = oversample_bits(&cdr_bits, 5, 0.3, 0.01, 5);
        let cdr_power = measured_power(
            &cdr_design5,
            &cdr,
            &library,
            data_rate,
            cycles,
            |sim, cycle, names| {
                for j in 0..5 {
                    sim.set_bit(
                        names[format!("samples[{j}]").as_str()],
                        cdr_stream[cycle * 5 + j],
                    );
                }
            },
        )?;

        Ok(Self {
            data_rate,
            blocks: vec![
                BlockBudget {
                    name: "tx_driver",
                    power: driver.power(data_rate),
                    area: driver.area(),
                },
                BlockBudget {
                    name: "rx_frontend",
                    power: rx_power,
                    area: rx_area,
                },
                BlockBudget {
                    name: "serializer",
                    power: ser_power,
                    area: ser.area(),
                },
                BlockBudget {
                    name: "deserializer",
                    power: des_power,
                    area: des.area(),
                },
                BlockBudget {
                    name: "cdr",
                    power: cdr_power,
                    area: cdr.area(),
                },
            ],
        })
    }

    /// The named block.
    ///
    /// # Panics
    ///
    /// Panics if no block has this name.
    pub fn block(&self, name: &str) -> &BlockBudget {
        self.blocks
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no block named {name}"))
    }

    /// Total power across all blocks.
    pub fn total_power(&self) -> Watt {
        self.blocks.iter().map(|b| b.power).sum()
    }

    /// Power of the serial link alone (TX driver + RX front end),
    /// the paper's "15.7 mW" figure.
    pub fn link_power(&self) -> Watt {
        self.block("tx_driver").power + self.block("rx_frontend").power
    }

    /// Energy per transmitted bit (total power / data rate).
    pub fn energy_per_bit(&self) -> Joule {
        Joule::new(self.total_power().value() / self.data_rate.value())
    }

    /// Total area across all blocks.
    pub fn total_area(&self) -> AreaUm2 {
        AreaUm2::new(self.blocks.iter().map(|b| b.area.value()).sum())
    }

    /// A block's share of the total area, in percent.
    pub fn area_share_percent(&self, name: &str) -> f64 {
        100.0 * self.block(name).area.value() / self.total_area().value()
    }
}

impl fmt::Display for LinkBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "link budget @ {:.2} Gb/s (Fig. 10/11 reproduction):",
            self.data_rate.ghz()
        )?;
        writeln!(
            f,
            "  {:<14} {:>12} {:>14} {:>8}",
            "block", "power (mW)", "area (µm²)", "area %"
        )?;
        for b in &self.blocks {
            writeln!(
                f,
                "  {:<14} {:>12.3} {:>14.1} {:>7.1}%",
                b.name,
                b.power.mw(),
                b.area.value(),
                self.area_share_percent(b.name)
            )?;
        }
        writeln!(
            f,
            "  {:<14} {:>12.3} {:>14.1}",
            "total",
            self.total_power().mw(),
            self.total_area().value()
        )?;
        writeln!(f, "  link (TX+RX) power: {:.3} mW", self.link_power().mw())?;
        writeln!(
            f,
            "  energy efficiency : {:.1} pJ/bit",
            self.energy_per_bit().pj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LinkBudget {
        LinkBudget::compute(Pvt::nominal(), Hertz::from_ghz(2.0)).expect("computes")
    }

    #[test]
    fn serdes_blocks_dwarf_link_power() {
        // Fig. 10's headline shape: SER+DES+CDR ≫ TX+RX.
        let b = budget();
        let serdes_power =
            b.block("serializer").power + b.block("deserializer").power + b.block("cdr").power;
        assert!(
            serdes_power.value() > 2.0 * b.link_power().value(),
            "serdes {:.2} mW vs link {:.2} mW",
            serdes_power.mw(),
            b.link_power().mw()
        );
    }

    #[test]
    fn deserializer_dominates_area() {
        // Fig. 11: deserializer ≈ 60 % of the layout.
        let b = budget();
        let share = b.area_share_percent("deserializer");
        assert!(share > 40.0, "deserializer share = {share:.1} %");
        // Driver and front end are tiny fractions (paper: 0.2 %, 1.1 %).
        assert!(b.area_share_percent("tx_driver") < 5.0);
        assert!(b.area_share_percent("rx_frontend") < 8.0);
    }

    #[test]
    fn cdr_is_the_cheapest_digital_block() {
        let b = budget();
        assert!(b.block("cdr").power.value() < b.block("deserializer").power.value());
        assert!(b.block("cdr").power.value() < b.block("serializer").power.value());
    }

    #[test]
    fn energy_per_bit_consistent() {
        let b = budget();
        let pj = b.energy_per_bit().pj();
        let check = b.total_power().mw() / 2.0; // mW / Gb/s = pJ/bit
        assert!((pj - check).abs() < 1e-9);
        assert!(pj > 0.5, "pj/bit = {pj}");
    }

    #[test]
    fn power_scales_with_rate() {
        let b2 = budget();
        let b1 = LinkBudget::compute(Pvt::nominal(), Hertz::from_ghz(1.0)).expect("ok");
        assert!(b2.total_power().value() > b1.total_power().value());
    }

    #[test]
    fn display_has_all_blocks() {
        let s = budget().to_string();
        for name in [
            "tx_driver",
            "rx_frontend",
            "serializer",
            "deserializer",
            "cdr",
            "pJ/bit",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
