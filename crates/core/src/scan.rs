//! The external scan interface configuring the CDR (paper §IV-C: "the
//! CDR is also equipped with tunable glitch and jitter correction logic
//! using external scan bits").
//!
//! A [`ScanChain`] is the serial shift register those scan bits live in:
//! configuration is shifted in LSB-first while `scan_en` is high and
//! applied to the functional logic on the update strobe — exactly the
//! JTAG-style access a lab bench uses to tune the silicon. The encoding
//! maps to [`CdrConfig`]: glitch-filter enable (1 bit), phase hysteresis
//! (3 bits) and decision-window exponent (3 bits).

use crate::cdr::CdrConfig;
use openserdes_flow::ir::Design;

/// Number of scan bits in the CDR configuration chain.
pub const SCAN_BITS: usize = 7;

/// A behavioural scan chain holding the CDR's tuning bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    shift: Vec<bool>,
    applied: Vec<bool>,
}

impl ScanChain {
    /// A chain with all-zero shift and applied registers.
    pub fn new() -> Self {
        Self {
            shift: vec![false; SCAN_BITS],
            applied: vec![false; SCAN_BITS],
        }
    }

    /// Shifts one bit in (scan clock with `scan_en` high). Returns the
    /// bit falling off the end (`scan_out`), so chains can be daisy-
    /// chained and read back.
    pub fn shift_in(&mut self, bit: bool) -> bool {
        let out = self.shift.pop().expect("fixed length");
        self.shift.insert(0, bit);
        out
    }

    /// Applies the shifted bits to the functional register (the update
    /// strobe).
    pub fn update(&mut self) {
        self.applied.clone_from(&self.shift);
    }

    /// The currently applied raw bits.
    pub fn applied_bits(&self) -> &[bool] {
        &self.applied
    }

    /// Loads a whole configuration: shift all bits then update.
    /// Bits are shifted LSB-of-the-encoding last so the encoding ends up
    /// in chain order.
    pub fn load(&mut self, cfg: &CdrConfig) {
        let bits = Self::encode(cfg);
        for &b in bits.iter().rev() {
            let _ = self.shift_in(b);
        }
        self.update();
    }

    /// Encodes a [`CdrConfig`] into the scan format. The oversampling
    /// factor is fixed in hardware (phase-generator wiring) and not
    /// scanned.
    ///
    /// # Panics
    ///
    /// Panics if `phase_hysteresis > 7` or `window` is not a power of
    /// two in `1..=128` (the encodable range).
    pub fn encode(cfg: &CdrConfig) -> [bool; SCAN_BITS] {
        assert!(cfg.phase_hysteresis <= 7, "hysteresis needs 3 bits");
        assert!(
            cfg.window.is_power_of_two() && cfg.window <= 128,
            "window must be a power of two up to 128"
        );
        let wexp = cfg.window.trailing_zeros();
        let mut bits = [false; SCAN_BITS];
        bits[0] = cfg.glitch_filter;
        for i in 0..3 {
            bits[1 + i] = cfg.phase_hysteresis >> i & 1 == 1;
        }
        for i in 0..3 {
            bits[4 + i] = wexp >> i & 1 == 1;
        }
        bits
    }

    /// Decodes the *applied* bits back into a [`CdrConfig`] with the
    /// given (hard-wired) oversampling factor.
    pub fn decode(&self, oversampling: usize) -> CdrConfig {
        let bit = |i: usize| self.applied[i] as u32;
        let hysteresis = bit(1) | bit(2) << 1 | bit(3) << 2;
        let wexp = bit(4) | bit(5) << 1 | bit(6) << 2;
        CdrConfig {
            oversampling,
            glitch_filter: self.applied[0],
            phase_hysteresis: hysteresis.max(1),
            window: 1usize << wexp,
        }
    }
}

impl Default for ScanChain {
    fn default() -> Self {
        Self::new()
    }
}

/// Emits the scan chain as synthesizable RTL: a 7-bit shift register
/// with scan enable, plus a shadow (applied) register bank loaded on the
/// update strobe — daisy-chainable via `scan_out`.
pub fn scan_chain_design() -> Design {
    let mut d = Design::new("cdr_scan");
    let scan_in = d.input("scan_in");
    let scan_en = d.input("scan_en");
    let update = d.input("update");
    let shift = d.reg_bus(SCAN_BITS);
    let applied = d.reg_bus(SCAN_BITS);
    for i in 0..SCAN_BITS {
        let upstream = if i == 0 { scan_in } else { shift[i - 1] };
        let next = d.mux(shift[i], upstream, scan_en);
        d.connect_reg(shift[i], next);
        let loaded = d.mux(applied[i], shift[i], update);
        d.connect_reg(applied[i], loaded);
    }
    d.output("scan_out", shift[SCAN_BITS - 1]);
    d.output_bus("cfg", &applied);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_flow::ir::IrSim;

    #[test]
    fn encode_decode_round_trip() {
        for cfg in [
            CdrConfig::paper_default(),
            CdrConfig {
                oversampling: 5,
                glitch_filter: false,
                phase_hysteresis: 7,
                window: 128,
            },
            CdrConfig {
                oversampling: 3,
                glitch_filter: true,
                phase_hysteresis: 1,
                window: 1,
            },
        ] {
            let mut chain = ScanChain::new();
            chain.load(&cfg);
            assert_eq!(chain.decode(cfg.oversampling), cfg);
        }
    }

    #[test]
    fn update_gates_application() {
        let mut chain = ScanChain::new();
        chain.load(&CdrConfig::paper_default());
        let before = chain.decode(5);
        // Shift garbage without updating: applied config unchanged.
        for _ in 0..SCAN_BITS {
            let _ = chain.shift_in(true);
        }
        assert_eq!(chain.decode(5), before);
        chain.update();
        assert_ne!(chain.decode(5), before);
    }

    #[test]
    fn scan_out_enables_readback() {
        let mut chain = ScanChain::new();
        let cfg = CdrConfig::paper_default();
        chain.load(&cfg);
        // Shifting SCAN_BITS zeros reads the shift register back out in
        // chain order (MSB of the chain first).
        let expected = ScanChain::encode(&cfg);
        let mut read = Vec::new();
        for _ in 0..SCAN_BITS {
            read.push(chain.shift_in(false));
        }
        read.reverse();
        assert_eq!(read, expected);
    }

    #[test]
    fn rtl_matches_behavioural_chain() {
        let design = scan_chain_design();
        let mut sim = IrSim::new(&design);
        let cfg = CdrConfig::paper_default();
        let bits = ScanChain::encode(&cfg);
        sim.set_by_name("scan_en", true);
        for &b in bits.iter().rev() {
            sim.set_by_name("scan_in", b);
            sim.tick();
        }
        sim.set_by_name("scan_en", false);
        sim.set_by_name("update", true);
        sim.tick();
        let cfg_sigs: Vec<_> = design
            .outputs()
            .iter()
            .filter(|(n, _)| n.starts_with("cfg"))
            .map(|(_, s)| *s)
            .collect();
        let got: Vec<bool> = cfg_sigs.iter().map(|&s| sim.get(s)).collect();
        assert_eq!(got, bits.to_vec(), "RTL applied bits match the encoding");
    }

    #[test]
    fn scanned_config_drives_the_cdr() {
        // End-to-end: load a config over scan, build the CDR from it,
        // and verify it behaves per the scanned settings.
        let mut chain = ScanChain::new();
        let mut wanted = CdrConfig::paper_default();
        wanted.glitch_filter = false;
        wanted.phase_hysteresis = 4;
        chain.load(&wanted);
        let cfg = chain.decode(5);
        assert!(!cfg.glitch_filter);
        assert_eq!(cfg.phase_hysteresis, 4);
        let cdr = crate::cdr::OversamplingCdr::new(cfg);
        assert_eq!(cdr.selected_phase(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_window_rejected() {
        let mut cfg = CdrConfig::paper_default();
        cfg.window = 33;
        let _ = ScanChain::encode(&cfg);
    }
}
