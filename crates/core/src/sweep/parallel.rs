//! Parallel sweep engine.
//!
//! Monte-Carlo sweeps — bathtub phases, bisection probes, data-rate
//! points, PVT corners — are embarrassingly parallel *if* every work
//! item owns its randomness. The engine here guarantees that:
//!
//! * every item derives its own RNG stream from the caller's seed and
//!   the item index alone ([`derive_seed`], the same derivation the
//!   sequential code uses), and
//! * results come back in input order, regardless of which worker
//!   finished first.
//!
//! Consequently each `*_parallel` function is **bit-identical** to its
//! sequential counterpart for the same seed — parallelism changes wall
//! time, never results. [`max_loss_bisect_parallel`] keeps that promise
//! for an inherently sequential loop by *speculating*: it evaluates the
//! whole midpoint tree the bisection could visit next and then walks it,
//! so the bracket sequence is exactly the sequential one.
//!
//! Built on `std::thread::scope` — no runtime dependency.

use super::SweepPoint;
use crate::ber::BerTest;
use crate::error::LinkError;
use crate::link::LinkConfig;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::Hertz;
use openserdes_phy::ChannelModel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives work item `k`'s RNG seed from the run seed. This is the
/// contract the sequential sweeps already use (a Weyl-style odd
/// multiplier decorrelates neighbouring indices); parallel fan-out keeps
/// it so each item's random stream is identical either way.
pub fn derive_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9)
}

/// Worker count: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` scoped workers, returning results
/// in input order. Workers pull indices from a shared atomic counter
/// (work stealing), so uneven item costs still balance.
pub fn map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("sweep worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`map_with_threads`] on every available core.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with_threads(items, default_threads(), f)
}

/// Parallel [`super::bathtub`]: fans the phase points across workers.
/// Seed-identical to the sequential curve — each phase's RNG is derived
/// from `(seed, phase index)` in both.
///
/// # Errors
///
/// Propagates solver failures from the front-end characterization.
pub fn bathtub_parallel(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<super::BathtubPoint>, LinkError> {
    let (bits, model) = super::bathtub_setup(config, nbits)?;
    let ks: Vec<usize> = (0..phases).collect();
    Ok(map_with_threads(&ks, threads, |_, &k| {
        super::bathtub_point(&bits, &model, k, phases, seed)
    }))
}

/// Parallel [`super::max_loss_bisect`], bit-identical to the sequential
/// bisection for any thread count.
///
/// A bisection is a chain of dependent decisions, but each decision only
/// picks one of two precomputable midpoints — so the next `d` levels
/// form a binary tree of `2^d − 1` candidate probe points, all known in
/// advance. The engine evaluates the whole tree concurrently, then walks
/// it with the results; the walked path visits exactly the probes the
/// sequential loop would have, in the same arithmetic (`0.5 * (lo +
/// hi)` recursion), so the final bracket matches to the last bit. Probes
/// off the walked path are wasted work bought for wall-time — errors on
/// them are ignored, just as the sequential loop never sees them.
///
/// # Errors
///
/// Propagates link failures from the probes the bisection actually uses.
pub fn max_loss_bisect_parallel(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<f64, LinkError> {
    let error_free = |db: f64| -> Result<bool, LinkError> {
        let mut cfg = base.clone();
        cfg.channel = ChannelModel {
            attenuation_db: db,
            ..base.channel.clone()
        };
        BerTest::prbs31(cfg, frames).is_error_free()
    };
    let (mut lo, mut hi) = (0.0f64, 60.0f64);
    if !error_free(lo)? {
        return Ok(0.0);
    }
    if error_free(hi)? {
        return Ok(hi);
    }
    // Speculation depth: enough tree levels to occupy the workers, but
    // never deeper than the halvings the bracket still needs.
    let depth_for = |span: f64| -> u32 {
        let remaining = (span / tol_db).log2().ceil().max(1.0) as u32;
        let mut d = 0u32;
        while (1usize << (d + 1)) - 1 <= threads.max(1) {
            d += 1;
        }
        d.max(1).min(remaining)
    };
    while hi - lo > tol_db {
        let depth = depth_for(hi - lo);
        // Heap-ordered midpoint tree: node i splits its bracket at
        // 0.5 * (lo + hi); child 2i+1 takes the lower half, 2i+2 the
        // upper. fill() recurses with the same expression the
        // sequential loop uses, so probe values are bit-identical.
        let nodes = (1usize << depth) - 1;
        let mut probes = vec![0.0f64; nodes];
        fn fill(probes: &mut [f64], i: usize, lo: f64, hi: f64) {
            if i >= probes.len() {
                return;
            }
            let mid = 0.5 * (lo + hi);
            probes[i] = mid;
            fill(probes, 2 * i + 1, lo, mid);
            fill(probes, 2 * i + 2, mid, hi);
        }
        fill(&mut probes, 0, lo, hi);
        let mut verdicts: Vec<Option<Result<bool, LinkError>>> =
            map_with_threads(&probes, threads, |_, &db| Some(error_free(db)))
                .into_iter()
                .collect();
        let mut node = 0usize;
        while node < nodes {
            let mid = probes[node];
            match verdicts[node].take().expect("each node visited once")? {
                true => {
                    lo = mid;
                    node = 2 * node + 2;
                }
                false => {
                    hi = mid;
                    node = 2 * node + 1;
                }
            }
            if hi - lo <= tol_db {
                break;
            }
        }
    }
    Ok(lo)
}

/// Maximum channel loss at each data rate, the points fanned across
/// workers. Order follows `rates`; each point runs the *sequential*
/// bisection, so results equal a serial loop over [`super::max_loss_bisect`].
///
/// # Errors
///
/// Propagates the first link failure in rate order.
pub fn rate_sweep_parallel(
    base: &LinkConfig,
    rates: &[Hertz],
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<SweepPoint>, LinkError> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let results = map_with_threads(rates, threads, |_, &rate| {
        let mut cfg = base.clone();
        cfg.data_rate = rate;
        let max_loss_db = super::max_loss_bisect(&cfg, frames, tol_db)?;
        let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), base.pvt);
        Ok(SweepPoint {
            data_rate: rate,
            sensitivity: fe.sensitivity(rate)?,
            max_loss_db,
        })
    });
    results.into_iter().collect()
}

/// One corner sweep entry: the PVT point and its measured loss budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerPoint {
    /// The process/voltage/temperature point.
    pub pvt: Pvt,
    /// Maximum error-free channel attenuation at that corner.
    pub max_loss_db: f64,
}

/// Maximum channel loss at the three classic PVT corners (tt/ss/ff),
/// fanned across workers, in `[nominal, worst_case, best_case]` order.
///
/// # Errors
///
/// Propagates the first link failure in corner order.
pub fn corner_sweep_parallel(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<CornerPoint>, LinkError> {
    let corners = [Pvt::nominal(), Pvt::worst_case(), Pvt::best_case()];
    let results = map_with_threads(&corners, threads, |_, &pvt| {
        let mut cfg = base.clone();
        cfg.pvt = pvt;
        Ok(CornerPoint {
            pvt,
            max_loss_db: super::max_loss_bisect(&cfg, frames, tol_db)?,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{bathtub, max_loss_bisect};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_with_threads(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(map(&empty, |_, &x: &usize| x).is_empty());
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_eq!(s0, 42, "index 0 keeps the run seed");
        assert!(s0 != s1 && s1 != s2 && s0 != s2);
    }

    #[test]
    fn parallel_bathtub_is_seed_identical() {
        let cfg = LinkConfig::paper_default();
        let seq = bathtub(&cfg, 4_000, 12, 9).expect("sequential");
        for threads in [1, 2, 4] {
            let par = bathtub_parallel(&cfg, 4_000, 12, 9, threads).expect("parallel");
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_bisect_is_seed_identical() {
        let base = LinkConfig::paper_default();
        let seq = max_loss_bisect(&base, 4, 1.0).expect("sequential");
        for threads in [1, 3, 4] {
            let par = max_loss_bisect_parallel(&base, 4, 1.0, threads).expect("parallel");
            assert_eq!(
                par.to_bits(),
                seq.to_bits(),
                "threads = {threads}: {par} vs {seq}"
            );
        }
    }

    #[test]
    fn corner_sweep_orders_and_ranks_corners() {
        let base = LinkConfig::paper_default();
        let pts = corner_sweep_parallel(&base, 4, 1.0, 4).expect("runs");
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].pvt, Pvt::nominal());
        assert_eq!(pts[1].pvt, Pvt::worst_case());
        assert_eq!(pts[2].pvt, Pvt::best_case());
        assert!(
            pts[1].max_loss_db <= pts[0].max_loss_db,
            "ss must not beat tt: {} vs {}",
            pts[1].max_loss_db,
            pts[0].max_loss_db
        );
    }

    #[test]
    fn rate_sweep_matches_pointwise_bisection() {
        let base = LinkConfig::paper_default();
        let rates = [Hertz::from_ghz(1.0), Hertz::from_ghz(2.0)];
        let pts = rate_sweep_parallel(&base, &rates, 4, 1.0, 4).expect("runs");
        assert_eq!(pts.len(), 2);
        for (pt, &rate) in pts.iter().zip(&rates) {
            let mut cfg = base.clone();
            cfg.data_rate = rate;
            let seq = max_loss_bisect(&cfg, 4, 1.0).expect("sequential");
            assert_eq!(pt.data_rate, rate);
            assert_eq!(pt.max_loss_db.to_bits(), seq.to_bits());
        }
        assert!(
            pts[1].max_loss_db <= pts[0].max_loss_db,
            "loss falls with rate"
        );
    }
}
