//! Parallel sweep engine.
//!
//! Monte-Carlo sweeps — bathtub phases, bisection probes, data-rate
//! points, PVT corners — are embarrassingly parallel *if* every work
//! item owns its randomness. The engine here guarantees that:
//!
//! * every item derives its own RNG stream from the caller's seed and
//!   the item index alone ([`derive_seed`], the same derivation the
//!   sequential code uses), and
//! * results come back in input order, regardless of which worker
//!   finished first.
//!
//! Consequently each `*_parallel` function is **bit-identical** to its
//! sequential counterpart for the same seed — parallelism changes wall
//! time, never results. [`max_loss_bisect_parallel`] keeps that promise
//! for an inherently sequential loop by *speculating*: it evaluates the
//! whole midpoint tree the bisection could visit next and then walks it,
//! so the bracket sequence is exactly the sequential one.
//!
//! Built on `std::thread::scope` — no runtime dependency.
//!
//! The generic primitives (order-preserving map, speculative bisection)
//! live in [`openserdes_analog::par`] so the analog sweeps share the
//! same engine; this module re-exports them and keeps the link-level
//! sweep wrappers.

use super::{SweepOutcome, SweepPoint};
use crate::ber::BerTest;
use crate::error::LinkError;
use crate::link::LinkConfig;
pub use openserdes_analog::par::{
    bisect_speculative, default_threads, map, map_with_threads, try_map_with_threads,
};
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::Hertz;
use openserdes_phy::ChannelModel;
use openserdes_telemetry as telemetry;

/// Derives work item `k`'s RNG seed from the run seed. This is the
/// contract the sequential sweeps already use (a Weyl-style odd
/// multiplier decorrelates neighbouring indices); parallel fan-out keeps
/// it so each item's random stream is identical either way.
pub fn derive_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9)
}

/// Parallel [`super::bathtub`]: fans the phase points across workers.
/// Seed-identical to the sequential curve — each phase's RNG is derived
/// from `(seed, phase index)` in both.
///
/// # Errors
///
/// Propagates solver failures from the front-end characterization.
#[deprecated(note = "use `Sweep::new().with_threads(..).bathtub(..)` (openserdes_core::Sweep)")]
pub fn bathtub_parallel(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<super::BathtubPoint>, LinkError> {
    bathtub_par_impl(config, nbits, phases, seed, threads)
}

pub(crate) fn bathtub_par_impl(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<super::BathtubPoint>, LinkError> {
    let _span = telemetry::span("sweep.bathtub");
    let (bits, model) = super::bathtub_setup(config, nbits)?;
    let ks: Vec<usize> = (0..phases).collect();
    Ok(map_with_threads(&ks, threads, |_, &k| {
        super::bathtub_point(&bits, &model, k, phases, seed)
    }))
}

/// Fault-isolated [`bathtub_par_impl`]: a panicking phase lands in
/// [`SweepOutcome::failed`] instead of aborting the sweep. The shared
/// setup (PRBS stream, statistical model) still fails the whole call —
/// without it no phase is meaningful.
pub(crate) fn try_bathtub_par_impl(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
    threads: usize,
) -> Result<SweepOutcome<super::BathtubPoint>, LinkError> {
    let _span = telemetry::span("sweep.bathtub");
    let (bits, model) = super::bathtub_setup(config, nbits)?;
    let ks: Vec<usize> = (0..phases).collect();
    let results = try_map_with_threads(&ks, threads, |_, &k| {
        super::bathtub_point(&bits, &model, k, phases, seed)
    });
    Ok(SweepOutcome::collect(
        results
            .into_iter()
            .map(|r| r.map(Ok::<_, LinkError>))
            .collect(),
    ))
}

/// Parallel [`super::max_loss_bisect`], bit-identical to the sequential
/// bisection for any thread count. Runs on the shared
/// [`bisect_speculative`] engine: the next levels of the bisection's
/// midpoint tree are probed concurrently, then walked, so the bracket
/// sequence is exactly the sequential one.
///
/// # Errors
///
/// Propagates link failures from the probes the bisection actually uses.
#[deprecated(note = "use `Sweep::new().with_threads(..).max_loss(..)` (openserdes_core::Sweep)")]
pub fn max_loss_bisect_parallel(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<f64, LinkError> {
    max_loss_par_impl(base, frames, tol_db, threads)
}

pub(crate) fn max_loss_par_impl(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<f64, LinkError> {
    let _span = telemetry::span("sweep.max_loss_bisect");
    let error_free = |db: f64| -> Result<bool, LinkError> {
        telemetry::counter("sweep.bisect_probes", 1);
        let mut cfg = base.clone();
        cfg.channel = ChannelModel {
            attenuation_db: db,
            ..base.channel.clone()
        };
        BerTest::prbs31(cfg, frames).is_error_free()
    };
    let (lo, hi) = (0.0f64, 60.0f64);
    if !error_free(lo)? {
        return Ok(0.0);
    }
    if error_free(hi)? {
        return Ok(hi);
    }
    let (lo, _hi) = bisect_speculative(lo, hi, tol_db, threads, error_free)?;
    Ok(lo)
}

/// Maximum channel loss at each data rate, the points fanned across
/// workers. Order follows `rates`; each point runs the *sequential*
/// bisection, so results equal a serial loop over [`super::max_loss_bisect`].
///
/// # Errors
///
/// Propagates the first link failure in rate order.
#[deprecated(note = "use `Sweep::new().with_threads(..).rate_sweep(..)` (openserdes_core::Sweep)")]
pub fn rate_sweep_parallel(
    base: &LinkConfig,
    rates: &[Hertz],
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<SweepPoint>, LinkError> {
    rate_sweep_impl(base, rates, frames, tol_db, threads)
}

pub(crate) fn rate_sweep_impl(
    base: &LinkConfig,
    rates: &[Hertz],
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<SweepPoint>, LinkError> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let _span = telemetry::span("sweep.rate_sweep");
    // The small-signal characterization depends only on the PVT point,
    // not the data rate: solve the front-end bias once and evaluate
    // every rate from it instead of re-solving inside each work item.
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), base.pvt);
    let ss = fe.small_signal()?;
    let results = map_with_threads(rates, threads, |_, &rate| {
        telemetry::counter("sweep.rate_points", 1);
        let mut cfg = base.clone();
        cfg.data_rate = rate;
        let max_loss_db = super::max_loss_impl(&cfg, frames, tol_db)?;
        Ok(SweepPoint {
            data_rate: rate,
            sensitivity: fe.sensitivity_with(&ss, rate),
            max_loss_db,
        })
    });
    results.into_iter().collect()
}

/// Fault-isolated [`rate_sweep_impl`]: each rate point runs in its own
/// `catch_unwind`, so one poisoned rate reports in
/// [`SweepOutcome::failed`] while the others complete.
pub(crate) fn try_rate_sweep_impl(
    base: &LinkConfig,
    rates: &[Hertz],
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> SweepOutcome<SweepPoint> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let _span = telemetry::span("sweep.rate_sweep");
    // Characterize once as in `rate_sweep_impl` — but in the
    // fault-isolated variant a failed characterization must not kill
    // the sweep, so fall back to per-point solves (each of which fails
    // in isolation) instead of propagating.
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), base.pvt);
    let ss = fe.small_signal().ok();
    let results = try_map_with_threads(rates, threads, |_, &rate| {
        telemetry::counter("sweep.rate_points", 1);
        let mut cfg = base.clone();
        cfg.data_rate = rate;
        let max_loss_db = super::max_loss_impl(&cfg, frames, tol_db)?;
        let sensitivity = match &ss {
            Some(ss) => fe.sensitivity_with(ss, rate),
            None => fe.sensitivity(rate)?,
        };
        Ok::<_, LinkError>(SweepPoint {
            data_rate: rate,
            sensitivity,
            max_loss_db,
        })
    });
    SweepOutcome::collect(results)
}

/// One corner sweep entry: the PVT point, its measured loss budget and
/// its front-end sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerPoint {
    /// The process/voltage/temperature point.
    pub pvt: Pvt,
    /// Maximum error-free channel attenuation at that corner.
    pub max_loss_db: f64,
    /// Behavioural front-end sensitivity at the base data rate. The
    /// corner bias points behind this come from **one** batched DC
    /// solve (`RxFrontEnd::self_bias_batched`): the corner circuits
    /// differ only in device parameters, so they share a stamp plan and
    /// iterate in lockstep.
    pub sensitivity: openserdes_pdk::units::Volt,
}

/// The batched corner pre-pass: every corner's front-end bias in one
/// lockstep DC solve, then the solver-free sensitivity evaluation per
/// corner. Returns `None` per corner on solver failure so the
/// fault-isolated sweep can retry inside the isolated work item.
fn corner_sensitivities(
    base: &LinkConfig,
    corners: &[Pvt],
) -> Vec<Option<openserdes_pdk::units::Volt>> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let fes: Vec<RxFrontEnd> = corners
        .iter()
        .map(|&pvt| RxFrontEnd::new(FrontEndConfig::paper_default(), pvt))
        .collect();
    match RxFrontEnd::self_bias_batched(&fes) {
        Ok(biases) => fes
            .iter()
            .zip(biases)
            .map(|(fe, bias)| {
                Some(fe.sensitivity_with(&fe.small_signal_with_bias(bias), base.data_rate))
            })
            .collect(),
        Err(_) => vec![None; corners.len()],
    }
}

/// Maximum channel loss at the three classic PVT corners (tt/ss/ff),
/// fanned across workers, in `[nominal, worst_case, best_case]` order.
///
/// # Errors
///
/// Propagates the first link failure in corner order.
#[deprecated(
    note = "use `Sweep::new().with_threads(..).corner_sweep(..)` (openserdes_core::Sweep)"
)]
pub fn corner_sweep_parallel(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<CornerPoint>, LinkError> {
    corner_sweep_impl(base, frames, tol_db, threads)
}

pub(crate) fn corner_sweep_impl(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> Result<Vec<CornerPoint>, LinkError> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let _span = telemetry::span("sweep.corner_sweep");
    let corners = [Pvt::nominal(), Pvt::worst_case(), Pvt::best_case()];
    let sens = corner_sensitivities(base, &corners);
    let items: Vec<(Pvt, Option<openserdes_pdk::units::Volt>)> =
        corners.into_iter().zip(sens).collect();
    let results = map_with_threads(&items, threads, |_, &(pvt, sens)| {
        telemetry::counter("sweep.corner_points", 1);
        let mut cfg = base.clone();
        cfg.pvt = pvt;
        let sensitivity = match sens {
            Some(v) => v,
            None => {
                RxFrontEnd::new(FrontEndConfig::paper_default(), pvt).sensitivity(base.data_rate)?
            }
        };
        Ok(CornerPoint {
            pvt,
            max_loss_db: super::max_loss_impl(&cfg, frames, tol_db)?,
            sensitivity,
        })
    });
    results.into_iter().collect()
}

/// Fault-isolated [`corner_sweep_impl`], one isolated item per corner.
/// The batched bias pre-pass is shared; if it fails, each corner
/// re-solves its own sensitivity inside its isolated work item.
pub(crate) fn try_corner_sweep_impl(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
    threads: usize,
) -> SweepOutcome<CornerPoint> {
    use openserdes_phy::{FrontEndConfig, RxFrontEnd};
    let _span = telemetry::span("sweep.corner_sweep");
    let corners = [Pvt::nominal(), Pvt::worst_case(), Pvt::best_case()];
    let sens = corner_sensitivities(base, &corners);
    let items: Vec<(Pvt, Option<openserdes_pdk::units::Volt>)> =
        corners.into_iter().zip(sens).collect();
    let results = try_map_with_threads(&items, threads, |_, &(pvt, sens)| {
        telemetry::counter("sweep.corner_points", 1);
        let mut cfg = base.clone();
        cfg.pvt = pvt;
        let sensitivity = match sens {
            Some(v) => v,
            None => {
                RxFrontEnd::new(FrontEndConfig::paper_default(), pvt).sensitivity(base.data_rate)?
            }
        };
        Ok::<_, LinkError>(CornerPoint {
            pvt,
            max_loss_db: super::max_loss_impl(&cfg, frames, tol_db)?,
            sensitivity,
        })
    });
    SweepOutcome::collect(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{bathtub_impl, max_loss_impl, Sweep};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_with_threads(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(map(&empty, |_, &x: &usize| x).is_empty());
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_eq!(s0, 42, "index 0 keeps the run seed");
        assert!(s0 != s1 && s1 != s2 && s0 != s2);
    }

    #[test]
    fn parallel_bathtub_is_seed_identical() {
        let cfg = LinkConfig::paper_default();
        let seq = bathtub_impl(&cfg, 4_000, 12, 9).expect("sequential");
        for threads in [1, 2, 4] {
            let par = Sweep::new()
                .with_bits(4_000)
                .with_phases(12)
                .with_seed(9)
                .with_threads(threads)
                .bathtub(&cfg)
                .expect("parallel");
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_bisect_is_seed_identical() {
        let base = LinkConfig::paper_default();
        let seq = max_loss_impl(&base, 4, 1.0).expect("sequential");
        for threads in [1, 3, 4] {
            let par = Sweep::new()
                .with_frames(4)
                .with_tolerance_db(1.0)
                .with_threads(threads)
                .max_loss(&base)
                .expect("parallel");
            assert_eq!(
                par.to_bits(),
                seq.to_bits(),
                "threads = {threads}: {par} vs {seq}"
            );
        }
    }

    #[test]
    fn corner_sweep_orders_and_ranks_corners() {
        let base = LinkConfig::paper_default();
        let sweep = Sweep::new()
            .with_frames(4)
            .with_tolerance_db(1.0)
            .with_threads(4);
        let pts = sweep.corner_sweep(&base).expect("runs");
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].pvt, Pvt::nominal());
        assert_eq!(pts[1].pvt, Pvt::worst_case());
        assert_eq!(pts[2].pvt, Pvt::best_case());
        assert!(
            pts[1].max_loss_db <= pts[0].max_loss_db,
            "ss must not beat tt: {} vs {}",
            pts[1].max_loss_db,
            pts[0].max_loss_db
        );
        // The batched bias pre-pass must agree with a per-corner
        // sequential characterization.
        use openserdes_phy::{FrontEndConfig, RxFrontEnd};
        for p in &pts {
            let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), p.pvt);
            let want = fe.sensitivity(base.data_rate).expect("solves").value();
            let got = p.sensitivity.value();
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1e-6),
                "corner {:?}: batched sensitivity {got} vs sequential {want}",
                p.pvt
            );
        }
    }

    #[test]
    fn rate_sweep_matches_pointwise_bisection() {
        let base = LinkConfig::paper_default();
        let rates = [Hertz::from_ghz(1.0), Hertz::from_ghz(2.0)];
        let sweep = Sweep::new()
            .with_frames(4)
            .with_tolerance_db(1.0)
            .with_threads(4);
        let pts = sweep.rate_sweep(&base, &rates).expect("runs");
        assert_eq!(pts.len(), 2);
        for (pt, &rate) in pts.iter().zip(&rates) {
            let mut cfg = base.clone();
            cfg.data_rate = rate;
            let seq = max_loss_impl(&cfg, 4, 1.0).expect("sequential");
            assert_eq!(pt.data_rate, rate);
            assert_eq!(pt.max_loss_db.to_bits(), seq.to_bits());
        }
        assert!(
            pts[1].max_loss_db <= pts[0].max_loss_db,
            "loss falls with rate"
        );
    }
}
