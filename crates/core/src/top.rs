//! The full digital SerDes top level: serializer, oversampling CDR,
//! deserializer and the scan chain composed into **one synthesizable
//! design** — what the paper's complete Fig. 11 layout contains (minus
//! the analog driver/front end, which are not standard cells).
//!
//! In loopback form the serial output feeds all CDR sample phases
//! directly (ideal sampling), giving a closed digital path: a frame
//! loaded at the parallel input reappears at the parallel output 256
//! cycles later — the gate-level equivalent of the paper's end-to-end
//! simulation, and the design the flow turns into the whole-chip
//! area/power numbers.

use crate::cdr::cdr_design;
use crate::deserializer::deserializer_design;
use crate::scan::scan_chain_design;
use crate::serializer::serializer_design;
use openserdes_flow::ir::Design;

/// Builds the loopback digital top: `load`/`data[256]` in,
/// `data_out[256]`/`frame_valid`/`busy`/`scan_out` out.
///
/// Block wiring:
///
/// ```text
/// data[256] ─▶ serializer ─ serial ─▶ CDR (all 5 phases tied) ─▶ deserializer ─▶ data_out[256]
///                   │ busy ──────────────────────────▲ enable
/// scan_in/en/update ─▶ scan chain ─▶ cfg[7] (observable)
/// ```
pub fn serdes_digital_top(oversampling: usize) -> Design {
    let mut d = Design::new("serdes_top");
    let load = d.input("load");
    let data = d.input_bus("data", crate::serializer::FRAME_BITS);

    // Serializer.
    let ser = serializer_design();
    let mut ser_binds = vec![(ser_input(&ser, "load"), load)];
    for (i, &bit) in data.iter().enumerate() {
        ser_binds.push((ser_input(&ser, &format!("data[{i}]")), bit));
    }
    let ser_outs = d.import(&ser, "ser", &ser_binds);
    let serial = find(&ser_outs, "serial_out");
    let busy = find(&ser_outs, "busy");

    // CDR with every sample phase tied to the serial line (ideal
    // sampling in the loopback; the analog front end provides the real
    // phases on silicon).
    let cdr = cdr_design(oversampling);
    let cdr_binds: Vec<_> = (0..oversampling)
        .map(|j| (ser_input(&cdr, &format!("samples[{j}]")), serial))
        .collect();
    let cdr_outs = d.import(&cdr, "cdr", &cdr_binds);
    let recovered = find(&cdr_outs, "bit_out");

    // Deserializer, enabled while the serializer is transmitting.
    let des = deserializer_design();
    let des_binds = vec![
        (ser_input(&des, "serial_in"), recovered),
        (ser_input(&des, "enable"), busy),
    ];
    let des_outs = d.import(&des, "des", &des_binds);

    // Scan chain (its inputs surface as top-level scan pins).
    let scan = scan_chain_design();
    let scan_outs = d.import(&scan, "scan", &[]);

    d.output("busy", busy);
    d.output("serial_out", serial);
    // The CDR's phase selection must stay observable: in the loopback
    // the recovered-bit mux folds away (every sample phase is the same
    // net), and without these pins the whole CDR — edge counters,
    // argmax, phase register — would synthesize as dead logic while
    // still being billed in the area/power numbers.
    for (name, sig) in &cdr_outs {
        if let Some(rest) = name.strip_prefix("phase") {
            d.output(format!("cdr_phase{rest}"), *sig);
        }
    }
    d.output("frame_valid", find(&des_outs, "frame_valid"));
    for (name, sig) in &des_outs {
        if let Some(rest) = name.strip_prefix("data") {
            d.output(format!("data_out{rest}"), *sig);
        }
    }
    d.output("scan_out", find(&scan_outs, "scan_out"));
    // The applied configuration bank must be observable at the top
    // (the "cfg[7] (observable)" promise above) — without these pins
    // the whole shadow-register bank is dead logic and synthesis
    // carries unreachable flops into the area/power numbers.
    for (name, sig) in &scan_outs {
        if let Some(rest) = name.strip_prefix("cfg") {
            d.output(format!("cfg{rest}"), *sig);
        }
    }
    d
}

fn ser_input(design: &Design, name: &str) -> openserdes_flow::ir::Sig {
    design
        .input_sig(name)
        .unwrap_or_else(|| panic!("child design has input `{name}`"))
}

fn find(outs: &[(String, openserdes_flow::ir::Sig)], name: &str) -> openserdes_flow::ir::Sig {
    outs.iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("child design has output `{name}`"))
        .1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::{frame_to_bits, Frame, FRAME_BITS};
    use openserdes_flow::ir::IrSim;

    fn test_frame() -> Frame {
        [
            0xFEED_C0DE,
            0x1234_5678,
            0x9ABC_DEF0,
            0x0BAD_F00D,
            0xAAAA_5555,
            0x0F1E_2D3C,
            0x8000_0001,
            0x7FFF_FFFE,
        ]
    }

    #[test]
    fn loopback_round_trips_a_frame() {
        let top = serdes_digital_top(5);
        let mut sim = IrSim::new(&top);
        let frame = test_frame();
        let bits = frame_to_bits(&frame);
        sim.set_by_name("load", true);
        for (i, &b) in bits.iter().enumerate() {
            sim.set_by_name(&format!("data[{i}]"), b);
        }
        sim.tick();
        sim.set_by_name("load", false);

        let outs = top.outputs();
        let valid = outs.iter().find(|(n, _)| n == "frame_valid").expect("fv").1;
        let mut saw_valid = false;
        for _ in 0..FRAME_BITS + 4 {
            sim.tick();
            saw_valid |= sim.get(valid);
        }
        assert!(saw_valid, "frame_valid must pulse after 256 bits");
        let got: Vec<bool> = (0..FRAME_BITS)
            .map(|i| {
                let sig = outs
                    .iter()
                    .find(|(n, _)| *n == format!("data_out[{i}]"))
                    .expect("data_out bit")
                    .1;
                sim.get(sig)
            })
            .collect();
        assert_eq!(
            crate::serializer::bits_to_frame(&got),
            frame,
            "gate-level loopback must be the identity"
        );
    }

    #[test]
    fn back_to_back_frames_round_trip() {
        let top = serdes_digital_top(5);
        let mut sim = IrSim::new(&top);
        let outs = top.outputs();
        let data_out: Vec<_> = (0..FRAME_BITS)
            .map(|i| {
                outs.iter()
                    .find(|(n, _)| *n == format!("data_out[{i}]"))
                    .expect("bit")
                    .1
            })
            .collect();
        for round in 0..2u32 {
            let mut frame = test_frame();
            frame[0] ^= round;
            let bits = frame_to_bits(&frame);
            sim.set_by_name("load", true);
            for (i, &b) in bits.iter().enumerate() {
                sim.set_by_name(&format!("data[{i}]"), b);
            }
            sim.tick();
            sim.set_by_name("load", false);
            for _ in 0..FRAME_BITS {
                sim.tick();
            }
            let got: Vec<bool> = data_out.iter().map(|&s| sim.get(s)).collect();
            assert_eq!(
                crate::serializer::bits_to_frame(&got),
                frame,
                "round {round}"
            );
        }
    }

    #[test]
    fn top_synthesizes_as_one_block() {
        let lib = openserdes_pdk::library::Library::sky130(openserdes_pdk::corner::Pvt::nominal());
        let res = openserdes_flow::synthesize(&serdes_digital_top(5), &lib).expect("ok");
        // 265 (ser) + 39 (cdr) + 265 (des) + 14 (scan) = 583 flops.
        assert_eq!(res.netlist.flop_count(), 583);
        assert!(res.netlist.cell_count() > 2_000);
        // The CDR's multicycle exceptions survive the composition.
        assert_eq!(res.multicycle.len(), 3);
    }

    #[test]
    fn top_netlist_carries_no_dead_logic() {
        // Regression: without the cdr_phase/cfg observability pins the
        // loopback const-folds the recovered-bit mux away and the whole
        // CDR register file (39 flops) plus the scan shadow bank
        // synthesize as dead cells still billed in area/power.
        let lib = openserdes_pdk::library::Library::sky130(openserdes_pdk::corner::Pvt::nominal());
        let res = openserdes_flow::synthesize(&serdes_digital_top(5), &lib).expect("ok");
        let report = res.netlist.lint(&openserdes_lint::LintConfig::default());
        assert!(
            !report.findings().iter().any(|f| {
                f.rule == openserdes_lint::Rule::DeadLogic
                    || f.rule == openserdes_lint::Rule::DanglingOutput
            }),
            "synthesized top must not carry dead cells:\n{report}"
        );
    }
}
