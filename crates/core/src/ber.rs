//! BER measurement harness (the testbench behind Fig. 8 / Fig. 9).
//!
//! Drives the link with PRBS stimulus and scores recovered bits with the
//! self-synchronizing checker, producing confidence-qualified BER
//! numbers. The *zero-BER* predicate used in the paper's "maximum
//! channel loss" metric is a rule-of-three bound: no errors over `n`
//! bits certifies `BER < 3/n` at 95 % confidence.

use crate::error::LinkError;
use crate::link::LinkConfig;
use crate::prbs::PrbsOrder;
use crate::serializer::{Frame, LANES};
use openserdes_phy::BerEstimate;

/// BER test configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BerTest {
    /// The link operating point under test.
    pub link: LinkConfig,
    /// Stimulus polynomial.
    pub prbs: PrbsOrder,
    /// Number of frames (256 bits each) to run.
    pub frames: usize,
    /// PRNG seed for the stochastic PHY.
    pub seed: u64,
}

impl BerTest {
    /// A PRBS-31 test of `frames` frames at the given operating point.
    pub fn prbs31(link: LinkConfig, frames: usize) -> Self {
        Self {
            link,
            prbs: PrbsOrder::Prbs31,
            frames,
            seed: 0xBE12,
        }
    }

    /// Generates the PRBS frame stimulus.
    pub fn stimulus(&self) -> Vec<Frame> {
        let mut g = crate::prbs::PrbsGenerator::new(self.prbs);
        (0..self.frames)
            .map(|_| {
                let mut f = [0u32; LANES];
                for w in f.iter_mut() {
                    for b in 0..32 {
                        if g.next_bit() {
                            *w |= 1 << b;
                        }
                    }
                }
                f
            })
            .collect()
    }

    /// Runs the test, returning the BER estimate.
    ///
    /// # Errors
    ///
    /// Propagates link failures.
    pub fn run(&self) -> Result<BerEstimate, LinkError> {
        let report = crate::link::run_frames(&self.link, &self.stimulus(), self.seed)?;
        Ok(BerEstimate {
            bits: report.bits,
            errors: report.bit_errors,
        })
    }

    /// `true` when the run completes with zero errors.
    ///
    /// # Errors
    ///
    /// Propagates link failures.
    pub fn is_error_free(&self) -> Result<bool, LinkError> {
        Ok(self.run()?.errors == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_phy::ChannelModel;

    #[test]
    fn paper_point_is_error_free_with_confidence() {
        let t = BerTest::prbs31(LinkConfig::paper_default(), 40);
        let est = t.run().expect("runs");
        assert_eq!(est.errors, 0);
        assert!(est.ber_upper95() < 1e-3, "bound = {}", est.ber_upper95());
    }

    #[test]
    fn broken_channel_reports_errors() {
        let mut cfg = LinkConfig::paper_default();
        cfg.channel = ChannelModel::lossy(48.0);
        let t = BerTest::prbs31(cfg, 10);
        assert!(!t.is_error_free().expect("runs"));
    }

    #[test]
    fn stimulus_is_reproducible_and_framed() {
        let t = BerTest::prbs31(LinkConfig::paper_default(), 3);
        let a = t.stimulus();
        let b = t.stimulus();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // PRBS content: frames differ from each other.
        assert_ne!(a[0], a[1]);
    }
}
