//! The FSM serializer (paper §IV-A-a).
//!
//! Takes 8 parallel data streams of 32 bits each (one *frame*) and emits
//! them as a serial bit stream, sequentially lane by lane, LSB first —
//! 256 bit times per frame. Provided both as a cycle-accurate
//! behavioural model ([`Serializer`]) and as synthesizable RTL
//! ([`serializer_design`]) that the flow pushes to layout for the
//! paper's area/power breakdown (Figs. 10–11).

use crate::bitstream::BitVec;
use openserdes_flow::ir::Design;

/// Number of parallel input streams (lanes).
pub const LANES: usize = 8;
/// Bits per lane word.
pub const WORD_BITS: usize = 32;
/// Bits per serialized frame.
pub const FRAME_BITS: usize = LANES * WORD_BITS;

/// One frame of parallel input data: 8 lanes × 32 bits.
pub type Frame = [u32; LANES];

/// Flattens a frame into its serial bit order (lane 0 LSB first).
pub fn frame_to_bits(frame: &Frame) -> Vec<bool> {
    (0..FRAME_BITS)
        .map(|i| frame[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1)
        .collect()
}

/// Flattens a frame into a packed bitstream in serial bit order (the
/// hot-path variant of [`frame_to_bits`]: eight word writes per frame).
pub fn frame_to_bitvec(frame: &Frame) -> BitVec {
    let mut bv = BitVec::with_capacity(FRAME_BITS);
    for &w in frame {
        bv.push_word(w as u64, WORD_BITS);
    }
    bv
}

/// Packs serial bits (lane 0 LSB first) back into a frame.
///
/// # Panics
///
/// Panics if `bits.len() != FRAME_BITS`.
pub fn bits_to_frame(bits: &[bool]) -> Frame {
    assert_eq!(bits.len(), FRAME_BITS, "a frame is {FRAME_BITS} bits");
    let mut frame = [0u32; LANES];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            frame[i / WORD_BITS] |= 1 << (i % WORD_BITS);
        }
    }
    frame
}

/// Cycle-accurate behavioural serializer FSM.
///
/// States: *idle* (output undriven-low, waiting for a load) and
/// *shifting* (one bit per clock from the internal bank).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Serializer {
    bank: Frame,
    index: usize,
    active: bool,
    frames_sent: u64,
}

impl Serializer {
    /// Creates an idle serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a frame and starts shifting on the next clock.
    ///
    /// Loading while a frame is in flight restarts from the new frame
    /// (matching the RTL, where `load` has priority).
    pub fn load(&mut self, frame: Frame) {
        self.bank = frame;
        self.index = 0;
        self.active = true;
    }

    /// `true` while a frame is being shifted out.
    pub fn is_busy(&self) -> bool {
        self.active
    }

    /// Frames completely transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// One clock: returns the output bit, or `None` when idle.
    pub fn tick(&mut self) -> Option<bool> {
        if !self.active {
            return None;
        }
        let bit = self.bank[self.index / WORD_BITS] >> (self.index % WORD_BITS) & 1 == 1;
        self.index += 1;
        if self.index == FRAME_BITS {
            self.active = false;
            self.frames_sent += 1;
        }
        Some(bit)
    }

    /// Serializes a whole frame in one call (load + 256 ticks).
    pub fn serialize(&mut self, frame: Frame) -> Vec<bool> {
        self.load(frame);
        (0..FRAME_BITS)
            .map(|_| self.tick().expect("busy for a full frame"))
            .collect()
    }

    /// Packed fast path of [`Self::serialize`]: appends the frame's
    /// bits to `out` one lane word at a time, leaving the FSM in the
    /// same end state as 256 ticks would (idle, frame counted).
    pub fn serialize_into(&mut self, frame: Frame, out: &mut BitVec) {
        self.bank = frame;
        for &w in &frame {
            out.push_word(w as u64, WORD_BITS);
        }
        self.index = FRAME_BITS;
        self.active = false;
        self.frames_sent += 1;
    }
}

/// Emits the serializer as synthesizable RTL: a 256-bit parallel-load
/// **shift register** (the canonical serializer FSM), an 8-bit bit
/// counter and an active flag. Every bank flop re-clocks every bit time,
/// which is why the serializer is the power-hungriest block of the
/// paper's Fig. 10.
pub fn serializer_design() -> Design {
    let mut d = Design::new("serializer");
    let load = d.input("load");
    let data = d.input_bus("data", FRAME_BITS);
    let bank = d.reg_bus(FRAME_BITS);
    let counter = d.reg_bus(8);
    let active = d.reg();

    // Bank: parallel load, else shift toward bit 0 (zero backfill).
    let zero_bit = d.constant(false);
    for i in 0..FRAME_BITS {
        let shifted_in = if i + 1 < FRAME_BITS {
            bank[i + 1]
        } else {
            zero_bit
        };
        let shifted = d.mux(bank[i], shifted_in, active);
        let next = d.mux(shifted, data[i], load);
        d.connect_reg(bank[i], next);
    }

    // Counter: reset on load, increment while active.
    let inc = d.incr(&counter);
    let cnt_run = d.mux_bus(&counter, &inc, active);
    let zero = d.const_bus(8, 0);
    let cnt_next = d.mux_bus(&cnt_run, &zero, load);
    d.connect_reg_bus(&counter, &cnt_next);

    // Active: set on load, clear after the last bit.
    let last = d.eq_const(&counter, (FRAME_BITS - 1) as u64);
    let not_last = d.not(last);
    let still = d.and(active, not_last);
    let active_next = d.or(still, load);
    d.connect_reg(active, active_next);

    // Serial output: the shift register's tail, gated by active.
    let out = d.and(bank[0], active);
    d.output("serial_out", out);
    d.output("busy", active);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_flow::ir::IrSim;

    fn test_frame() -> Frame {
        [
            0xDEAD_BEEF,
            0x0123_4567,
            0x89AB_CDEF,
            0xFFFF_0000,
            0x0000_FFFF,
            0xA5A5_A5A5,
            0x5A5A_5A5A,
            0x1234_8765,
        ]
    }

    #[test]
    fn frame_bits_round_trip() {
        let f = test_frame();
        let bits = frame_to_bits(&f);
        assert_eq!(bits.len(), FRAME_BITS);
        assert_eq!(bits_to_frame(&bits), f);
        // Lane 0 LSB goes first.
        assert_eq!(bits[0], f[0] & 1 == 1);
        assert_eq!(bits[255], f[7] >> 31 & 1 == 1);
    }

    #[test]
    fn behavioural_serializer_emits_frame_in_order() {
        let mut s = Serializer::new();
        let f = test_frame();
        let bits = s.serialize(f);
        assert_eq!(bits, frame_to_bits(&f));
        assert!(!s.is_busy());
        assert_eq!(s.frames_sent(), 1);
        assert_eq!(s.tick(), None, "idle after the frame");
    }

    #[test]
    fn packed_serialization_matches_fsm() {
        let f = test_frame();
        let mut a = Serializer::new();
        let mut b = Serializer::new();
        let ticked = a.serialize(f);
        let mut packed = BitVec::new();
        b.serialize_into(f, &mut packed);
        assert_eq!(packed.to_bools(), ticked);
        assert_eq!(frame_to_bitvec(&f).to_bools(), ticked);
        // FSM end state matches too.
        assert_eq!(a, b);
        assert_eq!(b.frames_sent(), 1);
        assert!(!b.is_busy());
        // Appending a second frame continues the same stream.
        b.serialize_into(f, &mut packed);
        assert_eq!(packed.len(), 2 * FRAME_BITS);
    }

    #[test]
    fn reload_mid_frame_restarts() {
        let mut s = Serializer::new();
        s.load([0xFFFF_FFFF; LANES]);
        for _ in 0..10 {
            let _ = s.tick();
        }
        s.load([0x0000_0000; LANES]);
        assert_eq!(s.tick(), Some(false), "restarted with new data");
    }

    #[test]
    fn back_to_back_frames() {
        let mut s = Serializer::new();
        let f1 = test_frame();
        let mut f2 = test_frame();
        f2[0] = !f2[0];
        let b1 = s.serialize(f1);
        let b2 = s.serialize(f2);
        assert_eq!(bits_to_frame(&b1), f1);
        assert_eq!(bits_to_frame(&b2), f2);
        assert_eq!(s.frames_sent(), 2);
    }

    #[test]
    fn rtl_matches_behavioural_model() {
        let design = serializer_design();
        let mut sim = IrSim::new(&design);
        let f = test_frame();
        let bits = frame_to_bits(&f);
        // Find port signals.
        let load = design
            .input_names()
            .iter()
            .position(|n| n == "load")
            .expect("has load");
        let _ = load;
        // Drive: load=1 with data for one cycle, then shift for 256.
        sim.set_by_name("load", true);
        for (i, &b) in bits.iter().enumerate() {
            sim.set_by_name(&format!("data[{i}]"), b);
        }
        sim.tick();
        sim.set_by_name("load", false);
        let (out_sig, busy_sig) = {
            let outs = design.outputs();
            (
                outs.iter().find(|(n, _)| n == "serial_out").expect("out").1,
                outs.iter().find(|(n, _)| n == "busy").expect("busy").1,
            )
        };
        let mut got = Vec::new();
        for _ in 0..FRAME_BITS {
            assert!(sim.get(busy_sig), "busy through the frame");
            got.push(sim.get(out_sig));
            sim.tick();
        }
        assert_eq!(got, bits, "RTL output must match the behavioural FSM");
        assert!(!sim.get(busy_sig), "idle after the frame");
    }

    #[test]
    fn rtl_synthesizes_to_flop_dominated_netlist() {
        let design = serializer_design();
        let lib = openserdes_pdk::library::Library::sky130(openserdes_pdk::corner::Pvt::nominal());
        let res = openserdes_flow::synthesize(&design, &lib).expect("synthesizable");
        // 256 bank + 8 counter + 1 active = 265 flops.
        assert_eq!(res.netlist.flop_count(), 265);
        assert!(
            res.netlist.cell_count() > 500,
            "bank muxes + mux tree: {} cells",
            res.netlist.cell_count()
        );
    }

    #[test]
    #[should_panic(expected = "a frame is 256 bits")]
    fn wrong_bit_count_rejected() {
        let _ = bits_to_frame(&[true; 100]);
    }
}
