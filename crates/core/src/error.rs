//! Error type for link-level operations.

use openserdes_analog::SolverError;
use openserdes_flow::FlowError;
use openserdes_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Failures surfaced by link simulation and budget computation.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// The analog solver failed (DC or transient).
    Solver(SolverError),
    /// Synthesis produced an invalid netlist (an internal bug, surfaced).
    Netlist(NetlistError),
    /// The RTL→layout flow refused the design (lint gate or netlist
    /// failure inside a stage).
    Flow(FlowError),
    /// The CDR failed to lock within the run.
    CdrUnlocked {
        /// Unit intervals processed before giving up.
        uis: u64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Solver(e) => write!(f, "analog solver failed: {e}"),
            LinkError::Netlist(e) => write!(f, "netlist error: {e}"),
            LinkError::Flow(e) => write!(f, "flow failed: {e}"),
            LinkError::CdrUnlocked { uis } => {
                write!(f, "cdr failed to lock within {uis} unit intervals")
            }
        }
    }
}

impl Error for LinkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinkError::Solver(e) => Some(e),
            LinkError::Netlist(e) => Some(e),
            LinkError::Flow(e) => Some(e),
            LinkError::CdrUnlocked { .. } => None,
        }
    }
}

impl From<SolverError> for LinkError {
    fn from(e: SolverError) -> Self {
        LinkError::Solver(e)
    }
}

impl From<NetlistError> for LinkError {
    fn from(e: NetlistError) -> Self {
        LinkError::Netlist(e)
    }
}

impl From<FlowError> for LinkError {
    fn from(e: FlowError) -> Self {
        // Unwrap plain netlist failures so callers keep seeing the
        // historical `Netlist` variant for them.
        match e {
            FlowError::Netlist(n) => LinkError::Netlist(n),
            lint => LinkError::Flow(lint),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: LinkError = SolverError::NonConvergence { time: 1e-9 }.into();
        assert!(e.to_string().contains("analog solver"));
        assert!(Error::source(&e).is_some());
        let e = LinkError::CdrUnlocked { uis: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinkError>();
    }
}
