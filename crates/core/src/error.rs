//! Error types: [`LinkError`] for link-level operations and the
//! unified [`Error`] surfaced by [`crate::session::Session`].

use openserdes_analog::SolverError;
use openserdes_flow::FlowError;
use openserdes_netlist::NetlistError;
use std::error::Error as StdError;
use std::fmt;

/// Failures surfaced by link simulation and budget computation.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// The analog solver failed (DC or transient).
    Solver(SolverError),
    /// Synthesis produced an invalid netlist (an internal bug, surfaced).
    Netlist(NetlistError),
    /// The RTL→layout flow refused the design (lint gate or netlist
    /// failure inside a stage).
    Flow(FlowError),
    /// The CDR failed to lock within the run.
    CdrUnlocked {
        /// Unit intervals processed before giving up.
        uis: u64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Solver(e) => write!(f, "analog solver failed: {e}"),
            LinkError::Netlist(e) => write!(f, "netlist error: {e}"),
            LinkError::Flow(e) => write!(f, "flow failed: {e}"),
            LinkError::CdrUnlocked { uis } => {
                write!(f, "cdr failed to lock within {uis} unit intervals")
            }
        }
    }
}

impl StdError for LinkError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            LinkError::Solver(e) => Some(e),
            LinkError::Netlist(e) => Some(e),
            LinkError::Flow(e) => Some(e),
            LinkError::CdrUnlocked { .. } => None,
        }
    }
}

impl From<SolverError> for LinkError {
    fn from(e: SolverError) -> Self {
        LinkError::Solver(e)
    }
}

impl From<NetlistError> for LinkError {
    fn from(e: NetlistError) -> Self {
        LinkError::Netlist(e)
    }
}

impl From<FlowError> for LinkError {
    fn from(e: FlowError) -> Self {
        // Unwrap plain netlist failures so callers keep seeing the
        // historical `Netlist` variant for them.
        match e {
            FlowError::Netlist(n) => LinkError::Netlist(n),
            lint => LinkError::Flow(lint),
        }
    }
}

/// Diagnostics for a sweep item that died mid-run (panicked) and was
/// isolated by the fault-tolerant fan-out instead of tearing down the
/// whole sweep (see `openserdes_analog::par::try_map_with_threads`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInfo {
    /// Input index of the item that faulted.
    pub item: usize,
    /// The panic message, when one was carried.
    pub message: String,
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep item {} faulted: {}", self.item, self.message)
    }
}

/// The unified error surface of the [`crate::session::Session`] API —
/// every entry point (link, analog, flow, lint, sweeps) reports through
/// this one enum, so callers match a single type regardless of which
/// layer failed.
///
/// Marked `#[non_exhaustive]`: future layers may add variants without a
/// breaking release, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A link-level failure (CDR, budget, or a wrapped lower layer).
    Link(LinkError),
    /// The RTL→layout flow refused or failed on a design.
    Flow(FlowError),
    /// The analog solver failed (DC or transient).
    Solver(SolverError),
    /// An operation produced or met an invalid netlist.
    Netlist(NetlistError),
    /// A sweep item panicked and was isolated by the fault-tolerant
    /// fan-out — the other items' results are unaffected.
    Fault(FaultInfo),
    /// A serialized job ([`crate::job::Request`] / wire frame) was
    /// malformed: bad JSON, an unknown kind, or an out-of-range field.
    Parse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Link(e) => write!(f, "link: {e}"),
            Error::Flow(e) => write!(f, "flow: {e}"),
            Error::Solver(e) => write!(f, "solver: {e}"),
            Error::Netlist(e) => write!(f, "netlist: {e}"),
            Error::Fault(e) => write!(f, "fault: {e}"),
            Error::Parse(msg) => write!(f, "parse: {msg}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Link(e) => Some(e),
            Error::Flow(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::Netlist(e) => Some(e),
            Error::Fault(_) | Error::Parse(_) => None,
        }
    }
}

impl From<FaultInfo> for Error {
    fn from(e: FaultInfo) -> Self {
        Error::Fault(e)
    }
}

impl From<LinkError> for Error {
    fn from(e: LinkError) -> Self {
        // Flatten wrapped lower-layer failures so matching on the
        // unified enum reaches the root cause in one step.
        match e {
            LinkError::Solver(s) => Error::Solver(s),
            LinkError::Netlist(n) => Error::Netlist(n),
            LinkError::Flow(fl) => Error::Flow(fl),
            other => Error::Link(other),
        }
    }
}

impl From<FlowError> for Error {
    fn from(e: FlowError) -> Self {
        Error::Flow(e)
    }
}

impl From<SolverError> for Error {
    fn from(e: SolverError) -> Self {
        Error::Solver(e)
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: LinkError = SolverError::NonConvergence {
            time: 1e-9,
            iterations: 120,
            worst_node: Some("out".into()),
        }
        .into();
        assert!(e.to_string().contains("analog solver"));
        assert!(StdError::source(&e).is_some());
        let e = LinkError::CdrUnlocked { uis: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn fault_variant_displays_item_and_message() {
        let e: Error = FaultInfo {
            item: 4,
            message: "index out of bounds".into(),
        }
        .into();
        assert!(matches!(e, Error::Fault(_)));
        let msg = e.to_string();
        assert!(msg.contains("item 4"), "got: {msg}");
        assert!(msg.contains("index out of bounds"), "got: {msg}");
        assert!(StdError::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinkError>();
        assert_send_sync::<Error>();
    }

    #[test]
    fn unified_error_flattens_link_wrappers() {
        let e: Error = LinkError::Solver(SolverError::NonConvergence {
            time: 1e-9,
            iterations: 0,
            worst_node: None,
        })
        .into();
        assert!(matches!(e, Error::Solver(_)));
        let e: Error = LinkError::CdrUnlocked { uis: 3 }.into();
        assert!(matches!(e, Error::Link(LinkError::CdrUnlocked { uis: 3 })));
        let e: Error = SolverError::SingularMatrix { time: 0.0 }.into();
        assert!(e.to_string().starts_with("solver:"));
        assert!(StdError::source(&e).is_some());
    }
}
