//! Relative chip-cost model (the paper's Fig. 2).
//!
//! The paper motivates open-source hardware with a bar chart of relative
//! chip fabrication cost across process nodes, split into fabrication
//! and PDK-licensing components; the open PDK removes the licensing
//! component. Licensing costs are not public, so — like the paper — the
//! model scales them relative to fabrication cost and node maturity.
//! All numbers are normalized to the 130 nm fabrication cost.

use std::fmt;

/// One node's relative cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Process node in nm.
    pub node_nm: u32,
    /// Relative fabrication (mask + wafer) cost.
    pub fabrication: f64,
    /// Relative PDK licensing / NRE cost for a traditional PDK.
    pub licensing: f64,
    /// `true` when an open PDK exists for this node (sky130).
    pub open_pdk_available: bool,
}

impl CostPoint {
    /// Total cost with a traditional PDK.
    pub fn traditional(&self) -> f64 {
        self.fabrication + self.licensing
    }

    /// Total cost with an open PDK (licensing removed), if available.
    pub fn open_pdk(&self) -> Option<f64> {
        self.open_pdk_available.then_some(self.fabrication)
    }

    /// Relative saving from the open PDK, in percent of the traditional
    /// cost (zero when no open PDK exists).
    pub fn saving_percent(&self) -> f64 {
        match self.open_pdk() {
            Some(open) => 100.0 * (self.traditional() - open) / self.traditional(),
            None => 0.0,
        }
    }
}

/// The Fig. 2 cost series across process nodes.
///
/// Fabrication cost follows the well-documented super-linear growth of
/// mask-set cost with node advancement (`(130/node)^1.6`); licensing is
/// modelled as a node-dependent fraction of fabrication that grows for
/// advanced nodes (stricter legal terms, larger deck complexity).
pub fn cost_model() -> Vec<CostPoint> {
    [180u32, 130, 90, 65, 40, 28]
        .iter()
        .map(|&node| {
            let fabrication = (130.0 / node as f64).powf(1.6);
            let license_fraction = 0.35 + 0.5 * (1.0 - node as f64 / 180.0);
            CostPoint {
                node_nm: node,
                fabrication,
                licensing: fabrication * license_fraction,
                open_pdk_available: node == 130,
            }
        })
        .collect()
}

impl fmt::Display for CostPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} nm: fab {:>6.2}  license {:>6.2}  traditional {:>6.2}  open {}",
            self.node_nm,
            self.fabrication,
            self.licensing,
            self.traditional(),
            match self.open_pdk() {
                Some(v) => format!("{v:>6.2}"),
                None => "     —".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advanced_nodes_cost_more() {
        let m = cost_model();
        for w in m.windows(2) {
            assert!(w[1].fabrication > w[0].fabrication);
            assert!(w[1].traditional() > w[0].traditional());
        }
    }

    #[test]
    fn only_130nm_has_an_open_pdk() {
        let m = cost_model();
        let open: Vec<u32> = m
            .iter()
            .filter(|p| p.open_pdk_available)
            .map(|p| p.node_nm)
            .collect();
        assert_eq!(open, [130]);
    }

    #[test]
    fn open_pdk_saves_the_license_share() {
        let m = cost_model();
        let p130 = m.iter().find(|p| p.node_nm == 130).expect("130 nm");
        let saving = p130.saving_percent();
        // License fraction at 130 nm ≈ 0.49 of fab → ≈ 33 % saving.
        assert!((25.0..45.0).contains(&saving), "saving = {saving:.1} %");
        assert_eq!(p130.open_pdk(), Some(p130.fabrication));
    }

    #[test]
    fn normalized_to_130nm_fab() {
        let m = cost_model();
        let p130 = m.iter().find(|p| p.node_nm == 130).expect("130 nm");
        assert!((p130.fabrication - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_open_pdk_no_saving() {
        let m = cost_model();
        let p28 = m.iter().find(|p| p.node_nm == 28).expect("28 nm");
        assert_eq!(p28.saving_percent(), 0.0);
        assert_eq!(p28.open_pdk(), None);
    }

    #[test]
    fn display_renders_rows() {
        let m = cost_model();
        let row = m[1].to_string();
        assert!(row.contains("130 nm"));
        let row28 = m.last().expect("rows").to_string();
        assert!(row28.contains('—'));
    }
}
