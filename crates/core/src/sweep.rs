//! Parameter sweeps: sensitivity and maximum channel loss vs data rate
//! (the paper's Fig. 9).
//!
//! Two independent routes to the same curve, both reachable through the
//! [`Sweep`] options builder:
//!
//! * [`Sweep::sensitivity`] — the model route: the front end's
//!   small-signal characterization evaluated across rates,
//! * [`Sweep::max_loss`] — the measurement route: bisect channel
//!   attenuation at each rate for the zero-BER boundary using the full
//!   link (serializer + statistical PHY + CDR + deserializer).
//!
//! Agreement between the two validates the behavioural model.

use crate::ber::BerTest;
use crate::bitstream::BitVec;
use crate::error::{Error, FaultInfo, LinkError};
use crate::link::LinkConfig;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::{Hertz, Volt};
use openserdes_phy::{ChannelModel, FrontEndConfig, RxFrontEnd};
use openserdes_telemetry as telemetry;

pub mod parallel;

/// One point of the Fig. 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Data rate.
    pub data_rate: Hertz,
    /// Receiver sensitivity (minimum pp input swing).
    pub sensitivity: Volt,
    /// Maximum channel loss for error-free operation at full TX swing.
    pub max_loss_db: f64,
}

/// Sensitivity and maximum loss across data rates, from the front-end
/// model (fast; regenerates Fig. 9's two curves).
///
/// # Errors
///
/// Propagates solver failures from the characterization.
#[deprecated(note = "use `Sweep::new().sensitivity(..)` (openserdes_core::Sweep)")]
pub fn sensitivity_sweep(pvt: Pvt, rates: &[Hertz]) -> Result<Vec<SweepPoint>, LinkError> {
    sensitivity_impl(pvt, rates)
}

pub(crate) fn sensitivity_impl(pvt: Pvt, rates: &[Hertz]) -> Result<Vec<SweepPoint>, LinkError> {
    let _span = telemetry::span("sweep.sensitivity");
    let fe = RxFrontEnd::new(FrontEndConfig::paper_default(), pvt);
    let tx_swing = pvt.vdd;
    rates
        .iter()
        .map(|&rate| {
            telemetry::counter("sweep.rate_points", 1);
            let sensitivity = fe.sensitivity(rate)?;
            let max_loss_db = fe.max_loss_db(rate, tx_swing)?;
            Ok(SweepPoint {
                data_rate: rate,
                sensitivity,
                max_loss_db,
            })
        })
        .collect()
}

/// Bisects the maximum channel attenuation (dB) at which a PRBS link run
/// of `frames` frames is still error-free, to within `tol_db`.
///
/// # Errors
///
/// Propagates link failures.
#[deprecated(note = "use `Sweep::new().max_loss(..)` (openserdes_core::Sweep)")]
pub fn max_loss_bisect(base: &LinkConfig, frames: usize, tol_db: f64) -> Result<f64, LinkError> {
    max_loss_impl(base, frames, tol_db)
}

pub(crate) fn max_loss_impl(
    base: &LinkConfig,
    frames: usize,
    tol_db: f64,
) -> Result<f64, LinkError> {
    let _span = telemetry::span("sweep.max_loss_bisect");
    let mut lo = 0.0f64; // known good
    let mut hi = 60.0f64; // known bad
    let error_free = |db: f64| -> Result<bool, LinkError> {
        telemetry::counter("sweep.bisect_probes", 1);
        let mut cfg = base.clone();
        cfg.channel = ChannelModel {
            attenuation_db: db,
            ..base.channel.clone()
        };
        BerTest::prbs31(cfg, frames).is_error_free()
    };
    // Establish brackets (the interface may already fail at 0 dB for
    // absurd rates — report 0 in that case).
    if !error_free(lo)? {
        return Ok(0.0);
    }
    if error_free(hi)? {
        return Ok(hi);
    }
    while hi - lo > tol_db {
        let mid = 0.5 * (lo + hi);
        if error_free(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// One point of a BER bathtub curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubPoint {
    /// Sampling phase within the unit interval, `0.0..1.0`.
    pub phase_ui: f64,
    /// Measured bit-error ratio at that phase.
    pub ber: f64,
}

/// Monte-Carlo BER bathtub: sweeps the sampling phase across the unit
/// interval at the given operating point and measures the BER at each
/// phase over `nbits` PRBS bits — the classic serial-link margin plot
/// (high BER walls at the bit edges, a floor at the centre).
///
/// The per-bit model matches the fast link path: transition edges carry
/// the channel's RJ (Gaussian) and DJ (sinusoidal) jitter; sampling on
/// the wrong side of a jittered edge misreads the bit; amplitude noise
/// adds `Q(margin/σ)` flips everywhere.
///
/// # Errors
///
/// Propagates solver failures from the front-end characterization.
#[deprecated(note = "use `Sweep::new().bathtub(..)` (openserdes_core::Sweep)")]
pub fn bathtub(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
) -> Result<Vec<BathtubPoint>, LinkError> {
    bathtub_impl(config, nbits, phases, seed)
}

pub(crate) fn bathtub_impl(
    config: &LinkConfig,
    nbits: usize,
    phases: usize,
    seed: u64,
) -> Result<Vec<BathtubPoint>, LinkError> {
    let _span = telemetry::span("sweep.bathtub");
    let (bits, model) = bathtub_setup(config, nbits)?;
    Ok((0..phases)
        .map(|k| bathtub_point(&bits, &model, k, phases, seed))
        .collect())
}

/// The per-UI statistics one bathtub needs, extracted once so each phase
/// (and each parallel worker) shares the identical model.
#[derive(Debug, Clone, Copy)]
struct BathtubModel {
    flip: f64,
    rj_ui: f64,
    dj_ui: f64,
    blur_ui: f64,
}

fn bathtub_setup(config: &LinkConfig, nbits: usize) -> Result<(BitVec, BathtubModel), LinkError> {
    use crate::prbs::{PrbsGenerator, PrbsOrder};
    use openserdes_phy::{AnalogLink, BehavioralLink};

    let analog = AnalogLink::paper_default(config.pvt, config.channel.clone());
    let behavioural = BehavioralLink::from_analog(&analog, config.data_rate)?;
    let ui = 1.0 / config.data_rate.value();
    let model = BathtubModel {
        // Edge jitter is modelled explicitly per UI below, so the flip
        // probability is the noise-only one.
        flip: behavioural.flip_probability(),
        rj_ui: config.channel.rj_sigma.value() / ui,
        dj_ui: 0.5 * config.channel.dj_pp.value() / ui,
        // Finite transition time of the restored edge at the sampler:
        // within this window around a data edge the slicer output is
        // indeterminate (the restored rise/fall occupies ~15 % of the UI
        // at 2 Gb/s).
        blur_ui: 0.15,
    };
    let bits = PrbsGenerator::new(PrbsOrder::Prbs31).take_bitvec(nbits);
    Ok((bits, model))
}

/// One bathtub phase. The RNG is derived from `seed` and the phase index
/// alone ([`parallel::derive_seed`]), so any execution order — or a
/// parallel fan-out — produces the identical point.
fn bathtub_point(
    bits: &BitVec,
    model: &BathtubModel,
    k: usize,
    phases: usize,
    seed: u64,
) -> BathtubPoint {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let _span = telemetry::span("sweep.eye_phase");
    telemetry::counter("sweep.eye_phases", 1);
    let phase = (k as f64 + 0.5) / phases as f64;
    let mut rng = StdRng::seed_from_u64(parallel::derive_seed(seed, k));
    let mut errors = 0u64;
    for i in 1..bits.len() {
        // The edge ahead of bit i sits at offset `jitter` into the UI.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let jitter = model.rj_ui * gauss
            + model.dj_ui * (2.0 * std::f64::consts::PI * 0.01 * i as f64).sin();
        // Distance to the nearest data edge (leading edge of this UI
        // or trailing edge into the next one), where an edge exists.
        let lead = (bits.get(i - 1) != bits.get(i)).then_some(phase - jitter);
        let trail = (i + 1 < bits.len() && bits.get(i) != bits.get(i + 1))
            .then_some(phase - (1.0 + jitter));
        let in_blur = |d: f64| d.abs() < model.blur_ui / 2.0;
        let sampled = match (lead, trail) {
            (Some(d), _) if in_blur(d) => rng.gen::<bool>().then_some(bits.get(i - 1)),
            (_, Some(d)) if in_blur(d) => rng.gen::<bool>().then_some(bits.get(i + 1)),
            (Some(d), _) if d < 0.0 => Some(bits.get(i - 1)),
            (_, Some(d)) if d > 0.0 => Some(bits.get(i + 1)),
            _ => Some(bits.get(i)),
        };
        let sampled = sampled.unwrap_or_else(|| bits.get(i));
        let noise_flip = rng.gen::<f64>() < model.flip;
        if (sampled != bits.get(i)) ^ noise_flip {
            errors += 1;
        }
    }
    telemetry::record_value("sweep.phase_errors", errors);
    BathtubPoint {
        phase_ui: phase,
        ber: errors as f64 / (bits.len() - 1) as f64,
    }
}

/// The outcome of a fault-isolated sweep: every input item lands in
/// exactly one of the two lists, tagged with its input index, both in
/// input order. A panicking or erroring item is recorded in `failed`
/// instead of tearing down the whole sweep (or the process), so a long
/// campaign survives one poisoned operating point with a deterministic
/// partial result — which items fail depends only on the items, never
/// on worker scheduling.
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// Items that completed, as `(input index, result)`.
    pub completed: Vec<(usize, T)>,
    /// Items that failed, as `(input index, error)` — a panic surfaces
    /// as [`Error::Fault`], a returned error as its own variant.
    pub failed: Vec<(usize, Error)>,
}

impl<T> SweepOutcome<T> {
    /// Partitions fault-isolated per-item results (outer `Err` = the
    /// item panicked, inner `Err` = it returned an error) by index.
    pub(crate) fn collect<E: Into<Error>>(results: Vec<Result<Result<T, E>, String>>) -> Self {
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(Ok(t)) => completed.push((i, t)),
                Ok(Err(e)) => failed.push((i, e.into())),
                Err(message) => failed.push((i, Error::Fault(FaultInfo { item: i, message }))),
            }
        }
        Self { completed, failed }
    }

    /// Total number of input items.
    pub fn len(&self) -> usize {
        self.completed.len() + self.failed.len()
    }

    /// True when the sweep had no items at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every item completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The completed results in input order, indices stripped.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.completed.iter().map(|(_, t)| t)
    }

    /// Converts to a plain `Result`: all results when every item
    /// completed, otherwise the first failure in input order.
    ///
    /// # Errors
    ///
    /// Returns the first per-item error when any item failed.
    pub fn into_result(self) -> Result<Vec<T>, Error> {
        match self.failed.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(self.completed.into_iter().map(|(_, t)| t).collect()),
        }
    }
}

/// Sweep options on the consuming-builder pattern — the one knob set
/// shared by every Monte-Carlo sweep entry point (bathtub, loss
/// bisection, rate and corner sweeps). Construct with [`Sweep::new`],
/// adjust with the `with_*` methods, then call a run method:
///
/// ```
/// use openserdes_core::{LinkConfig, Sweep};
///
/// let cfg = LinkConfig::paper_default();
/// let curve = Sweep::new().with_bits(4_000).with_phases(8).bathtub(&cfg)?;
/// assert_eq!(curve.len(), 8);
/// # Ok::<(), openserdes_core::LinkError>(())
/// ```
///
/// Every run fans out across [`Sweep::with_threads`] workers and is
/// bit-identical for any worker count (see [`parallel`]); telemetry
/// recorded under an enabled scope merges deterministically too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sweep {
    nbits: usize,
    phases: usize,
    frames: usize,
    tol_db: f64,
    seed: u64,
    threads: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// Paper-default sweep options: 10 000 bits over 32 phases per
    /// bathtub, 8-frame probes bisected to 0.5 dB, seed 1, one worker
    /// per host core.
    pub fn new() -> Self {
        Self {
            nbits: 10_000,
            phases: 32,
            frames: 8,
            tol_db: 0.5,
            seed: 1,
            threads: parallel::default_threads(),
        }
    }

    /// PRBS bits measured per bathtub phase.
    #[must_use]
    pub fn with_bits(mut self, nbits: usize) -> Self {
        self.nbits = nbits;
        self
    }

    /// Sampling phases across the unit interval.
    #[must_use]
    pub fn with_phases(mut self, phases: usize) -> Self {
        self.phases = phases;
        self
    }

    /// Frames per error-free probe in the loss bisections.
    #[must_use]
    pub fn with_frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Bisection tolerance in dB.
    #[must_use]
    pub fn with_tolerance_db(mut self, tol_db: f64) -> Self {
        self.tol_db = tol_db;
        self
    }

    /// Monte-Carlo run seed; per-item streams derive from it and the
    /// item index alone ([`parallel::derive_seed`]).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads. Results are bit-identical for any value; only
    /// wall time changes.
    ///
    /// Contract: `0` is clamped to `1` — a sweep always has at least
    /// one worker, so wire-supplied configs can never poison the pool.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// PRBS bits measured per bathtub phase.
    pub fn bits(&self) -> usize {
        self.nbits
    }

    /// Sampling phases across the unit interval.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Frames per error-free probe in the loss bisections.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Bisection tolerance in dB.
    pub fn tolerance_db(&self) -> f64 {
        self.tol_db
    }

    /// BER bathtub at the operating point, one [`BathtubPoint`] per
    /// configured phase.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the front-end characterization.
    pub fn bathtub(&self, config: &LinkConfig) -> Result<Vec<BathtubPoint>, LinkError> {
        parallel::bathtub_par_impl(config, self.nbits, self.phases, self.seed, self.threads)
    }

    /// Maximum error-free channel attenuation (dB) at the configured
    /// operating point.
    ///
    /// # Errors
    ///
    /// Propagates link failures from the probes the bisection uses.
    pub fn max_loss(&self, config: &LinkConfig) -> Result<f64, LinkError> {
        parallel::max_loss_par_impl(config, self.frames, self.tol_db, self.threads)
    }

    /// Maximum channel loss at each data rate (Fig. 9's measured curve).
    ///
    /// The front-end characterization behind each point's sensitivity
    /// is rate-independent, so it is solved **once** and shared across
    /// all rate points rather than re-solved per item.
    ///
    /// # Errors
    ///
    /// Propagates the first link failure in rate order.
    pub fn rate_sweep(
        &self,
        config: &LinkConfig,
        rates: &[Hertz],
    ) -> Result<Vec<SweepPoint>, LinkError> {
        parallel::rate_sweep_impl(config, rates, self.frames, self.tol_db, self.threads)
    }

    /// Maximum channel loss and front-end sensitivity at the three
    /// classic PVT corners, in `[nominal, worst_case, best_case]`
    /// order. The per-corner bias points are solved as one lockstep
    /// batch in the analog engine's batched multi-point DC solver (the
    /// corner circuits share a topology, so they share a stamp plan)
    /// before the loss bisections fan out.
    ///
    /// # Errors
    ///
    /// Propagates the first link failure in corner order.
    pub fn corner_sweep(
        &self,
        config: &LinkConfig,
    ) -> Result<Vec<parallel::CornerPoint>, LinkError> {
        parallel::corner_sweep_impl(config, self.frames, self.tol_db, self.threads)
    }

    /// Model-route sensitivity sweep across `rates` (the fast half of
    /// Fig. 9; no Monte-Carlo options apply).
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the characterization.
    pub fn sensitivity(&self, pvt: Pvt, rates: &[Hertz]) -> Result<Vec<SweepPoint>, LinkError> {
        sensitivity_impl(pvt, rates)
    }

    // ---- fault-isolated runs ----------------------------------------

    /// Fault-isolated [`Sweep::bathtub`]: a panicking phase point lands
    /// in [`SweepOutcome::failed`] instead of aborting the sweep; the
    /// surviving phases are unaffected and identical to a clean run's.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the *shared* front-end
    /// characterization — without it no phase is meaningful.
    pub fn try_bathtub(
        &self,
        config: &LinkConfig,
    ) -> Result<SweepOutcome<BathtubPoint>, LinkError> {
        parallel::try_bathtub_par_impl(config, self.nbits, self.phases, self.seed, self.threads)
    }

    /// Fault-isolated [`Sweep::rate_sweep`]: each rate point is
    /// individually isolated, so one poisoned rate reports in
    /// [`SweepOutcome::failed`] while the others complete.
    pub fn try_rate_sweep(&self, config: &LinkConfig, rates: &[Hertz]) -> SweepOutcome<SweepPoint> {
        parallel::try_rate_sweep_impl(config, rates, self.frames, self.tol_db, self.threads)
    }

    /// Fault-isolated [`Sweep::corner_sweep`], one isolated item per
    /// corner in `[nominal, worst_case, best_case]` order.
    pub fn try_corner_sweep(&self, config: &LinkConfig) -> SweepOutcome<parallel::CornerPoint> {
        parallel::try_corner_sweep_impl(config, self.frames, self.tol_db, self.threads)
    }
}

/// Horizontal eye opening at a BER target: the widest contiguous span of
/// bathtub phases at or below `target` BER, in UI fractions.
///
/// The bathtub is circular — phase 0 and phase 1 are the same data edge
/// — so a clean span may wrap around the end of the curve (an eye whose
/// centre sits near a phase boundary). Wrapped runs are joined.
pub fn eye_width_at(curve: &[BathtubPoint], target: f64) -> f64 {
    let n = curve.len();
    if n == 0 {
        return 0.0;
    }
    let step = 1.0 / n as f64;
    if curve.iter().all(|p| p.ber <= target) {
        return 1.0;
    }
    // Scan two concatenated periods; since at least one point is above
    // target, no run can exceed one period.
    let mut best = 0usize;
    let mut run = 0usize;
    for i in 0..2 * n {
        if curve[i % n].ber <= target {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best.min(n) as f64 * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shapes_hold() {
        // Sensitivity grows and max loss falls with data rate, with the
        // paper's anchor points: ≈32 mV and ≈34 dB at 2 GHz.
        let rates: Vec<Hertz> = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
            .iter()
            .map(|&g| Hertz::from_ghz(g))
            .collect();
        let pts = Sweep::new()
            .sensitivity(Pvt::nominal(), &rates)
            .expect("sweeps");
        for w in pts.windows(2) {
            assert!(w[1].sensitivity > w[0].sensitivity, "sensitivity rises");
            assert!(w[1].max_loss_db < w[0].max_loss_db, "loss budget falls");
        }
        let at2g = &pts[3];
        assert!(
            (20.0..48.0).contains(&at2g.sensitivity.mv()),
            "sens@2G = {:.1} mV (paper: 32)",
            at2g.sensitivity.mv()
        );
        assert!(
            (30.0..40.0).contains(&at2g.max_loss_db),
            "loss@2G = {:.1} dB (paper: 34)",
            at2g.max_loss_db
        );
    }

    #[test]
    fn bisected_loss_agrees_with_model() {
        let base = LinkConfig::paper_default();
        let measured = Sweep::new().max_loss(&base).expect("bisects");
        let model = Sweep::new()
            .sensitivity(Pvt::nominal(), &[base.data_rate])
            .expect("sweeps")[0]
            .max_loss_db;
        assert!(
            (measured - model).abs() < 4.0,
            "measured {measured:.1} dB vs model {model:.1} dB"
        );
        assert!(measured >= 30.0, "paper claims 34 dB at 2 Gb/s");
    }

    #[test]
    fn bathtub_has_walls_and_a_floor() {
        let cfg = LinkConfig::paper_default();
        let curve = Sweep::new()
            .with_bits(20_000)
            .with_phases(20)
            .with_seed(3)
            .bathtub(&cfg)
            .expect("runs");
        assert_eq!(curve.len(), 20);
        let edge_left = curve.first().expect("points").ber;
        let edge_right = curve.last().expect("points").ber;
        let centre = curve[10].ber;
        assert!(
            edge_left > 1e-3 || edge_right > 1e-3,
            "edges must show errors: {edge_left:.2e}/{edge_right:.2e}"
        );
        assert!(centre < 1e-3, "centre must be clean: {centre:.2e}");
        // Usable eye width at BER 1e-3 covers most of the UI.
        let width = eye_width_at(&curve, 1e-3);
        assert!((0.5..=1.0).contains(&width), "eye width = {width} UI");
    }

    #[test]
    fn bathtub_narrows_with_more_jitter() {
        let clean = LinkConfig::paper_default();
        let mut dirty = clean.clone();
        dirty.channel.rj_sigma = openserdes_pdk::units::Time::from_ps(30.0);
        let sweep = Sweep::new().with_phases(20).with_seed(5);
        let w_clean = eye_width_at(&sweep.bathtub(&clean).expect("ok"), 1e-3);
        let w_dirty = eye_width_at(&sweep.bathtub(&dirty).expect("ok"), 1e-3);
        assert!(
            w_dirty < w_clean,
            "jitter must narrow the eye: {w_dirty} vs {w_clean}"
        );
    }

    #[test]
    fn eye_width_helper() {
        let mk = |bers: &[f64]| -> Vec<BathtubPoint> {
            bers.iter()
                .enumerate()
                .map(|(i, &ber)| BathtubPoint {
                    phase_ui: i as f64 / bers.len() as f64,
                    ber,
                })
                .collect()
        };
        let c = mk(&[0.5, 1e-6, 1e-6, 1e-6, 0.5]);
        assert!((eye_width_at(&c, 1e-3) - 0.6).abs() < 1e-12);
        let closed = mk(&[0.5, 0.5]);
        assert_eq!(eye_width_at(&closed, 1e-3), 0.0);
        assert_eq!(eye_width_at(&[], 1e-3), 0.0);
    }

    #[test]
    fn eye_width_wraps_around_phase_zero() {
        let mk = |bers: &[f64]| -> Vec<BathtubPoint> {
            bers.iter()
                .enumerate()
                .map(|(i, &ber)| BathtubPoint {
                    phase_ui: i as f64 / bers.len() as f64,
                    ber,
                })
                .collect()
        };
        // The eye centre straddles phase 0: two clean points at the
        // start and one at the end form a single contiguous 3-point
        // span on the circular phase axis. A linear scan saw two runs
        // of 2 and 1 and underreported the eye as 0.4 UI.
        let c = mk(&[1e-6, 1e-6, 0.5, 0.5, 1e-6]);
        assert!((eye_width_at(&c, 1e-3) - 0.6).abs() < 1e-12);
        // A fully clean curve is one whole UI, not an unbounded run.
        let open = mk(&[1e-6, 1e-6, 1e-6]);
        assert_eq!(eye_width_at(&open, 1e-3), 1.0);
    }

    #[test]
    fn sweep_outcome_partitions_by_failure_mode() {
        let results: Vec<Result<Result<u32, LinkError>, String>> = vec![
            Ok(Ok(10)),
            Err("worker died".to_string()),
            Ok(Err(LinkError::CdrUnlocked { uis: 5 })),
            Ok(Ok(40)),
        ];
        let out = SweepOutcome::collect(results);
        assert_eq!(out.len(), 4);
        assert!(!out.is_complete());
        assert_eq!(out.completed, vec![(0, 10), (3, 40)]);
        assert_eq!(out.failed.len(), 2);
        match &out.failed[0] {
            (1, Error::Fault(info)) => {
                assert_eq!(info.item, 1);
                assert!(info.message.contains("worker died"));
            }
            other => panic!("expected Fault at index 1, got {other:?}"),
        }
        assert!(matches!(
            out.failed[1],
            (2, Error::Link(LinkError::CdrUnlocked { uis: 5 }))
        ));
        assert_eq!(out.values().copied().collect::<Vec<_>>(), vec![10, 40]);
        assert!(out.into_result().is_err());

        let clean: SweepOutcome<u32> =
            SweepOutcome::collect(vec![Ok(Ok::<_, LinkError>(7)), Ok(Ok(8))]);
        assert!(clean.is_complete());
        assert_eq!(clean.into_result().expect("clean"), vec![7, 8]);
    }

    #[test]
    fn try_bathtub_matches_plain_bathtub_when_healthy() {
        let cfg = LinkConfig::paper_default();
        let sweep = Sweep::new().with_bits(4_000).with_phases(8).with_seed(9);
        let plain = sweep.bathtub(&cfg).expect("plain");
        for threads in [1, 2, 4] {
            let out = sweep
                .with_threads(threads)
                .try_bathtub(&cfg)
                .expect("isolated");
            assert!(out.is_complete(), "threads = {threads}");
            let vals: Vec<_> = out.values().copied().collect();
            assert_eq!(vals, plain, "threads = {threads}");
        }
    }

    #[test]
    fn slow_corner_shrinks_loss_budget() {
        let rates = [Hertz::from_ghz(2.0)];
        let tt = Sweep::new()
            .sensitivity(Pvt::nominal(), &rates)
            .expect("tt")[0];
        let ss = Sweep::new()
            .sensitivity(Pvt::worst_case(), &rates)
            .expect("ss")[0];
        assert!(ss.max_loss_db < tt.max_loss_db);
    }
}
