//! Placement: greedy row packing refined by simulated annealing.
//!
//! The OpenLANE placer (RePlAce + OpenDP) minimizes half-perimeter
//! wirelength (HPWL); we reproduce the same objective with a two-step
//! approach: a connectivity-ordered greedy row packing for the initial
//! solution, then simulated annealing over cell swaps with a geometric
//! cooling schedule. Primary I/O pins sit on the left (inputs) and right
//! (outputs) die edges.

use crate::floorplan::{Floorplan, ROW_HEIGHT_UM};
use openserdes_netlist::{CellId, NetId, Netlist};
use openserdes_pdk::library::Library;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Cell and pin coordinates for one placed netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-cell centre coordinates in µm, indexed by `CellId`.
    positions: Vec<(f64, f64)>,
    /// Per-net pin coordinates of primary inputs (left edge).
    io_in: Vec<(NetId, (f64, f64))>,
    /// Pin coordinates of primary outputs (right edge).
    io_out: Vec<(NetId, (f64, f64))>,
    /// Per-net fixed pin position, if the net reaches an I/O pad.
    io_pin_of: Vec<Option<(f64, f64)>>,
    /// The floorplan placed into.
    pub floorplan: Floorplan,
}

impl Placement {
    /// Centre position of a cell in µm.
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        self.positions[cell.index()]
    }

    /// All fixed I/O pin positions (net, xy).
    pub fn io_pins(&self) -> impl Iterator<Item = (NetId, (f64, f64))> + '_ {
        self.io_in.iter().chain(self.io_out.iter()).copied()
    }
}

/// Statistics from the annealing refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// HPWL of the greedy initial placement, µm.
    pub initial_hpwl: f64,
    /// HPWL after annealing, µm.
    pub final_hpwl: f64,
    /// Number of accepted moves.
    pub accepted: usize,
    /// Number of attempted moves.
    pub attempted: usize,
}

/// Greedy initial placement: BFS order from the primary inputs, packing
/// cells into rows left to right so connected cells land near each other.
pub fn place_greedy(netlist: &Netlist, library: &Library, floorplan: &Floorplan) -> Placement {
    let widths: Vec<f64> = netlist
        .instances()
        .map(|(_, inst)| {
            library
                .cell(inst.function, inst.drive)
                .expect("library cell")
                .area
                .value()
                / ROW_HEIGHT_UM
        })
        .collect();

    // BFS over the connectivity graph starting from cells fed by primary
    // inputs, falling back to unvisited cells (disconnected components).
    let fanout = netlist.fanout_table();
    let mut order: Vec<CellId> = Vec::with_capacity(netlist.cell_count());
    let mut seen = vec![false; netlist.cell_count()];
    let mut queue: VecDeque<CellId> = VecDeque::new();
    for &pi in netlist.primary_inputs() {
        for &c in &fanout[pi.index()] {
            if !seen[c.index()] {
                seen[c.index()] = true;
                queue.push_back(c);
            }
        }
    }
    let mut fallback = netlist.cell_ids();
    loop {
        while let Some(c) = queue.pop_front() {
            order.push(c);
            let out = netlist.instance(c).output;
            for &s in &fanout[out.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        match fallback.find(|c| !seen[c.index()]) {
            Some(c) => {
                seen[c.index()] = true;
                queue.push_back(c);
            }
            None => break,
        }
    }

    // Pack in BFS order, wrapping rows.
    let mut positions = vec![(0.0, 0.0); netlist.cell_count()];
    let mut row = 0usize;
    let mut x = 0.0f64;
    for &c in &order {
        let w = widths[c.index()].max(0.1);
        if x + w > floorplan.width.value() && row + 1 < floorplan.rows {
            row += 1;
            x = 0.0;
        }
        positions[c.index()] = (x + w / 2.0, floorplan.row_y(row % floorplan.rows).value());
        x += w;
    }

    // I/O pins: inputs spread along the left edge, outputs along the right.
    let h = floorplan.height.value();
    let ins = netlist.primary_inputs();
    let io_in: Vec<(NetId, (f64, f64))> = ins
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let y = (i as f64 + 0.5) / ins.len().max(1) as f64 * h;
            (n, (0.0, y))
        })
        .collect();
    let outs = netlist.primary_outputs();
    let io_out: Vec<(NetId, (f64, f64))> = outs
        .iter()
        .enumerate()
        .map(|(i, (_, n))| {
            let y = (i as f64 + 0.5) / outs.len().max(1) as f64 * h;
            (*n, (floorplan.width.value(), y))
        })
        .collect();

    let mut io_pin_of: Vec<Option<(f64, f64)>> = vec![None; netlist.net_count()];
    for &(n, xy) in io_in.iter().chain(&io_out) {
        io_pin_of[n.index()] = Some(xy);
    }

    Placement {
        positions,
        io_in,
        io_out,
        io_pin_of,
        floorplan: *floorplan,
    }
}

/// Half-perimeter wirelength of one net in µm.
fn net_hpwl(
    placement: &Placement,
    net: NetId,
    fanout: &[Vec<CellId>],
    drivers: &[Option<CellId>],
) -> f64 {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mut pins = 0usize;
    let mut add = |(x, y): (f64, f64), pins: &mut usize| {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
        *pins += 1;
    };
    if let Some(driver) = drivers[net.index()] {
        add(placement.position(driver), &mut pins);
    }
    if let Some(xy) = placement.io_pin_of[net.index()] {
        add(xy, &mut pins);
    }
    for &sink in &fanout[net.index()] {
        add(placement.position(sink), &mut pins);
    }
    if pins < 2 {
        0.0
    } else {
        (max_x - min_x) + (max_y - min_y)
    }
}

/// Total HPWL of the placement in µm.
pub fn hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    let fanout = netlist.fanout_table();
    let drivers = netlist.driver_table();
    netlist
        .net_ids()
        .map(|n| net_hpwl(placement, n, &fanout, &drivers))
        .sum()
}

/// Refines a placement with simulated annealing over cell-pair swaps.
///
/// Deterministic for a given `seed`. `iterations` is the number of
/// attempted moves; the temperature decays geometrically from an initial
/// value derived from the starting HPWL.
pub fn anneal(
    netlist: &Netlist,
    placement: &mut Placement,
    seed: u64,
    iterations: usize,
) -> AnnealStats {
    let n = netlist.cell_count();
    let initial = hpwl(netlist, placement);
    if n < 2 || iterations == 0 {
        return AnnealStats {
            initial_hpwl: initial,
            final_hpwl: initial,
            accepted: 0,
            attempted: 0,
        };
    }
    let fanout = netlist.fanout_table();
    let drivers = netlist.driver_table();
    // Nets touching each cell (for incremental cost evaluation).
    let mut cell_nets: Vec<Vec<NetId>> = vec![Vec::new(); n];
    for (id, inst) in netlist.instances() {
        let mut nets: Vec<NetId> = inst.inputs.clone();
        nets.push(inst.output);
        if let Some(c) = inst.clock {
            nets.push(c);
        }
        nets.sort_unstable();
        nets.dedup();
        cell_nets[id.index()] = nets;
    }
    let cells: Vec<CellId> = netlist.cell_ids().collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = initial;
    let mut temp = (initial / n as f64).max(1.0);
    let cooling = 0.999_f64.powf(1000.0 / iterations.max(1) as f64);
    let mut accepted = 0usize;

    for _ in 0..iterations {
        let a = cells[rng.gen_range(0..n)];
        let b = cells[rng.gen_range(0..n)];
        if a == b {
            continue;
        }
        // Cost of affected nets before the swap.
        let mut affected: Vec<NetId> = cell_nets[a.index()].clone();
        affected.extend(&cell_nets[b.index()]);
        affected.sort_unstable();
        affected.dedup();
        let before: f64 = affected
            .iter()
            .map(|&net| net_hpwl(placement, net, &fanout, &drivers))
            .sum();
        placement.positions.swap(a.index(), b.index());
        let after: f64 = affected
            .iter()
            .map(|&net| net_hpwl(placement, net, &fanout, &drivers))
            .sum();
        let delta = after - before;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
        if accept {
            cost += delta;
            accepted += 1;
        } else {
            placement.positions.swap(a.index(), b.index());
        }
        temp *= cooling;
    }

    AnnealStats {
        initial_hpwl: initial,
        final_hpwl: cost,
        accepted,
        attempted: iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::corner::Pvt;
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
    use openserdes_pdk::units::AreaUm2;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let mut s = a;
        for _ in 0..n {
            s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
        }
        nl.mark_output("y", s);
        nl
    }

    fn setup(n: usize) -> (Netlist, Library, Floorplan) {
        let nl = chain(n);
        let lib = Library::sky130(Pvt::nominal());
        let stats = openserdes_netlist::NetlistStats::compute(&nl, &lib);
        let fp = Floorplan::for_area(stats.area, 0.6, 1.0);
        (nl, lib, fp)
    }

    #[test]
    fn greedy_places_all_cells_inside_core() {
        let (nl, lib, fp) = setup(50);
        let p = place_greedy(&nl, &lib, &fp);
        for id in nl.cell_ids() {
            let (x, y) = p.position(id);
            assert!(x >= 0.0 && x <= fp.width.value() + 1.0, "x = {x}");
            assert!(y >= 0.0 && y <= fp.height.value(), "y = {y}");
        }
    }

    #[test]
    fn greedy_beats_reversed_order_on_a_chain() {
        // Connectivity-ordered packing should give near-minimal HPWL for
        // a pure chain; compare against a deliberately bad placement.
        let (nl, lib, fp) = setup(40);
        let p = place_greedy(&nl, &lib, &fp);
        let good = hpwl(&nl, &p);
        let mut bad = p.clone();
        bad.positions.reverse();
        // Reversing misaligns I/O pins and chain order.
        let worse = hpwl(&nl, &bad);
        assert!(good <= worse, "greedy {good} vs reversed {worse}");
    }

    #[test]
    fn anneal_never_worsens_a_shuffled_placement() {
        let (nl, lib, fp) = setup(60);
        let mut p = place_greedy(&nl, &lib, &fp);
        // Shuffle deterministically to create slack for improvement.
        let n = nl.cell_count();
        for i in 0..n {
            p.positions.swap(i, (i * 7 + 3) % n);
        }
        let before = hpwl(&nl, &p);
        let stats = anneal(&nl, &mut p, 42, 4000);
        let after = hpwl(&nl, &p);
        assert!(stats.final_hpwl <= before * 1.001);
        // Incremental bookkeeping must agree with full recomputation.
        assert!(
            (stats.final_hpwl - after).abs() < 1e-6 * after.max(1.0),
            "incremental {} vs full {}",
            stats.final_hpwl,
            after
        );
        assert!(after < before, "annealing should improve a shuffle");
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let (nl, lib, fp) = setup(30);
        let run = |seed| {
            let mut p = place_greedy(&nl, &lib, &fp);
            anneal(&nl, &mut p, seed, 1000);
            hpwl(&nl, &p)
        };
        assert_eq!(run(7).to_bits(), run(7).to_bits());
    }

    #[test]
    fn hpwl_zero_for_empty_netlist() {
        let nl = Netlist::new("empty");
        let lib = Library::sky130(Pvt::nominal());
        let fp = Floorplan::for_area(AreaUm2::new(10.0), 0.5, 1.0);
        let p = place_greedy(&nl, &lib, &fp);
        assert_eq!(hpwl(&nl, &p), 0.0);
        let mut p2 = p;
        let stats = anneal(&nl, &mut p2, 1, 100);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn io_pins_on_die_edges() {
        let (nl, lib, fp) = setup(10);
        let p = place_greedy(&nl, &lib, &fp);
        let pins: Vec<_> = p.io_pins().collect();
        assert_eq!(pins.len(), 2); // one input, one output
        assert_eq!(pins[0].1 .0, 0.0);
        assert!((pins[1].1 .0 - fp.width.value()).abs() < 1e-9);
    }
}
