//! Static timing analysis over a mapped (and optionally routed) netlist.
//!
//! Plays the role OpenSTA plays in the paper's flow: propagate arrival
//! times and slews from launch points (primary inputs, flop Q pins)
//! through the combinational cloud using the library NLDM tables plus
//! wire Elmore delays, then check every capture point (flop D pins,
//! primary outputs) against the clock period. Reports worst negative
//! slack, total negative slack, the critical path and the maximum
//! achievable clock frequency.

use crate::route::RouteResult;
use openserdes_netlist::{CellId, NetId, Netlist, NetlistError};
use openserdes_pdk::library::Library;
use openserdes_pdk::units::{Farad, Hertz, Time};
use openserdes_pdk::wire::WireloadModel;

/// STA configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Target clock frequency.
    pub clock: Hertz,
    /// Transition time assumed at primary inputs.
    pub input_slew: Time,
    /// Multicycle exceptions: paths ending at these flops get
    /// `factor` clock periods (e.g. a decision consumed every N cycles).
    pub multicycle: Vec<(CellId, u32)>,
}

impl StaConfig {
    /// A configuration at the given clock frequency with a 40 ps input
    /// slew and no timing exceptions.
    pub fn at_clock(clock: Hertz) -> Self {
        Self {
            clock,
            input_slew: Time::from_ps(40.0),
            multicycle: Vec::new(),
        }
    }
}

/// A timing endpoint check result.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// Human-readable endpoint description (flop instance or output port).
    pub name: String,
    /// Data arrival time at the endpoint.
    pub arrival: Time,
    /// Setup requirement subtracted from the period (zero for ports).
    pub setup: Time,
    /// Slack at the configured clock.
    pub slack: Time,
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// The clock the design was checked against.
    pub clock: Hertz,
    /// Worst (most negative) slack.
    pub wns: Time,
    /// Total negative slack.
    pub tns: Time,
    /// Number of violated endpoints.
    pub violations: usize,
    /// Maximum clock frequency the worst path supports.
    pub fmax: Hertz,
    /// Cells along the critical path, launch to capture.
    pub critical_path: Vec<CellId>,
    /// All endpoint checks, worst first.
    pub endpoints: Vec<Endpoint>,
    /// Worst hold slack across flop endpoints (positive = clean).
    pub hold_wns: Time,
    /// Number of hold violations.
    pub hold_violations: usize,
    arrivals: Vec<Time>,
}

impl StaReport {
    /// Arrival time on a net (max over paths).
    pub fn arrival(&self, net: NetId) -> Time {
        self.arrivals[net.index()]
    }

    /// `true` when every endpoint meets timing.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Runs static timing analysis.
///
/// When `route` is provided, per-net wire RC from the global route is
/// used; otherwise the pre-layout wireload model estimates it.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the netlist fails validation.
pub fn analyze(
    netlist: &Netlist,
    library: &Library,
    route: Option<&RouteResult>,
    config: StaConfig,
) -> Result<StaReport, NetlistError> {
    netlist.check()?;
    let order = netlist.topo_order()?;
    let fanout = netlist.fanout_table();
    let wireload = WireloadModel::small_block();

    // Per-net capacitive load (pins + wire) and wire Elmore delay.
    let n_nets = netlist.net_count();
    let mut load = vec![0.0f64; n_nets];
    let mut wire_delay = vec![0.0f64; n_nets];
    for net in netlist.net_ids() {
        let sinks = &fanout[net.index()];
        let mut pin_c = 0.0;
        for &s in sinks {
            let inst = netlist.instance(s);
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("library cell");
            pin_c += if inst.clock == Some(net) && !inst.inputs.contains(&net) {
                cell.clock_cap.value()
            } else {
                cell.input_cap.value()
            };
        }
        let (wire_c, wire_r) = match route {
            Some(r) => {
                let rn = r.net(net);
                (rn.capacitance().value(), rn.resistance().value())
            }
            None => (
                wireload.capacitance(sinks.len()).value(),
                wireload.resistance(sinks.len()).value(),
            ),
        };
        load[net.index()] = pin_c + wire_c;
        wire_delay[net.index()] = wire_r * (0.5 * wire_c + pin_c);
    }

    // Launch arrivals.
    let mut arrival = vec![0.0f64; n_nets]; // seconds
    let mut slew = vec![config.input_slew.value(); n_nets];
    let mut pred: Vec<Option<CellId>> = vec![None; n_nets];
    for (id, inst) in netlist.instances() {
        if inst.is_sequential() {
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("library cell");
            let seq = cell.seq.expect("flop has seq data");
            let arc = cell.arc(Time::from_ps(40.0), Farad::new(load[inst.output.index()]));
            let out = inst.output.index();
            arrival[out] = seq.clk_to_q.value() + wire_delay[out];
            slew[out] = arc.out_slew.value();
            pred[out] = Some(id);
        }
    }

    // Propagate through the combinational cloud in topological order.
    for &id in &order {
        let inst = netlist.instance(id);
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let mut worst_in = 0.0f64;
        let mut worst_slew = config.input_slew.value();
        for &i in &inst.inputs {
            if arrival[i.index()] > worst_in {
                worst_in = arrival[i.index()];
            }
            worst_slew = worst_slew.max(slew[i.index()]);
        }
        let arc = cell.arc(Time::new(worst_slew), Farad::new(load[inst.output.index()]));
        let out = inst.output.index();
        let t = worst_in + arc.delay.value() + wire_delay[out];
        if t > arrival[out] {
            arrival[out] = t;
            slew[out] = arc.out_slew.value();
            pred[out] = Some(id);
        }
    }

    // Min-delay (hold) propagation: the *shortest* path to each net.
    // Primary inputs are left unconstrained (no input-delay assertions),
    // so only flop-launched races are checked — the standard default.
    let mut min_arrival = vec![f64::INFINITY; n_nets];
    for (_, inst) in netlist.instances() {
        if inst.is_sequential() {
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("library cell");
            min_arrival[inst.output.index()] = cell.seq.expect("flop").clk_to_q.value();
        }
    }
    for &id in &order {
        let inst = netlist.instance(id);
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let fastest_in = inst
            .inputs
            .iter()
            .map(|i| min_arrival[i.index()])
            .fold(f64::INFINITY, f64::min);
        let arc = cell.arc(
            Time::new(config.input_slew.value()),
            Farad::new(load[inst.output.index()]),
        );
        let t = fastest_in + arc.delay.value();
        let out = inst.output.index();
        if t < min_arrival[out] {
            min_arrival[out] = t;
        }
    }

    // Hold checks: data must not race through before the same edge's
    // hold window closes at the capturing flop.
    let mut hold_wns = f64::INFINITY;
    let mut hold_violations = 0usize;
    for (_, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let hold = cell.seq.expect("flop").hold.value();
        let early = min_arrival[inst.inputs[0].index()];
        if early.is_finite() {
            let slack = early - hold;
            hold_wns = hold_wns.min(slack);
            if slack < 0.0 {
                hold_violations += 1;
            }
        }
    }
    if !hold_wns.is_finite() {
        hold_wns = 0.0;
    }

    // Endpoint checks.
    let period = 1.0 / config.clock.value();
    let mut endpoints = Vec::new();
    let mut worst_datapath = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let setup = cell.seq.expect("flop").setup.value();
        let factor = config
            .multicycle
            .iter()
            .find(|(c, _)| *c == id)
            .map(|(_, f)| *f as f64)
            .unwrap_or(1.0);
        let d_net = inst.inputs[0];
        let arr = arrival[d_net.index()];
        endpoints.push(Endpoint {
            name: inst.name.clone(),
            arrival: Time::new(arr),
            setup: Time::new(setup),
            slack: Time::new(factor * period - setup - arr),
        });
        // Normalize multicycle endpoints to per-period datapath demand.
        if (arr + setup) / factor > worst_datapath {
            worst_datapath = (arr + setup) / factor;
            worst_net = Some(d_net);
        }
    }
    for (name, net) in netlist.primary_outputs() {
        let arr = arrival[net.index()];
        endpoints.push(Endpoint {
            name: format!("port:{name}"),
            arrival: Time::new(arr),
            setup: Time::new(0.0),
            slack: Time::new(period - arr),
        });
        if arr > worst_datapath {
            worst_datapath = arr;
            worst_net = Some(*net);
        }
    }
    endpoints.sort_by(|a, b| a.slack.partial_cmp(&b.slack).expect("finite slack"));

    let wns = endpoints
        .first()
        .map(|e| e.slack)
        .unwrap_or(Time::new(period));
    let tns: f64 = endpoints.iter().map(|e| e.slack.value().min(0.0)).sum();
    let violations = endpoints.iter().filter(|e| e.slack.value() < 0.0).count();
    let fmax = if worst_datapath > 0.0 {
        Hertz::new(1.0 / worst_datapath)
    } else {
        Hertz::from_ghz(1000.0)
    };

    // Critical path: backtrack predecessor cells from the worst endpoint.
    let mut critical_path = Vec::new();
    let mut cursor = worst_net;
    while let Some(net) = cursor {
        match pred[net.index()] {
            Some(cell) => {
                critical_path.push(cell);
                let inst = netlist.instance(cell);
                if inst.is_sequential() {
                    break; // reached the launching flop
                }
                // Follow the worst input.
                cursor = inst.inputs.iter().copied().max_by(|a, b| {
                    arrival[a.index()]
                        .partial_cmp(&arrival[b.index()])
                        .expect("finite arrivals")
                });
            }
            None => break, // reached a primary input
        }
    }
    critical_path.reverse();

    Ok(StaReport {
        clock: config.clock,
        wns,
        tns: Time::new(tns),
        violations,
        fmax,
        critical_path,
        endpoints,
        hold_wns: Time::new(hold_wns),
        hold_violations,
        arrivals: arrival.into_iter().map(Time::new).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::corner::{ProcessCorner, Pvt};
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    /// flop -> N inverters -> flop pipeline.
    fn pipeline(n: usize) -> Netlist {
        let mut nl = Netlist::new("pipe");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q0 = nl.dff(d, clk, DriveStrength::X1);
        let mut s = q0;
        for _ in 0..n {
            s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
        }
        let q1 = nl.dff(s, clk, DriveStrength::X1);
        nl.mark_output("q", q1);
        nl
    }

    #[test]
    fn longer_paths_have_less_slack() {
        let l = lib();
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let short = analyze(&pipeline(2), &l, None, cfg.clone()).expect("ok");
        let long = analyze(&pipeline(20), &l, None, cfg).expect("ok");
        assert!(long.wns < short.wns);
        assert!(long.fmax.value() < short.fmax.value());
    }

    #[test]
    fn violations_appear_at_high_clock() {
        let l = lib();
        let nl = pipeline(30);
        let slow = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_mhz(100.0))).expect("ok");
        assert!(slow.clean(), "100 MHz must close on 30 inverters");
        let fast = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(5.0))).expect("ok");
        assert!(!fast.clean(), "5 GHz must fail on 30 inverters");
        assert!(fast.tns.value() < 0.0);
    }

    #[test]
    fn fmax_consistent_with_slack() {
        let l = lib();
        let nl = pipeline(10);
        let r = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(1.0))).expect("ok");
        // Exactly at fmax the design should be (just) clean.
        let at_fmax = analyze(
            &nl,
            &l,
            None,
            StaConfig::at_clock(Hertz::new(r.fmax.value() * 0.999)),
        )
        .expect("ok");
        assert!(at_fmax.clean(), "wns at 0.999·fmax = {}", at_fmax.wns);
        let above = analyze(
            &nl,
            &l,
            None,
            StaConfig::at_clock(Hertz::new(r.fmax.value() * 1.05)),
        )
        .expect("ok");
        assert!(!above.clean());
    }

    #[test]
    fn critical_path_traverses_the_chain() {
        let l = lib();
        let nl = pipeline(8);
        let r = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(1.0))).expect("ok");
        // Path = launch flop + 8 inverters.
        assert_eq!(r.critical_path.len(), 9);
        let first = nl.instance(r.critical_path[0]);
        assert!(first.is_sequential(), "path starts at the launch flop");
    }

    #[test]
    fn slow_corner_lowers_fmax() {
        let nl = pipeline(10);
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let tt = analyze(&nl, &lib(), None, cfg.clone()).expect("ok");
        let ss_lib = Library::sky130(Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0));
        let ss = analyze(&nl, &ss_lib, None, cfg).expect("ok");
        assert!(ss.fmax.value() < tt.fmax.value());
    }

    #[test]
    fn endpoint_list_sorted_by_slack() {
        let l = lib();
        let nl = pipeline(12);
        let r = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(2.0))).expect("ok");
        for w in r.endpoints.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        assert!(!r.endpoints.is_empty());
    }

    #[test]
    fn hold_clean_with_library_flops() {
        // clk→Q (150 ps) far exceeds hold (20 ps): back-to-back flops
        // are hold-clean by construction in this library.
        let l = lib();
        let r = analyze(
            &pipeline(0),
            &l,
            None,
            StaConfig::at_clock(Hertz::from_ghz(1.0)),
        )
        .expect("ok");
        assert_eq!(r.hold_violations, 0);
        assert!(
            r.hold_wns.ps() > 50.0,
            "hold slack = {} ps",
            r.hold_wns.ps()
        );
    }

    #[test]
    fn hold_slack_grows_with_path_depth() {
        let l = lib();
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let short = analyze(&pipeline(0), &l, None, cfg.clone()).expect("ok");
        let long = analyze(&pipeline(10), &l, None, cfg).expect("ok");
        assert!(long.hold_wns >= short.hold_wns);
    }

    #[test]
    fn multicycle_exception_relaxes_endpoint() {
        let l = lib();
        let nl = pipeline(30);
        let flop = nl
            .instances()
            .filter(|(_, i)| i.is_sequential())
            .map(|(id, _)| id)
            .nth(1)
            .expect("capture flop");
        let tight = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(2.0))).expect("ok");
        assert!(!tight.clean(), "30 inverters fail at 2 GHz single-cycle");
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(2.0));
        cfg.multicycle = vec![(flop, 8)];
        let relaxed = analyze(&nl, &l, None, cfg).expect("ok");
        assert!(
            relaxed.clean(),
            "an 8-cycle exception must absorb the path: wns = {}",
            relaxed.wns
        );
        assert!(relaxed.fmax.value() > tight.fmax.value());
    }

    #[test]
    fn pure_combinational_design_checks_ports() {
        let l = lib();
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[a, b]);
        nl.mark_output("y", y);
        let r = analyze(&nl, &l, None, StaConfig::at_clock(Hertz::from_ghz(1.0))).expect("ok");
        assert_eq!(r.endpoints.len(), 1);
        assert!(r.endpoints[0].name.starts_with("port:"));
        assert!(r.clean());
    }
}
