//! Static timing analysis over a mapped (and optionally routed) netlist.
//!
//! Plays the role OpenSTA plays in the paper's flow. The engine runs
//! four graph passes over the levelized netlist:
//!
//! 1. **Forward (late)** — worst-case arrival times and slews propagate
//!    from launch points (flop Q pins, primary inputs) through the
//!    combinational cloud using the library NLDM tables, wire Elmore
//!    delays and the late derate.
//! 2. **Backward (required)** — required times propagate from capture
//!    points (flop D pins, primary outputs) back toward launch points,
//!    giving a slack figure on *every net*, not just endpoints.
//! 3. **Early (hold)** — minimum arrivals using the genuinely fast
//!    [`min_arc`](openserdes_pdk::stdcell::StdCell::min_arc) tables and
//!    the early derate, checked against each flop's hold window.
//! 4. **Path enumeration** — the top-K worst endpoints are expanded
//!    into [`PathReport`]s with per-stage delay/slew/load breakdowns,
//!    printable like an OpenSTA `report_checks`.
//!
//! Every flop is checked against its own clock domain (traced back
//! through the clock network to its root), cross-domain paths are
//! untimed by default, and all rule-level problems are surfaced as
//! `TM0xx` findings ready to feed the `openserdes-lint` pipeline via
//! [`StaReport::to_lint`].

use crate::route::RouteResult;
use openserdes_lint::{EntityKind, Finding, LintConfig, LintReport, Rule};
use openserdes_netlist::{CellId, NetId, Netlist, NetlistError};
use openserdes_pdk::library::Library;
use openserdes_pdk::units::{Farad, Hertz, Time};
use openserdes_pdk::wire::WireloadModel;
use openserdes_telemetry as telemetry;
use std::fmt;

/// STA configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Target clock frequency for the main (default) clock domain.
    pub clock: Hertz,
    /// Transition time assumed at primary inputs.
    pub input_slew: Time,
    /// Transition time of the clock network at its root. Launch and
    /// capture clock-pin slews derive from this through the clock tree.
    pub clock_slew: Time,
    /// External setup requirement charged to primary-output endpoints
    /// (zero keeps the legacy "ports need the full period" behavior).
    pub output_delay: Time,
    /// Setup (late) clock uncertainty subtracted from every setup check.
    pub setup_uncertainty: Time,
    /// Hold (early) clock uncertainty added to every hold check.
    pub hold_uncertainty: Time,
    /// Late (max-delay) derate applied to data-path delays. 1.0 = none.
    pub derate_late: f64,
    /// Early (min-delay) derate applied to hold-path delays. 1.0 = none.
    pub derate_early: f64,
    /// Max transition allowed on any driven net (TM004) when set.
    pub max_transition: Option<Time>,
    /// Max clock insertion-delay spread within a domain (TM006) when set.
    pub max_skew: Option<Time>,
    /// Named secondary clocks: `(root net name, frequency)`. A clock
    /// root matching an entry is timed at that frequency; unmatched
    /// generated (non-port) clock roots are unconstrained (TM003).
    pub clocks: Vec<(String, Hertz)>,
    /// Multicycle exceptions: paths ending at these flops get
    /// `factor` clock periods (e.g. a decision consumed every N cycles).
    pub multicycle: Vec<(CellId, u32)>,
    /// How many worst paths to expand into [`PathReport`]s.
    pub top_paths: usize,
}

impl StaConfig {
    /// A configuration at the given clock frequency with 40 ps input
    /// and clock slews, no uncertainty, unit derates and no exceptions.
    pub fn at_clock(clock: Hertz) -> Self {
        Self {
            clock,
            input_slew: Time::from_ps(40.0),
            clock_slew: Time::from_ps(40.0),
            output_delay: Time::new(0.0),
            setup_uncertainty: Time::new(0.0),
            hold_uncertainty: Time::new(0.0),
            derate_late: 1.0,
            derate_early: 1.0,
            max_transition: None,
            max_skew: None,
            clocks: Vec::new(),
            multicycle: Vec::new(),
            top_paths: 5,
        }
    }
}

impl Default for StaConfig {
    fn default() -> Self {
        Self::at_clock(Hertz::from_ghz(1.0))
    }
}

/// A timing endpoint check result.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// Human-readable endpoint description (flop instance or output port).
    pub name: String,
    /// Data arrival time at the endpoint.
    pub arrival: Time,
    /// Setup requirement subtracted from the period (zero for ports).
    pub setup: Time,
    /// Slack at the configured clock (infinite when untimed).
    pub slack: Time,
    /// Required time at the endpoint (infinite when untimed).
    pub required: Time,
    /// Name of the clock domain the endpoint is checked against.
    pub domain: String,
    /// `true` when the endpoint is untimed (unconstrained clock or a
    /// purely cross-domain data cone); untimed endpoints do not count
    /// toward WNS/TNS/fmax.
    pub untimed: bool,
}

/// One cell along an enumerated timing path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStage {
    /// The cell instance.
    pub cell: CellId,
    /// Instance name.
    pub instance: String,
    /// Gate description, e.g. `Inv/X2`.
    pub gate: String,
    /// Stage delay (cell + wire, late-derated).
    pub delay: Time,
    /// Cumulative arrival at the stage output.
    pub arrival: Time,
    /// Slew at the stage output.
    pub slew: Time,
    /// Capacitive load on the stage output net.
    pub load: Farad,
}

/// A launch-to-capture path expanded with per-stage breakdowns.
///
/// `Display` prints an OpenSTA `report_checks`-style block.
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Capture endpoint (flop instance or `port:` name).
    pub endpoint: String,
    /// Launch point (flop instance or `primary input`).
    pub startpoint: String,
    /// Clock domain the endpoint is checked against.
    pub domain: String,
    /// Data arrival time at the endpoint.
    pub arrival: Time,
    /// Required time at the endpoint.
    pub required: Time,
    /// Path slack.
    pub slack: Time,
    /// Stages from launch to the last cell before the capture point.
    pub stages: Vec<PathStage>,
}

impl fmt::Display for PathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Startpoint: {} (clock {})", self.startpoint, self.domain)?;
        writeln!(f, "Endpoint:   {}", self.endpoint)?;
        writeln!(
            f,
            "  {:<28} {:>9} {:>10} {:>8} {:>8}",
            "instance", "delay/ps", "arrive/ps", "slew/ps", "load/fF"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<28} {:>9.1} {:>10.1} {:>8.1} {:>8.1}",
                format!("{} ({})", s.instance, s.gate),
                s.delay.ps(),
                s.arrival.ps(),
                s.slew.ps(),
                s.load.value() * 1e15,
            )?;
        }
        writeln!(f, "  data arrival  {:>9.1} ps", self.arrival.ps())?;
        writeln!(f, "  data required {:>9.1} ps", self.required.ps())?;
        write!(
            f,
            "  slack         {:>9.1} ps ({})",
            self.slack.ps(),
            if self.slack.value() < 0.0 {
                "VIOLATED"
            } else {
                "MET"
            }
        )
    }
}

/// A clock domain discovered by tracing each flop's clock pin back
/// through the clock network to its root net.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDomain {
    /// Domain name (the root net's name).
    pub name: String,
    /// Root net of the clock tree.
    pub root: NetId,
    /// Clock period, `None` when unconstrained (generated clock with
    /// no matching [`StaConfig::clocks`] entry).
    pub period: Option<Time>,
    /// Flops clocked by this domain, in cell order.
    pub flops: Vec<CellId>,
    /// Smallest clock insertion delay across the domain's flops.
    pub insertion_min: Time,
    /// Largest clock insertion delay across the domain's flops.
    pub insertion_max: Time,
}

impl ClockDomain {
    /// Insertion-delay spread (skew) across the domain.
    pub fn skew(&self) -> Time {
        Time::new(self.insertion_max.value() - self.insertion_min.value())
    }
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// The main clock the design was checked against.
    pub clock: Hertz,
    /// Worst (most negative) setup slack over timed endpoints.
    pub wns: Time,
    /// Total negative setup slack.
    pub tns: Time,
    /// Number of violated (timed) endpoints.
    pub violations: usize,
    /// Maximum clock frequency the worst path supports.
    pub fmax: Hertz,
    /// Cells along the critical path, launch to capture.
    pub critical_path: Vec<CellId>,
    /// All endpoint checks, worst first (untimed endpoints last).
    pub endpoints: Vec<Endpoint>,
    /// Worst hold slack across flop endpoints (positive = clean).
    pub hold_wns: Time,
    /// Number of hold violations.
    pub hold_violations: usize,
    /// Top-K worst paths with per-stage breakdowns, worst first.
    pub paths: Vec<PathReport>,
    /// Clock domains discovered in the design, in root-net order.
    pub domains: Vec<ClockDomain>,
    design: String,
    findings: Vec<Finding>,
    arrivals: Vec<Time>,
    requireds: Vec<Time>,
}

impl StaReport {
    /// Arrival time on a net (max over paths, late-derated).
    pub fn arrival(&self, net: NetId) -> Time {
        self.arrivals[net.index()]
    }

    /// Required time on a net from the backward pass (infinite when no
    /// timed endpoint is reachable from the net).
    pub fn required(&self, net: NetId) -> Time {
        self.requireds[net.index()]
    }

    /// Per-net setup slack: `required - arrival`.
    pub fn slack(&self, net: NetId) -> Time {
        Time::new(self.requireds[net.index()].value() - self.arrivals[net.index()].value())
    }

    /// `true` when every timed endpoint meets setup.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }

    /// The raw TM findings produced by the analysis, in rule order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Bridges the analysis into the lint pipeline: every TM finding is
    /// filed into a `LintReport` (domain `timing`) honoring the given
    /// severity overrides, ready for `--deny`-style gating.
    pub fn to_lint(&self, cfg: &LintConfig) -> LintReport {
        let mut report = LintReport::new(self.design.clone(), "timing");
        for f in &self.findings {
            report.add(cfg, f.clone());
        }
        report
    }
}

/// Static timing analysis runner (consuming-builder idiom).
///
/// ```
/// # use openserdes_flow::sta::{Sta, StaConfig};
/// # use openserdes_pdk::units::Hertz;
/// let sta = Sta::new().with_config(StaConfig::at_clock(Hertz::from_ghz(2.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sta {
    config: StaConfig,
}

impl Sta {
    /// A runner with the default configuration (1 GHz main clock).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn with_config(mut self, config: StaConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the main clock, keeping other settings.
    #[must_use]
    pub fn with_clock(mut self, clock: Hertz) -> Self {
        self.config.clock = clock;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &StaConfig {
        &self.config
    }

    /// Runs the analysis.
    ///
    /// When `route` is provided, per-net wire RC from the global route
    /// is used; otherwise the pre-layout wireload model estimates it.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the netlist fails validation.
    pub fn run(
        &self,
        netlist: &Netlist,
        library: &Library,
        route: Option<&RouteResult>,
    ) -> Result<StaReport, NetlistError> {
        run_impl(netlist, library, route, &self.config)
    }
}

/// Runs static timing analysis.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the netlist fails validation.
#[deprecated(note = "use `Sta::new().with_config(..).run(..)` or `Session::sta` instead")]
pub fn analyze(
    netlist: &Netlist,
    library: &Library,
    route: Option<&RouteResult>,
    config: StaConfig,
) -> Result<StaReport, NetlistError> {
    run_impl(netlist, library, route, &config)
}

/// Walks a flop's clock net back through single-input combinational
/// drivers to the clock root, returning the root net and the buffer
/// chain in root-to-flop order.
fn trace_clock(
    netlist: &Netlist,
    drivers: &[Option<CellId>],
    mut net: NetId,
) -> (NetId, Vec<CellId>) {
    let mut chain = Vec::new();
    loop {
        match drivers[net.index()] {
            Some(c) => {
                let inst = netlist.instance(c);
                if inst.is_sequential() || inst.inputs.len() != 1 {
                    chain.reverse();
                    return (net, chain);
                }
                chain.push(c);
                net = inst.inputs[0];
            }
            None => {
                chain.reverse();
                return (net, chain);
            }
        }
    }
}

/// Explores the fan-in cone of a capture net back to its launching
/// flops: returns `(source flops with a through-multi-input-logic flag,
/// reached-a-primary-input)`.
fn fanin_sources(
    netlist: &Netlist,
    drivers: &[Option<CellId>],
    start: NetId,
) -> (Vec<(CellId, bool)>, bool) {
    let mut visited = vec![false; netlist.net_count()];
    let mut stack = vec![(start, false)];
    let mut sources = Vec::new();
    let mut reached_input = false;
    while let Some((net, through_logic)) = stack.pop() {
        if visited[net.index()] {
            continue;
        }
        visited[net.index()] = true;
        match drivers[net.index()] {
            Some(c) => {
                let inst = netlist.instance(c);
                if inst.is_sequential() {
                    sources.push((c, through_logic));
                } else {
                    let through = through_logic || inst.inputs.len() > 1;
                    for &i in &inst.inputs {
                        stack.push((i, through));
                    }
                }
            }
            None => reached_input = true,
        }
    }
    sources.sort_by_key(|(c, _)| *c);
    (sources, reached_input)
}

fn run_impl(
    netlist: &Netlist,
    library: &Library,
    route: Option<&RouteResult>,
    config: &StaConfig,
) -> Result<StaReport, NetlistError> {
    let _run_span = telemetry::span("sta.run");
    netlist.check()?;
    let order = netlist.topo_order()?;
    let fanout = netlist.fanout_table();
    let drivers = netlist.driver_table();
    let wireload = WireloadModel::small_block();
    let period = 1.0 / config.clock.value();

    // Per-net capacitive load (pins + wire) and wire Elmore delay.
    let n_nets = netlist.net_count();
    let n_cells = netlist.cell_count();
    let mut load = vec![0.0f64; n_nets];
    let mut wire_delay = vec![0.0f64; n_nets];
    for net in netlist.net_ids() {
        let sinks = &fanout[net.index()];
        let mut pin_c = 0.0;
        for &s in sinks {
            let inst = netlist.instance(s);
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("library cell");
            pin_c += if inst.clock == Some(net) && !inst.inputs.contains(&net) {
                cell.clock_cap.value()
            } else {
                cell.input_cap.value()
            };
        }
        let (wire_c, wire_r) = match route {
            Some(r) => {
                let rn = r.net(net);
                (rn.capacitance().value(), rn.resistance().value())
            }
            None => (
                wireload.capacitance(sinks.len()).value(),
                wireload.resistance(sinks.len()).value(),
            ),
        };
        load[net.index()] = pin_c + wire_c;
        wire_delay[net.index()] = wire_r * (0.5 * wire_c + pin_c);
    }

    // Clock network: per-flop insertion delay, clock-pin slew and
    // domain membership by tracing back to each clock root.
    let mut findings: Vec<Finding> = Vec::new();
    let mut ins = vec![0.0f64; n_cells];
    let mut clk_pin_slew = vec![config.clock_slew.value(); n_cells];
    let mut domain_of = vec![usize::MAX; n_cells];
    let mut domains: Vec<ClockDomain> = Vec::new();
    let mut domain_period: Vec<Option<f64>> = Vec::new();
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let clk_net = inst.clock.expect("sequential cell has a clock pin");
        let (root, chain) = trace_clock(netlist, &drivers, clk_net);
        let mut t = 0.0f64;
        let mut s = config.clock_slew.value();
        for &buf in &chain {
            let binst = netlist.instance(buf);
            let bcell = library
                .cell(binst.function, binst.drive)
                .expect("library cell");
            let out = binst.output.index();
            let arc = bcell.arc(Time::new(s), Farad::new(load[out]));
            t += arc.delay.value() + wire_delay[out];
            s = arc.out_slew.value();
        }
        ins[id.index()] = t;
        clk_pin_slew[id.index()] = s;
        let di = match domains.iter().position(|d| d.root == root) {
            Some(i) => i,
            None => {
                let name = netlist.net_name(root).to_string();
                let named = config
                    .clocks
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, f)| 1.0 / f.value());
                let p = if netlist.is_primary_input(root) {
                    Some(named.unwrap_or(period))
                } else {
                    named
                };
                domains.push(ClockDomain {
                    name,
                    root,
                    period: p.map(Time::new),
                    flops: Vec::new(),
                    insertion_min: Time::new(f64::INFINITY),
                    insertion_max: Time::new(0.0),
                });
                domain_period.push(p);
                domains.len() - 1
            }
        };
        domain_of[id.index()] = di;
        let d = &mut domains[di];
        d.flops.push(id);
        if t < d.insertion_min.value() {
            d.insertion_min = Time::new(t);
        }
        if t > d.insertion_max.value() {
            d.insertion_max = Time::new(t);
        }
    }

    // TM008: validate multicycle exceptions; only valid ones apply.
    let mut multicycle: Vec<(CellId, u32)> = Vec::new();
    for &(cid, factor) in &config.multicycle {
        if cid.index() >= n_cells {
            findings.push(Finding::new(
                Rule::InvalidTimingException,
                format!(
                    "multicycle exception names unknown cell #{}; the exception constrains nothing",
                    cid.index()
                ),
            ));
        } else {
            let inst = netlist.instance(cid);
            if !inst.is_sequential() {
                findings.push(
                    Finding::new(
                        Rule::InvalidTimingException,
                        format!(
                            "multicycle exception targets combinational cell '{}'; only flops have capture edges",
                            inst.name
                        ),
                    )
                    .at_cell(inst.name.clone(), cid.index()),
                );
            } else if factor == 0 {
                findings.push(
                    Finding::new(
                        Rule::InvalidTimingException,
                        format!("multicycle factor 0 on flop '{}' is meaningless", inst.name),
                    )
                    .at_cell(inst.name.clone(), cid.index()),
                );
            } else {
                multicycle.push((cid, factor));
            }
        }
    }

    // TM003: flops in an unconstrained (generated, unnamed) domain.
    for d in &domains {
        if d.period.is_some() {
            continue;
        }
        for &f in &d.flops {
            let inst = netlist.instance(f);
            findings.push(
                Finding::new(
                    Rule::UnconstrainedEndpoint,
                    format!(
                        "flop '{}' is clocked by generated clock '{}' with no defined period; endpoint is untimed",
                        inst.name, d.name
                    ),
                )
                .at_cell(inst.name.clone(), f.index())
                .with_related(EntityKind::Net, d.name.clone(), d.root.index()),
            );
        }
    }

    // TM006: insertion-delay spread within a domain.
    if let Some(max_skew) = config.max_skew {
        for d in &domains {
            if d.flops.len() >= 2 && d.skew().value() > max_skew.value() {
                findings.push(
                    Finding::new(
                        Rule::ExcessiveClockSkew,
                        format!(
                            "clock '{}' skew {:.1} ps across {} flops exceeds the {:.1} ps budget",
                            d.name,
                            d.skew().ps(),
                            d.flops.len(),
                            max_skew.ps()
                        ),
                    )
                    .at_net(d.name.clone(), d.root.index()),
                );
            }
        }
    }

    // TM007 + untimed-endpoint detection: cross-domain data cones.
    let mut untimed_flop = vec![false; n_cells];
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let di = domain_of[id.index()];
        if domain_period[di].is_none() {
            untimed_flop[id.index()] = true;
        }
        let (sources, reached_input) = fanin_sources(netlist, &drivers, inst.inputs[0]);
        let mut same_domain = reached_input;
        let mut crossed = false;
        for &(src, through_logic) in &sources {
            if domain_of[src.index()] == di {
                same_domain = true;
                continue;
            }
            crossed = true;
            let src_inst = netlist.instance(src);
            let src_root = &domains[domain_of[src.index()]].name;
            let dst_root = &domains[di].name;
            let detail = if through_logic {
                "; data passes through multi-input logic on the way (see the NL006 synchronizer audit)"
            } else {
                ""
            };
            findings.push(
                Finding::new(
                    Rule::UntimedCrossDomainPath,
                    format!(
                        "path from flop '{}' (clock '{}') to flop '{}' (clock '{}') crosses clock domains and is untimed by default{}",
                        src_inst.name, src_root, inst.name, dst_root, detail
                    ),
                )
                .at_cell(inst.name.clone(), id.index())
                .with_related(EntityKind::Cell, src_inst.name.clone(), src.index()),
            );
        }
        if crossed && !same_domain {
            untimed_flop[id.index()] = true;
        }
    }

    // Forward (late) pass: launch arrivals then the combinational cloud.
    let forward_span = telemetry::span("sta.forward");
    let mut arrival = vec![0.0f64; n_nets]; // seconds
    let mut slew = vec![config.input_slew.value(); n_nets];
    let mut pred: Vec<Option<CellId>> = vec![None; n_nets];
    let mut stage_delay = vec![0.0f64; n_cells];
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let out = inst.output.index();
        let arc = cell.arc(Time::new(clk_pin_slew[id.index()]), Farad::new(load[out]));
        let stage = config.derate_late * (arc.delay.value() + wire_delay[out]);
        stage_delay[id.index()] = stage;
        arrival[out] = config.derate_late * ins[id.index()] + stage;
        slew[out] = arc.out_slew.value();
        pred[out] = Some(id);
    }
    for &id in &order {
        let inst = netlist.instance(id);
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let mut worst_in = 0.0f64;
        let mut worst_slew = config.input_slew.value();
        for &i in &inst.inputs {
            if arrival[i.index()] > worst_in {
                worst_in = arrival[i.index()];
            }
            worst_slew = worst_slew.max(slew[i.index()]);
        }
        let out = inst.output.index();
        let arc = cell.arc(Time::new(worst_slew), Farad::new(load[out]));
        let stage = config.derate_late * (arc.delay.value() + wire_delay[out]);
        stage_delay[id.index()] = stage;
        let t = worst_in + stage;
        if t > arrival[out] {
            arrival[out] = t;
            slew[out] = arc.out_slew.value();
            pred[out] = Some(id);
        }
    }
    drop(forward_span);

    // TM004: max transition on driven nets.
    if let Some(mt) = config.max_transition {
        for net in netlist.net_ids() {
            if drivers[net.index()].is_some() && slew[net.index()] > mt.value() {
                findings.push(
                    Finding::new(
                        Rule::MaxTransitionViolation,
                        format!(
                            "net '{}' transition {:.1} ps exceeds the {:.1} ps limit",
                            netlist.net_name(net),
                            slew[net.index()] * 1e12,
                            mt.ps()
                        ),
                    )
                    .at_net(netlist.net_name(net).to_string(), net.index()),
                );
            }
        }
    }

    // TM005: load beyond the driver's characterized max capacitance.
    for (id, inst) in netlist.instances() {
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let out = inst.output;
        if load[out.index()] > cell.max_load.value() {
            findings.push(
                Finding::new(
                    Rule::MaxCapViolation,
                    format!(
                        "net '{}' load {:.1} fF exceeds the {:.1} fF max load of driver '{}' ({:?}/{:?})",
                        netlist.net_name(out),
                        load[out.index()] * 1e15,
                        cell.max_load.value() * 1e15,
                        inst.name,
                        inst.function,
                        inst.drive
                    ),
                )
                .at_cell(inst.name.clone(), id.index())
                .with_related(EntityKind::Net, netlist.net_name(out).to_string(), out.index()),
            );
        }
    }

    // Backward (required) pass: seed capture points, sweep reverse-topo.
    let backward_span = telemetry::span("sta.backward");
    let mut required = vec![f64::INFINITY; n_nets];
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() || untimed_flop[id.index()] {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let setup = cell.seq.expect("flop has seq data").setup.value();
        let p = domain_period[domain_of[id.index()]].expect("timed flop has a period");
        let factor = multicycle
            .iter()
            .find(|(c, _)| *c == id)
            .map(|(_, f)| *f as f64)
            .unwrap_or(1.0);
        let req = factor * p + config.derate_early * ins[id.index()]
            - setup
            - config.setup_uncertainty.value();
        let d = inst.inputs[0].index();
        required[d] = required[d].min(req);
    }
    for (_, net) in netlist.primary_outputs() {
        let req = period - config.output_delay.value();
        required[net.index()] = required[net.index()].min(req);
    }
    for &id in order.iter().rev() {
        let inst = netlist.instance(id);
        let out = inst.output.index();
        if required[out].is_finite() {
            let r = required[out] - stage_delay[id.index()];
            for &i in &inst.inputs {
                required[i.index()] = required[i.index()].min(r);
            }
        }
    }
    drop(backward_span);

    // Endpoint checks.
    struct EpMeta {
        ep: Endpoint,
        cell: Option<CellId>,
        net: NetId,
    }
    let mut eps: Vec<EpMeta> = Vec::new();
    let mut worst_datapath = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let setup = cell.seq.expect("flop").setup.value();
        let di = domain_of[id.index()];
        let d_net = inst.inputs[0];
        let arr = arrival[d_net.index()];
        let untimed = untimed_flop[id.index()];
        let (req, slack_v) = if untimed {
            (f64::INFINITY, f64::INFINITY)
        } else {
            let p = domain_period[di].expect("timed flop has a period");
            let factor = multicycle
                .iter()
                .find(|(c, _)| *c == id)
                .map(|(_, f)| *f as f64)
                .unwrap_or(1.0);
            let req = factor * p + config.derate_early * ins[id.index()]
                - setup
                - config.setup_uncertainty.value();
            // Normalize multicycle endpoints to per-period datapath demand.
            let demand = (arr + setup + config.setup_uncertainty.value()
                - config.derate_early * ins[id.index()])
                / factor;
            if demand > worst_datapath {
                worst_datapath = demand;
                worst_net = Some(d_net);
            }
            (req, req - arr)
        };
        eps.push(EpMeta {
            ep: Endpoint {
                name: inst.name.clone(),
                arrival: Time::new(arr),
                setup: Time::new(setup),
                slack: Time::new(slack_v),
                required: Time::new(req),
                domain: domains[di].name.clone(),
                untimed,
            },
            cell: Some(id),
            net: d_net,
        });
    }
    for (name, net) in netlist.primary_outputs() {
        let arr = arrival[net.index()];
        let req = period - config.output_delay.value();
        let demand = arr + config.output_delay.value();
        if demand > worst_datapath {
            worst_datapath = demand;
            worst_net = Some(*net);
        }
        eps.push(EpMeta {
            ep: Endpoint {
                name: format!("port:{name}"),
                arrival: Time::new(arr),
                setup: Time::new(0.0),
                slack: Time::new(req - arr),
                required: Time::new(req),
                domain: String::from("core"),
                untimed: false,
            },
            cell: None,
            net: *net,
        });
    }
    eps.sort_by(|a, b| {
        (a.ep.untimed, a.ep.slack.value())
            .partial_cmp(&(b.ep.untimed, b.ep.slack.value()))
            .expect("comparable slack")
    });

    // TM001: violated timed setup endpoints, worst first.
    for m in &eps {
        if m.ep.untimed || m.ep.slack.value() >= 0.0 {
            continue;
        }
        let msg = format!(
            "setup violated at endpoint '{}': slack {:.1} ps against clock '{}'",
            m.ep.name,
            m.ep.slack.ps(),
            m.ep.domain
        );
        findings.push(match m.cell {
            Some(c) => {
                Finding::new(Rule::SetupViolation, msg).at_cell(m.ep.name.clone(), c.index())
            }
            None => Finding::new(Rule::SetupViolation, msg)
                .at_net(netlist.net_name(m.net).to_string(), m.net.index()),
        });
    }

    let wns = eps
        .iter()
        .find(|m| !m.ep.untimed)
        .map(|m| m.ep.slack)
        .unwrap_or(Time::new(period));
    let tns: f64 = eps
        .iter()
        .filter(|m| !m.ep.untimed)
        .map(|m| m.ep.slack.value().min(0.0))
        .sum();
    let violations = eps
        .iter()
        .filter(|m| !m.ep.untimed && m.ep.slack.value() < 0.0)
        .count();
    let fmax = if worst_datapath > 0.0 {
        Hertz::new(1.0 / worst_datapath)
    } else {
        Hertz::from_ghz(1000.0)
    };

    // Early (hold) pass with genuinely fast min-delay arcs.
    let hold_span = telemetry::span("sta.hold");
    let mut min_arrival = vec![f64::INFINITY; n_nets];
    let mut min_slew = vec![config.input_slew.value(); n_nets];
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let out = inst.output.index();
        let arc = cell.min_arc(Time::new(clk_pin_slew[id.index()]), Farad::new(load[out]));
        min_arrival[out] = config.derate_early * (ins[id.index()] + arc.delay.value());
        min_slew[out] = arc.out_slew.value();
    }
    for &id in &order {
        let inst = netlist.instance(id);
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let out = inst.output.index();
        let mut best_t = f64::INFINITY;
        let mut best_slew = config.input_slew.value();
        for &i in &inst.inputs {
            let ai = min_arrival[i.index()];
            if !ai.is_finite() {
                continue;
            }
            let arc = cell.min_arc(Time::new(min_slew[i.index()]), Farad::new(load[out]));
            let t = ai + config.derate_early * arc.delay.value();
            if t < best_t {
                best_t = t;
                best_slew = arc.out_slew.value();
            }
        }
        if best_t < min_arrival[out] {
            min_arrival[out] = best_t;
            min_slew[out] = best_slew;
        }
    }

    // Hold checks: data must not race through before the same edge's
    // hold window closes at the capturing flop.
    let mut hold_wns = f64::INFINITY;
    let mut hold_violations = 0usize;
    for (id, inst) in netlist.instances() {
        if !inst.is_sequential() {
            continue;
        }
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let hold = cell.seq.expect("flop").hold.value();
        let early = min_arrival[inst.inputs[0].index()];
        if early.is_finite() {
            let slack = early
                - config.derate_late * ins[id.index()]
                - hold
                - config.hold_uncertainty.value();
            hold_wns = hold_wns.min(slack);
            if slack < 0.0 {
                hold_violations += 1;
                findings.push(
                    Finding::new(
                        Rule::HoldViolation,
                        format!(
                            "hold violated at flop '{}': slack {:.1} ps; data races through before the capture window closes",
                            inst.name,
                            slack * 1e12
                        ),
                    )
                    .at_cell(inst.name.clone(), id.index()),
                );
            }
        }
    }
    if !hold_wns.is_finite() {
        hold_wns = 0.0;
    }
    drop(hold_span);

    // Path enumeration: expand the top-K worst timed endpoints.
    let paths_span = telemetry::span("sta.paths");
    let mut paths = Vec::new();
    for m in eps.iter().filter(|m| !m.ep.untimed).take(config.top_paths) {
        let mut cells = Vec::new();
        let mut cursor = Some(m.net);
        while let Some(net) = cursor {
            match pred[net.index()] {
                Some(cell) => {
                    cells.push(cell);
                    let inst = netlist.instance(cell);
                    if inst.is_sequential() {
                        break; // reached the launching flop
                    }
                    cursor = inst.inputs.iter().copied().max_by(|a, b| {
                        arrival[a.index()]
                            .partial_cmp(&arrival[b.index()])
                            .expect("finite arrivals")
                    });
                }
                None => break, // reached a primary input
            }
        }
        cells.reverse();
        let startpoint = match cells.first() {
            Some(&c) if netlist.instance(c).is_sequential() => netlist.instance(c).name.clone(),
            _ => String::from("primary input"),
        };
        let stages = cells
            .iter()
            .map(|&c| {
                let inst = netlist.instance(c);
                let out = inst.output.index();
                PathStage {
                    cell: c,
                    instance: inst.name.clone(),
                    gate: format!("{:?}/{:?}", inst.function, inst.drive),
                    delay: Time::new(stage_delay[c.index()]),
                    arrival: Time::new(arrival[out]),
                    slew: Time::new(slew[out]),
                    load: Farad::new(load[out]),
                }
            })
            .collect();
        paths.push(PathReport {
            endpoint: m.ep.name.clone(),
            startpoint,
            domain: m.ep.domain.clone(),
            arrival: m.ep.arrival,
            required: m.ep.required,
            slack: m.ep.slack,
            stages,
        });
    }
    drop(paths_span);

    // Critical path: the worst enumerated path; fall back to the
    // worst-datapath net when every endpoint is untimed.
    let critical_path = match paths.first() {
        Some(p) => p.stages.iter().map(|s| s.cell).collect(),
        None => {
            let mut cp = Vec::new();
            let mut cursor = worst_net;
            while let Some(net) = cursor {
                match pred[net.index()] {
                    Some(cell) => {
                        cp.push(cell);
                        let inst = netlist.instance(cell);
                        if inst.is_sequential() {
                            break;
                        }
                        cursor = inst.inputs.iter().copied().max_by(|a, b| {
                            arrival[a.index()]
                                .partial_cmp(&arrival[b.index()])
                                .expect("finite arrivals")
                        });
                    }
                    None => break,
                }
            }
            cp.reverse();
            cp
        }
    };

    Ok(StaReport {
        clock: config.clock,
        wns,
        tns: Time::new(tns),
        violations,
        fmax,
        critical_path,
        endpoints: eps.iter().map(|m| m.ep.clone()).collect(),
        hold_wns: Time::new(hold_wns),
        hold_violations,
        paths,
        domains,
        design: netlist.name().to_string(),
        findings,
        arrivals: arrival.into_iter().map(Time::new).collect(),
        requireds: required.into_iter().map(Time::new).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_lint::LintLevel;
    use openserdes_pdk::corner::{ProcessCorner, Pvt};
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    fn run(nl: &Netlist, l: &Library, cfg: StaConfig) -> StaReport {
        Sta::new().with_config(cfg).run(nl, l, None).expect("ok")
    }

    /// flop -> N inverters -> flop pipeline.
    fn pipeline(n: usize) -> Netlist {
        let mut nl = Netlist::new("pipe");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q0 = nl.dff(d, clk, DriveStrength::X1);
        let mut s = q0;
        for _ in 0..n {
            s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
        }
        let q1 = nl.dff(s, clk, DriveStrength::X1);
        nl.mark_output("q", q1);
        nl
    }

    #[test]
    fn longer_paths_have_less_slack() {
        let l = lib();
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let short = run(&pipeline(2), &l, cfg.clone());
        let long = run(&pipeline(20), &l, cfg);
        assert!(long.wns < short.wns);
        assert!(long.fmax.value() < short.fmax.value());
    }

    #[test]
    fn violations_appear_at_high_clock() {
        let l = lib();
        let nl = pipeline(30);
        let slow = run(&nl, &l, StaConfig::at_clock(Hertz::from_mhz(100.0)));
        assert!(slow.clean(), "100 MHz must close on 30 inverters");
        let fast = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(5.0)));
        assert!(!fast.clean(), "5 GHz must fail on 30 inverters");
        assert!(fast.tns.value() < 0.0);
    }

    #[test]
    fn fmax_consistent_with_slack() {
        let l = lib();
        let nl = pipeline(10);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        // Exactly at fmax the design should be (just) clean.
        let at_fmax = run(
            &nl,
            &l,
            StaConfig::at_clock(Hertz::new(r.fmax.value() * 0.999)),
        );
        assert!(at_fmax.clean(), "wns at 0.999·fmax = {}", at_fmax.wns);
        let above = run(
            &nl,
            &l,
            StaConfig::at_clock(Hertz::new(r.fmax.value() * 1.05)),
        );
        assert!(!above.clean());
    }

    #[test]
    fn critical_path_traverses_the_chain() {
        let l = lib();
        let nl = pipeline(8);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        // Path = launch flop + 8 inverters.
        assert_eq!(r.critical_path.len(), 9);
        let first = nl.instance(r.critical_path[0]);
        assert!(first.is_sequential(), "path starts at the launch flop");
    }

    #[test]
    fn slow_corner_lowers_fmax() {
        let nl = pipeline(10);
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let tt = run(&nl, &lib(), cfg.clone());
        let ss_lib = Library::sky130(Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0));
        let ss = run(&nl, &ss_lib, cfg);
        assert!(ss.fmax.value() < tt.fmax.value());
    }

    #[test]
    fn endpoint_list_sorted_by_slack() {
        let l = lib();
        let nl = pipeline(12);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(2.0)));
        for w in r.endpoints.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        assert!(!r.endpoints.is_empty());
    }

    #[test]
    fn hold_clean_with_library_flops() {
        // Even the early clk→Q far exceeds hold (20 ps): back-to-back
        // flops are hold-clean by construction in this library.
        let l = lib();
        let r = run(&pipeline(0), &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        assert_eq!(r.hold_violations, 0);
        assert!(
            r.hold_wns.ps() > 50.0,
            "hold slack = {} ps",
            r.hold_wns.ps()
        );
    }

    #[test]
    fn hold_slack_grows_with_path_depth() {
        let l = lib();
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let short = run(&pipeline(0), &l, cfg.clone());
        let long = run(&pipeline(10), &l, cfg);
        assert!(long.hold_wns >= short.hold_wns);
    }

    #[test]
    fn multicycle_exception_relaxes_endpoint() {
        let l = lib();
        let nl = pipeline(30);
        let flop = nl
            .instances()
            .filter(|(_, i)| i.is_sequential())
            .map(|(id, _)| id)
            .nth(1)
            .expect("capture flop");
        let tight = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(2.0)));
        assert!(!tight.clean(), "30 inverters fail at 2 GHz single-cycle");
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(2.0));
        cfg.multicycle = vec![(flop, 8)];
        let relaxed = run(&nl, &l, cfg);
        assert!(
            relaxed.clean(),
            "an 8-cycle exception must absorb the path: wns = {}",
            relaxed.wns
        );
        assert!(relaxed.fmax.value() > tight.fmax.value());
    }

    #[test]
    fn pure_combinational_design_checks_ports() {
        let l = lib();
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[a, b]);
        nl.mark_output("y", y);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        assert_eq!(r.endpoints.len(), 1);
        assert!(r.endpoints[0].name.starts_with("port:"));
        assert!(r.clean());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_analyze_matches_sta() {
        let l = lib();
        let nl = pipeline(6);
        let cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        let old = analyze(&nl, &l, None, cfg.clone()).expect("ok");
        let new = run(&nl, &l, cfg);
        assert_eq!(old, new);
    }

    #[test]
    fn launch_arrival_responds_to_clock_slew() {
        let l = lib();
        let nl = pipeline(2);
        let q0 = nl
            .instances()
            .find(|(_, i)| i.is_sequential())
            .map(|(_, i)| i.output)
            .expect("launch flop");
        let mut slow = StaConfig::at_clock(Hertz::from_ghz(1.0));
        slow.clock_slew = Time::from_ps(400.0);
        let base = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        let degraded = run(&nl, &l, slow);
        assert!(
            degraded.arrival(q0) > base.arrival(q0),
            "a slower clock edge must delay the launch: {} vs {} ps",
            degraded.arrival(q0).ps(),
            base.arrival(q0).ps()
        );
    }

    #[test]
    fn output_delay_tightens_port_slack_exactly() {
        let l = lib();
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a");
        let y = nl.gate(LogicFn::Buf, DriveStrength::X1, &[a]);
        nl.mark_output("y", y);
        let base = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        let od = Time::from_ps(137.0);
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.output_delay = od;
        let tight = run(&nl, &l, cfg);
        let delta = base.endpoints[0].slack.ps() - tight.endpoints[0].slack.ps();
        assert!(
            (delta - od.ps()).abs() < 1e-6,
            "slack must tighten by exactly the output delay, got {delta} ps"
        );
    }

    #[test]
    fn invalid_multicycle_surfaces_tm008() {
        let l = lib();
        let small = pipeline(2);
        let comb = small
            .instances()
            .find(|(_, i)| !i.is_sequential())
            .map(|(id, _)| id)
            .expect("inverter");
        // A CellId minted on a larger netlist does not exist here.
        let big = pipeline(40);
        let foreign = big.cell_ids().last().expect("cells");
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.multicycle = vec![(comb, 2), (foreign, 2)];
        let r = run(&small, &l, cfg);
        let tm008: Vec<_> = r
            .findings()
            .iter()
            .filter(|f| f.rule == Rule::InvalidTimingException)
            .collect();
        assert_eq!(tm008.len(), 2, "both bad exceptions must be flagged");
        assert!(
            r.to_lint(&LintConfig::new()).has_errors(),
            "TM008 defaults to Error"
        );
    }

    #[test]
    fn backward_slack_matches_forward_on_every_net() {
        let l = lib();
        let nl = pipeline(8);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(2.0)));
        // On a single chain every net's backward slack equals the
        // endpoint slack the forward pass computed.
        assert!(!r.critical_path.is_empty());
        for &c in &r.critical_path {
            let out = nl.instance(c).output;
            assert!(
                (r.slack(out).ps() - r.wns.ps()).abs() < 1e-3,
                "net {} slack {} ps vs wns {} ps",
                nl.net_name(out),
                r.slack(out).ps(),
                r.wns.ps()
            );
        }
    }

    #[test]
    fn hold_loosens_as_early_derate_rises() {
        let l = lib();
        let nl = pipeline(0);
        let mut prev = f64::NEG_INFINITY;
        for derate in [0.7, 0.85, 1.0] {
            let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
            cfg.derate_early = derate;
            let r = run(&nl, &l, cfg);
            assert!(
                r.hold_wns.ps() >= prev,
                "hold slack must be non-decreasing toward derate 1.0"
            );
            prev = r.hold_wns.ps();
        }
    }

    #[test]
    fn setup_uncertainty_tightens_slack_exactly() {
        let l = lib();
        let nl = pipeline(5);
        let base = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.setup_uncertainty = Time::from_ps(100.0);
        let tight = run(&nl, &l, cfg);
        let delta = base.endpoints[0].slack.ps() - tight.endpoints[0].slack.ps();
        assert!((delta - 100.0).abs() < 1e-6, "got {delta} ps");
    }

    /// Two independent domains: flops on `clka` and `clkb`, no crossing.
    fn two_domain_netlist() -> Netlist {
        let mut nl = Netlist::new("dual");
        let clka = nl.add_input("clka");
        let clkb = nl.add_input("clkb");
        let da = nl.add_input("da");
        let db = nl.add_input("db");
        let qa = nl.dff(da, clka, DriveStrength::X1);
        let qb = nl.dff(db, clkb, DriveStrength::X1);
        nl.mark_output("qa", qa);
        nl.mark_output("qb", qb);
        nl
    }

    #[test]
    fn per_domain_periods_apply() {
        let l = lib();
        let nl = two_domain_netlist();
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.clocks = vec![(String::from("clkb"), Hertz::from_mhz(250.0))];
        let r = run(&nl, &l, cfg);
        assert_eq!(r.domains.len(), 2);
        let a = r.domains.iter().find(|d| d.name == "clka").expect("clka");
        let b = r.domains.iter().find(|d| d.name == "clkb").expect("clkb");
        assert!((a.period.expect("timed").ps() - 1000.0).abs() < 1e-6);
        assert!((b.period.expect("timed").ps() - 4000.0).abs() < 1e-6);
        // The slow-clock endpoint has 3 ns more required time.
        let ea = r
            .endpoints
            .iter()
            .find(|e| e.domain == "clka")
            .expect("ep a");
        let eb = r
            .endpoints
            .iter()
            .find(|e| e.domain == "clkb")
            .expect("ep b");
        assert!(eb.slack.ps() > ea.slack.ps() + 2000.0);
    }

    #[test]
    fn cross_domain_paths_are_untimed_and_flagged() {
        let l = lib();
        let mut nl = Netlist::new("cdc");
        let clka = nl.add_input("clka");
        let clkb = nl.add_input("clkb");
        let d = nl.add_input("d");
        let qa = nl.dff(d, clka, DriveStrength::X1);
        let s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[qa]);
        let qb = nl.dff(s, clkb, DriveStrength::X1);
        nl.mark_output("q", qb);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        let capture = r
            .endpoints
            .iter()
            .find(|e| e.domain == "clkb")
            .expect("capture endpoint");
        assert!(
            capture.untimed,
            "cross-domain endpoint is untimed by default"
        );
        assert!(r
            .findings()
            .iter()
            .any(|f| f.rule == Rule::UntimedCrossDomainPath));
        // Untimed endpoints sort last and never count as violations.
        assert!(r.endpoints.last().expect("eps").untimed);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn unconstrained_generated_clock_is_tm003() {
        let l = lib();
        let mut nl = Netlist::new("ripple");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q0 = nl.dff(d, clk, DriveStrength::X1);
        // Ripple counter style: second flop clocked by the first's Q.
        let q1 = nl.dff(d, q0, DriveStrength::X1);
        nl.mark_output("q", q1);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        assert!(r
            .findings()
            .iter()
            .any(|f| f.rule == Rule::UnconstrainedEndpoint));
        let generated = r.domains.iter().find(|dom| !nl.is_primary_input(dom.root));
        assert!(generated.expect("generated domain").period.is_none());
    }

    #[test]
    fn max_transition_and_max_cap_rules_fire() {
        let l = lib();
        let mut nl = Netlist::new("fanout");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q = nl.dff(d, clk, DriveStrength::X1);
        let big = nl.gate(LogicFn::Inv, DriveStrength::X1, &[q]);
        for _ in 0..200 {
            let qq = nl.dff(big, clk, DriveStrength::X1);
            nl.mark_output("o", qq);
        }
        let mut cfg = StaConfig::at_clock(Hertz::from_mhz(100.0));
        cfg.max_transition = Some(Time::from_ps(100.0));
        let r = run(&nl, &l, cfg);
        assert!(
            r.findings()
                .iter()
                .any(|f| f.rule == Rule::MaxTransitionViolation),
            "an X1 inverter into 200 flops must blow the transition limit"
        );
        assert!(
            r.findings().iter().any(|f| f.rule == Rule::MaxCapViolation),
            "the load far exceeds the X1 max_load characterization"
        );
    }

    #[test]
    fn excessive_skew_is_flagged() {
        let l = lib();
        let mut nl = Netlist::new("skewed");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        // One flop on the raw clock, one behind a long buffer chain.
        let mut late_clk = clk;
        for _ in 0..8 {
            late_clk = nl.gate(LogicFn::Buf, DriveStrength::X1, &[late_clk]);
        }
        let q0 = nl.dff(d, clk, DriveStrength::X1);
        let q1 = nl.dff(q0, late_clk, DriveStrength::X1);
        nl.mark_output("q", q1);
        let mut cfg = StaConfig::at_clock(Hertz::from_mhz(500.0));
        cfg.max_skew = Some(Time::from_ps(10.0));
        let r = run(&nl, &l, cfg);
        assert_eq!(r.domains.len(), 1, "buffered clock traces to the same root");
        assert!(r.domains[0].skew().ps() > 10.0);
        assert!(r
            .findings()
            .iter()
            .any(|f| f.rule == Rule::ExcessiveClockSkew));
    }

    #[test]
    fn path_report_prints_per_stage_breakdown() {
        let l = lib();
        let nl = pipeline(8);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(1.0)));
        assert!(!r.paths.is_empty());
        let p = &r.paths[0];
        assert_eq!(p.stages.len(), 9, "launch flop + 8 inverters");
        let text = p.to_string();
        assert!(text.contains("Startpoint"));
        assert!(text.contains("Endpoint"));
        assert!(text.contains("MET"));
        // Arrivals are cumulative along the path.
        for w in p.stages.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn setup_violations_surface_as_tm001_warnings() {
        let l = lib();
        let nl = pipeline(30);
        let r = run(&nl, &l, StaConfig::at_clock(Hertz::from_ghz(5.0)));
        assert!(!r.clean());
        let lint = r.to_lint(&LintConfig::new());
        assert!(lint.has_warnings(), "TM001 defaults to Warn");
        assert!(!lint.has_errors());
        let strict =
            r.to_lint(&LintConfig::new().set_level(Rule::SetupViolation, LintLevel::Error));
        assert!(
            strict.has_errors(),
            "severity overrides apply to TM findings"
        );
    }

    #[test]
    fn hold_violation_surfaces_as_tm002() {
        let l = lib();
        let nl = pipeline(0);
        let mut cfg = StaConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.hold_uncertainty = Time::from_ps(300.0);
        let r = run(&nl, &l, cfg);
        assert!(r.hold_violations > 0);
        assert!(r.findings().iter().any(|f| f.rule == Rule::HoldViolation));
        assert!(
            r.to_lint(&LintConfig::new()).has_errors(),
            "TM002 defaults to Error"
        );
    }
}
