//! RTL-IR checks: the `IR0xx` rules of the design-lint engine.
//!
//! The IR is acyclic by construction (operands always refer to earlier
//! signals), so unlike the gate-level ERC there is no loop rule here;
//! what can go wrong is connectivity — registers left dangling, logic
//! that never reaches an output, stuck state — and port/exception
//! bookkeeping. The pass runs on the public [`Design`] accessors and
//! never mutates the IR.

use crate::ir::{Design, NodeOp, Sig};
use openserdes_lint::{Finding, LintConfig, LintReport, Rule};
use std::collections::HashMap;

/// Three-valued constant lattice: a signal is a known boolean until two
/// different values (or an unknown input) merge into ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lattice {
    Known(bool),
    Top,
}

impl Lattice {
    fn join(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Known(a), Lattice::Known(b)) if a == b => self,
            _ => Lattice::Top,
        }
    }
}

impl Design {
    /// Run the `IR0xx` rule set over this design.
    pub fn lint(&self, cfg: &LintConfig) -> LintReport {
        lint_design(self, cfg)
    }
}

/// Run the `IR0xx` rule set over a design.
///
/// # Deprecated
///
/// The same engine is reachable as the inherent [`Design::lint`] method
/// (or `Session::lint` at the top level).
#[deprecated(note = "use `Design::lint` or `Session::lint`")]
pub fn lint(design: &Design, cfg: &LintConfig) -> LintReport {
    lint_design(design, cfg)
}

fn lint_design(design: &Design, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new(design.name(), "ir");

    // IR001 — unconnected registers.
    let mut unconnected = vec![false; design.reg_count()];
    for (idx, flag) in unconnected.iter_mut().enumerate() {
        if design.reg_d_opt(idx).is_none() {
            *flag = true;
            report.add(
                cfg,
                Finding::new(
                    Rule::UnconnectedRegister,
                    format!("register r{idx} has no data input connected"),
                )
                .at_reg(format!("r{idx}"), idx),
            );
        }
    }

    // Liveness: reverse reachability from the primary outputs, walking
    // operands and crossing registers via their D inputs.
    let nodes = design.nodes();
    let live = live_nodes(design);

    // IR002 — dead logic nodes. One aggregate finding: a dead subtree
    // can hold hundreds of nodes and per-node findings would drown the
    // report. Inputs and constants are exempt (IR004 covers inputs).
    let dead: Vec<usize> = (0..nodes.len())
        .filter(|&i| !live[i] && !matches!(nodes[i], NodeOp::Input(_) | NodeOp::Const(_)))
        .collect();
    if !dead.is_empty() {
        let examples: Vec<String> = dead.iter().take(5).map(|i| format!("s{i}")).collect();
        report.add(
            cfg,
            Finding::new(
                Rule::DeadNode,
                format!(
                    "{} logic node(s) cannot reach any primary output (e.g. {})",
                    dead.len(),
                    examples.join(", ")
                ),
            )
            .at_sig(format!("s{}", dead[0]), dead[0]),
        );
    }

    // IR003 — constant registers, by three-valued constant propagation:
    // inputs are unknown (⊤), registers start from their power-up value
    // (0) and accumulate every value their D input can take.
    for (idx, value) in constant_registers(design, &unconnected) {
        report.add(
            cfg,
            Finding::new(
                Rule::ConstantRegister,
                format!(
                    "register r{idx} provably never leaves its power-up value \
                     ({}): dead state",
                    u8::from(value)
                ),
            )
            .at_reg(format!("r{idx}"), idx),
        );
    }

    // IR004 — unused primary inputs: no node reads them and they are not
    // wired straight to an output.
    let mut input_read = vec![false; design.input_names().len()];
    for op in nodes {
        for s in operands(op) {
            if let NodeOp::Input(idx) = nodes[s.index()] {
                input_read[idx] = true;
            }
        }
    }
    for &(_, sig) in design.outputs() {
        if let NodeOp::Input(idx) = nodes[sig.index()] {
            input_read[idx] = true;
        }
    }
    for (idx, name) in design.input_names().iter().enumerate() {
        if !input_read[idx] {
            report.add(
                cfg,
                Finding::new(
                    Rule::UnusedInput,
                    format!("primary input `{name}` drives nothing"),
                )
                .at_sig(name, idx),
            );
        }
    }

    // IR005 — ragged buses: `name[i]` ports must cover 0..n contiguously.
    for (base, indices) in bus_indices(design.input_names().iter().map(String::as_str))
        .into_iter()
        .chain(bus_indices(
            design.outputs().iter().map(|(n, _)| n.as_str()),
        ))
    {
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let contiguous = sorted.len() == indices.len()
            && sorted.first() == Some(&0)
            && sorted.len() == sorted.last().map_or(0, |l| l + 1);
        if !contiguous {
            report.add(
                cfg,
                Finding::new(
                    Rule::RaggedBus,
                    format!(
                        "bus port `{base}` has non-contiguous or duplicate bit indices \
                         ({} bit(s), highest index {})",
                        indices.len(),
                        sorted.last().copied().unwrap_or(0)
                    ),
                )
                .at_sig(base, sorted.first().copied().unwrap_or(0)),
            );
        }
    }

    // IR006 — duplicate multicycle exceptions on one register.
    let mut seen: HashMap<usize, u32> = HashMap::new();
    for &(reg, factor) in design.multicycle() {
        if let Some(&prev) = seen.get(&reg) {
            report.add(
                cfg,
                Finding::new(
                    Rule::DuplicateMulticycle,
                    format!(
                        "register r{reg} carries more than one multicycle exception \
                         (×{prev} then ×{factor}); only one is honoured"
                    ),
                )
                .at_reg(format!("r{reg}"), reg),
            );
        } else {
            seen.insert(reg, factor);
        }
    }

    report
}

fn operands(op: &NodeOp) -> Vec<Sig> {
    match *op {
        NodeOp::Input(_) | NodeOp::Const(_) | NodeOp::RegQ(_) => Vec::new(),
        NodeOp::Not(a) => vec![a],
        NodeOp::And(a, b) | NodeOp::Or(a, b) | NodeOp::Xor(a, b) => vec![a, b],
        NodeOp::Mux { a, b, sel } => vec![a, b, sel],
    }
}

/// Reverse reachability from the outputs; registers propagate liveness
/// from their Q node to their D cone.
fn live_nodes(design: &Design) -> Vec<bool> {
    let nodes = design.nodes();
    let mut live = vec![false; nodes.len()];
    let mut stack: Vec<usize> = design.outputs().iter().map(|&(_, s)| s.index()).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for s in operands(&nodes[i]) {
            stack.push(s.index());
        }
        if let NodeOp::RegQ(idx) = nodes[i] {
            if let Some(d) = design.reg_d_opt(idx) {
                stack.push(d.index());
            }
        }
    }
    live
}

/// Fixpoint three-valued evaluation; returns `(reg index, stuck value)`
/// for registers that provably never change.
fn constant_registers(design: &Design, unconnected: &[bool]) -> Vec<(usize, bool)> {
    let nodes = design.nodes();
    // Power-up state: every register is 0.
    let mut reg_val = vec![Lattice::Known(false); design.reg_count()];
    let mut values = vec![Lattice::Top; nodes.len()];
    // Each round widens at least one register or terminates, so
    // reg_count + 1 rounds suffice.
    for _ in 0..=design.reg_count() {
        for (i, op) in nodes.iter().enumerate() {
            values[i] = match *op {
                NodeOp::Input(_) => Lattice::Top,
                NodeOp::Const(v) => Lattice::Known(v),
                NodeOp::Not(a) => match values[a.index()] {
                    Lattice::Known(v) => Lattice::Known(!v),
                    Lattice::Top => Lattice::Top,
                },
                NodeOp::And(a, b) => match (values[a.index()], values[b.index()]) {
                    (Lattice::Known(false), _) | (_, Lattice::Known(false)) => {
                        Lattice::Known(false)
                    }
                    (Lattice::Known(x), Lattice::Known(y)) => Lattice::Known(x & y),
                    _ => Lattice::Top,
                },
                NodeOp::Or(a, b) => match (values[a.index()], values[b.index()]) {
                    (Lattice::Known(true), _) | (_, Lattice::Known(true)) => Lattice::Known(true),
                    (Lattice::Known(x), Lattice::Known(y)) => Lattice::Known(x | y),
                    _ => Lattice::Top,
                },
                NodeOp::Xor(a, b) => match (values[a.index()], values[b.index()]) {
                    (Lattice::Known(x), Lattice::Known(y)) => Lattice::Known(x ^ y),
                    _ => Lattice::Top,
                },
                NodeOp::Mux { a, b, sel } => match values[sel.index()] {
                    Lattice::Known(false) => values[a.index()],
                    Lattice::Known(true) => values[b.index()],
                    Lattice::Top => values[a.index()].join(values[b.index()]),
                },
                NodeOp::RegQ(idx) => reg_val[idx],
            };
        }
        let mut changed = false;
        for (idx, rv) in reg_val.iter_mut().enumerate() {
            let next = match design.reg_d_opt(idx) {
                Some(d) => rv.join(values[d.index()]),
                None => *rv,
            };
            if next != *rv {
                *rv = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    reg_val
        .iter()
        .enumerate()
        .filter_map(|(idx, v)| match v {
            // An unconnected register trivially never changes; IR001
            // already reports it.
            Lattice::Known(b) if !unconnected[idx] => Some((idx, *b)),
            _ => None,
        })
        .collect()
}

/// Group `name[i]` port names by base name.
fn bus_indices<'a>(names: impl Iterator<Item = &'a str>) -> HashMap<String, Vec<usize>> {
    let mut buses: HashMap<String, Vec<usize>> = HashMap::new();
    for name in names {
        let Some(open) = name.rfind('[') else {
            continue;
        };
        let Some(stripped) = name[open + 1..].strip_suffix(']') else {
            continue;
        };
        let Ok(idx) = stripped.parse::<usize>() else {
            continue;
        };
        buses.entry(name[..open].to_string()).or_default().push(idx);
    }
    buses
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_lint::Severity;

    fn rules_of(report: &LintReport) -> Vec<Rule> {
        report.findings().iter().map(|f| f.rule).collect()
    }

    fn counter(width: usize) -> Design {
        let mut d = Design::new("cnt");
        let q = d.reg_bus(width);
        let next = d.incr(&q);
        d.connect_reg_bus(&q, &next);
        d.output_bus("q", &q);
        d
    }

    #[test]
    fn clean_counter_is_clean() {
        let r = counter(4).lint(&LintConfig::default());
        assert!(r.is_clean(), "unexpected findings: {r}");
    }

    #[test]
    fn ir001_unconnected_register() {
        let mut d = Design::new("bad");
        let q = d.reg();
        d.output("q", q);
        let r = d.lint(&LintConfig::default());
        assert!(rules_of(&r).contains(&Rule::UnconnectedRegister));
        assert!(r.has_errors());
    }

    #[test]
    fn ir002_dead_node() {
        let mut d = Design::new("dead");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.and(a, b);
        d.output("y", y);
        let _orphan = d.xor(a, b); // never reaches an output
        let r = d.lint(&LintConfig::default());
        let dead: Vec<_> = r
            .findings()
            .iter()
            .filter(|f| f.rule == Rule::DeadNode)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Warn);
    }

    #[test]
    fn ir003_constant_register() {
        // d.reg() powering up at 0, fed its own AND with 0: stuck at 0.
        let mut d = Design::new("stuck");
        let q = d.reg();
        let zero = d.constant(false);
        let next = d.and(q, zero);
        d.connect_reg(q, next);
        d.output("q", q);
        let r = d.lint(&LintConfig::default());
        assert!(rules_of(&r).contains(&Rule::ConstantRegister));
    }

    #[test]
    fn ir003_toggling_register_not_flagged() {
        // q' = !q toggles every cycle: must not be called constant.
        let mut d = Design::new("toggle");
        let q = d.reg();
        let n = d.not(q);
        d.connect_reg(q, n);
        d.output("q", q);
        let r = d.lint(&LintConfig::default());
        assert!(!rules_of(&r).contains(&Rule::ConstantRegister));
    }

    #[test]
    fn ir004_unused_input() {
        let mut d = Design::new("io");
        let a = d.input("a");
        let _unused = d.input("nc");
        d.output("y", a);
        let r = d.lint(&LintConfig::default());
        let f: Vec<_> = r
            .findings()
            .iter()
            .filter(|f| f.rule == Rule::UnusedInput)
            .collect();
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`nc`"));
        assert_eq!(f[0].severity, Severity::Info);
    }

    #[test]
    fn ir005_ragged_bus() {
        let mut d = Design::new("ragged");
        let a = d.input("bus[0]");
        let b = d.input("bus[2]"); // gap: no bus[1]
        let y = d.and(a, b);
        d.output("y", y);
        let r = d.lint(&LintConfig::default());
        assert!(rules_of(&r).contains(&Rule::RaggedBus));
    }

    #[test]
    fn ir005_contiguous_bus_ok() {
        let mut d = Design::new("ok");
        let bus = d.input_bus("b", 4);
        let y = d.and_reduce(&bus);
        d.output("y", y);
        let r = d.lint(&LintConfig::default());
        assert!(!rules_of(&r).contains(&Rule::RaggedBus));
    }

    #[test]
    fn ir006_duplicate_multicycle() {
        let mut d = counter(2);
        let q0 = d.outputs()[0].1;
        d.set_multicycle(q0, 4);
        d.set_multicycle(q0, 8);
        let r = d.lint(&LintConfig::default());
        assert!(rules_of(&r).contains(&Rule::DuplicateMulticycle));
    }

    #[test]
    fn lint_is_read_only() {
        let d = counter(3);
        let before = format!("{d:?}");
        let _ = d.lint(&LintConfig::default());
        assert_eq!(format!("{d:?}"), before);
    }
}
