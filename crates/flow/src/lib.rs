//! # openserdes-flow
//!
//! An OpenLANE-substitute RTL→layout flow, the automation backbone of the
//! paper ("Automated SerDes Design", §IV): the serializer, deserializer
//! and CDR are written once as RTL and pushed through synthesis,
//! placement, clock-tree estimation, routing, timing and power signoff to
//! obtain the area/power numbers of Figs. 10–11 — all re-runnable at any
//! PVT point, which is the process-portability claim in executable form.
//!
//! * [`ir`] — a word-friendly RTL IR with a golden interpreter,
//! * [`lint`] — the `IR0xx` half of the design-lint engine (unconnected
//!   registers, dead nodes, stuck state, ragged buses); [`Flow::run`]
//!   gates on it before synthesis and on the netlist ERC after,
//! * [`synth`] — folding, structural hashing and technology mapping,
//! * [`floorplan`] / [`place`] / [`route`] — row-based floorplan, greedy +
//!   simulated-annealing placement, global-routing estimate,
//! * [`sta`] — NLDM static timing signoff: forward/backward graph
//!   passes (per-net slack), early/late split with derates, per-clock
//!   domains, top-K path reports and the `TM0xx` timing lint bridge,
//! * [`power`] — activity-based switching/internal/clock/leakage power,
//! * [`flow`] — the staged driver ([`Flow`]) mirroring Fig. 12.
//!
//! ```
//! use openserdes_flow::ir::Design;
//! use openserdes_flow::{Flow, FlowConfig};
//! use openserdes_pdk::units::Hertz;
//!
//! let mut d = Design::new("counter4");
//! let q = d.reg_bus(4);
//! let next = d.incr(&q);
//! d.connect_reg_bus(&q, &next);
//! d.output_bus("q", &q);
//!
//! let flow = Flow::new().with_config(FlowConfig::at_clock(Hertz::from_mhz(500.0)));
//! let result = flow.run(&d)?;
//! assert!(result.timing.clean());
//! # Ok::<(), openserdes_flow::FlowError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod export;
pub mod floorplan;
pub mod flow;
pub mod ir;
pub mod lint;
pub mod place;
pub mod power;
pub mod route;
pub mod sta;
pub mod synth;

pub use error::FlowError;
pub use export::{to_def, to_verilog};
#[allow(deprecated)]
pub use flow::run_flow;
pub use flow::{optimize_timing, CtsReport, Flow, FlowConfig, FlowResult};
pub use power::{analyze_power, PowerConfig, PowerReport};
#[allow(deprecated)]
pub use sta::analyze;
pub use sta::{ClockDomain, Endpoint, PathReport, PathStage, Sta, StaConfig, StaReport};
pub use synth::{synthesize, SynthResult};
