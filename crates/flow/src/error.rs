//! Flow-level errors: structural netlist failures and lint gate rejections.

use openserdes_lint::LintReport;
use openserdes_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Why [`crate::run_flow`] refused to produce a layout.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A netlist-level structural error (from synthesis or STA).
    Netlist(NetlistError),
    /// The design-lint gate found Error-level diagnostics; the full
    /// report is carried for display and triage.
    Lint(LintReport),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Lint(report) => write!(
                f,
                "design rejected by lint gate ({} error(s)):\n{report}",
                report.count(openserdes_lint::Severity::Error)
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Lint(_) => None,
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_error_wraps_and_displays() {
        let e = FlowError::from(NetlistError::CombinationalLoop(Vec::new()));
        assert!(e.to_string().contains("combinational loop"));
    }

    #[test]
    fn lint_error_carries_report() {
        use openserdes_lint::{Finding, LintConfig, LintReport, Rule};
        let mut report = LintReport::new("dut", "ir");
        report.add(
            &LintConfig::default(),
            Finding::new(Rule::UnconnectedRegister, "register r0 unconnected"),
        );
        let e = FlowError::Lint(report);
        let s = e.to_string();
        assert!(s.contains("lint gate") && s.contains("IR001"));
    }
}
