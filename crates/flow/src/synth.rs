//! Logic synthesis: RTL IR → optimized, technology-mapped netlist.
//!
//! This pass plays the role yosys + ABC play inside OpenLANE:
//!
//! 1. **Constant folding & algebraic simplification** — `x & 0 = 0`,
//!    `x ^ x = 0`, double-negation removal, mux with constant select, …
//! 2. **Structural hashing** — identical subexpressions share one gate.
//! 3. **Technology mapping** — fuses inverters into the library's
//!    inverting cells (`Nand2`, `Nor2`, `Xnor2`, `Aoi21`, `Oai21`) when
//!    the inner node has no other fanout, and emits `And2`/`Or2`/`Xor2`/
//!    `Mux2`/`Inv` otherwise; registers become `Dff` cells on a shared
//!    clock.
//! 4. **Drive sizing** — each gate is up-sized until its library
//!    `max_load` covers the capacitance it actually drives.
//!
//! Constants that survive folding (e.g. a register fed a literal) surface
//! as the auto-created `const0`/`const1` primary inputs recorded in
//! [`SynthResult`]; testbenches tie them.

use crate::ir::{Design, NodeOp, Sig};
use openserdes_netlist::{NetId, Netlist, NetlistError};
use openserdes_pdk::library::Library;
use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
use openserdes_pdk::units::Farad;
use openserdes_pdk::wire::WireloadModel;
use std::collections::HashMap;

/// Folded-graph node (post constant-propagation, pre-mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FNode {
    Input(usize),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Mux { a: u32, b: u32, sel: u32 },
    RegQ(usize),
}

/// A folded signal: either a known constant or a folded-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FVal {
    Const(bool),
    Node(u32),
}

/// Result of synthesizing a [`Design`].
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The mapped gate-level netlist.
    pub netlist: Netlist,
    /// The shared clock net.
    pub clk: NetId,
    /// Primary-input nets, aligned with [`Design::input_names`].
    pub inputs: Vec<NetId>,
    /// Output `(name, net)` pairs, aligned with [`Design::outputs`].
    pub outputs: Vec<(String, NetId)>,
    /// Net for a constant-0 source, if the design needed one.
    pub const0: Option<NetId>,
    /// Net for a constant-1 source, if the design needed one.
    pub const1: Option<NetId>,
    /// Number of IR nodes eliminated by folding and hashing.
    pub nodes_eliminated: usize,
    /// Multicycle exceptions carried over from the design, as
    /// `(flop instance, factor)`.
    pub multicycle: Vec<(openserdes_netlist::CellId, u32)>,
}

struct Folder {
    fnodes: Vec<FNode>,
    hash: HashMap<FNode, u32>,
}

impl Folder {
    fn intern(&mut self, n: FNode) -> FVal {
        if let Some(&id) = self.hash.get(&n) {
            return FVal::Node(id);
        }
        let id = self.fnodes.len() as u32;
        self.fnodes.push(n);
        self.hash.insert(n, id);
        FVal::Node(id)
    }

    fn not(&mut self, a: FVal) -> FVal {
        match a {
            FVal::Const(v) => FVal::Const(!v),
            FVal::Node(n) => {
                // Double negation: Not(Not(x)) = x.
                if let FNode::Not(inner) = self.fnodes[n as usize] {
                    FVal::Node(inner)
                } else {
                    self.intern(FNode::Not(n))
                }
            }
        }
    }

    fn and(&mut self, a: FVal, b: FVal) -> FVal {
        match (a, b) {
            (FVal::Const(false), _) | (_, FVal::Const(false)) => FVal::Const(false),
            (FVal::Const(true), x) | (x, FVal::Const(true)) => x,
            (FVal::Node(x), FVal::Node(y)) => {
                if x == y {
                    return FVal::Node(x);
                }
                if self.complementary(x, y) {
                    return FVal::Const(false);
                }
                let (x, y) = (x.min(y), x.max(y));
                self.intern(FNode::And(x, y))
            }
        }
    }

    fn or(&mut self, a: FVal, b: FVal) -> FVal {
        match (a, b) {
            (FVal::Const(true), _) | (_, FVal::Const(true)) => FVal::Const(true),
            (FVal::Const(false), x) | (x, FVal::Const(false)) => x,
            (FVal::Node(x), FVal::Node(y)) => {
                if x == y {
                    return FVal::Node(x);
                }
                if self.complementary(x, y) {
                    return FVal::Const(true);
                }
                let (x, y) = (x.min(y), x.max(y));
                self.intern(FNode::Or(x, y))
            }
        }
    }

    fn xor(&mut self, a: FVal, b: FVal) -> FVal {
        match (a, b) {
            (FVal::Const(va), FVal::Const(vb)) => FVal::Const(va ^ vb),
            (FVal::Const(false), x) | (x, FVal::Const(false)) => x,
            (FVal::Const(true), x) | (x, FVal::Const(true)) => self.not(x),
            (FVal::Node(x), FVal::Node(y)) => {
                if x == y {
                    return FVal::Const(false);
                }
                if self.complementary(x, y) {
                    return FVal::Const(true);
                }
                let (x, y) = (x.min(y), x.max(y));
                self.intern(FNode::Xor(x, y))
            }
        }
    }

    fn mux(&mut self, a: FVal, b: FVal, sel: FVal) -> FVal {
        match sel {
            FVal::Const(false) => a,
            FVal::Const(true) => b,
            FVal::Node(s) => {
                if a == b {
                    return a;
                }
                match (a, b) {
                    // mux(0, b, s) = s & b ; mux(a, 1, s) = a | s, etc.
                    (FVal::Const(false), bb) => self.and(FVal::Node(s), bb),
                    (FVal::Const(true), bb) => {
                        let ns = self.not(FVal::Node(s));
                        self.or(ns, bb)
                    }
                    (aa, FVal::Const(false)) => {
                        let ns = self.not(FVal::Node(s));
                        self.and(ns, aa)
                    }
                    (aa, FVal::Const(true)) => self.or(FVal::Node(s), aa),
                    (FVal::Node(x), FVal::Node(y)) => {
                        self.intern(FNode::Mux { a: x, b: y, sel: s })
                    }
                }
            }
        }
    }

    fn complementary(&self, x: u32, y: u32) -> bool {
        matches!(self.fnodes[x as usize], FNode::Not(i) if i == y)
            || matches!(self.fnodes[y as usize], FNode::Not(i) if i == x)
    }
}

/// Synthesizes a design into a mapped netlist using `library` for cell
/// selection and drive sizing.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the produced netlist fails validation —
/// which would indicate a bug in synthesis, but is surfaced rather than
/// hidden.
///
/// # Panics
///
/// Panics if the design has unconnected registers.
pub fn synthesize(design: &Design, library: &Library) -> Result<SynthResult, NetlistError> {
    design.assert_complete();

    // ---- fold & hash ---------------------------------------------------
    let mut folder = Folder {
        fnodes: Vec::new(),
        hash: HashMap::new(),
    };
    let mut fold_of: Vec<FVal> = Vec::with_capacity(design.nodes().len());
    for op in design.nodes() {
        let v = match *op {
            NodeOp::Input(idx) => folder.intern(FNode::Input(idx)),
            NodeOp::Const(v) => FVal::Const(v),
            NodeOp::Not(a) => {
                let a = fold_of[a.index()];
                folder.not(a)
            }
            NodeOp::And(a, b) => {
                let (a, b) = (fold_of[a.index()], fold_of[b.index()]);
                folder.and(a, b)
            }
            NodeOp::Or(a, b) => {
                let (a, b) = (fold_of[a.index()], fold_of[b.index()]);
                folder.or(a, b)
            }
            NodeOp::Xor(a, b) => {
                let (a, b) = (fold_of[a.index()], fold_of[b.index()]);
                folder.xor(a, b)
            }
            NodeOp::Mux { a, b, sel } => {
                let (a, b, sel) = (fold_of[a.index()], fold_of[b.index()], fold_of[sel.index()]);
                folder.mux(a, b, sel)
            }
            NodeOp::RegQ(idx) => folder.intern(FNode::RegQ(idx)),
        };
        fold_of.push(v);
    }
    let fold = |s: Sig| fold_of[s.index()];

    // ---- reachability & use counts --------------------------------------
    let roots: Vec<FVal> = design
        .outputs()
        .iter()
        .map(|(_, s)| fold(*s))
        .chain((0..design.reg_count()).map(|i| fold(design.reg_d(i))))
        .collect();
    let n = folder.fnodes.len();
    let mut used = vec![false; n];
    let mut uses = vec![0u32; n];
    let mut stack: Vec<u32> = roots
        .iter()
        .filter_map(|v| match v {
            FVal::Node(i) => Some(*i),
            FVal::Const(_) => None,
        })
        .collect();
    for &r in &stack {
        uses[r as usize] += 1;
    }
    while let Some(i) = stack.pop() {
        if used[i as usize] {
            continue;
        }
        used[i as usize] = true;
        let visit = |j: u32, uses: &mut Vec<u32>, stack: &mut Vec<u32>| {
            uses[j as usize] += 1;
            stack.push(j);
        };
        match folder.fnodes[i as usize] {
            FNode::Input(_) | FNode::RegQ(_) => {}
            FNode::Not(a) => visit(a, &mut uses, &mut stack),
            FNode::And(a, b) | FNode::Or(a, b) | FNode::Xor(a, b) => {
                visit(a, &mut uses, &mut stack);
                visit(b, &mut uses, &mut stack);
            }
            FNode::Mux { a, b, sel } => {
                visit(a, &mut uses, &mut stack);
                visit(b, &mut uses, &mut stack);
                visit(sel, &mut uses, &mut stack);
            }
        }
    }

    // ---- emit netlist ----------------------------------------------------
    let mut nl = Netlist::new(design.name());
    let clk = nl.add_input("clk");
    let input_nets: Vec<NetId> = design
        .input_names()
        .iter()
        .map(|name| nl.add_input(name.clone()))
        .collect();
    // Register Q nets exist up front so feedback works.
    let reg_nets: Vec<NetId> = (0..design.reg_count())
        .map(|i| nl.add_net(format!("reg_q_{i}")))
        .collect();

    struct Emitter<'l> {
        nl: Netlist,
        lib_has_aoi: bool,
        memo: Vec<Option<NetId>>,
        const0: Option<NetId>,
        const1: Option<NetId>,
        input_nets: Vec<NetId>,
        reg_nets: Vec<NetId>,
        _lib: &'l Library,
    }

    impl Emitter<'_> {
        fn const_net(&mut self, v: bool) -> NetId {
            let slot = if v {
                &mut self.const1
            } else {
                &mut self.const0
            };
            if let Some(n) = *slot {
                return n;
            }
            let n = self.nl.add_input(if v { "const1" } else { "const0" });
            *slot = Some(n);
            n
        }

        fn emit_val(&mut self, folder: &Folder, uses: &[u32], v: FVal) -> NetId {
            match v {
                FVal::Const(c) => self.const_net(c),
                FVal::Node(i) => self.emit(folder, uses, i),
            }
        }

        fn emit(&mut self, folder: &Folder, uses: &[u32], i: u32) -> NetId {
            if let Some(n) = self.memo[i as usize] {
                return n;
            }
            let d = DriveStrength::X1;
            let net = match folder.fnodes[i as usize] {
                FNode::Input(idx) => self.input_nets[idx],
                FNode::RegQ(r) => self.reg_nets[r],
                FNode::Not(a) => {
                    // Inverter fusion when the inner node is single-use.
                    let single = uses[a as usize] == 1;
                    match folder.fnodes[a as usize] {
                        FNode::And(x, y) if single && self.lib_has_aoi => {
                            // OAI21 pattern: Not(And(Or(p,q), r)).
                            if let FNode::Or(p, q) = folder.fnodes[x as usize] {
                                if uses[x as usize] == 1 {
                                    let np = self.emit(folder, uses, p);
                                    let nq = self.emit(folder, uses, q);
                                    let ny = self.emit(folder, uses, y);
                                    let out = self.nl.gate(LogicFn::Oai21, d, &[np, nq, ny]);
                                    self.memo[i as usize] = Some(out);
                                    return out;
                                }
                            }
                            if let FNode::Or(p, q) = folder.fnodes[y as usize] {
                                if uses[y as usize] == 1 {
                                    let np = self.emit(folder, uses, p);
                                    let nq = self.emit(folder, uses, q);
                                    let nx = self.emit(folder, uses, x);
                                    let out = self.nl.gate(LogicFn::Oai21, d, &[np, nq, nx]);
                                    self.memo[i as usize] = Some(out);
                                    return out;
                                }
                            }
                            let nx = self.emit(folder, uses, x);
                            let ny = self.emit(folder, uses, y);
                            self.nl.gate(LogicFn::Nand2, d, &[nx, ny])
                        }
                        FNode::And(x, y) if single => {
                            let nx = self.emit(folder, uses, x);
                            let ny = self.emit(folder, uses, y);
                            self.nl.gate(LogicFn::Nand2, d, &[nx, ny])
                        }
                        FNode::Or(x, y) if single && self.lib_has_aoi => {
                            if let FNode::And(p, q) = folder.fnodes[x as usize] {
                                if uses[x as usize] == 1 {
                                    let np = self.emit(folder, uses, p);
                                    let nq = self.emit(folder, uses, q);
                                    let ny = self.emit(folder, uses, y);
                                    let out = self.nl.gate(LogicFn::Aoi21, d, &[np, nq, ny]);
                                    self.memo[i as usize] = Some(out);
                                    return out;
                                }
                            }
                            if let FNode::And(p, q) = folder.fnodes[y as usize] {
                                if uses[y as usize] == 1 {
                                    let np = self.emit(folder, uses, p);
                                    let nq = self.emit(folder, uses, q);
                                    let nx = self.emit(folder, uses, x);
                                    let out = self.nl.gate(LogicFn::Aoi21, d, &[np, nq, nx]);
                                    self.memo[i as usize] = Some(out);
                                    return out;
                                }
                            }
                            let nx = self.emit(folder, uses, x);
                            let ny = self.emit(folder, uses, y);
                            self.nl.gate(LogicFn::Nor2, d, &[nx, ny])
                        }
                        FNode::Or(x, y) if single => {
                            let nx = self.emit(folder, uses, x);
                            let ny = self.emit(folder, uses, y);
                            self.nl.gate(LogicFn::Nor2, d, &[nx, ny])
                        }
                        FNode::Xor(x, y) if single => {
                            let nx = self.emit(folder, uses, x);
                            let ny = self.emit(folder, uses, y);
                            self.nl.gate(LogicFn::Xnor2, d, &[nx, ny])
                        }
                        _ => {
                            let na = self.emit(folder, uses, a);
                            self.nl.gate(LogicFn::Inv, d, &[na])
                        }
                    }
                }
                FNode::And(a, b) => {
                    let na = self.emit(folder, uses, a);
                    let nb = self.emit(folder, uses, b);
                    self.nl.gate(LogicFn::And2, d, &[na, nb])
                }
                FNode::Or(a, b) => {
                    let na = self.emit(folder, uses, a);
                    let nb = self.emit(folder, uses, b);
                    self.nl.gate(LogicFn::Or2, d, &[na, nb])
                }
                FNode::Xor(a, b) => {
                    let na = self.emit(folder, uses, a);
                    let nb = self.emit(folder, uses, b);
                    self.nl.gate(LogicFn::Xor2, d, &[na, nb])
                }
                FNode::Mux { a, b, sel } => {
                    let na = self.emit(folder, uses, a);
                    let nb = self.emit(folder, uses, b);
                    let ns = self.emit(folder, uses, sel);
                    self.nl.gate(LogicFn::Mux2, d, &[na, nb, ns])
                }
            };
            self.memo[i as usize] = Some(net);
            net
        }
    }

    let mut em = Emitter {
        nl,
        lib_has_aoi: library.cell(LogicFn::Aoi21, DriveStrength::X1).is_ok(),
        memo: vec![None; n],
        const0: None,
        const1: None,
        input_nets: input_nets.clone(),
        reg_nets: reg_nets.clone(),
        _lib: library,
    };

    // Registers first (so Q nets get drivers), then outputs.
    let mut reg_cells = Vec::with_capacity(design.reg_count());
    for (r, &q_net) in reg_nets.iter().enumerate() {
        let d_net = em.emit_val(&folder, &uses, fold(design.reg_d(r)));
        reg_cells.push(em.nl.dff_into(d_net, clk, DriveStrength::X1, q_net));
    }
    let mut outputs = Vec::new();
    for (name, sig) in design.outputs() {
        let net = em.emit_val(&folder, &uses, fold(*sig));
        em.nl.mark_output(name.clone(), net);
        outputs.push((name.clone(), net));
    }

    let mut netlist = em.nl;
    let (const0, const1) = (em.const0, em.const1);

    // ---- high-fanout buffering & drive sizing ------------------------------
    buffer_high_fanout(&mut netlist, MAX_FANOUT);
    resize_drives(&mut netlist, library);

    netlist.check()?;
    let mapped_nodes = netlist.cell_count();
    let multicycle = design
        .multicycle()
        .iter()
        .map(|&(reg_idx, factor)| (reg_cells[reg_idx], factor))
        .collect();
    Ok(SynthResult {
        nodes_eliminated: design.nodes().len().saturating_sub(mapped_nodes),
        netlist,
        clk,
        inputs: input_nets,
        outputs,
        const0,
        const1,
        multicycle,
    })
}

/// Fanout cap enforced by [`buffer_high_fanout`] during synthesis.
pub const MAX_FANOUT: usize = 12;

/// Inserts buffer trees on nets whose fanout exceeds `max_fanout` (the
/// OpenLANE `hfns` step): sinks are regrouped behind `Buf` cells,
/// recursively, so no net drives more than `max_fanout` pins. Clock pins
/// are left alone — the CTS stage owns the clock network.
pub fn buffer_high_fanout(netlist: &mut Netlist, max_fanout: usize) {
    assert!(max_fanout >= 2, "fanout cap must be at least 2");
    loop {
        let fanout = netlist.fanout_table();
        // Find one offending net whose data fanout exceeds the cap.
        let mut offender: Option<(NetId, Vec<(openserdes_netlist::CellId, usize)>)> = None;
        for net in netlist.net_ids() {
            // Collect (sink cell, data-pin index) pairs; clock pins are
            // not rewired here.
            let mut sinks = Vec::new();
            for &cell in &fanout[net.index()] {
                for (pin, &input) in netlist.instance(cell).inputs.iter().enumerate() {
                    if input == net {
                        sinks.push((cell, pin));
                    }
                }
            }
            if sinks.len() > max_fanout {
                offender = Some((net, sinks));
                break;
            }
        }
        let Some((net, sinks)) = offender else { break };
        // Move every sink group behind a fresh buffer: the root's new
        // fanout is ceil(n / max_fanout), strictly smaller, so the loop
        // terminates; oversized buffer levels recurse naturally.
        for group in sinks.chunks(max_fanout) {
            let buffered = netlist.gate(LogicFn::Buf, DriveStrength::X4, &[net]);
            for &(cell, pin) in group {
                netlist.instance_mut(cell).inputs[pin] = buffered;
            }
        }
    }
}

/// Up-sizes every instance until its cell's `max_load` covers the load of
/// its output net (pin caps plus wireload). One pass is enough because
/// input pin caps are drive-capped in the library model.
pub fn resize_drives(netlist: &mut Netlist, library: &Library) {
    let wireload = WireloadModel::small_block();
    let fanout = netlist.fanout_table();
    let loads: Vec<Farad> = netlist
        .net_ids()
        .map(|net| {
            let sinks = &fanout[net.index()];
            let mut c = wireload.capacitance(sinks.len()).value();
            for &s in sinks {
                let inst = netlist.instance(s);
                let cell = library
                    .cell(inst.function, inst.drive)
                    .expect("library cell");
                c += cell.input_cap.value();
            }
            Farad::new(c)
        })
        .collect();
    let ids: Vec<_> = netlist.cell_ids().collect();
    for id in ids {
        let out = netlist.instance(id).output;
        let function = netlist.instance(id).function;
        let chosen = library.pick_drive(function, loads[out.index()]);
        netlist.instance_mut(id).drive = chosen.drive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Design;
    use openserdes_digital::{CycleSim, Logic};
    use openserdes_pdk::corner::Pvt;

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    /// Drives the mapped netlist and the IR interpreter with the same
    /// stimulus and compares every output for `cycles` clock cycles.
    fn check_equivalence(design: &Design, vectors: &[u64], input_bits: usize) {
        let library = lib();
        let res = synthesize(design, &library).expect("synthesizable");
        let mut gate = CycleSim::new(&res.netlist).expect("valid netlist");
        gate.reset_flops();
        if let Some(c0) = res.const0 {
            gate.set_bit(c0, false);
        }
        if let Some(c1) = res.const1 {
            gate.set_bit(c1, true);
        }
        let mut golden = crate::ir::IrSim::new(design);
        for &vec in vectors {
            for (i, &net) in res.inputs.iter().enumerate() {
                let bit = vec >> (i % input_bits.max(1)) & 1 == 1;
                gate.set_bit(net, bit);
            }
            for (i, name) in design.input_names().iter().enumerate() {
                let bit = vec >> (i % input_bits.max(1)) & 1 == 1;
                golden.set_by_name(name, bit);
            }
            gate.tick();
            golden.tick();
            for ((name, net), (gname, gsig)) in res.outputs.iter().zip(design.outputs()) {
                assert_eq!(name, gname);
                assert_eq!(
                    gate.value(*net),
                    Logic::from_bool(golden.get(*gsig)),
                    "output {name} diverged on vector {vec:#x}"
                );
            }
        }
    }

    #[test]
    fn counter_equivalent_after_mapping() {
        let mut d = Design::new("cnt4");
        let q = d.reg_bus(4);
        let en = d.input("en");
        let inc = d.incr(&q);
        let next = d.mux_bus(&q, &inc, en);
        d.connect_reg_bus(&q, &next);
        d.output_bus("q", &q);
        check_equivalence(&d, &[1, 1, 0, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1], 1);
    }

    #[test]
    fn comparator_equivalent() {
        let mut d = Design::new("cmp");
        let b = d.input_bus("b", 6);
        let hit = d.eq_const(&b, 0b101101);
        d.output("hit", hit);
        let vectors: Vec<u64> = (0..64).collect();
        check_equivalence(&d, &vectors, 6);
    }

    #[test]
    fn random_expressions_equivalent() {
        // A mixed expression with sharing, constants and all operators.
        let mut d = Design::new("expr");
        let a = d.input("a");
        let b = d.input("b");
        let c = d.input("c");
        let t1 = d.and(a, b);
        let t2 = d.or(t1, c);
        let t3 = d.not(t2); // candidate AOI21
        let t4 = d.xor(t1, c); // t1 shared: no fusion allowed
        let one = d.constant(true);
        let t5 = d.xor(t4, one); // = Xnor
        let t6 = d.mux(t3, t5, a);
        d.output("y", t6);
        let vectors: Vec<u64> = (0..8).chain(0..8).collect();
        check_equivalence(&d, &vectors, 3);
    }

    #[test]
    fn constants_fold_away() {
        let mut d = Design::new("fold");
        let a = d.input("a");
        let zero = d.constant(false);
        let one = d.constant(true);
        let t1 = d.and(a, one); // = a
        let t2 = d.or(t1, zero); // = a
        let t3 = d.xor(t2, zero); // = a
        let t4 = d.not(t3);
        let t5 = d.not(t4); // = a
        d.output("y", t5);
        let res = synthesize(&d, &lib()).expect("ok");
        // Output should be wired straight to the input: zero gates.
        assert_eq!(res.netlist.cell_count(), 0);
        assert!(res.const0.is_none() && res.const1.is_none());
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut d = Design::new("dup");
        let a = d.input("a");
        let b = d.input("b");
        let x1 = d.and(a, b);
        let x2 = d.and(a, b); // identical
        let x3 = d.and(b, a); // commuted — also identical after sorting
        let y1 = d.xor(x1, x2); // = 0
        let y2 = d.or(x1, x3); // = x1
        d.output("y1", y1);
        d.output("y2", y2);
        let res = synthesize(&d, &lib()).expect("ok");
        // y1 folded to const0, y2 is one AND gate.
        assert_eq!(res.netlist.cell_count(), 1);
        assert!(res.const0.is_some());
    }

    #[test]
    fn nand_fusion_happens() {
        let mut d = Design::new("nand");
        let a = d.input("a");
        let b = d.input("b");
        let t = d.and(a, b);
        let y = d.not(t);
        d.output("y", y);
        let res = synthesize(&d, &lib()).expect("ok");
        assert_eq!(res.netlist.cell_count(), 1);
        let (_, inst) = res.netlist.instances().next().unwrap();
        assert_eq!(inst.function, LogicFn::Nand2);
    }

    #[test]
    fn aoi_fusion_happens() {
        let mut d = Design::new("aoi");
        let a = d.input("a");
        let b = d.input("b");
        let c = d.input("c");
        let t1 = d.and(a, b);
        let t2 = d.or(t1, c);
        let y = d.not(t2);
        d.output("y", y);
        let res = synthesize(&d, &lib()).expect("ok");
        assert_eq!(res.netlist.cell_count(), 1);
        let (_, inst) = res.netlist.instances().next().unwrap();
        assert_eq!(inst.function, LogicFn::Aoi21);
    }

    #[test]
    fn shared_node_not_fused() {
        let mut d = Design::new("shared");
        let a = d.input("a");
        let b = d.input("b");
        let t = d.and(a, b);
        let y1 = d.not(t);
        d.output("y1", y1);
        d.output("t", t); // t has external fanout
        let res = synthesize(&d, &lib()).expect("ok");
        // Must keep And2 + Inv (no Nand fusion).
        assert_eq!(res.netlist.cell_count(), 2);
        let funcs: Vec<LogicFn> = res.netlist.instances().map(|(_, i)| i.function).collect();
        assert!(funcs.contains(&LogicFn::And2));
        assert!(funcs.contains(&LogicFn::Inv));
    }

    #[test]
    fn registers_become_dffs() {
        let mut d = Design::new("sr2");
        let din = d.input("din");
        let q0 = d.reg();
        let q1 = d.reg();
        d.connect_reg(q0, din);
        d.connect_reg(q1, q0);
        d.output("dout", q1);
        let res = synthesize(&d, &lib()).expect("ok");
        assert_eq!(res.netlist.flop_count(), 2);
    }

    #[test]
    fn heavy_fanout_gets_buffered_and_stays_correct() {
        let mut d = Design::new("fan");
        let a = d.input("a");
        let inv = d.not(a);
        // 40 consumers of the inverted signal.
        for i in 0..40 {
            let b = d.input(format!("b{i}"));
            let y = d.xor(inv, b);
            d.output(format!("y{i}"), y);
        }
        let res = synthesize(&d, &lib()).expect("ok");
        // The fanout cap holds on every net.
        assert!(
            res.netlist.max_fanout() <= crate::synth::MAX_FANOUT + 1,
            "max fanout = {}",
            res.netlist.max_fanout()
        );
        // Buffers were inserted.
        let bufs = res
            .netlist
            .instances()
            .filter(|(_, i)| i.function == LogicFn::Buf)
            .count();
        assert!(bufs >= 3, "expected a buffer tree, got {bufs} buffers");
        // And the function is preserved.
        check_equivalence(&d, &[0, 1, 2, 0x55, u64::MAX], 41);
    }

    #[test]
    fn buffering_leaves_small_nets_alone() {
        let mut d = Design::new("small");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.and(a, b);
        d.output("y", y);
        let res = synthesize(&d, &lib()).expect("ok");
        assert_eq!(res.netlist.cell_count(), 1, "no gratuitous buffers");
    }

    #[test]
    fn constant_register_input_uses_tie_net() {
        let mut d = Design::new("tie");
        let one = d.constant(true);
        let q = d.reg();
        d.connect_reg(q, one);
        d.output("q", q);
        let res = synthesize(&d, &lib()).expect("ok");
        assert!(res.const1.is_some());
        assert_eq!(res.netlist.flop_count(), 1);
    }
}
