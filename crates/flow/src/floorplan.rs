//! Floorplanning: die sizing and standard-cell row geometry.
//!
//! Mirrors the OpenLANE floorplan stage: given the synthesized cell area
//! and a target utilization, compute a die outline and a set of placement
//! rows at the standard-cell site height.

use openserdes_pdk::units::{AreaUm2, Micron};

/// Height of one placement row (the sky130_fd_sc_hd site height).
pub const ROW_HEIGHT_UM: f64 = 2.72;

/// A row-based floorplan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Core width.
    pub width: Micron,
    /// Core height.
    pub height: Micron,
    /// Number of placement rows.
    pub rows: usize,
    /// Target utilization the plan was sized for.
    pub utilization: f64,
}

impl Floorplan {
    /// Sizes a floorplan for `cell_area` at the given `utilization`
    /// (0 < u ≤ 1) and aspect ratio (width / height).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or `aspect <= 0`.
    pub fn for_area(cell_area: AreaUm2, utilization: f64, aspect: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        assert!(aspect > 0.0, "aspect ratio must be positive");
        let core = (cell_area.value() / utilization).max(ROW_HEIGHT_UM * ROW_HEIGHT_UM);
        let width = (core * aspect).sqrt();
        let height = core / width;
        let rows = (height / ROW_HEIGHT_UM).ceil().max(1.0) as usize;
        Self {
            width: Micron::new(width),
            height: Micron::new(rows as f64 * ROW_HEIGHT_UM),
            rows,
            utilization,
        }
    }

    /// Core area of the plan.
    pub fn area(&self) -> AreaUm2 {
        self.width * self.height
    }

    /// The y-coordinate of the centre of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows`.
    pub fn row_y(&self, i: usize) -> Micron {
        assert!(i < self.rows, "row index out of range");
        Micron::new((i as f64 + 0.5) * ROW_HEIGHT_UM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_covers_cells_with_margin() {
        let fp = Floorplan::for_area(AreaUm2::new(1000.0), 0.5, 1.0);
        assert!(fp.area().value() >= 2000.0 * 0.95);
        assert!(fp.rows >= 1);
    }

    #[test]
    fn aspect_ratio_respected() {
        let fp = Floorplan::for_area(AreaUm2::new(10_000.0), 0.7, 4.0);
        let ratio = fp.width.value() / fp.height.value();
        // Row quantization perturbs it slightly.
        assert!((2.5..6.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn rows_are_inside_core() {
        let fp = Floorplan::for_area(AreaUm2::new(5000.0), 0.6, 1.0);
        for i in 0..fp.rows {
            assert!(fp.row_y(i).value() < fp.height.value());
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_validated() {
        let _ = Floorplan::for_area(AreaUm2::new(100.0), 1.5, 1.0);
    }

    #[test]
    fn tiny_designs_get_minimum_die() {
        let fp = Floorplan::for_area(AreaUm2::new(1.0), 1.0, 1.0);
        assert!(fp.rows >= 1);
        assert!(fp.width.value() > 0.0);
    }
}
