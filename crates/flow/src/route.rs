//! Global routing estimate: per-net wirelength, layer assignment and RC.
//!
//! OpenLANE's FastRoute/TritonRoute produce exact geometry; for timing and
//! power what matters is each net's length and layer, which a classic
//! global-route estimate captures: HPWL of the placed pins times a detour
//! factor, with longer nets promoted to higher (faster) metals. A simple
//! row-based congestion metric flags over-utilized placements.

use crate::place::Placement;
use openserdes_netlist::{NetId, Netlist};
use openserdes_pdk::units::{Farad, Micron, Ohm};
use openserdes_pdk::wire::MetalLayer;

/// Detour factor over HPWL (routed nets are never straight lines).
const DETOUR: f64 = 1.15;

/// One routed net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedNet {
    /// The net.
    pub net: NetId,
    /// Estimated routed length.
    pub length: Micron,
    /// Assigned metal layer.
    pub layer: MetalLayer,
}

impl RoutedNet {
    /// Wire resistance of the routed net.
    pub fn resistance(&self) -> Ohm {
        self.layer.r_per_um() * self.length.value()
    }

    /// Wire capacitance of the routed net.
    pub fn capacitance(&self) -> Farad {
        self.layer.c_per_um() * self.length.value()
    }
}

/// Result of the global-routing estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    nets: Vec<RoutedNet>,
    /// Total routed wirelength.
    pub total_length: Micron,
    /// Routing demand / supply on the busiest row band (> 1.0 means
    /// likely congestion).
    pub peak_congestion: f64,
}

impl RouteResult {
    /// The routed entry for `net`.
    pub fn net(&self, net: NetId) -> &RoutedNet {
        &self.nets[net.index()]
    }

    /// Iterates over all routed nets.
    pub fn iter(&self) -> impl Iterator<Item = &RoutedNet> {
        self.nets.iter()
    }
}

fn assign_layer(length_um: f64) -> MetalLayer {
    match length_um {
        l if l < 25.0 => MetalLayer::M1,
        l if l < 100.0 => MetalLayer::M2,
        l if l < 400.0 => MetalLayer::M3,
        l if l < 1500.0 => MetalLayer::M4,
        _ => MetalLayer::M5,
    }
}

/// Estimates routing for every net of a placed netlist.
pub fn global_route(netlist: &Netlist, placement: &Placement) -> RouteResult {
    let fanout = netlist.fanout_table();
    let drivers = netlist.driver_table();
    let mut nets = Vec::with_capacity(netlist.net_count());
    let mut total = 0.0;
    // Congestion: demand per horizontal band = sum of net spans crossing it.
    let bands = placement.floorplan.rows.max(1);
    let band_h = placement.floorplan.height.value() / bands as f64;
    let mut demand = vec![0.0f64; bands];

    for net in netlist.net_ids() {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut pins = 0usize;
        let mut add = |x: f64, y: f64, pins: &mut usize| {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            *pins += 1;
        };
        if let Some(d) = drivers[net.index()] {
            let (x, y) = placement.position(d);
            add(x, y, &mut pins);
        }
        for (n, (x, y)) in placement.io_pins() {
            if n == net {
                add(x, y, &mut pins);
            }
        }
        for &s in &fanout[net.index()] {
            let (x, y) = placement.position(s);
            add(x, y, &mut pins);
        }
        let hp = if pins < 2 {
            0.0
        } else {
            (max_x - min_x) + (max_y - min_y)
        };
        // Multi-pin nets need extra Steiner length: scale by pin count.
        let steiner = if pins > 3 {
            1.0 + 0.15 * (pins as f64 - 3.0).sqrt()
        } else {
            1.0
        };
        let length = hp * DETOUR * steiner;
        total += length;
        if pins >= 2 && band_h > 0.0 {
            let lo = ((min_y / band_h).floor().max(0.0) as usize).min(bands - 1);
            let hi = ((max_y / band_h).floor().max(0.0) as usize).min(bands - 1);
            let width = (max_x - min_x).max(1.0);
            for d in demand.iter_mut().take(hi + 1).skip(lo) {
                *d += width;
            }
        }
        nets.push(RoutedNet {
            net,
            length: Micron::new(length),
            layer: assign_layer(length),
        });
    }

    // Supply per band: the die width times an assumed 0.46 µm track pitch
    // with ~10 horizontal tracks available per row band across layers.
    let supply = placement.floorplan.width.value() * 10.0;
    let peak = demand.iter().fold(0.0f64, |m, &d| {
        m.max(if supply > 0.0 { d / supply } else { 0.0 })
    });

    RouteResult {
        nets,
        total_length: Micron::new(total),
        peak_congestion: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::place::place_greedy;
    use openserdes_netlist::NetlistStats;
    use openserdes_pdk::corner::Pvt;
    use openserdes_pdk::library::Library;
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};

    fn routed(n: usize) -> (Netlist, RouteResult) {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let mut s = a;
        for _ in 0..n {
            s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
        }
        nl.mark_output("y", s);
        let lib = Library::sky130(Pvt::nominal());
        let stats = NetlistStats::compute(&nl, &lib);
        let fp = Floorplan::for_area(stats.area, 0.6, 1.0);
        let p = place_greedy(&nl, &lib, &fp);
        let r = global_route(&nl, &p);
        (nl, r)
    }

    #[test]
    fn every_net_routed() {
        let (nl, r) = routed(20);
        assert_eq!(r.iter().count(), nl.net_count());
        assert!(r.total_length.value() > 0.0);
    }

    #[test]
    fn short_nets_on_lower_layers() {
        assert_eq!(assign_layer(5.0), MetalLayer::M1);
        assert_eq!(assign_layer(50.0), MetalLayer::M2);
        assert_eq!(assign_layer(200.0), MetalLayer::M3);
        assert_eq!(assign_layer(1000.0), MetalLayer::M4);
        assert_eq!(assign_layer(5000.0), MetalLayer::M5);
    }

    #[test]
    fn rc_positive_for_connected_nets() {
        let (nl, r) = routed(10);
        for net in nl.net_ids() {
            let rn = r.net(net);
            if rn.length.value() > 0.0 {
                assert!(rn.resistance().value() > 0.0);
                assert!(rn.capacitance().ff() > 0.0);
            }
        }
    }

    #[test]
    fn congestion_finite_and_nonnegative() {
        let (_, r) = routed(100);
        assert!(r.peak_congestion.is_finite());
        assert!(r.peak_congestion >= 0.0);
    }

    #[test]
    fn total_is_sum_of_nets() {
        let (_, r) = routed(15);
        let sum: f64 = r.iter().map(|n| n.length.value()).sum();
        assert!((sum - r.total_length.value()).abs() < 1e-9);
    }
}
