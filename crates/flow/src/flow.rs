//! The end-to-end RTL→layout flow driver, mirroring OpenLANE's stages
//! (the paper's Fig. 12): synthesis → floorplan → placement → CTS →
//! routing → STA → power signoff.
//!
//! [`Flow::run`] takes a [`Design`] and produces a [`FlowResult`]
//! carrying every intermediate artifact plus a stage log, so callers
//! can reproduce the paper's area/power breakdowns (Figs. 10–11) block
//! by block. The free function [`run_flow`] is the deprecated
//! pre-builder spelling of the same engine.

use crate::error::FlowError;
use crate::floorplan::Floorplan;
use crate::ir::Design;
use crate::place::{anneal, place_greedy, AnnealStats, Placement};
use crate::power::{analyze_power, PowerConfig, PowerReport};
use crate::route::{global_route, RouteResult};
use crate::sta::{Sta, StaConfig, StaReport};
use crate::synth::{synthesize, SynthResult};
use openserdes_lint::LintConfig;
use openserdes_netlist::NetlistStats;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::library::Library;
use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
use openserdes_pdk::units::{AreaUm2, Hertz, Watt};
use openserdes_telemetry as telemetry;
use std::fmt;

/// Flow configuration knobs (the `config.tcl` of our OpenLANE stand-in).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// PVT point to characterize the library at.
    pub pvt: Pvt,
    /// Target clock frequency.
    pub clock: Hertz,
    /// Placement utilization target.
    pub utilization: f64,
    /// Die aspect ratio (width/height).
    pub aspect: f64,
    /// Annealing RNG seed (flows are reproducible per seed).
    pub seed: u64,
    /// Annealing move budget.
    pub anneal_iterations: usize,
    /// Default data-net toggle rate for power analysis.
    pub activity: f64,
    /// Per-rule overrides for the lint gates (rules `IR0xx` before
    /// synthesis, `NL0xx` after, `TM0xx` at timing signoff).
    /// Error-level findings abort the flow.
    pub lint: LintConfig,
}

impl FlowConfig {
    /// A typical configuration at the given clock.
    pub fn at_clock(clock: Hertz) -> Self {
        Self {
            pvt: Pvt::nominal(),
            clock,
            utilization: 0.6,
            aspect: 1.0,
            seed: 42,
            anneal_iterations: 20_000,
            activity: 0.2,
            lint: LintConfig::default(),
        }
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::at_clock(Hertz::from_ghz(1.0))
    }
}

/// Clock-tree synthesis summary (fanout-4 buffer tree estimate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsReport {
    /// Number of inserted clock buffers.
    pub buffers: usize,
    /// Tree depth.
    pub levels: usize,
    /// Area added by the buffers.
    pub added_area: AreaUm2,
    /// Power burned by the buffer tree.
    pub power: Watt,
}

/// Everything the flow produced.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Synthesis output (mapped netlist + port maps).
    pub synth: SynthResult,
    /// Netlist statistics at the library.
    pub stats: NetlistStats,
    /// The floorplan.
    pub floorplan: Floorplan,
    /// Final placement.
    pub placement: Placement,
    /// Annealing statistics.
    pub anneal: AnnealStats,
    /// Clock-tree estimate.
    pub cts: CtsReport,
    /// Global-routing estimate.
    pub route: RouteResult,
    /// Timing signoff.
    pub timing: StaReport,
    /// Power signoff.
    pub power: PowerReport,
    /// Per-stage log lines.
    pub log: Vec<String>,
}

impl FlowResult {
    /// Total block area: placed cells plus clock buffers.
    pub fn area(&self) -> AreaUm2 {
        AreaUm2::new(self.stats.area.value() + self.cts.added_area.value())
    }

    /// Total block power including the clock tree estimate.
    pub fn total_power(&self) -> Watt {
        self.power.total() + self.cts.power
    }
}

impl fmt::Display for FlowResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.log {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// Timing-driven sizing: iteratively up-drives the cells on the current
/// critical path, keeping the best solution seen (a greedy resizer in
/// the spirit of OpenLANE's `resizer timing` step). Returns the number
/// of drive bumps retained.
pub fn optimize_timing(
    netlist: &mut openserdes_netlist::Netlist,
    library: &Library,
    config: &StaConfig,
) -> usize {
    let bump = |d: DriveStrength| match d {
        DriveStrength::X1 => Some(DriveStrength::X2),
        DriveStrength::X2 => Some(DriveStrength::X4),
        DriveStrength::X4 => Some(DriveStrength::X8),
        DriveStrength::X8 => Some(DriveStrength::X16),
        DriveStrength::X16 => None,
    };
    let drives = |nl: &openserdes_netlist::Netlist| -> Vec<DriveStrength> {
        nl.instances().map(|(_, i)| i.drive).collect()
    };
    let sta = Sta::new().with_config(config.clone());
    let Ok(initial) = sta.run(netlist, library, None) else {
        return 0;
    };
    if initial.clean() {
        return 0;
    }
    let mut best_wns = initial.wns;
    let mut best = drives(netlist);
    let mut report = initial;
    for _ in 0..60 {
        let mut changed = false;
        for &id in &report.critical_path {
            if let Some(d) = bump(netlist.instance(id).drive) {
                netlist.instance_mut(id).drive = d;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let Ok(next) = sta.run(netlist, library, None) else {
            break;
        };
        if next.wns > best_wns {
            best_wns = next.wns;
            best = drives(netlist);
        }
        if next.clean() {
            break;
        }
        report = next;
    }
    // Restore the best solution seen and count retained bumps.
    let mut bumps = 0usize;
    let ids: Vec<_> = netlist.cell_ids().collect();
    for (i, id) in ids.into_iter().enumerate() {
        if netlist.instance(id).drive != best[i] {
            netlist.instance_mut(id).drive = best[i];
        }
        if best[i] != DriveStrength::X1 {
            bumps += 1;
        }
    }
    bumps
}

fn cts_estimate(flops: usize, library: &Library, clock: Hertz) -> CtsReport {
    if flops == 0 {
        return CtsReport {
            buffers: 0,
            levels: 0,
            added_area: AreaUm2::new(0.0),
            power: Watt::new(0.0),
        };
    }
    // Fanout-4 buffer tree bottom-up.
    let mut level_count = flops;
    let mut buffers = 0usize;
    let mut levels = 0usize;
    while level_count > 1 {
        level_count = level_count.div_ceil(4);
        buffers += level_count;
        levels += 1;
    }
    let clkbuf = library
        .cell(LogicFn::ClkBuf, DriveStrength::X4)
        .expect("library has clock buffers");
    let vdd = library.vdd().value();
    // Each buffer drives ~4 sinks of ~1.5 fF plus ~10 µm of wire.
    let c_per_buf = 4.0 * 1.5e-15 + 10.0 * 0.19e-15;
    let p = buffers as f64
        * (c_per_buf * vdd * vdd * clock.value() + clkbuf.internal_energy_j * 2.0 * clock.value());
    CtsReport {
        buffers,
        levels,
        added_area: AreaUm2::new(buffers as f64 * clkbuf.area.value()),
        power: Watt::new(p),
    }
}

/// The RTL→layout flow as a configured object: the canonical
/// entry point behind both the deprecated [`run_flow`] free function
/// and `Session::run_flow`.
///
/// Built with the same consuming-builder idiom as
/// [`openserdes_lint::LintConfig`]:
///
/// ```
/// use openserdes_flow::{Flow, FlowConfig};
/// use openserdes_pdk::units::Hertz;
///
/// let flow = Flow::new().with_config(FlowConfig::at_clock(Hertz::from_mhz(500.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flow {
    config: FlowConfig,
}

impl Flow {
    /// A flow at the default configuration (1 GHz clock, nominal PVT).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn with_config(mut self, config: FlowConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the target clock frequency.
    #[must_use]
    pub fn with_clock(mut self, clock: Hertz) -> Self {
        self.config.clock = clock;
        self
    }

    /// Sets the PVT corner the library is characterized at.
    #[must_use]
    pub fn with_corner(mut self, pvt: Pvt) -> Self {
        self.config.pvt = pvt;
        self
    }

    /// Sets the lint-gate rule overrides.
    #[must_use]
    pub fn with_lint(mut self, lint: openserdes_lint::LintConfig) -> Self {
        self.config.lint = lint;
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the complete flow on a design.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Lint`] if the design-lint gate finds
    /// Error-level diagnostics (on the RTL IR before synthesis, or on
    /// the mapped netlist after), and [`FlowError::Netlist`] if
    /// synthesis or STA produce an invalid netlist (which indicates an
    /// IR bug and is surfaced rather than masked).
    pub fn run(&self, design: &Design) -> Result<FlowResult, FlowError> {
        run_flow_impl(design, &self.config)
    }
}

/// Runs the complete flow on a design.
///
/// # Errors
///
/// Returns [`FlowError::Lint`] if the design-lint gate finds
/// Error-level diagnostics (on the RTL IR before synthesis, or on the
/// mapped netlist after), and [`FlowError::Netlist`] if synthesis or
/// STA produce an invalid netlist (which indicates an IR bug and is
/// surfaced rather than masked).
#[deprecated(note = "use `Flow::new().with_config(..).run(..)` or `Session::run_flow`")]
pub fn run_flow(design: &Design, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    run_flow_impl(design, config)
}

fn run_flow_impl(design: &Design, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    let _span = telemetry::span("flow.run");
    let mut log = Vec::new();
    let library = Library::sky130(config.pvt);
    log.push(format!(
        "[flow] design `{}` @ {} / clock {:.3} GHz",
        design.name(),
        config.pvt,
        config.clock.ghz()
    ));

    // Stage 0: the IR half of the lint gate (yosys' `check` stand-in) —
    // broken RTL is rejected before any stage spends time on it.
    let lint_span = telemetry::span("flow.lint");
    let ir_lint = design.lint(&config.lint);
    telemetry::counter("flow.lint_findings", ir_lint.findings().len() as u64);
    drop(lint_span);
    log.push(format!(
        "[lint] ir: {} error(s), {} warning(s), {} info(s)",
        ir_lint.count(openserdes_lint::Severity::Error),
        ir_lint.count(openserdes_lint::Severity::Warn),
        ir_lint.count(openserdes_lint::Severity::Info)
    ));
    if ir_lint.has_errors() {
        return Err(FlowError::Lint(ir_lint));
    }

    // Stage 1: synthesis (yosys + ABC stand-in) plus timing-driven
    // sizing (the resizer step of OpenLANE's optimization).
    let synth_span = telemetry::span("flow.synthesis");
    let mut synth = synthesize(design, &library)?;
    let mut sta_cfg = StaConfig::at_clock(config.clock);
    sta_cfg.multicycle = synth.multicycle.clone();
    let bumps = optimize_timing(&mut synth.netlist, &library, &sta_cfg);
    let stats = NetlistStats::compute(&synth.netlist, &library);
    telemetry::counter("flow.cells", stats.cell_count as u64);
    telemetry::counter("flow.flops", stats.flop_count as u64);
    drop(synth_span);
    log.push(format!(
        "[synthesis] {} cells ({} flops), {} IR nodes eliminated, {} upsized cells, area {:.1} µm²",
        stats.cell_count,
        stats.flop_count,
        synth.nodes_eliminated,
        bumps,
        stats.area.value()
    ));

    // Lint gate, netlist half: full gate-level ERC (including the
    // drive/fanout audit against the characterized library) on the
    // mapped netlist before committing to physical design.
    let lint_span = telemetry::span("flow.lint");
    let nl_lint = synth.netlist.lint_with_library(&library, &config.lint);
    telemetry::counter("flow.lint_findings", nl_lint.findings().len() as u64);
    drop(lint_span);
    log.push(format!(
        "[lint] netlist: {} error(s), {} warning(s), {} info(s)",
        nl_lint.count(openserdes_lint::Severity::Error),
        nl_lint.count(openserdes_lint::Severity::Warn),
        nl_lint.count(openserdes_lint::Severity::Info)
    ));
    if nl_lint.has_errors() {
        return Err(FlowError::Lint(nl_lint));
    }

    // Stage 2: floorplan (init_fp stand-in).
    let fp_span = telemetry::span("flow.floorplan");
    let floorplan = Floorplan::for_area(stats.area, config.utilization, config.aspect);
    drop(fp_span);
    log.push(format!(
        "[floorplan] die {:.1} × {:.1} µm, {} rows, utilization {:.0}%",
        floorplan.width.value(),
        floorplan.height.value(),
        floorplan.rows,
        config.utilization * 100.0
    ));

    // Stage 3: placement (RePlAce/OpenDP stand-in).
    let place_span = telemetry::span("flow.place");
    let mut placement = place_greedy(&synth.netlist, &library, &floorplan);
    let anneal_stats = anneal(
        &synth.netlist,
        &mut placement,
        config.seed,
        config.anneal_iterations,
    );
    telemetry::counter("flow.anneal_moves", anneal_stats.attempted as u64);
    drop(place_span);
    log.push(format!(
        "[placement] HPWL {:.1} → {:.1} µm ({} / {} moves accepted)",
        anneal_stats.initial_hpwl,
        anneal_stats.final_hpwl,
        anneal_stats.accepted,
        anneal_stats.attempted
    ));

    // Stage 4: clock-tree synthesis (TritonCTS stand-in).
    let cts_span = telemetry::span("flow.cts");
    let cts = cts_estimate(stats.flop_count, &library, config.clock);
    telemetry::counter("flow.clock_buffers", cts.buffers as u64);
    drop(cts_span);
    log.push(format!(
        "[cts] {} buffers in {} levels, +{:.1} µm², +{:.3} mW",
        cts.buffers,
        cts.levels,
        cts.added_area.value(),
        cts.power.mw()
    ));

    // Stage 5: global routing (FastRoute stand-in).
    let route_span = telemetry::span("flow.route");
    let route = global_route(&synth.netlist, &placement);
    telemetry::counter("flow.routed_nets", route.iter().count() as u64);
    drop(route_span);
    log.push(format!(
        "[routing] total wirelength {:.1} µm, peak congestion {:.2}",
        route.total_length.value(),
        route.peak_congestion
    ));

    // Stage 6: STA (OpenSTA stand-in), honouring multicycle exceptions.
    let sta_span = telemetry::span("flow.sta");
    let timing = Sta::new()
        .with_config(sta_cfg)
        .run(&synth.netlist, &library, Some(&route))?;
    telemetry::counter("flow.timing_violations", timing.violations as u64);
    drop(sta_span);
    log.push(format!(
        "[sta] wns {:.1} ps, tns {:.1} ps, {} violations, fmax {:.3} GHz",
        timing.wns.ps(),
        timing.tns.ps(),
        timing.violations,
        timing.fmax.ghz()
    ));

    // Lint gate, timing half: the STA's TM findings pass through the
    // same severity machinery as the IR and netlist gates.
    let tm_lint = timing.to_lint(&config.lint);
    telemetry::counter("flow.lint_findings", tm_lint.findings().len() as u64);
    log.push(format!(
        "[lint] timing: {} error(s), {} warning(s), {} info(s)",
        tm_lint.count(openserdes_lint::Severity::Error),
        tm_lint.count(openserdes_lint::Severity::Warn),
        tm_lint.count(openserdes_lint::Severity::Info)
    ));
    if tm_lint.has_errors() {
        return Err(FlowError::Lint(tm_lint));
    }

    // Stage 7: power signoff.
    let power_span = telemetry::span("flow.power");
    let mut pcfg = PowerConfig::at_clock(config.clock);
    pcfg.activity = config.activity;
    let power = analyze_power(&synth.netlist, &library, Some(&route), &pcfg);
    drop(power_span);
    log.push(format!(
        "[power] total {:.3} mW (switching {:.3}, internal {:.3}, clock {:.3}, leakage {:.4})",
        power.total().mw() + cts.power.mw(),
        power.switching.mw(),
        power.internal.mw(),
        power.clock_tree.mw() + cts.power.mw(),
        power.leakage.mw()
    ));
    log.push("[signoff] flow complete".to_string());

    Ok(FlowResult {
        synth,
        stats,
        floorplan,
        placement,
        anneal: anneal_stats,
        cts,
        route,
        timing,
        power,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Design;

    /// An 8-bit counter with enable: a small but complete design.
    fn counter8() -> Design {
        let mut d = Design::new("counter8");
        let en = d.input("en");
        let q = d.reg_bus(8);
        let inc = d.incr(&q);
        let next = d.mux_bus(&q, &inc, en);
        d.connect_reg_bus(&q, &next);
        d.output_bus("q", &q);
        d
    }

    #[test]
    fn flow_runs_end_to_end() {
        let r = Flow::new().run(&counter8()).expect("flow ok");
        assert!(r.stats.cell_count > 8);
        assert_eq!(r.stats.flop_count, 8);
        assert!(r.area().value() > 0.0);
        assert!(r.total_power().mw() > 0.0);
        assert!(r.timing.fmax.ghz() > 0.1);
        assert_eq!(r.log.len(), 12);
    }

    /// A single X1 AND gate whose output enables every bit of a wide
    /// register: a seeded under-driven high-fanout net.
    fn wide_enable(bits: usize) -> Design {
        let mut d = Design::new("wide_enable");
        let a = d.input("a");
        let b = d.input("b");
        let gate = d.and(a, b);
        let q = d.reg_bus(bits);
        let inv: Vec<_> = q.iter().map(|&s| d.not(s)).collect();
        let next = d.mux_bus(&q, &inv, gate);
        d.connect_reg_bus(&q, &next);
        d.output_bus("q", &q);
        d
    }

    #[test]
    fn timing_gate_blocks_seeded_drive_bug() {
        use openserdes_lint::{LintLevel, Rule};
        let d = wide_enable(150);
        // Deny-warnings style signoff: promote the max-cap audit to
        // Error (and silence the netlist-gate NL007 twin so the block
        // is attributable to the timing gate).
        let mut cfg = FlowConfig::at_clock(Hertz::from_mhz(100.0));
        cfg.lint = cfg
            .lint
            .allow(Rule::DriveOverload)
            .set_level(Rule::MaxCapViolation, LintLevel::Error);
        match Flow::new().with_config(cfg).run(&d) {
            Err(FlowError::Lint(report)) => {
                assert_eq!(report.domain(), "timing");
                assert!(report.has_errors());
                assert!(report
                    .findings()
                    .iter()
                    .any(|f| f.rule == Rule::MaxCapViolation));
            }
            other => panic!("expected timing-gate rejection, got {other:?}"),
        }
        // At default (Warn) severity the same design flows to signoff.
        let mut relaxed = FlowConfig::at_clock(Hertz::from_mhz(100.0));
        relaxed.lint = relaxed.lint.allow(Rule::DriveOverload);
        let r = Flow::new()
            .with_config(relaxed)
            .run(&d)
            .expect("warn-level TM findings do not gate");
        assert!(r.log.iter().any(|l| l.contains("[lint] timing:")));
    }

    #[test]
    fn lint_gate_rejects_broken_ir() {
        let mut d = Design::new("broken");
        let q = d.reg(); // never connected: IR001, an Error
        d.output("q", q);
        match Flow::new().run(&d) {
            Err(FlowError::Lint(report)) => {
                assert!(report.has_errors());
                assert_eq!(report.domain(), "ir");
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn lint_gate_can_be_relaxed() {
        use openserdes_lint::Rule;
        // A design with a warning-level finding still flows; allowing
        // the rule drops it from the log counts entirely.
        let mut d = counter8();
        let q0 = d.outputs()[0].1;
        d.set_multicycle(q0, 2);
        d.set_multicycle(q0, 2); // IR006, Warn
        let r = Flow::new().run(&d).expect("warnings do not gate");
        assert!(r
            .log
            .iter()
            .any(|l| l.contains("[lint] ir: 0 error(s), 1 warning(s)")));
        let mut cfg = FlowConfig::default();
        cfg.lint = cfg.lint.allow(Rule::DuplicateMulticycle);
        let r = Flow::new().with_config(cfg).run(&d).expect("allowed");
        assert!(r
            .log
            .iter()
            .any(|l| l.contains("[lint] ir: 0 error(s), 0 warning(s)")));
    }

    #[test]
    fn counter_closes_timing_at_modest_clock() {
        let cfg = FlowConfig::at_clock(Hertz::from_mhz(250.0));
        let r = Flow::new()
            .with_config(cfg)
            .run(&counter8())
            .expect("flow ok");
        assert!(r.timing.clean(), "wns = {} ps", r.timing.wns.ps());
    }

    #[test]
    fn flow_is_deterministic() {
        let cfg = FlowConfig::default();
        let a = Flow::new()
            .with_config(cfg.clone())
            .run(&counter8())
            .expect("ok");
        let b = Flow::new().with_config(cfg).run(&counter8()).expect("ok");
        assert_eq!(a.stats.cell_count, b.stats.cell_count);
        assert_eq!(a.anneal.final_hpwl.to_bits(), b.anneal.final_hpwl.to_bits());
        assert_eq!(
            a.power.total().value().to_bits(),
            b.power.total().value().to_bits()
        );
    }

    #[test]
    fn cts_scales_with_flops() {
        let lib = Library::sky130(Pvt::nominal());
        let small = cts_estimate(8, &lib, Hertz::from_ghz(1.0));
        let big = cts_estimate(512, &lib, Hertz::from_ghz(1.0));
        assert!(big.buffers > small.buffers);
        assert!(big.levels > small.levels);
        assert!(big.power.value() > small.power.value());
        let none = cts_estimate(0, &lib, Hertz::from_ghz(1.0));
        assert_eq!(none.buffers, 0);
    }

    #[test]
    fn display_prints_stage_log() {
        let r = Flow::new().run(&counter8()).expect("ok");
        let s = r.to_string();
        for stage in [
            "[flow]",
            "[lint]",
            "[synthesis]",
            "[floorplan]",
            "[placement]",
            "[cts]",
            "[routing]",
            "[sta]",
            "[power]",
            "[signoff]",
        ] {
            assert!(s.contains(stage), "missing {stage}");
        }
    }
}
