//! DEF-style layout export — the flow's equivalent of the paper's GDS
//! hand-off (the final "Export" step of OpenLANE's Fig. 12).
//!
//! [`to_def`] serializes a placed netlist in the (simplified) DEF syntax
//! physical tools exchange: die area, placement rows, placed components,
//! I/O pins and net connectivity. Coordinates are in DEF database units
//! (1000 per µm).

use crate::floorplan::{Floorplan, ROW_HEIGHT_UM};
use crate::place::Placement;
use openserdes_netlist::Netlist;
use openserdes_pdk::library::Library;
use std::fmt::Write as _;

/// Database units per µm, the usual DEF convention.
const DBU: f64 = 1000.0;

fn dbu(um: f64) -> i64 {
    (um * DBU).round() as i64
}

/// Serializes a placed design as a DEF document.
///
/// The output is structurally valid DEF 5.8: `DIEAREA`, `ROW`,
/// `COMPONENTS` (with `PLACED` coordinates), `PINS` and `NETS` sections.
pub fn to_def(
    netlist: &Netlist,
    library: &Library,
    placement: &Placement,
    floorplan: &Floorplan,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", netlist.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {} ;", DBU as i64);
    let _ = writeln!(
        out,
        "DIEAREA ( 0 0 ) ( {} {} ) ;",
        dbu(floorplan.width.value()),
        dbu(floorplan.height.value())
    );
    for r in 0..floorplan.rows {
        let _ = writeln!(
            out,
            "ROW row_{r} unithd 0 {} N DO {} BY 1 STEP 460 0 ;",
            dbu(r as f64 * ROW_HEIGHT_UM),
            (floorplan.width.value() / 0.46).floor() as i64
        );
    }

    let _ = writeln!(out, "COMPONENTS {} ;", netlist.cell_count());
    for (id, inst) in netlist.instances() {
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        let (x, y) = placement.position(id);
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {} {} ) N ;",
            inst.name,
            cell.name,
            dbu(x),
            dbu(y)
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    let pins = netlist.primary_inputs().len() + netlist.primary_outputs().len();
    let _ = writeln!(out, "PINS {pins} ;");
    for (net, (x, y)) in placement.io_pins() {
        let dir = if netlist.is_primary_input(net) {
            "INPUT"
        } else {
            "OUTPUT"
        };
        let _ = writeln!(
            out,
            "- {} + NET {} + DIRECTION {} + PLACED ( {} {} ) N ;",
            netlist.net_name(net),
            netlist.net_name(net),
            dir,
            dbu(x),
            dbu(y)
        );
    }
    let _ = writeln!(out, "END PINS");

    let _ = writeln!(out, "NETS {} ;", netlist.net_count());
    let fanout = netlist.fanout_table();
    let drivers = netlist.driver_table();
    for net in netlist.net_ids() {
        let _ = write!(out, "- {}", netlist.net_name(net));
        if let Some(d) = drivers[net.index()] {
            let _ = write!(out, " ( {} Y )", netlist.instance(d).name);
        }
        for &s in &fanout[net.index()] {
            let inst = netlist.instance(s);
            let pin = if inst.clock == Some(net) {
                "CLK".to_string()
            } else {
                let idx = inst
                    .inputs
                    .iter()
                    .position(|&n| n == net)
                    .expect("sink uses net");
                format!("A{idx}")
            };
            let _ = write!(out, " ( {} {} )", inst.name, pin);
        }
        let _ = writeln!(out, " ;");
    }
    let _ = writeln!(out, "END NETS");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// Serializes a mapped netlist as structural Verilog — the gate-level
/// netlist OpenLANE hands between yosys and the physical tools.
///
/// Cell ports follow the library convention: inputs `A0..An` (plus `CLK`
/// on flops), output `Y`.
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|&n| netlist.net_name(n).to_string())
        .chain(
            netlist
                .primary_outputs()
                .iter()
                .map(|(name, _)| name.clone()),
        )
        .collect();
    let _ = writeln!(out, "module {} (", netlist.name());
    let _ = writeln!(out, "  {}", ports.join(",\n  "));
    let _ = writeln!(out, ");");
    for &n in netlist.primary_inputs() {
        let _ = writeln!(out, "  input {};", netlist.net_name(n));
    }
    for (name, _) in netlist.primary_outputs() {
        let _ = writeln!(out, "  output {name};");
    }
    // Internal wires: every net that is not a primary input.
    for net in netlist.net_ids() {
        if !netlist.is_primary_input(net) {
            let _ = writeln!(out, "  wire {};", netlist.net_name(net));
        }
    }
    let library = crate::export::verilog_cell_name;
    for (_, inst) in netlist.instances() {
        let mut conns: Vec<String> = inst
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &n)| format!(".A{}({})", i, netlist.net_name(n)))
            .collect();
        if let Some(c) = inst.clock {
            conns.push(format!(".CLK({})", netlist.net_name(c)));
        }
        conns.push(format!(".Y({})", netlist.net_name(inst.output)));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            library(inst),
            inst.name,
            conns.join(", ")
        );
    }
    // Output assigns where an output aliases an internal/input net.
    for (name, net) in netlist.primary_outputs() {
        if name != netlist.net_name(*net) {
            let _ = writeln!(out, "  assign {} = {};", name, netlist.net_name(*net));
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn verilog_cell_name(inst: &openserdes_netlist::Instance) -> String {
    format!("osd130_{}_{}", inst.function, inst.drive.suffix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place_greedy;
    use openserdes_netlist::NetlistStats;
    use openserdes_pdk::corner::Pvt;
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};

    fn placed() -> (Netlist, Library, Placement, Floorplan) {
        let mut nl = Netlist::new("def_test");
        let clk = nl.add_input("clk");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.gate(LogicFn::Nand2, DriveStrength::X2, &[a, b]);
        let q = nl.dff(x, clk, DriveStrength::X1);
        nl.mark_output("q", q);
        let lib = Library::sky130(Pvt::nominal());
        let stats = NetlistStats::compute(&nl, &lib);
        let fp = Floorplan::for_area(stats.area, 0.5, 1.0);
        let p = place_greedy(&nl, &lib, &fp);
        (nl, lib, p, fp)
    }

    #[test]
    fn verilog_is_structurally_complete() {
        let (nl, _, _, _) = placed();
        let v = to_verilog(&nl);
        assert!(v.starts_with("module def_test ("));
        assert!(v.contains("input clk;"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output q;"));
        assert!(v.contains("osd130_nand2_2"));
        assert!(v.contains(".CLK(clk)"));
        assert!(v.trim_end().ends_with("endmodule"));
        // Every instance appears exactly once.
        assert_eq!(v.matches("osd130_").count(), 2);
    }

    #[test]
    fn def_has_all_sections() {
        let (nl, lib, p, fp) = placed();
        let def = to_def(&nl, &lib, &p, &fp);
        for section in [
            "VERSION 5.8",
            "DESIGN def_test",
            "DIEAREA",
            "COMPONENTS 2 ;",
            "END COMPONENTS",
            "PINS 4 ;",
            "END PINS",
            "NETS",
            "END NETS",
            "END DESIGN",
        ] {
            assert!(def.contains(section), "missing `{section}`");
        }
    }

    #[test]
    fn components_carry_cell_names_and_coordinates() {
        let (nl, lib, p, fp) = placed();
        let def = to_def(&nl, &lib, &p, &fp);
        assert!(def.contains("osd130_nand2_2"));
        assert!(def.contains("osd130_dfxtp_1"));
        assert!(def.contains("+ PLACED ("));
    }

    #[test]
    fn clock_pins_labelled() {
        let (nl, lib, p, fp) = placed();
        let def = to_def(&nl, &lib, &p, &fp);
        assert!(def.contains("CLK )"), "clock sink pin labelled CLK");
    }

    #[test]
    fn coordinates_within_die() {
        let (nl, lib, p, fp) = placed();
        let def = to_def(&nl, &lib, &p, &fp);
        let max = dbu(fp.width.value().max(fp.height.value()));
        for line in def.lines().filter(|l| l.contains("PLACED")) {
            let nums: Vec<i64> = line
                .split(['(', ')'])
                .nth(1)
                .expect("coords")
                .split_whitespace()
                .map(|s| s.parse().expect("number"))
                .collect();
            assert!(nums.iter().all(|&n| n >= 0 && n <= max + 1000), "{line}");
        }
    }
}
