//! Power analysis: switching, internal, clock-tree and leakage power.
//!
//! Implements the standard activity-based decomposition a signoff power
//! tool reports:
//!
//! * **net switching** — `0.5 · α · C_net · VDD² · f` per net, where `α`
//!   is the toggle rate in transitions per clock cycle (clock nets toggle
//!   twice per cycle by definition),
//! * **cell internal** — short-circuit and parasitic energy per output
//!   event from the library characterization,
//! * **leakage** — the sum of per-cell static leakage.
//!
//! Activities default to a uniform factor but can be extracted from an
//! event-simulation [`Trace`] for
//! vector-driven power, which is how the reproduction gets workload-aware
//! numbers for the paper's Fig. 10 budget.

use crate::route::RouteResult;
use openserdes_digital::Trace;
use openserdes_netlist::{NetId, Netlist};
use openserdes_pdk::library::Library;
use openserdes_pdk::units::{Hertz, Watt};
use openserdes_pdk::wire::WireloadModel;
use std::fmt;

/// Power analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Clock frequency.
    pub clock: Hertz,
    /// Default toggle rate for data nets, in transitions per cycle.
    pub activity: f64,
    /// Optional per-net toggle rates overriding the default
    /// (transitions per cycle, indexed by net).
    pub net_activity: Option<Vec<f64>>,
}

impl PowerConfig {
    /// Uniform-activity configuration (α = 0.2, a common default).
    pub fn at_clock(clock: Hertz) -> Self {
        Self {
            clock,
            activity: 0.2,
            net_activity: None,
        }
    }

    /// Derives per-net toggle rates from a recorded simulation trace
    /// spanning `cycles` clock cycles.
    pub fn from_trace(clock: Hertz, netlist: &Netlist, trace: &Trace, cycles: u64) -> Self {
        let rates = netlist
            .net_ids()
            .map(|n| trace.toggle_count(n) as f64 / cycles.max(1) as f64)
            .collect();
        Self {
            clock,
            activity: 0.2,
            net_activity: Some(rates),
        }
    }
}

/// The decomposed power report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Net switching power (data nets).
    pub switching: Watt,
    /// Cell-internal power.
    pub internal: Watt,
    /// Clock network power (clock nets + flop clock pins).
    pub clock_tree: Watt,
    /// Static leakage.
    pub leakage: Watt,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> Watt {
        self.switching + self.internal + self.clock_tree + self.leakage
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "power report:")?;
        writeln!(f, "  switching : {:>10.3} mW", self.switching.mw())?;
        writeln!(f, "  internal  : {:>10.3} mW", self.internal.mw())?;
        writeln!(f, "  clock tree: {:>10.3} mW", self.clock_tree.mw())?;
        writeln!(f, "  leakage   : {:>10.3} mW", self.leakage.mw())?;
        writeln!(f, "  total     : {:>10.3} mW", self.total().mw())
    }
}

/// Analyzes the power of a mapped (optionally routed) netlist.
pub fn analyze_power(
    netlist: &Netlist,
    library: &Library,
    route: Option<&RouteResult>,
    config: &PowerConfig,
) -> PowerReport {
    let vdd = library.vdd().value();
    let f = config.clock.value();
    let wireload = WireloadModel::small_block();
    let fanout = netlist.fanout_table();

    // Identify clock nets: any net driving a clock pin.
    let mut is_clock = vec![false; netlist.net_count()];
    for (_, inst) in netlist.instances() {
        if let Some(c) = inst.clock {
            is_clock[c.index()] = true;
        }
    }

    let act = |net: NetId| -> f64 {
        if is_clock[net.index()] {
            2.0
        } else {
            match &config.net_activity {
                Some(v) => v[net.index()],
                None => config.activity,
            }
        }
    };

    let mut switching = 0.0;
    let mut clock_tree = 0.0;
    for net in netlist.net_ids() {
        let sinks = &fanout[net.index()];
        let mut c = match route {
            Some(r) => r.net(net).capacitance().value(),
            None => wireload.capacitance(sinks.len()).value(),
        };
        for &s in sinks {
            let inst = netlist.instance(s);
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("library cell");
            c += if inst.clock == Some(net) && !inst.inputs.contains(&net) {
                cell.clock_cap.value()
            } else {
                cell.input_cap.value()
            };
        }
        let p = 0.5 * act(net) * c * vdd * vdd * f;
        if is_clock[net.index()] {
            clock_tree += p;
        } else {
            switching += p;
        }
    }

    let mut internal = 0.0;
    let mut leakage = 0.0;
    for (_, inst) in netlist.instances() {
        let cell = library
            .cell(inst.function, inst.drive)
            .expect("library cell");
        leakage += cell.leakage_w;
        // Output toggles drive the internal energy; flops also burn
        // internal energy on every clock edge pair.
        let out_act = act(inst.output);
        internal += cell.internal_energy_j * out_act * f;
        if inst.is_sequential() {
            internal += cell.internal_energy_j * f; // clock-driven internal
        }
    }

    PowerReport {
        switching: Watt::new(switching),
        internal: Watt::new(internal),
        clock_tree: Watt::new(clock_tree),
        leakage: Watt::new(leakage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::corner::Pvt;
    use openserdes_pdk::stdcell::{DriveStrength, LogicFn};

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    fn register_file(n: usize) -> Netlist {
        let mut nl = Netlist::new("regs");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let mut s = d;
        for _ in 0..n {
            s = nl.dff(s, clk, DriveStrength::X1);
        }
        nl.mark_output("q", s);
        nl
    }

    #[test]
    fn power_scales_with_frequency() {
        let l = lib();
        let nl = register_file(8);
        let p1 = analyze_power(&nl, &l, None, &PowerConfig::at_clock(Hertz::from_ghz(1.0)));
        let p2 = analyze_power(&nl, &l, None, &PowerConfig::at_clock(Hertz::from_ghz(2.0)));
        let dyn1 = p1.total().value() - p1.leakage.value();
        let dyn2 = p2.total().value() - p2.leakage.value();
        assert!((dyn2 / dyn1 - 2.0).abs() < 1e-9, "dynamic power ∝ f");
        assert_eq!(p1.leakage, p2.leakage, "leakage is frequency independent");
    }

    #[test]
    fn clock_tree_power_nonzero_with_flops() {
        let l = lib();
        let nl = register_file(16);
        let p = analyze_power(&nl, &l, None, &PowerConfig::at_clock(Hertz::from_ghz(2.0)));
        assert!(p.clock_tree.value() > 0.0);
        assert!(p.total().value() > p.clock_tree.value());
    }

    #[test]
    fn higher_activity_more_switching() {
        let l = lib();
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a");
        let mut s = a;
        for _ in 0..10 {
            s = nl.gate(LogicFn::Inv, DriveStrength::X1, &[s]);
        }
        nl.mark_output("y", s);
        let mut quiet = PowerConfig::at_clock(Hertz::from_ghz(1.0));
        quiet.activity = 0.05;
        let mut busy = quiet.clone();
        busy.activity = 1.0;
        let pq = analyze_power(&nl, &l, None, &quiet);
        let pb = analyze_power(&nl, &l, None, &busy);
        assert!(pb.switching.value() > pq.switching.value() * 10.0);
    }

    #[test]
    fn zero_activity_leaves_only_leakage_and_clock() {
        let l = lib();
        let nl = register_file(4);
        let mut cfg = PowerConfig::at_clock(Hertz::from_ghz(1.0));
        cfg.activity = 0.0;
        let p = analyze_power(&nl, &l, None, &cfg);
        assert_eq!(p.switching.value(), 0.0);
        assert!(p.leakage.value() > 0.0);
        assert!(p.clock_tree.value() > 0.0);
    }

    #[test]
    fn display_has_all_sections() {
        let l = lib();
        let nl = register_file(2);
        let p = analyze_power(&nl, &l, None, &PowerConfig::at_clock(Hertz::from_ghz(1.0)));
        let s = p.to_string();
        for key in ["switching", "internal", "clock tree", "leakage", "total"] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
