//! Word-friendly RTL intermediate representation.
//!
//! The paper writes its serializer, deserializer and CDR in Verilog and
//! hands them to yosys. Our substitute is a small structural IR: a
//! [`Design`] is a sea of boolean nodes (`Not`/`And`/`Or`/`Xor`/`Mux`)
//! plus registers, with bus-level builder helpers (counters, comparators,
//! muxes) so FSMs read naturally. The IR has a reference interpreter
//! ([`IrSim`]) that serves as the golden model for synthesis equivalence
//! checks.
//!
//! Feedback is only legal through registers: combinational nodes can only
//! reference signals created before them, which makes the IR acyclic by
//! construction and evaluation a single in-order sweep.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a signal (node output) within one [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sig(u32);

impl Sig {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Node operations. All operands refer to earlier signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOp {
    /// Primary input (index into the input list).
    Input(usize),
    /// Constant 0/1.
    Const(bool),
    /// Logical NOT.
    Not(Sig),
    /// Logical AND.
    And(Sig, Sig),
    /// Logical OR.
    Or(Sig, Sig),
    /// Logical XOR.
    Xor(Sig, Sig),
    /// 2:1 mux: `sel ? b : a`.
    Mux {
        /// Selected when `sel` is 0.
        a: Sig,
        /// Selected when `sel` is 1.
        b: Sig,
        /// Select signal.
        sel: Sig,
    },
    /// Register output (index into the register list).
    RegQ(usize),
}

/// A register: powers up at 0, captures `d` every clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reg {
    d: Option<Sig>,
}

/// A synthesizable RTL design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    name: String,
    nodes: Vec<NodeOp>,
    input_names: Vec<String>,
    outputs: Vec<(String, Sig)>,
    regs: Vec<Reg>,
    multicycle: Vec<(usize, u32)>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, op: NodeOp) -> Sig {
        let id = Sig(self.nodes.len() as u32);
        self.nodes.push(op);
        id
    }

    /// Declares a single-bit primary input.
    pub fn input(&mut self, name: impl Into<String>) -> Sig {
        let idx = self.input_names.len();
        self.input_names.push(name.into());
        self.push(NodeOp::Input(idx))
    }

    /// Declares a bus input `name[0..width]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<Sig> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// A constant signal.
    pub fn constant(&mut self, value: bool) -> Sig {
        self.push(NodeOp::Const(value))
    }

    /// A constant bus, LSB first.
    pub fn const_bus(&mut self, width: usize, value: u64) -> Vec<Sig> {
        (0..width)
            .map(|i| self.constant(value >> i & 1 == 1))
            .collect()
    }

    /// Logical NOT.
    pub fn not(&mut self, a: Sig) -> Sig {
        self.push(NodeOp::Not(a))
    }

    /// Logical AND.
    pub fn and(&mut self, a: Sig, b: Sig) -> Sig {
        self.push(NodeOp::And(a, b))
    }

    /// Logical OR.
    pub fn or(&mut self, a: Sig, b: Sig) -> Sig {
        self.push(NodeOp::Or(a, b))
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: Sig, b: Sig) -> Sig {
        self.push(NodeOp::Xor(a, b))
    }

    /// 2:1 mux: `sel ? b : a`.
    pub fn mux(&mut self, a: Sig, b: Sig, sel: Sig) -> Sig {
        self.push(NodeOp::Mux { a, b, sel })
    }

    /// Bitwise mux over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn mux_bus(&mut self, a: &[Sig], b: &[Sig], sel: Sig) -> Vec<Sig> {
        assert_eq!(a.len(), b.len(), "mux_bus requires equal widths");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(x, y, sel))
            .collect()
    }

    /// AND-reduce of a slice as a balanced tree (log depth; returns
    /// constant 1 for empty input).
    pub fn and_reduce(&mut self, sigs: &[Sig]) -> Sig {
        match sigs {
            [] => self.constant(true),
            [s] => *s,
            _ => {
                let mut level = sigs.to_vec();
                while level.len() > 1 {
                    level = level
                        .chunks(2)
                        .map(|p| {
                            if p.len() == 2 {
                                self.and(p[0], p[1])
                            } else {
                                p[0]
                            }
                        })
                        .collect();
                }
                level[0]
            }
        }
    }

    /// OR-reduce of a slice as a balanced tree (log depth; returns
    /// constant 0 for empty input).
    pub fn or_reduce(&mut self, sigs: &[Sig]) -> Sig {
        match sigs {
            [] => self.constant(false),
            [s] => *s,
            _ => {
                let mut level = sigs.to_vec();
                while level.len() > 1 {
                    level = level
                        .chunks(2)
                        .map(|p| {
                            if p.len() == 2 {
                                self.or(p[0], p[1])
                            } else {
                                p[0]
                            }
                        })
                        .collect();
                }
                level[0]
            }
        }
    }

    /// Unsigned `a > b` comparator over equal-width buses (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width or are empty.
    pub fn gt(&mut self, a: &[Sig], b: &[Sig]) -> Sig {
        assert_eq!(a.len(), b.len(), "gt requires equal widths");
        assert!(!a.is_empty(), "gt requires at least one bit");
        // From MSB down: greater if a_i > b_i while all higher bits equal.
        let mut greater = self.constant(false);
        let mut equal = self.constant(true);
        for i in (0..a.len()).rev() {
            let nb = self.not(b[i]);
            let ai_gt = self.and(a[i], nb);
            let here = self.and(equal, ai_gt);
            greater = self.or(greater, here);
            // The equality chain feeds only lower bit positions; an
            // update at the LSB would be dead logic.
            if i > 0 {
                let same = self.xnor(a[i], b[i]);
                equal = self.and(equal, same);
            }
        }
        greater
    }

    /// XNOR convenience.
    pub fn xnor(&mut self, a: Sig, b: Sig) -> Sig {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// `bus == value` comparator.
    pub fn eq_const(&mut self, bus: &[Sig], value: u64) -> Sig {
        let bits: Vec<Sig> = bus
            .iter()
            .enumerate()
            .map(|(i, &s)| if value >> i & 1 == 1 { s } else { self.not(s) })
            .collect();
        self.and_reduce(&bits)
    }

    /// N:1 multiplexer tree: selects `leaves[sel]` using the select bus
    /// (LSB first). Leaves beyond the last are never selected but must
    /// exist: `leaves.len()` must equal `2^sel.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != 2^sel.len()`.
    pub fn mux_tree(&mut self, leaves: &[Sig], sel: &[Sig]) -> Sig {
        assert_eq!(
            leaves.len(),
            1usize << sel.len(),
            "mux tree needs 2^sel leaves"
        );
        if sel.is_empty() {
            return leaves[0];
        }
        let mut level: Vec<Sig> = leaves.to_vec();
        for &s in sel {
            level = level
                .chunks(2)
                .map(|pair| self.mux(pair[0], pair[1], s))
                .collect();
        }
        level[0]
    }

    /// `bus + 1` incrementer (wraps at 2^width). Carries are computed as
    /// balanced prefix ANDs, giving logarithmic logic depth — the
    /// fast-counter structure a 2 GHz bit counter needs.
    pub fn incr(&mut self, bus: &[Sig]) -> Vec<Sig> {
        (0..bus.len())
            .map(|i| {
                let carry = self.and_reduce(&bus[..i]);
                self.xor(bus[i], carry)
            })
            .collect()
    }

    /// Declares a register whose data input is connected later with
    /// [`Design::connect_reg`]; returns its Q signal. Registers power up
    /// at 0.
    pub fn reg(&mut self) -> Sig {
        let idx = self.regs.len();
        self.regs.push(Reg { d: None });
        self.push(NodeOp::RegQ(idx))
    }

    /// Declares a bus of registers, LSB first.
    pub fn reg_bus(&mut self, width: usize) -> Vec<Sig> {
        (0..width).map(|_| self.reg()).collect()
    }

    /// Connects the data input of register `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a register output or is already connected.
    pub fn connect_reg(&mut self, q: Sig, d: Sig) {
        match self.nodes[q.index()] {
            NodeOp::RegQ(idx) => {
                assert!(self.regs[idx].d.is_none(), "register already connected");
                self.regs[idx].d = Some(d);
            }
            _ => panic!("{q} is not a register output"),
        }
    }

    /// Connects a whole register bus.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or non-register signals.
    pub fn connect_reg_bus(&mut self, q: &[Sig], d: &[Sig]) {
        assert_eq!(q.len(), d.len(), "bus width mismatch");
        for (&qq, &dd) in q.iter().zip(d) {
            self.connect_reg(qq, dd);
        }
    }

    /// Declares a primary output.
    pub fn output(&mut self, name: impl Into<String>, sig: Sig) {
        self.outputs.push((name.into(), sig));
    }

    /// Declares a bus output, LSB first.
    pub fn output_bus(&mut self, name: &str, bus: &[Sig]) {
        for (i, &s) in bus.iter().enumerate() {
            self.output(format!("{name}[{i}]"), s);
        }
    }

    /// Node table accessor (for synthesis).
    pub fn nodes(&self) -> &[NodeOp] {
        &self.nodes
    }

    /// Input names in declaration order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The signal of the input named `name`, if it exists.
    pub fn input_sig(&self, name: &str) -> Option<Sig> {
        let idx = self.input_names.iter().position(|n| n == name)?;
        self.nodes.iter().enumerate().find_map(|(i, op)| match op {
            NodeOp::Input(j) if *j == idx => Some(Sig(i as u32)),
            _ => None,
        })
    }

    /// Outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, Sig)] {
        &self.outputs
    }

    /// Number of registers.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// The data input of register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the register was never connected.
    pub fn reg_d(&self, idx: usize) -> Sig {
        self.regs[idx].d.expect("register data input connected")
    }

    /// The data input of register `idx`, or `None` if it was never
    /// connected (the non-panicking form the lint pass uses).
    pub fn reg_d_opt(&self, idx: usize) -> Option<Sig> {
        self.regs[idx].d
    }

    /// Imports another design as a sub-block (hierarchical composition,
    /// flattened on the spot): `bindings` maps the child's input signals
    /// to signals of `self`; unbound child inputs become new inputs of
    /// `self` named `prefix.<name>`. Returns the child's outputs as
    /// `(name, signal-in-self)` pairs. Registers, their connections and
    /// multicycle exceptions are carried over; the child's output
    /// declarations are *not* re-exported (wire them explicitly).
    ///
    /// # Panics
    ///
    /// Panics if the child has unconnected registers or a binding maps a
    /// non-input child signal.
    pub fn import(
        &mut self,
        child: &Design,
        prefix: &str,
        bindings: &[(Sig, Sig)],
    ) -> Vec<(String, Sig)> {
        child.assert_complete();
        for &(child_sig, _) in bindings {
            assert!(
                matches!(child.nodes[child_sig.index()], NodeOp::Input(_)),
                "{child_sig} is not an input of the child design"
            );
        }
        let reg_base = self.regs.len();
        // Pre-create the child's registers (feedback targets).
        for _ in 0..child.regs.len() {
            self.regs.push(Reg { d: None });
        }
        let mut map: Vec<Sig> = Vec::with_capacity(child.nodes.len());
        for (i, op) in child.nodes.iter().enumerate() {
            let here = match *op {
                NodeOp::Input(idx) => {
                    let child_sig = Sig(i as u32);
                    match bindings.iter().find(|(c, _)| *c == child_sig) {
                        Some(&(_, bound)) => bound,
                        None => self.input(format!("{prefix}.{}", child.input_names[idx])),
                    }
                }
                NodeOp::Const(v) => self.constant(v),
                NodeOp::Not(a) => self.not(map[a.index()]),
                NodeOp::And(a, b) => self.and(map[a.index()], map[b.index()]),
                NodeOp::Or(a, b) => self.or(map[a.index()], map[b.index()]),
                NodeOp::Xor(a, b) => self.xor(map[a.index()], map[b.index()]),
                NodeOp::Mux { a, b, sel } => {
                    self.mux(map[a.index()], map[b.index()], map[sel.index()])
                }
                NodeOp::RegQ(r) => self.push(NodeOp::RegQ(reg_base + r)),
            };
            map.push(here);
        }
        for (r, reg) in child.regs.iter().enumerate() {
            let d = reg.d.expect("child is complete");
            self.regs[reg_base + r].d = Some(map[d.index()]);
        }
        for &(r, factor) in &child.multicycle {
            self.multicycle.push((reg_base + r, factor));
        }
        child
            .outputs
            .iter()
            .map(|(name, sig)| (name.clone(), map[sig.index()]))
            .collect()
    }

    /// Declares a multicycle timing exception on register `q`: paths
    /// ending at its data input have `factor` clock periods to resolve
    /// (the consumer only samples the result every `factor` cycles).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a register output or `factor == 0`.
    pub fn set_multicycle(&mut self, q: Sig, factor: u32) {
        assert!(factor >= 1, "multicycle factor must be at least 1");
        match self.nodes[q.index()] {
            NodeOp::RegQ(idx) => self.multicycle.push((idx, factor)),
            _ => panic!("{q} is not a register output"),
        }
    }

    /// Declared multicycle exceptions as `(register index, factor)`.
    pub fn multicycle(&self) -> &[(usize, u32)] {
        &self.multicycle
    }

    /// Verifies that every register is connected.
    ///
    /// # Panics
    ///
    /// Panics naming the first dangling register.
    pub fn assert_complete(&self) {
        for (i, r) in self.regs.iter().enumerate() {
            assert!(r.d.is_some(), "register {i} has no data input");
        }
    }
}

/// Reference interpreter for a [`Design`]: the golden functional model.
#[derive(Debug, Clone)]
pub struct IrSim<'a> {
    design: &'a Design,
    inputs: Vec<bool>,
    state: Vec<bool>,
    values: Vec<bool>,
    input_index: HashMap<&'a str, usize>,
}

impl<'a> IrSim<'a> {
    /// Creates an interpreter with all inputs 0 and all registers 0.
    ///
    /// # Panics
    ///
    /// Panics if the design has unconnected registers.
    pub fn new(design: &'a Design) -> Self {
        design.assert_complete();
        let input_index = design
            .input_names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut sim = Self {
            inputs: vec![false; design.input_names().len()],
            state: vec![false; design.reg_count()],
            values: vec![false; design.nodes().len()],
            design,
            input_index,
        };
        sim.settle();
        sim
    }

    /// Sets an input by signal (must be an input node).
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not an input.
    pub fn set(&mut self, sig: Sig, value: bool) {
        match self.design.nodes()[sig.index()] {
            NodeOp::Input(idx) => self.inputs[idx] = value,
            _ => panic!("{sig} is not an input"),
        }
    }

    /// Sets an input by name.
    ///
    /// # Panics
    ///
    /// Panics if no input has this name.
    pub fn set_by_name(&mut self, name: &str, value: bool) {
        let idx = *self
            .input_index
            .get(name)
            .unwrap_or_else(|| panic!("no input named {name}"));
        self.inputs[idx] = value;
    }

    /// Sets a bus of inputs from an integer, LSB first.
    pub fn set_bus(&mut self, bus: &[Sig], value: u64) {
        for (i, &s) in bus.iter().enumerate() {
            self.set(s, value >> i & 1 == 1);
        }
    }

    /// Recomputes all combinational values.
    pub fn settle(&mut self) {
        for (i, op) in self.design.nodes().iter().enumerate() {
            self.values[i] = match *op {
                NodeOp::Input(idx) => self.inputs[idx],
                NodeOp::Const(v) => v,
                NodeOp::Not(a) => !self.values[a.index()],
                NodeOp::And(a, b) => self.values[a.index()] & self.values[b.index()],
                NodeOp::Or(a, b) => self.values[a.index()] | self.values[b.index()],
                NodeOp::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
                NodeOp::Mux { a, b, sel } => {
                    if self.values[sel.index()] {
                        self.values[b.index()]
                    } else {
                        self.values[a.index()]
                    }
                }
                NodeOp::RegQ(idx) => self.state[idx],
            };
        }
    }

    /// One clock edge: settle, then capture every register.
    pub fn tick(&mut self) {
        self.settle();
        let next: Vec<bool> = (0..self.design.reg_count())
            .map(|i| self.values[self.design.reg_d(i).index()])
            .collect();
        self.state = next;
        self.settle();
    }

    /// Reads any signal's current value.
    pub fn get(&self, sig: Sig) -> bool {
        self.values[sig.index()]
    }

    /// Reads a bus as an integer, LSB first.
    pub fn get_bus(&self, bus: &[Sig]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0, |acc, (i, &s)| acc | (self.get(s) as u64) << i)
    }

    /// Resets every register to 0.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = false);
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_wraps() {
        let mut d = Design::new("cnt");
        let q = d.reg_bus(3);
        let next = d.incr(&q);
        d.connect_reg_bus(&q, &next);
        d.output_bus("q", &q);
        let mut sim = IrSim::new(&d);
        for expect in 1..=9u64 {
            sim.tick();
            assert_eq!(sim.get_bus(&q), expect % 8);
        }
    }

    #[test]
    fn eq_const_matches_exactly() {
        let mut d = Design::new("eq");
        let b = d.input_bus("b", 4);
        let hit = d.eq_const(&b, 0b1010);
        d.output("hit", hit);
        let mut sim = IrSim::new(&d);
        for v in 0..16 {
            sim.set_bus(&b, v);
            sim.settle();
            assert_eq!(sim.get(hit), v == 0b1010, "v = {v}");
        }
    }

    #[test]
    fn mux_bus_selects() {
        let mut d = Design::new("m");
        let a = d.input_bus("a", 4);
        let b = d.input_bus("b", 4);
        let sel = d.input("sel");
        let y = d.mux_bus(&a, &b, sel);
        d.output_bus("y", &y);
        let mut sim = IrSim::new(&d);
        sim.set_bus(&a, 0x3);
        sim.set_bus(&b, 0xC);
        sim.set(sel, false);
        sim.settle();
        assert_eq!(sim.get_bus(&y), 0x3);
        sim.set(sel, true);
        sim.settle();
        assert_eq!(sim.get_bus(&y), 0xC);
    }

    #[test]
    fn reductions() {
        let mut d = Design::new("r");
        let b = d.input_bus("b", 3);
        let all = d.and_reduce(&b);
        let any = d.or_reduce(&b);
        d.output("all", all);
        d.output("any", any);
        let mut sim = IrSim::new(&d);
        for v in 0..8 {
            sim.set_bus(&b, v);
            sim.settle();
            assert_eq!(sim.get(all), v == 7);
            assert_eq!(sim.get(any), v != 0);
        }
    }

    #[test]
    fn shift_register_delays_by_n() {
        let mut d = Design::new("sr");
        let din = d.input("din");
        let taps = d.reg_bus(4);
        d.connect_reg(taps[0], din);
        for i in 1..4 {
            d.connect_reg(taps[i], taps[i - 1]);
        }
        d.output("dout", taps[3]);
        let mut sim = IrSim::new(&d);
        let pattern = [true, false, true, true, false, false, true, false];
        let mut seen = Vec::new();
        for &bit in &pattern {
            sim.set(din, bit);
            sim.tick();
            seen.push(sim.get(taps[3]));
        }
        // Four flops, sampled after each edge: the bit fed in on edge k
        // appears at the output on edge k+3 (zeros flush out first).
        assert_eq!(&seen[..3], &[false; 3]);
        assert_eq!(&seen[3..], &pattern[..5]);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Design::new("c");
        let q = d.reg_bus(2);
        let n = d.incr(&q);
        d.connect_reg_bus(&q, &n);
        let mut sim = IrSim::new(&d);
        sim.tick();
        sim.tick();
        assert_eq!(sim.get_bus(&q), 2);
        sim.reset();
        assert_eq!(sim.get_bus(&q), 0);
    }

    #[test]
    #[should_panic(expected = "register 0 has no data input")]
    fn dangling_register_detected() {
        let mut d = Design::new("bad");
        let _q = d.reg();
        let _ = IrSim::new(&d);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_rejected() {
        let mut d = Design::new("bad");
        let q = d.reg();
        let one = d.constant(true);
        d.connect_reg(q, one);
        d.connect_reg(q, one);
    }

    #[test]
    fn gt_is_exact_and_has_no_dead_logic() {
        let mut d = Design::new("gt");
        let a = d.input_bus("a", 4);
        let b = d.input_bus("b", 4);
        let y = d.gt(&a, &b);
        d.output("y", y);
        let mut sim = IrSim::new(&d);
        for av in 0..16 {
            for bv in 0..16 {
                sim.set_bus(&a, av);
                sim.set_bus(&b, bv);
                sim.settle();
                assert_eq!(sim.get(y), av > bv, "a = {av}, b = {bv}");
            }
        }
        // Regression: the equality chain used to be updated at the LSB
        // too, leaving an XNOR/AND pair outside every output cone
        // (IR002 dead logic in every comparator).
        let report = d.lint(&openserdes_lint::LintConfig::default());
        assert!(
            report
                .findings()
                .iter()
                .all(|f| f.rule != openserdes_lint::Rule::DeadNode),
            "gt must not synthesize dead logic:\n{report}"
        );
    }

    #[test]
    fn const_bus_encodes_value() {
        let mut d = Design::new("k");
        let k = d.const_bus(8, 0xA5);
        d.output_bus("k", &k);
        let sim = IrSim::new(&d);
        assert_eq!(sim.get_bus(&k), 0xA5);
    }
}
