//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest API the workspace's
//! property-based tests use: the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`ProptestConfig::with_cases`], and the
//! strategies `any::<T>()`, integer/float ranges,
//! `prop::array::uniform8`, `prop::collection::vec` and
//! `prop::sample::select`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its inputs via the assertion message and the deterministic
//! per-test seed makes every failure exactly reproducible (the case
//! stream is a pure function of the test name).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};
use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Builds the deterministic per-test RNG (an FNV-1a hash of the test
/// name seeds the generator, so case streams are stable across runs and
/// platforms).
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator: the core abstraction of the crate.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy for the full value space of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample(rng)
    }
}

/// Composite strategies, mirroring proptest's `prop` module tree.
pub mod prop {
    /// Fixed-size array strategies.
    pub mod array {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Strategy producing `[T; 8]` from one element strategy.
        #[derive(Debug, Clone)]
        pub struct Uniform8<S>(S);

        /// Eight independent draws from `element`.
        pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
            Uniform8(element)
        }

        impl<S: Strategy> Strategy for Uniform8<S> {
            type Value = [S::Value; 8];
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Length specification for [`vec`](fn@vec): a fixed `usize` or a
        /// half-open range of lengths.
        pub trait IntoLenRange {
            /// The equivalent half-open range.
            fn into_len_range(self) -> Range<usize>;
        }

        impl IntoLenRange for usize {
            fn into_len_range(self) -> Range<usize> {
                self..self + 1
            }
        }

        impl IntoLenRange for Range<usize> {
            fn into_len_range(self) -> Range<usize> {
                self
            }
        }

        /// Strategy producing `Vec<T>` of a length drawn from `lens`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            lens: Range<usize>,
        }

        /// Vectors of `element` draws with length in `lens`.
        pub fn vec<S: Strategy>(element: S, lens: impl IntoLenRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                lens: lens.into_len_range(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.lens.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy picking one element of a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        /// Uniform choice among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        l,
                        r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        ::std::format!($($fmt)+),
                        l,
                        r
                    ));
                }
            }
        }
    };
}

/// Declares property-based tests: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(::std::stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn arrays_and_vecs(frame in prop::array::uniform8(any::<u32>()),
                           v in prop::collection::vec(0u8..6, 1..24),
                           w in prop::collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(frame.len(), 8);
            prop_assert!(!v.is_empty() && v.len() < 24);
            prop_assert!(v.iter().all(|&b| b < 6));
            prop_assert_eq!(w.len(), 8);
        }

        #[test]
        fn select_picks_members(n in prop::sample::select(vec![3usize, 4, 5, 7])) {
            prop_assert!([3, 4, 5, 7].contains(&n));
        }
    }

    #[test]
    fn case_stream_is_deterministic() {
        use crate::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = {
            let mut rng = crate::test_rng("t");
            (0..16).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_rng("t");
            (0..16).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }
}
