//! End-to-end PHY pipelines at two fidelity levels.
//!
//! * [`AnalogLink`] — the full transistor-level path (driver transient →
//!   channel → front-end transient → sampler) used to regenerate the
//!   paper's waveform figures and to validate the fast model.
//! * [`BehavioralLink`] — a bit-level statistical model calibrated from
//!   the same device physics (the front end's small-signal
//!   characterization), fast enough for the million-bit BER and
//!   sensitivity sweeps behind Fig. 9.

use crate::channel::ChannelModel;
use crate::driver::{DriverConfig, DriverWaveforms, TxDriver};
use crate::frontend::{FrontEndConfig, FrontEndWaveforms, RxFrontEnd};
use crate::sampler::Sampler;
use openserdes_analog::solver::{SolverError, SolverStats};
use openserdes_analog::Waveform;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::units::{Hertz, Time, Volt};
use openserdes_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Artifacts of one analog end-to-end transmission.
#[derive(Debug, Clone)]
pub struct LinkRun {
    /// Driver waveforms (input, stages, output).
    pub tx: DriverWaveforms,
    /// The waveform arriving at the receiver.
    pub channel_out: Waveform,
    /// Receiver front-end waveforms.
    pub rx: FrontEndWaveforms,
    /// The transmitted bits (for scoring).
    pub sent: Vec<bool>,
    /// Unit interval used.
    pub bit_time: Time,
    /// Combined solver work across the driver and front-end transients.
    pub solver_stats: SolverStats,
}

impl LinkRun {
    /// Recovers the received bits by scanning sampling phase (in 1/16-UI
    /// steps) and polarity for the alignment that best matches `sent` —
    /// the measurement-time equivalent of what the CDR does in hardware.
    /// Returns `(bits, errors)` for the best alignment, ignoring the
    /// first `skip` bits (settling).
    pub fn recover(&self, sampler: &Sampler, skip: usize) -> (Vec<bool>, usize) {
        let ui = self.bit_time.value();
        let n = self.sent.len();
        let mut best: Option<(Vec<bool>, usize)> = None;
        for lag in 0..3usize {
            for ph16 in 0..16 {
                let t0 = (skip as f64 + lag as f64 + ph16 as f64 / 16.0) * ui;
                for invert in [false, true] {
                    let samples = sampler.sample_stream(&self.rx.restored, t0, ui, n - skip - lag);
                    let bits: Vec<bool> = samples
                        .iter()
                        .map(|s| s.bit().unwrap_or(false) ^ invert)
                        .collect();
                    let errors = bits
                        .iter()
                        .zip(&self.sent[skip..])
                        .filter(|(a, b)| a != b)
                        .count()
                        + samples.iter().filter(|s| s.bit().is_none()).count();
                    if best.as_ref().map(|(_, e)| errors < *e).unwrap_or(true) {
                        best = Some((bits, errors));
                    }
                }
            }
        }
        best.expect("at least one alignment evaluated")
    }
}

/// The full analog TX→channel→RX path.
#[derive(Debug, Clone)]
pub struct AnalogLink {
    /// Transmit driver.
    pub driver: TxDriver,
    /// Channel model.
    pub channel: ChannelModel,
    /// Receiver front end.
    pub frontend: RxFrontEnd,
    /// Sampling flip-flop.
    pub sampler: Sampler,
}

impl AnalogLink {
    /// The paper's link at a PVT point with the given channel.
    pub fn paper_default(pvt: Pvt, channel: ChannelModel) -> Self {
        Self {
            driver: TxDriver::new(DriverConfig::paper_default(), pvt),
            channel,
            frontend: RxFrontEnd::new(FrontEndConfig::paper_default(), pvt),
            sampler: Sampler::paper_default(pvt.vdd),
        }
    }

    /// Transmits `bits` at `bit_time` through the full analog path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from either transient.
    pub fn transmit(&self, bits: &[bool], bit_time: Time) -> Result<LinkRun, SolverError> {
        let _span = telemetry::span("phy.analog_link");
        telemetry::counter("phy.bits_transmitted", bits.len() as u64);
        let tx = {
            let _s = telemetry::span("phy.drive");
            self.driver.drive(bits, bit_time)?
        };
        let channel_out = {
            let _s = telemetry::span("phy.channel");
            self.channel.apply(&tx.output)
        };
        let rx = {
            let _s = telemetry::span("phy.frontend");
            self.frontend.receive(&channel_out)?
        };
        let mut solver_stats = tx.stats;
        solver_stats.merge(&rx.stats);
        Ok(LinkRun {
            tx,
            channel_out,
            rx,
            sent: bits.to_vec(),
            bit_time,
            solver_stats,
        })
    }

    /// [`AnalogLink::transmit`] through the pre-optimization reference
    /// solver (dense rebuilds, fixed stepping) at both ends — the
    /// apples-to-apples baseline for the benchmark suite.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from either transient.
    pub fn transmit_reference(
        &self,
        bits: &[bool],
        bit_time: Time,
    ) -> Result<LinkRun, SolverError> {
        let _span = telemetry::span("phy.analog_link_reference");
        telemetry::counter("phy.bits_transmitted", bits.len() as u64);
        let tx = {
            let _s = telemetry::span("phy.drive");
            self.driver.drive_reference(bits, bit_time)?
        };
        let channel_out = {
            let _s = telemetry::span("phy.channel");
            self.channel.apply(&tx.output)
        };
        let rx = {
            let _s = telemetry::span("phy.frontend");
            self.frontend.receive_reference(&channel_out)?
        };
        let mut solver_stats = tx.stats;
        solver_stats.merge(&rx.stats);
        Ok(LinkRun {
            tx,
            channel_out,
            rx,
            sent: bits.to_vec(),
            bit_time,
            solver_stats,
        })
    }
}

/// BER measurement summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerEstimate {
    /// Bits evaluated.
    pub bits: u64,
    /// Errors observed.
    pub errors: u64,
}

impl BerEstimate {
    /// The measured bit-error ratio.
    pub fn ber(&self) -> f64 {
        self.errors as f64 / self.bits.max(1) as f64
    }

    /// Upper 95 % confidence bound on the BER (rule-of-three when no
    /// errors were seen).
    pub fn ber_upper95(&self) -> f64 {
        if self.errors == 0 {
            3.0 / self.bits.max(1) as f64
        } else {
            let p = self.ber();
            p + 1.96 * (p * (1.0 - p) / self.bits as f64).sqrt()
        }
    }
}

/// The fast bit-level link model calibrated from the analog blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralLink {
    /// Transmit swing (pp) at the channel input.
    pub tx_swing: Volt,
    /// Channel under test.
    pub channel: ChannelModel,
    /// Minimum detectable pp swing at the data rate (the front end's
    /// sensitivity, pre-computed via
    /// [`RxFrontEnd::sensitivity`]).
    pub rx_sensitivity: Volt,
    /// Effective RMS noise at the decision point, referred to the
    /// receiver input.
    pub noise_sigma: Volt,
    /// Unit interval.
    pub ui: Time,
    /// Fraction of the UI eroded per second of edge-time jitter (how
    /// much timing error converts to amplitude margin loss).
    pub jitter_slope: f64,
}

impl BehavioralLink {
    /// Builds the model from an analog link at the given data rate.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the front-end characterization.
    pub fn from_analog(link: &AnalogLink, data_rate: Hertz) -> Result<Self, SolverError> {
        let _span = telemetry::span("phy.characterize");
        let pvt_vdd = link.sampler.threshold.value() * 2.0;
        let sens = link.frontend.sensitivity(data_rate)?;
        Ok(Self {
            tx_swing: Volt::new(pvt_vdd),
            channel: link.channel.clone(),
            rx_sensitivity: sens,
            noise_sigma: link.channel.noise_sigma,
            ui: Time::new(1.0 / data_rate.value()),
            jitter_slope: 2.0,
        })
    }

    /// Received signal pp swing after channel attenuation.
    pub fn rx_swing(&self) -> Volt {
        Volt::new(self.tx_swing.value() * self.channel.gain())
    }

    /// Amplitude margin: half the received swing minus half the
    /// sensitivity (negative = eye closed).
    pub fn margin(&self) -> Volt {
        Volt::new(0.5 * (self.rx_swing().value() - self.rx_sensitivity.value()))
    }

    /// Per-sample flip probability from amplitude noise alone,
    /// `Q(margin/σ)` (0.5 when the eye is closed). No jitter erosion —
    /// for consumers that model edge jitter explicitly per sample (the
    /// oversampled CDR path, the bathtub sweep), where folding jitter in
    /// a second time would double-count it.
    pub fn flip_probability(&self) -> f64 {
        let margin = self.margin().value();
        if margin <= 0.0 {
            return 0.5;
        }
        q_function(margin / self.noise_sigma.value().max(1e-9))
    }

    /// Per-sample flip probability with RJ + DJ folded into the
    /// amplitude margin as erosion (`jitter_slope` converts the UI
    /// fraction the jitter consumes into lost margin) — for consumers
    /// that do not model edges at all.
    pub fn flip_probability_jitter_eroded(&self) -> f64 {
        // Jitter erodes margin proportionally to how much of the UI the
        // RMS jitter consumes.
        let jitter_frac = self.channel.rj_sigma.value() / self.ui.value()
            + 0.5 * self.channel.dj_pp.value() / self.ui.value();
        let margin = self.margin().value() * (1.0 - self.jitter_slope * jitter_frac).max(0.0);
        if margin <= 0.0 {
            return 0.5;
        }
        q_function(margin / self.noise_sigma.value().max(1e-9))
    }

    /// Analytic BER: Gaussian noise against the amplitude margin,
    /// `Q(margin/σ)`, with jitter folded in as margin erosion.
    pub fn ber_analytic(&self) -> f64 {
        self.flip_probability_jitter_eroded()
    }

    /// Monte-Carlo BER over `n` bits with a seeded PRNG.
    pub fn simulate(&self, n: u64, seed: u64) -> BerEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut margin = self.margin().value();
        let jitter_frac = self.channel.rj_sigma.value() / self.ui.value()
            + 0.5 * self.channel.dj_pp.value() / self.ui.value();
        margin *= (1.0 - self.jitter_slope * jitter_frac).max(0.0);
        let sigma = self.noise_sigma.value().max(1e-9);
        let mut errors = 0u64;
        for _ in 0..n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma;
            if margin + noise < 0.0 {
                errors += 1;
            }
        }
        BerEstimate { bits: n, errors }
    }
}

/// The Gaussian tail probability `Q(x) = 0.5·erfc(x/√2)` via the
/// Abramowitz–Stegun erfc approximation (|ε| < 1.5e-7).
pub fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    0.5 * poly * (-z * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-4);
        assert!((q_function(3.0) - 1.349_9e-3).abs() < 1e-5);
        assert!((q_function(-1.0) - 0.841_345).abs() < 1e-4);
    }

    #[test]
    fn ber_estimate_math() {
        let e = BerEstimate {
            bits: 1000,
            errors: 0,
        };
        assert_eq!(e.ber(), 0.0);
        assert!((e.ber_upper95() - 3e-3).abs() < 1e-9);
        let e = BerEstimate {
            bits: 1_000_000,
            errors: 100,
        };
        assert!((e.ber() - 1e-4).abs() < 1e-12);
    }

    fn behavioral(att_db: f64) -> BehavioralLink {
        let link = AnalogLink::paper_default(Pvt::nominal(), ChannelModel::lossy(att_db));
        BehavioralLink::from_analog(&link, Hertz::from_ghz(2.0)).expect("characterizes")
    }

    #[test]
    fn low_loss_is_error_free() {
        let l = behavioral(10.0);
        assert!(l.margin().value() > 0.0);
        let sim = l.simulate(100_000, 1);
        assert_eq!(sim.errors, 0, "10 dB channel must be clean");
        assert!(l.ber_analytic() < 1e-9);
    }

    #[test]
    fn extreme_loss_fails() {
        let l = behavioral(50.0);
        assert!(l.margin().value() < 0.0, "50 dB closes the eye");
        assert_eq!(l.ber_analytic(), 0.5);
        let sim = l.simulate(10_000, 1);
        assert!(sim.ber() > 0.2);
    }

    #[test]
    fn ber_monotonic_in_loss() {
        let mut prev = 0.0;
        for db in [20.0, 30.0, 36.0, 40.0] {
            let b = behavioral(db).ber_analytic();
            assert!(b >= prev, "BER must grow with loss ({db} dB)");
            prev = b;
        }
    }

    #[test]
    fn paper_operating_point_is_error_free() {
        // 2 Gb/s at 34 dB loss: the paper's headline operating point.
        let l = behavioral(34.0);
        let sim = l.simulate(1_000_000, 7);
        assert_eq!(
            sim.errors,
            0,
            "34 dB @ 2 Gb/s must be error-free (margin {})",
            l.margin().value()
        );
    }

    #[test]
    fn flip_probabilities_order_sensibly() {
        let l = behavioral(34.0);
        assert_eq!(l.ber_analytic(), l.flip_probability_jitter_eroded());
        assert!(
            l.flip_probability() <= l.flip_probability_jitter_eroded(),
            "jitter erosion can only raise the flip probability"
        );
        let closed = behavioral(50.0);
        assert_eq!(closed.flip_probability(), 0.5);
        assert_eq!(closed.flip_probability_jitter_eroded(), 0.5);
    }

    #[test]
    fn simulation_is_seed_deterministic() {
        let l = behavioral(38.0);
        assert_eq!(l.simulate(10_000, 5), l.simulate(10_000, 5));
    }

    #[test]
    fn analog_link_round_trip_clean_channel() {
        // Full transistor-level path at 1 Gb/s over a mild channel.
        let link = AnalogLink::paper_default(Pvt::nominal(), ChannelModel::lossy(20.0));
        let bits = [
            true, false, true, true, false, false, true, false, true, false,
        ];
        let run = link
            .transmit(&bits, Time::from_ns(1.0))
            .expect("transients run");
        let (_, errors) = run.recover(&link.sampler, 3);
        assert_eq!(errors, 0, "clean channel must recover all bits");
    }
}
