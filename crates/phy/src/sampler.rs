//! The flip-flop sampling element (paper §IV-B-b).
//!
//! The restored rail-to-rail signal is captured by a D flip-flop on the
//! recovered clock. The model slices at the clock instant and flags
//! *metastability* when the data crosses the threshold inside the
//! setup/hold aperture — the failure mode the oversampling CDR exists to
//! avoid by picking a sampling phase away from the edges.

use openserdes_analog::Waveform;
use openserdes_pdk::units::{Time, Volt};

/// Outcome of one sampling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// A clean captured bit.
    Bit(bool),
    /// The input moved through the threshold inside the aperture: the
    /// captured value is unreliable.
    Metastable,
}

impl SampleOutcome {
    /// The captured bit, if clean.
    pub fn bit(self) -> Option<bool> {
        match self {
            SampleOutcome::Bit(b) => Some(b),
            SampleOutcome::Metastable => None,
        }
    }
}

/// A D flip-flop sampler model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    /// Decision threshold.
    pub threshold: Volt,
    /// Setup time (aperture before the clock edge).
    pub setup: Time,
    /// Hold time (aperture after the clock edge).
    pub hold: Time,
    /// Clock-to-Q delay (latency bookkeeping).
    pub clk_to_q: Time,
}

impl Sampler {
    /// The library flop at the given supply: mid-rail threshold,
    /// 60 ps/20 ps aperture, 150 ps clock-to-Q.
    pub fn paper_default(vdd: Volt) -> Self {
        Self {
            threshold: Volt::new(0.5 * vdd.value()),
            setup: Time::from_ps(60.0),
            hold: Time::from_ps(20.0),
            clk_to_q: Time::from_ps(150.0),
        }
    }

    /// Samples `waveform` at absolute time `t`.
    pub fn sample_at(&self, waveform: &Waveform, t: f64) -> SampleOutcome {
        let th = self.threshold.value();
        let v = waveform.sample_at(t);
        // Any threshold crossing inside [t-setup, t+hold] is a violation.
        let lo = t - self.setup.value();
        let hi = t + self.hold.value();
        let crossed = waveform
            .crossings(th, true)
            .into_iter()
            .chain(waveform.crossings(th, false))
            .any(|tc| tc >= lo && tc <= hi);
        if crossed {
            SampleOutcome::Metastable
        } else {
            SampleOutcome::Bit(v > th)
        }
    }

    /// Samples a periodic stream: `n` samples starting at `t0`, spaced
    /// `period`.
    pub fn sample_stream(
        &self,
        waveform: &Waveform,
        t0: f64,
        period: f64,
        n: usize,
    ) -> Vec<SampleOutcome> {
        (0..n)
            .map(|k| self.sample_at(waveform, t0 + k as f64 * period))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> Sampler {
        Sampler::paper_default(Volt::new(1.8))
    }

    #[test]
    fn clean_levels_sample_cleanly() {
        let bits = [true, false, true];
        let w = Waveform::nrz(&bits, 1e-9, 50e-12, 0.0, 1.8, 64);
        let s = sampler();
        assert_eq!(s.sample_at(&w, 0.5e-9), SampleOutcome::Bit(true));
        assert_eq!(s.sample_at(&w, 1.5e-9), SampleOutcome::Bit(false));
        assert_eq!(s.sample_at(&w, 2.5e-9), SampleOutcome::Bit(true));
    }

    #[test]
    fn edge_sampling_is_metastable() {
        let w = Waveform::nrz(&[false, true], 1e-9, 100e-12, 0.0, 1.8, 256);
        let s = sampler();
        // The 0→1 edge crosses mid-rail near t = 1.05 ns.
        let edge_t = w.crossings(0.9, true)[0];
        assert_eq!(s.sample_at(&w, edge_t), SampleOutcome::Metastable);
        assert_eq!(s.sample_at(&w, edge_t + 10e-12), SampleOutcome::Metastable);
        // Far from the edge it is clean.
        assert_eq!(s.sample_at(&w, edge_t + 500e-12), SampleOutcome::Bit(true));
    }

    #[test]
    fn stream_sampling_counts() {
        let bits = [true, false, true, true];
        let w = Waveform::nrz(&bits, 1e-9, 50e-12, 0.0, 1.8, 64);
        let out = sampler().sample_stream(&w, 0.5e-9, 1e-9, 4);
        let got: Vec<Option<bool>> = out.into_iter().map(SampleOutcome::bit).collect();
        assert_eq!(got, vec![Some(true), Some(false), Some(true), Some(true)]);
    }

    #[test]
    fn outcome_bit_accessor() {
        assert_eq!(SampleOutcome::Bit(true).bit(), Some(true));
        assert_eq!(SampleOutcome::Metastable.bit(), None);
    }
}
