//! Lossy serial-channel models.
//!
//! The paper characterizes its channel by attenuation (up to 34–40 dB)
//! into a capacitive termination. For BER work we add the impairments
//! that actually close an eye: a low-pass pole (ISI), additive Gaussian
//! noise, and random + deterministic jitter — all seeded and
//! reproducible. Presets cover the application scenarios of §VI-b: PCIe
//! lanes and EMIB-style chiplet interconnects.

use openserdes_analog::noise::{add_gaussian_noise, apply_jitter};
use openserdes_analog::Waveform;
use openserdes_pdk::units::{Hertz, Time, Volt};

/// A serial channel: attenuation, bandwidth and impairments.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    /// Flat attenuation in dB (positive = loss).
    pub attenuation_db: f64,
    /// Single-pole low-pass bandwidth.
    pub bandwidth: Hertz,
    /// RMS additive voltage noise at the receiver input.
    pub noise_sigma: Volt,
    /// RMS random jitter.
    pub rj_sigma: Time,
    /// Peak-to-peak deterministic (sinusoidal) jitter.
    pub dj_pp: Time,
    /// Frequency of the deterministic jitter tone.
    pub dj_freq: Hertz,
    /// PRNG seed for the stochastic impairments.
    pub seed: u64,
}

impl ChannelModel {
    /// An impairment-free wire (useful for calibration).
    pub fn ideal() -> Self {
        Self {
            attenuation_db: 0.0,
            bandwidth: Hertz::from_ghz(1000.0),
            noise_sigma: Volt::new(0.0),
            rj_sigma: Time::new(0.0),
            dj_pp: Time::new(0.0),
            dj_freq: Hertz::from_mhz(100.0),
            seed: 1,
        }
    }

    /// A flat attenuator of `db` with mild wideband behaviour — the
    /// paper's evaluation channel (34 dB at 2 Gb/s).
    pub fn lossy(db: f64) -> Self {
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(6.0),
            noise_sigma: Volt::from_mv(0.3),
            rj_sigma: Time::from_ps(1.5),
            dj_pp: Time::from_ps(3.0),
            dj_freq: Hertz::from_mhz(123.0),
            seed: 0xC0FFEE,
        }
    }

    /// An EMIB-style short-reach chiplet link: 1–5 dB loss, clean.
    pub fn emib(db: f64) -> Self {
        assert!((0.0..=6.0).contains(&db), "EMIB channels lose 1-5 dB");
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(20.0),
            noise_sigma: Volt::from_mv(0.5),
            rj_sigma: Time::from_ps(1.0),
            dj_pp: Time::from_ps(2.0),
            dj_freq: Hertz::from_mhz(200.0),
            seed: 0xE1B,
        }
    }

    /// A PCIe-class board channel: moderate loss, band-limited.
    pub fn pcie(db: f64) -> Self {
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(4.0),
            noise_sigma: Volt::from_mv(2.0),
            rj_sigma: Time::from_ps(3.0),
            dj_pp: Time::from_ps(6.0),
            dj_freq: Hertz::from_mhz(33.0),
            seed: 0x9C1E,
        }
    }

    /// Linear amplitude factor corresponding to the attenuation.
    pub fn gain(&self) -> f64 {
        10.0f64.powf(-self.attenuation_db / 20.0)
    }

    /// Propagates a waveform through the channel: attenuate, low-pass,
    /// jitter, noise. The waveform mean is preserved as the common-mode
    /// reference (the receiver AC-couples anyway).
    pub fn apply(&self, input: &Waveform) -> Waveform {
        let g = self.gain();
        let mid = 0.5 * (input.max() + input.min());
        let attenuated = input.map(|v| mid + (v - mid) * g);

        // Single-pole IIR low-pass.
        let tau = 1.0 / (2.0 * std::f64::consts::PI * self.bandwidth.value());
        let alpha = input.dt() / (tau + input.dt());
        let mut y = attenuated.samples()[0];
        let filtered: Vec<f64> = attenuated
            .samples()
            .iter()
            .map(|&x| {
                y += alpha * (x - y);
                y
            })
            .collect();
        let filtered = Waveform::new(input.t0(), input.dt(), filtered);

        let jittered = apply_jitter(
            &filtered,
            self.rj_sigma.value(),
            self.dj_pp.value(),
            self.dj_freq.value(),
            self.seed,
        );
        add_gaussian_noise(&jittered, self.noise_sigma.value(), self.seed ^ 0x5EED)
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::lossy(34.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern() -> Waveform {
        let bits: Vec<bool> = (0..40).map(|i| (i * 7) % 3 == 0).collect();
        Waveform::nrz(&bits, 500e-12, 25e-12, 0.0, 1.8, 64)
    }

    #[test]
    fn attenuation_is_db_accurate() {
        let mut ch = ChannelModel::ideal();
        ch.attenuation_db = 34.0;
        let out = ch.apply(&pattern());
        let expected = 1.8 * 10f64.powf(-34.0 / 20.0);
        let got = out.amplitude();
        assert!(
            (got - expected).abs() / expected < 0.1,
            "amplitude {got:.4} vs {expected:.4}"
        );
    }

    #[test]
    fn gain_of_34db_is_2_percent() {
        let ch = ChannelModel::lossy(34.0);
        assert!((ch.gain() - 0.01995).abs() < 1e-4);
    }

    #[test]
    fn common_mode_preserved() {
        let mut ch = ChannelModel::ideal();
        ch.attenuation_db = 20.0;
        let out = ch.apply(&pattern());
        assert!((out.mean() - 0.9).abs() < 0.05, "mean = {}", out.mean());
    }

    #[test]
    fn low_bandwidth_slows_edges() {
        let mut fast = ChannelModel::ideal();
        fast.bandwidth = Hertz::from_ghz(50.0);
        let mut slow = ChannelModel::ideal();
        slow.bandwidth = Hertz::from_ghz(1.0);
        let rt_fast = fast.apply(&pattern()).rise_time().expect("edge");
        let rt_slow = slow.apply(&pattern()).rise_time().expect("edge");
        assert!(rt_slow > rt_fast * 2.0, "{rt_slow} vs {rt_fast}");
    }

    #[test]
    fn impairments_are_reproducible() {
        let ch = ChannelModel::lossy(20.0);
        let a = ch.apply(&pattern());
        let b = ch.apply(&pattern());
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn ideal_channel_is_transparent() {
        let ch = ChannelModel::ideal();
        let input = pattern();
        let out = ch.apply(&input);
        let err: f64 = input
            .samples()
            .iter()
            .zip(out.samples())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.05, "max deviation {err}");
    }

    #[test]
    #[should_panic(expected = "EMIB")]
    fn emib_range_checked() {
        let _ = ChannelModel::emib(30.0);
    }
}
