//! Lossy serial-channel models.
//!
//! The paper characterizes its channel by attenuation (up to 34–40 dB)
//! into a capacitive termination. For BER work we add the impairments
//! that actually close an eye: a low-pass pole (ISI), additive Gaussian
//! noise, and random + deterministic jitter — all seeded and
//! reproducible. Presets cover the application scenarios of §VI-b: PCIe
//! lanes and EMIB-style chiplet interconnects.

use openserdes_analog::noise::{add_gaussian_noise, apply_jitter};
use openserdes_analog::Waveform;
use openserdes_fault::{FaultKind, FaultSchedule};
use openserdes_pdk::units::{Hertz, Time, Volt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A serial channel: attenuation, bandwidth and impairments.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    /// Flat attenuation in dB (positive = loss).
    pub attenuation_db: f64,
    /// Single-pole low-pass bandwidth.
    pub bandwidth: Hertz,
    /// RMS additive voltage noise at the receiver input.
    pub noise_sigma: Volt,
    /// RMS random jitter.
    pub rj_sigma: Time,
    /// Peak-to-peak deterministic (sinusoidal) jitter.
    pub dj_pp: Time,
    /// Frequency of the deterministic jitter tone.
    pub dj_freq: Hertz,
    /// PRNG seed for the stochastic impairments.
    pub seed: u64,
}

impl ChannelModel {
    /// An impairment-free wire (useful for calibration).
    pub fn ideal() -> Self {
        Self {
            attenuation_db: 0.0,
            bandwidth: Hertz::from_ghz(1000.0),
            noise_sigma: Volt::new(0.0),
            rj_sigma: Time::new(0.0),
            dj_pp: Time::new(0.0),
            dj_freq: Hertz::from_mhz(100.0),
            seed: 1,
        }
    }

    /// A flat attenuator of `db` with mild wideband behaviour — the
    /// paper's evaluation channel (34 dB at 2 Gb/s).
    pub fn lossy(db: f64) -> Self {
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(6.0),
            noise_sigma: Volt::from_mv(0.3),
            rj_sigma: Time::from_ps(1.5),
            dj_pp: Time::from_ps(3.0),
            dj_freq: Hertz::from_mhz(123.0),
            seed: 0xC0FFEE,
        }
    }

    /// An EMIB-style short-reach chiplet link: 1–5 dB loss, clean.
    pub fn emib(db: f64) -> Self {
        assert!((0.0..=6.0).contains(&db), "EMIB channels lose 1-5 dB");
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(20.0),
            noise_sigma: Volt::from_mv(0.5),
            rj_sigma: Time::from_ps(1.0),
            dj_pp: Time::from_ps(2.0),
            dj_freq: Hertz::from_mhz(200.0),
            seed: 0xE1B,
        }
    }

    /// A PCIe-class board channel: moderate loss, band-limited.
    pub fn pcie(db: f64) -> Self {
        Self {
            attenuation_db: db,
            bandwidth: Hertz::from_ghz(4.0),
            noise_sigma: Volt::from_mv(2.0),
            rj_sigma: Time::from_ps(3.0),
            dj_pp: Time::from_ps(6.0),
            dj_freq: Hertz::from_mhz(33.0),
            seed: 0x9C1E,
        }
    }

    /// Linear amplitude factor corresponding to the attenuation.
    pub fn gain(&self) -> f64 {
        10.0f64.powf(-self.attenuation_db / 20.0)
    }

    /// Propagates a waveform through the channel: attenuate, low-pass,
    /// jitter, noise. The waveform mean is preserved as the common-mode
    /// reference (the receiver AC-couples anyway).
    pub fn apply(&self, input: &Waveform) -> Waveform {
        let g = self.gain();
        let mid = 0.5 * (input.max() + input.min());
        let attenuated = input.map(|v| mid + (v - mid) * g);

        // Single-pole IIR low-pass.
        let tau = 1.0 / (2.0 * std::f64::consts::PI * self.bandwidth.value());
        let alpha = input.dt() / (tau + input.dt());
        let mut y = attenuated.samples()[0];
        let filtered: Vec<f64> = attenuated
            .samples()
            .iter()
            .map(|&x| {
                y += alpha * (x - y);
                y
            })
            .collect();
        let filtered = Waveform::new(input.t0(), input.dt(), filtered);

        let jittered = apply_jitter(
            &filtered,
            self.rj_sigma.value(),
            self.dj_pp.value(),
            self.dj_freq.value(),
            self.seed,
        );
        add_gaussian_noise(&jittered, self.noise_sigma.value(), self.seed ^ 0x5EED)
    }

    /// [`ChannelModel::apply`] under a fault campaign: propagates the
    /// waveform normally, then injects the schedule's *channel* faults
    /// into the received waveform at their UI timestamps (`ui` is one
    /// unit interval of the running link). Clock and digital events are
    /// not the channel's to model and are ignored here — the CDR and
    /// deserializer hooks own them. With no channel events the result
    /// is sample-identical to [`ChannelModel::apply`].
    ///
    /// Fault rendering in the analog domain:
    /// * dropout — the wire sits at the struck rail for the window,
    /// * burst noise — extra seeded Gaussian noise, σ scaled by
    ///   `flip_prob` of the post-channel swing,
    /// * supply droop — the swing collapses toward common mode on a
    ///   triangular profile peaking at `peak_flip_prob`.
    pub fn apply_with_faults(
        &self,
        input: &Waveform,
        schedule: &FaultSchedule,
        ui: Time,
    ) -> Waveform {
        let out = self.apply(input);
        if schedule.channel_events().next().is_none() {
            return out;
        }
        let (lo, hi) = (out.min(), out.max());
        let mid = 0.5 * (lo + hi);
        let swing = hi - lo;
        let mut samples = out.samples().to_vec();
        let (t0, dt) = (out.t0(), out.dt());
        let nsamp = samples.len();
        // Sample index range covering [at_ui, at_ui + duration) UIs.
        let span = |at_ui: u64, duration_ui: u64| -> (usize, usize) {
            let t_lo = at_ui as f64 * ui.value();
            let t_hi = at_ui.saturating_add(duration_ui) as f64 * ui.value();
            let i_lo = ((t_lo - t0) / dt).ceil().max(0.0) as usize;
            let i_hi = (((t_hi - t0) / dt).ceil().max(0.0) as usize).min(nsamp);
            (i_lo.min(nsamp), i_hi)
        };
        for (idx, ev) in schedule.channel_events() {
            match ev.kind {
                FaultKind::Dropout { duration_ui, level } => {
                    let (a, b) = span(ev.at_ui, duration_ui);
                    let rail = if level { hi } else { lo };
                    for s in &mut samples[a..b] {
                        *s = rail;
                    }
                }
                FaultKind::BurstNoise {
                    duration_ui,
                    flip_prob,
                } => {
                    let (a, b) = span(ev.at_ui, duration_ui);
                    let sigma = flip_prob * swing;
                    let mut rng = StdRng::seed_from_u64(schedule.event_seed(idx));
                    for s in &mut samples[a..b] {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen::<f64>();
                        let gauss =
                            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        *s += sigma * gauss;
                    }
                }
                FaultKind::SupplyDroop {
                    duration_ui,
                    peak_flip_prob,
                } => {
                    let (a, b) = span(ev.at_ui, duration_ui);
                    let width = (b - a).max(1) as f64;
                    for (k, s) in samples[a..b].iter_mut().enumerate() {
                        let frac = (k as f64 + 0.5) / width;
                        let collapse = peak_flip_prob * (1.0 - (2.0 * frac - 1.0).abs());
                        *s = mid + (*s - mid) * (1.0 - collapse);
                    }
                }
                _ => {}
            }
        }
        Waveform::new(t0, dt, samples)
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::lossy(34.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern() -> Waveform {
        let bits: Vec<bool> = (0..40).map(|i| (i * 7) % 3 == 0).collect();
        Waveform::nrz(&bits, 500e-12, 25e-12, 0.0, 1.8, 64)
    }

    #[test]
    fn attenuation_is_db_accurate() {
        let mut ch = ChannelModel::ideal();
        ch.attenuation_db = 34.0;
        let out = ch.apply(&pattern());
        let expected = 1.8 * 10f64.powf(-34.0 / 20.0);
        let got = out.amplitude();
        assert!(
            (got - expected).abs() / expected < 0.1,
            "amplitude {got:.4} vs {expected:.4}"
        );
    }

    #[test]
    fn gain_of_34db_is_2_percent() {
        let ch = ChannelModel::lossy(34.0);
        assert!((ch.gain() - 0.01995).abs() < 1e-4);
    }

    #[test]
    fn common_mode_preserved() {
        let mut ch = ChannelModel::ideal();
        ch.attenuation_db = 20.0;
        let out = ch.apply(&pattern());
        assert!((out.mean() - 0.9).abs() < 0.05, "mean = {}", out.mean());
    }

    #[test]
    fn low_bandwidth_slows_edges() {
        let mut fast = ChannelModel::ideal();
        fast.bandwidth = Hertz::from_ghz(50.0);
        let mut slow = ChannelModel::ideal();
        slow.bandwidth = Hertz::from_ghz(1.0);
        let rt_fast = fast.apply(&pattern()).rise_time().expect("edge");
        let rt_slow = slow.apply(&pattern()).rise_time().expect("edge");
        assert!(rt_slow > rt_fast * 2.0, "{rt_slow} vs {rt_fast}");
    }

    #[test]
    fn impairments_are_reproducible() {
        let ch = ChannelModel::lossy(20.0);
        let a = ch.apply(&pattern());
        let b = ch.apply(&pattern());
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn ideal_channel_is_transparent() {
        let ch = ChannelModel::ideal();
        let input = pattern();
        let out = ch.apply(&input);
        let err: f64 = input
            .samples()
            .iter()
            .zip(out.samples())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.05, "max deviation {err}");
    }

    #[test]
    #[should_panic(expected = "EMIB")]
    fn emib_range_checked() {
        let _ = ChannelModel::emib(30.0);
    }

    #[test]
    fn faultless_schedule_is_sample_identical() {
        use openserdes_fault::{FaultEvent, FaultSchedule};
        let ch = ChannelModel::lossy(20.0);
        let input = pattern();
        let ui = Time::from_ps(500.0);
        let plain = ch.apply(&input);
        let empty = ch.apply_with_faults(&input, &FaultSchedule::new(1), ui);
        assert_eq!(plain.samples(), empty.samples(), "empty schedule no-op");
        // Clock/digital events are not channel faults: still a no-op.
        let clocky = FaultSchedule::new(1).with_event(FaultEvent {
            at_ui: 3,
            kind: openserdes_fault::FaultKind::PhaseGlitch { offset_samples: 1 },
        });
        let out = ch.apply_with_faults(&input, &clocky, ui);
        assert_eq!(plain.samples(), out.samples());
    }

    #[test]
    fn dropout_pins_the_window_and_droop_collapses_swing() {
        use openserdes_fault::{FaultEvent, FaultKind, FaultSchedule};
        let ch = ChannelModel::ideal();
        let input = pattern();
        let ui = Time::from_ps(500.0);
        let plain = ch.apply(&input);
        let schedule = FaultSchedule::new(5)
            .with_event(FaultEvent {
                at_ui: 10,
                kind: FaultKind::Dropout {
                    duration_ui: 4,
                    level: false,
                },
            })
            .with_event(FaultEvent {
                at_ui: 25,
                kind: FaultKind::SupplyDroop {
                    duration_ui: 10,
                    peak_flip_prob: 0.8,
                },
            });
        let out = ch.apply_with_faults(&input, &schedule, ui);
        let per_ui = (ui.value() / out.dt()).round() as usize;
        // Inside the dropout every sample sits at the low rail.
        let lo = plain.min();
        for i in 10 * per_ui..14 * per_ui {
            assert!(
                (out.samples()[i] - lo).abs() < 1e-12,
                "sample {i} must be pinned"
            );
        }
        // Outside every fault window the waveform is untouched.
        assert_eq!(out.samples()[..10 * per_ui], plain.samples()[..10 * per_ui]);
        // Mid-droop the swing is collapsed vs the clean waveform.
        let mid = 0.5 * (plain.max() + plain.min());
        let i = 30 * per_ui; // droop midpoint
        assert!(
            (out.samples()[i] - mid).abs() <= (plain.samples()[i] - mid).abs(),
            "droop must pull toward common mode"
        );
        // Deterministic: same inputs, same waveform.
        let again = ch.apply_with_faults(&input, &schedule, ui);
        assert_eq!(out.samples(), again.samples());
    }
}
