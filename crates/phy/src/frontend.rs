//! The all-digital receiver front end (paper §IV-B, Figs. 5–6).
//!
//! An AC-coupling capacitor feeds a **resistive-feedback inverter**: a
//! CMOS inverter whose PMOS pseudo-resistor feedback self-biases the
//! input at the switching threshold (≈ 0.5·VDD), where both devices are
//! in saturation and the stage behaves as a high-gain amplifier for
//! millivolt inputs. A second CMOS inverter restores rail-to-rail
//! levels for the flip-flop sampler. The price of synthesizability is a
//! static current (both devices always on) — quantified by
//! [`RxFrontEnd::static_power`].
//!
//! Besides full transient simulation ([`RxFrontEnd::receive`]), the type
//! exposes a small-signal characterization
//! ([`RxFrontEnd::small_signal`]) from which a fast behavioural
//! sensitivity model is derived ([`RxFrontEnd::sensitivity`]): the
//! minimum input swing that still restores clean logic levels at a given
//! data rate. This is the model behind the paper's Fig. 9 sweeps.

use openserdes_analog::par::bisect_speculative;
use openserdes_analog::primitives::{
    add_inverter, add_resistive_feedback_inverter, FeedbackKind, InverterSize,
};
use openserdes_analog::solver::{
    dc_operating_point, dc_sweep, dc_sweep_with_threads, reference, transient, Solver, SolverError,
    SolverStats, TransientConfig, TransientResult,
};
use openserdes_analog::{Circuit, Node, PointOverride, Stimulus, Waveform};
use openserdes_lint::{LintConfig, LintReport};
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::mos::{MosDevice, MosParams};
use openserdes_pdk::units::{AreaUm2, Farad, Hertz, Time, Volt, Watt};

/// Receiver front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndConfig {
    /// Scale of the gain-stage inverter relative to a unit inverter.
    pub gain_stage_scale: f64,
    /// Scale of the restoring inverter.
    pub restorer_scale: f64,
    /// Feedback element.
    pub feedback: FeedbackKind,
    /// AC-coupling capacitor (off-chip in the paper).
    pub coupling_cap: Farad,
    /// Overdrive the restorer input needs past its threshold to slew
    /// rail-to-rail within a bit, plus mismatch/offset guardband between
    /// the amplifier bias and the restorer threshold.
    pub offset_margin: Volt,
    /// Multiplicative guardband for noise, jitter and PVT in the
    /// behavioural sensitivity model.
    pub snr_margin: f64,
}

impl FrontEndConfig {
    /// The paper's front end.
    pub fn paper_default() -> Self {
        Self {
            gain_stage_scale: 24.0,
            restorer_scale: 24.0,
            feedback: FeedbackKind::PseudoResistor { w: 1.0, l: 0.5 },
            coupling_cap: Farad::from_pf(10.0),
            offset_margin: Volt::from_mv(260.0),
            snr_margin: 2.0,
        }
    }
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Waveforms from a front-end transient run.
#[derive(Debug, Clone)]
pub struct FrontEndWaveforms {
    /// The incoming (channel output) waveform.
    pub input: Waveform,
    /// The AC-coupled, self-biased amplifier input node.
    pub coupled: Waveform,
    /// The gain-stage output.
    pub amplified: Waveform,
    /// The restored rail-to-rail output.
    pub restored: Waveform,
    /// Solver work done for this transient.
    pub stats: SolverStats,
}

/// Small-signal characterization of the front end at its bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallSignal {
    /// Self-bias voltage of the amplifier input/output.
    pub bias: Volt,
    /// Low-frequency voltage gain (positive magnitude).
    pub gain: f64,
    /// Output resistance of the gain stage.
    pub rout: f64,
    /// Capacitive load at the gain-stage output.
    pub cout: Farad,
    /// Dominant pole frequency.
    pub pole: Hertz,
}

impl SmallSignal {
    /// Effective gain for an NRZ pulse of one unit interval: the
    /// single-pole step response sampled at the end of the bit,
    /// `A·(1 − e^(−T/τ))`.
    pub fn gain_at_rate(&self, data_rate: Hertz) -> f64 {
        let t = 1.0 / data_rate.value();
        let tau = self.rout * self.cout.value();
        self.gain * (1.0 - (-t / tau).exp())
    }
}

/// The receiver front end bound to a PVT point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxFrontEnd {
    config: FrontEndConfig,
    pvt: Pvt,
}

impl RxFrontEnd {
    /// Creates a front end.
    pub fn new(config: FrontEndConfig, pvt: Pvt) -> Self {
        Self { config, pvt }
    }

    /// The configuration.
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// Runs the `AN0xx` analog DRC over the assembled front-end circuit
    /// with the source bound to its bias point — the same checks the
    /// solver applies in debug builds, but available unconditionally
    /// for signoff and CI. In particular this proves the AC-coupled
    /// input bias has a DC path through the pseudo-resistor channel.
    pub fn lint(&self) -> LintReport {
        let mut c = Circuit::new();
        let (src, _, _, _) = self.build(&mut c);
        c.vsource(src, Stimulus::Dc(0.5 * self.pvt.vdd.value()));
        c.lint("rx-frontend", &LintConfig::default())
    }

    /// Builds the front-end circuit; returns `(src, vin, vmid, vout)`.
    fn build(&self, c: &mut Circuit) -> (Node, Node, Node, Node) {
        let vdd_v = self.pvt.vdd.value();
        let vdd = c.node("vdd");
        c.vsource(vdd, Stimulus::Dc(vdd_v));
        let src = c.node("rx_src");
        let vin = c.node("rx_in");
        let vmid = c.node("rx_amp");
        let vout = c.node("rx_out");
        c.capacitor(src, vin, self.config.coupling_cap.value());
        add_resistive_feedback_inverter(
            c,
            &self.pvt,
            InverterSize::scaled(self.config.gain_stage_scale),
            self.config.feedback,
            vin,
            vmid,
            vdd,
        );
        add_inverter(
            c,
            &self.pvt,
            InverterSize::scaled(self.config.restorer_scale),
            vmid,
            vout,
            vdd,
        );
        // Sampler load at the restored output.
        c.capacitor(vout, c.gnd(), 5e-15);
        (src, vin, vmid, vout)
    }

    /// Builds the receive circuit with the source bound to `input`;
    /// returns `(circuit, vin, vmid, vout)`.
    fn receive_setup(&self, input: &Waveform) -> (Circuit, Node, Node, Node) {
        let mut c = Circuit::new();
        let (src, vin, vmid, vout) = self.build(&mut c);
        // The AC-coupling capacitor's steady-state charge centres the
        // signal on its mean (reached after ~R_fb·C_c, far beyond any
        // transient span). Model it by pinning the source's first few
        // samples to the mean so the DC operating point charges the cap
        // to the steady-state value.
        let mean = input.mean();
        let settle = input.t0() + 3.0 * input.dt();
        let centered = Waveform::from_fn(input.t0(), input.dt(), input.len(), |t| {
            if t < settle {
                mean
            } else {
                input.sample_at(t)
            }
        });
        c.vsource(src, Stimulus::Wave(centered));
        (c, vin, vmid, vout)
    }

    fn collect(
        input: &Waveform,
        (vin, vmid, vout): (Node, Node, Node),
        res: &TransientResult,
    ) -> FrontEndWaveforms {
        FrontEndWaveforms {
            input: input.clone(),
            coupled: res.waveform(vin).clone(),
            amplified: res.waveform(vmid).clone(),
            restored: res.waveform(vout).clone(),
            stats: *res.stats(),
        }
    }

    /// Transient run of the front end on an incoming waveform.
    ///
    /// Uses adaptive time-stepping: the front end is quiescent between
    /// bit transitions, so the controller stretches steps there and
    /// shrinks them through the amplified edges, with the LTE bound
    /// keeping the restored waveform faithful on the output grid.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn receive(&self, input: &Waveform) -> Result<FrontEndWaveforms, SolverError> {
        let (c, vin, vmid, vout) = self.receive_setup(input);
        let dt = (input.dt()).min(2.0e-12);
        let res = transient(
            &c,
            &TransientConfig::until(input.t_end()).with_adaptive_steps(dt, 128.0 * dt, 8.0e-3),
        )?;
        Ok(Self::collect(input, (vin, vmid, vout), &res))
    }

    /// [`RxFrontEnd::receive`] through the pre-optimization reference
    /// solver (dense rebuilds, fixed stepping) — the baseline the
    /// benchmarks compare against.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn receive_reference(&self, input: &Waveform) -> Result<FrontEndWaveforms, SolverError> {
        let (c, vin, vmid, vout) = self.receive_setup(input);
        let dt = (input.dt()).min(2.0e-12);
        let res =
            reference::transient(&c, &TransientConfig::until(input.t_end()).with_fixed_dt(dt))?;
        Ok(Self::collect(input, (vin, vmid, vout), &res))
    }

    /// Builds the quiescent bias circuit (source grounded); returns the
    /// amplifier input node.
    fn bias_setup(&self, c: &mut Circuit) -> Node {
        let (src, vin, _, _) = self.build(c);
        c.vsource(src, Stimulus::Dc(0.0));
        vin
    }

    /// The DC self-bias point of the amplifier input.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn self_bias(&self) -> Result<Volt, SolverError> {
        let mut c = Circuit::new();
        let vin = self.bias_setup(&mut c);
        let v = dc_operating_point(&c)?;
        Ok(Volt::new(v[vin.index()]))
    }

    /// Self-bias points of several front-end variants solved as **one
    /// lockstep batch**: each variant's bias circuit is diffed against
    /// the first one's ([`PointOverride::diff`]), so PVT corners —
    /// which change device parameters and parasitic values but not
    /// topology — share a single stamp plan and Newton iteration loop
    /// in the batched DC engine. A variant that differs structurally
    /// (e.g. a different feedback kind) falls back to its own
    /// sequential [`RxFrontEnd::self_bias`] solve.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure in input order.
    pub fn self_bias_batched(fes: &[RxFrontEnd]) -> Result<Vec<Volt>, SolverError> {
        let Some(first) = fes.first() else {
            return Ok(Vec::new());
        };
        let mut base = Circuit::new();
        let vin = first.bias_setup(&mut base);
        let mut out: Vec<Option<Volt>> = vec![None; fes.len()];
        let mut indices = Vec::with_capacity(fes.len());
        let mut points = Vec::with_capacity(fes.len());
        for (i, fe) in fes.iter().enumerate() {
            let mut c = Circuit::new();
            fe.bias_setup(&mut c);
            match PointOverride::diff(&base, &c) {
                Some(ov) => {
                    indices.push(i);
                    points.push(ov);
                }
                None => out[i] = Some(fe.self_bias()?),
            }
        }
        let res = Solver::new(&base).dc_batched(&points);
        for (i, r) in indices.into_iter().zip(res.into_results()) {
            out[i] = Some(Volt::new(r?[vin.index()]));
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("every point solved or retired"))
            .collect())
    }

    /// Builds the bare gain-stage inverter VTC circuit; returns
    /// `(circuit, vout, sweep points)`. The swept source is index 1.
    fn vtc_setup(&self, points: usize) -> (Circuit, Node, Vec<f64>) {
        let vdd_v = self.pvt.vdd.value();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.vsource(vdd, Stimulus::Dc(vdd_v));
        let vin = c.node("vin");
        c.vsource(vin, Stimulus::Dc(0.0));
        let vout = c.node("vout");
        add_inverter(
            &mut c,
            &self.pvt,
            InverterSize::scaled(self.config.gain_stage_scale),
            vin,
            vout,
            vdd,
        );
        let xs: Vec<f64> = (0..points)
            .map(|i| vdd_v * i as f64 / (points - 1) as f64)
            .collect();
        (c, vout, xs)
    }

    /// DC voltage-transfer curve of the bare gain-stage inverter
    /// (Fig. 6a), as `(vin, vout)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn vtc(&self, points: usize) -> Result<Vec<(f64, f64)>, SolverError> {
        let (c, vout, xs) = self.vtc_setup(points);
        let sweep = dc_sweep(&c, 1, &xs)?;
        Ok(xs
            .into_iter()
            .zip(sweep.iter().map(|v| v[vout.index()]))
            .collect())
    }

    /// [`RxFrontEnd::vtc`] fanned across `threads` workers. Each
    /// fixed-width chunk is solved by the batched multi-point DC engine
    /// (all points of a chunk iterate in lockstep on one stamp plan),
    /// so the result is worker-count-independent **and** bit-identical
    /// to `openserdes_analog::dc_sweep_batched` on the same grid.
    /// Individual points may still differ from the sequential
    /// [`RxFrontEnd::vtc`], which warm-starts each point from its
    /// neighbour (continuation).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn vtc_with_threads(
        &self,
        points: usize,
        threads: usize,
    ) -> Result<Vec<(f64, f64)>, SolverError> {
        let (c, vout, xs) = self.vtc_setup(points);
        let sweep = dc_sweep_with_threads(&c, 1, &xs, threads)?;
        Ok(xs
            .into_iter()
            .zip(sweep.iter().map(|v| v[vout.index()]))
            .collect())
    }

    /// Small-signal characterization at the self-bias point.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn small_signal(&self) -> Result<SmallSignal, SolverError> {
        Ok(self.small_signal_with_bias(self.self_bias()?))
    }

    /// Small-signal characterization at a *known* bias point — the
    /// solver-free half of [`RxFrontEnd::small_signal`], for when the
    /// bias came out of a batched corner solve
    /// ([`RxFrontEnd::self_bias_batched`]).
    pub fn small_signal_with_bias(&self, bias: Volt) -> SmallSignal {
        let bias = bias.value();
        let vdd = self.pvt.vdd.value();
        let k = self.config.gain_stage_scale;
        let nmos = MosDevice::new(MosParams::sky130_nmos(&self.pvt), 0.65 * k, 0.15);
        let pmos = MosDevice::new(MosParams::sky130_pmos(&self.pvt), 1.0 * k, 0.15);
        let en = nmos.eval(bias, bias);
        let ep = pmos.eval(vdd - bias, vdd - bias);
        let g_fb = match self.config.feedback {
            FeedbackKind::Ideal(r) => 1.0 / r,
            FeedbackKind::PseudoResistor { w, l } => {
                let dev = MosDevice::new(MosParams::sky130_pmos(&self.pvt), w, l);
                // Conductance of the near-off device around zero bias.
                dev.eval(0.0, 0.05).id / 0.05
            }
        };
        let gm = en.gm + ep.gm;
        let gout = en.gds + ep.gds + g_fb;
        let rk = self.config.restorer_scale;
        let rest_n = MosDevice::new(MosParams::sky130_nmos(&self.pvt), 0.65 * rk, 0.15);
        let rest_p = MosDevice::new(MosParams::sky130_pmos(&self.pvt), 1.0 * rk, 0.15);
        let cout = rest_n.gate_cap().value()
            + rest_p.gate_cap().value()
            + nmos.drain_cap().value()
            + pmos.drain_cap().value();
        let rout = 1.0 / gout;
        SmallSignal {
            bias: Volt::new(bias),
            gain: gm * rout,
            rout,
            cout: Farad::new(cout),
            pole: Hertz::new(1.0 / (2.0 * std::f64::consts::PI * rout * cout)),
        }
    }

    /// Behavioural sensitivity: the minimum peak-to-peak input swing
    /// that still yields rail-to-rail restored output at `data_rate`.
    ///
    /// Model: the restorer needs its input to move
    /// `VDD/2 / A_eff + offset_margin` past its threshold within a bit;
    /// the gain stage provides `A_eff`; `snr_margin` guards noise,
    /// jitter and PVT.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the characterization.
    pub fn sensitivity(&self, data_rate: Hertz) -> Result<Volt, SolverError> {
        Ok(self.sensitivity_with(&self.small_signal()?, data_rate))
    }

    /// [`RxFrontEnd::sensitivity`] evaluated against an existing
    /// characterization — infallible, so sweeps characterize once
    /// (one DC solve) and evaluate every data rate from it.
    pub fn sensitivity_with(&self, ss: &SmallSignal, data_rate: Hertz) -> Volt {
        let a_eff = ss.gain_at_rate(data_rate).max(1e-3);
        let vdd = self.pvt.vdd.value();
        let restorer_need = 0.5 * vdd / a_eff + self.config.offset_margin.value();
        Volt::new(2.0 * restorer_need / a_eff * self.config.snr_margin)
    }

    /// Maximum tolerable channel loss in dB at `data_rate` for a
    /// transmitter swing of `tx_swing`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn max_loss_db(&self, data_rate: Hertz, tx_swing: Volt) -> Result<f64, SolverError> {
        let sens = self.sensitivity(data_rate)?;
        Ok(20.0 * (tx_swing.value() / sens.value()).log10())
    }

    /// Measured sensitivity: bisects the peak-to-peak input swing with
    /// full transient runs, probing whether an 8-bit pattern at
    /// `data_rate` still restores rail-to-rail at the output. Unlike the
    /// behavioural [`RxFrontEnd::sensitivity`] it carries no
    /// noise/offset guardbands — it is the raw circuit threshold.
    ///
    /// The bisection runs on the speculative engine
    /// ([`bisect_speculative`]), so the probe sequence — and therefore
    /// the returned value, bit for bit — is identical for any `threads`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the probes the bisection uses.
    pub fn sensitivity_measured(
        &self,
        data_rate: Hertz,
        threads: usize,
    ) -> Result<Volt, SolverError> {
        let ui = 1.0 / data_rate.value();
        let bits = [true, false, true, true, false, false, true, false];
        let vdd = self.pvt.vdd.value();
        let mid = 0.5 * vdd;
        let restores = |swing_pp: f64| -> Result<bool, SolverError> {
            let input = Waveform::nrz(
                &bits,
                ui,
                ui / 10.0,
                mid - 0.5 * swing_pp,
                mid + 0.5 * swing_pp,
                32,
            );
            let waves = self.receive(&input)?;
            Ok(waves.restored.amplitude() > 0.8 * vdd)
        };
        let (lo, hi) = (0.2e-3, 50.0e-3);
        if restores(lo)? {
            return Ok(Volt::new(lo));
        }
        if !restores(hi)? {
            return Ok(Volt::new(hi));
        }
        // Bracket invariant: `lo` fails, `hi` restores; the probe returns
        // `true` (move `lo` up) while the swing still fails.
        let (_, hi) = bisect_speculative(lo, hi, 0.5e-3, threads, |swing| {
            restores(swing).map(|ok| !ok)
        })?;
        Ok(Volt::new(hi))
    }

    /// Maximum tolerable channel loss in dB at `data_rate` for a
    /// transmitter swing of `tx_swing`, against the *measured*
    /// sensitivity ([`RxFrontEnd::sensitivity_measured`]).
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the bisection probes.
    pub fn max_loss_db_measured(
        &self,
        data_rate: Hertz,
        tx_swing: Volt,
        threads: usize,
    ) -> Result<f64, SolverError> {
        let sens = self.sensitivity_measured(data_rate, threads)?;
        Ok(20.0 * (tx_swing.value() / sens.value()).log10())
    }

    /// Static power: the quiescent current of both always-on inverters
    /// times the supply — the cost of the synthesizable analog front end
    /// the paper calls out.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn static_power(&self) -> Result<Watt, SolverError> {
        let bias = self.self_bias()?.value();
        let vdd = self.pvt.vdd.value();
        let mut current = 0.0;
        for k in [self.config.gain_stage_scale, self.config.restorer_scale] {
            let nmos = MosDevice::new(MosParams::sky130_nmos(&self.pvt), 0.65 * k, 0.15);
            current += nmos.ids(bias, bias);
        }
        Ok(Watt::new(current * vdd))
    }

    /// Area estimate (device width at standard-cell density plus the
    /// pseudo-resistor and local routing).
    pub fn area(&self) -> AreaUm2 {
        let w_total = (0.65 + 1.0) * (self.config.gain_stage_scale + self.config.restorer_scale);
        AreaUm2::new(w_total * 2.3 + 20.0)
    }

    /// Recovers bits by slicing the restored output at bit centres.
    pub fn slice(
        &self,
        waves: &FrontEndWaveforms,
        bit_time: Time,
        phase: Time,
        count: usize,
    ) -> Vec<bool> {
        waves.restored.slice_bits(
            bit_time.value(),
            phase.value(),
            0.5 * self.pvt.vdd.value(),
            count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe() -> RxFrontEnd {
        RxFrontEnd::new(FrontEndConfig::paper_default(), Pvt::nominal())
    }

    #[test]
    fn frontend_circuit_lints_clean() {
        // The AC-coupled input is biased only through the PMOS
        // pseudo-resistor channel — AN001 must accept that DC path.
        let report = fe().lint();
        assert!(report.is_clean(), "DRC findings:\n{report}");
    }

    #[test]
    fn self_bias_near_half_vdd() {
        let b = fe().self_bias().expect("solves").value();
        assert!((0.7..1.1).contains(&b), "bias = {b:.3} V (Fig. 6a)");
    }

    #[test]
    fn vtc_is_an_inverter_curve() {
        let vtc = fe().vtc(37).expect("sweeps");
        assert!(vtc.first().expect("points").1 > 1.7);
        assert!(vtc.last().expect("points").1 < 0.1);
        for w in vtc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "monotone falling");
        }
    }

    #[test]
    fn small_signal_gain_is_high() {
        let ss = fe().small_signal().expect("solves");
        assert!(ss.gain > 10.0, "A0 = {:.1}", ss.gain);
        assert!(ss.pole.mhz() > 50.0, "pole = {:.0} MHz", ss.pole.mhz());
        // Effective gain falls with data rate.
        let g1 = ss.gain_at_rate(Hertz::from_ghz(1.0));
        let g4 = ss.gain_at_rate(Hertz::from_ghz(4.0));
        assert!(g4 < g1);
    }

    #[test]
    fn sensitivity_tens_of_mv_at_2g() {
        // Paper: ≈ 32 mV at 2 GHz.
        let s = fe().sensitivity(Hertz::from_ghz(2.0)).expect("solves");
        assert!(
            (10.0..120.0).contains(&s.mv()),
            "sensitivity = {:.1} mV",
            s.mv()
        );
    }

    #[test]
    fn sensitivity_degrades_with_rate() {
        let f = fe();
        let mut prev = 0.0;
        for ghz in [0.5, 1.0, 2.0, 3.0] {
            let s = f.sensitivity(Hertz::from_ghz(ghz)).expect("solves").mv();
            assert!(s > prev, "sensitivity must grow with rate ({ghz} GHz)");
            prev = s;
        }
    }

    #[test]
    fn max_loss_falls_with_rate() {
        let f = fe();
        let l1 = f
            .max_loss_db(Hertz::from_ghz(1.0), Volt::new(1.8))
            .expect("ok");
        let l3 = f
            .max_loss_db(Hertz::from_ghz(3.0), Volt::new(1.8))
            .expect("ok");
        assert!(l1 > l3, "loss tolerance must shrink with rate");
        assert!((20.0..50.0).contains(&l1), "max loss @1G = {l1:.1} dB");
    }

    #[test]
    fn static_power_nonzero() {
        // The paper's §IV-B-a: always-on path from supply to ground.
        let p = fe().static_power().expect("solves");
        assert!(p.mw() > 0.1, "static power = {:.3} mW", p.mw());
        assert!(p.mw() < 20.0);
    }

    #[test]
    fn recovers_attenuated_pattern_end_to_end() {
        // 60 mV swing around mid-rail at 1 Gb/s — must restore cleanly.
        let bits = [true, false, true, true, false, false, true, false];
        let input = Waveform::nrz(&bits, 1e-9, 50e-12, 0.87, 0.93, 128);
        let f = fe();
        let waves = f.receive(&input).expect("transient runs");
        assert!(
            waves.restored.amplitude() > 1.5,
            "restored swing = {:.2} V",
            waves.restored.amplitude()
        );
        // The gain stage inverts; the restorer inverts again: polarity
        // preserved. Skip the first 2 bits (bias settling).
        let got = waves.restored.slice_bits(1e-9, 2.5e-9, 0.9, bits.len() - 3);
        let expect: Vec<bool> = bits[2..bits.len() - 1].to_vec();
        assert_eq!(got[..expect.len().min(got.len())], expect[..]);
        // The adaptive controller must actually be coarsening: fewer
        // steps taken than the uniform output grid has points.
        let s = waves.stats;
        assert!(s.steps_taken > 0, "stats must be populated");
        assert!(
            s.steps_taken < waves.restored.len() as u64,
            "adaptive took {} steps for a {}-point grid",
            s.steps_taken,
            waves.restored.len()
        );
    }

    #[test]
    fn reference_receive_agrees_with_adaptive() {
        let bits = [true, false, false, true];
        let input = Waveform::nrz(&bits, 1e-9, 50e-12, 0.84, 0.96, 64);
        let f = fe();
        let fast = f.receive(&input).expect("adaptive runs");
        let slow = f.receive_reference(&input).expect("reference runs");
        // Same uniform grid, waveforms close after bias settling.
        let err = fast.restored.max_abs_diff(&slow.restored);
        assert!(err < 0.2, "restored max |diff| = {err:.3} V");
        assert!(slow.stats.steps_taken == 0, "reference reports no stats");
    }

    #[test]
    fn vtc_with_threads_is_worker_count_independent() {
        let f = fe();
        let base = f.vtc_with_threads(33, 1).expect("sweeps");
        for w in base.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "monotone falling");
        }
        for threads in [2, 4, 8] {
            let vtc = f.vtc_with_threads(33, threads).expect("sweeps");
            assert_eq!(vtc.len(), base.len());
            for (a, b) in vtc.iter().zip(&base) {
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn measured_sensitivity_is_mv_scale_and_thread_independent() {
        let f = fe();
        let rate = Hertz::from_ghz(2.0);
        let s1 = f.sensitivity_measured(rate, 1).expect("bisects");
        assert!(
            (0.2..60.0).contains(&s1.mv()),
            "measured sensitivity = {:.2} mV",
            s1.mv()
        );
        let s4 = f.sensitivity_measured(rate, 4).expect("bisects");
        assert_eq!(
            s1.value().to_bits(),
            s4.value().to_bits(),
            "{} vs {} mV",
            s1.mv(),
            s4.mv()
        );
        // The raw circuit threshold carries no guardbands, so it must be
        // at least as good as the behavioural model's number.
        let model = f.sensitivity(rate).expect("characterizes");
        assert!(s1.value() <= model.value());
    }

    #[test]
    fn batched_self_bias_matches_sequential_per_corner() {
        // The three classic corners differ only in device parameters
        // and parasitic values, so they batch onto one stamp plan; the
        // retirement contract makes each point equal its own
        // sequential solve.
        let fes: Vec<RxFrontEnd> = [Pvt::nominal(), Pvt::worst_case(), Pvt::best_case()]
            .into_iter()
            .map(|pvt| RxFrontEnd::new(FrontEndConfig::paper_default(), pvt))
            .collect();
        let batched = RxFrontEnd::self_bias_batched(&fes).expect("batch solves");
        assert_eq!(batched.len(), fes.len());
        for (fe, got) in fes.iter().zip(&batched) {
            let want = fe.self_bias().expect("solves");
            assert!(
                (got.value() - want.value()).abs() < 1e-9,
                "corner {:?}: batched {} vs sequential {}",
                fe.pvt.corner,
                got.value(),
                want.value()
            );
        }
        assert!(RxFrontEnd::self_bias_batched(&[])
            .expect("empty")
            .is_empty());
    }

    #[test]
    fn sensitivity_with_matches_sensitivity() {
        let f = fe();
        let ss = f.small_signal().expect("characterizes");
        for ghz in [0.5, 1.0, 2.0, 4.0] {
            let rate = Hertz::from_ghz(ghz);
            let a = f.sensitivity(rate).expect("solves").value();
            let b = f.sensitivity_with(&ss, rate).value();
            assert_eq!(a.to_bits(), b.to_bits(), "{ghz} GHz");
        }
    }

    #[test]
    fn area_is_small() {
        let a = fe().area().value();
        assert!((50.0..5000.0).contains(&a), "area = {a:.0} µm²");
    }
}
