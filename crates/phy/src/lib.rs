//! # openserdes-phy
//!
//! The physical layer of the OpenSerDes link, built from the paper's
//! circuit pieces:
//!
//! * [`TxDriver`] — the tapered CMOS inverter transmit driver sized for a
//!   2 pF termination (Fig. 4),
//! * [`ChannelModel`] — lossy channels with bandwidth, noise and jitter
//!   (34 dB evaluation channel, PCIe and EMIB presets from §VI-b),
//! * [`RxFrontEnd`] — the AC-coupled resistive-feedback-inverter receiver
//!   with restorer (Figs. 5–6), including small-signal characterization
//!   and the behavioural sensitivity model behind Fig. 9,
//! * [`Sampler`] — the D-flip-flop sampling element with a metastability
//!   aperture,
//! * [`AnalogLink`] / [`BehavioralLink`] — end-to-end pipelines at
//!   transistor-level and bit-level fidelity.
//!
//! ```no_run
//! use openserdes_phy::{AnalogLink, ChannelModel};
//! use openserdes_pdk::corner::Pvt;
//! use openserdes_pdk::units::Time;
//!
//! let link = AnalogLink::paper_default(Pvt::nominal(), ChannelModel::lossy(20.0));
//! let run = link.transmit(&[true, false, true, true], Time::from_ps(500.0))?;
//! let (bits, errors) = run.recover(&link.sampler, 1);
//! assert_eq!(errors, 0);
//! # let _ = bits;
//! # Ok::<(), openserdes_analog::SolverError>(())
//! ```

#![warn(missing_docs)]

mod channel;
mod driver;
pub mod ffe;
mod frontend;
pub mod mismatch;
mod pipeline;
pub mod rxeq;
mod sampler;

pub use channel::ChannelModel;
pub use driver::{DriverConfig, DriverWaveforms, TxDriver};
pub use ffe::TxFfe;
pub use frontend::{FrontEndConfig, FrontEndWaveforms, RxFrontEnd, SmallSignal};
pub use mismatch::{monte_carlo, MismatchStats};
pub use pipeline::{q_function, AnalogLink, BehavioralLink, BerEstimate, LinkRun};
pub use rxeq::{Ctle, Dfe};
pub use sampler::{SampleOutcome, Sampler};

pub use openserdes_analog::primitives::FeedbackKind;
