//! The voltage-mode CMOS transmit driver (paper §IV-A-b, Fig. 4).
//!
//! A tapered three-stage inverter chain sized to drive the 2 pF channel
//! termination rail-to-rail at multi-Gb/s. Voltage-mode drivers burn less
//! power than current-mode drivers; the cost is edge rate into heavy
//! loads, which the taper handles.

use openserdes_analog::primitives::{add_inverter_chain, InverterSize};
use openserdes_analog::solver::{
    reference, transient, SolverError, SolverStats, TransientConfig, TransientResult,
};
use openserdes_analog::{Circuit, Node, Stimulus, Waveform};
use openserdes_lint::{LintConfig, LintReport};
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::mos::{MosDevice, MosParams};
use openserdes_pdk::units::{AreaUm2, Farad, Hertz, Time, Watt};

/// Transmit driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Number of inverter stages.
    pub stages: usize,
    /// Per-stage size multiplication factor.
    pub taper: f64,
    /// Scale of the first stage relative to a unit inverter.
    pub first_stage_scale: f64,
    /// Capacitive load at the channel input.
    pub load: Farad,
}

impl DriverConfig {
    /// The paper's driver: three stages into 2 pF.
    ///
    /// With a unit first stage and the default taper the final stage is
    /// large enough to slew 2 pF rail-to-rail inside a 500 ps unit
    /// interval.
    pub fn paper_default() -> Self {
        Self {
            stages: 3,
            taper: 8.0,
            first_stage_scale: 1.5,
            load: Farad::from_pf(2.0),
        }
    }

    /// The per-stage inverter sizes.
    pub fn sizes(&self) -> Vec<InverterSize> {
        (0..self.stages)
            .map(|i| InverterSize::scaled(self.first_stage_scale * self.taper.powi(i as i32)))
            .collect()
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Waveforms captured from a driver transient run.
#[derive(Debug, Clone)]
pub struct DriverWaveforms {
    /// The ideal rail-to-rail input.
    pub input: Waveform,
    /// The driver output at the channel input (across the load).
    pub output: Waveform,
    /// Every intermediate stage output.
    pub stages: Vec<Waveform>,
    /// Solver work done for this transient.
    pub stats: SolverStats,
}

/// The sized transmit driver bound to a PVT point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxDriver {
    config: DriverConfig,
    pvt: Pvt,
}

impl TxDriver {
    /// Creates a driver.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero stages.
    pub fn new(config: DriverConfig, pvt: Pvt) -> Self {
        assert!(config.stages >= 1, "driver needs at least one stage");
        Self { config, pvt }
    }

    /// The configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Runs the `AN0xx` analog DRC over the assembled driver circuit —
    /// the same checks the solver applies in debug builds, but
    /// available unconditionally for signoff and CI.
    pub fn lint(&self) -> LintReport {
        let (c, _, _) = self.build(&[false, true], Time::from_ps(500.0));
        c.lint("tx-driver", &LintConfig::default())
    }

    /// Builds the driver circuit; returns `(circuit, input, stage outs)`.
    fn build(&self, bits: &[bool], bit_time: Time) -> (Circuit, Waveform, Vec<Node>) {
        let vdd_v = self.pvt.vdd.value();
        let ui = bit_time.value();
        let input = Waveform::nrz(bits, ui, ui / 20.0, 0.0, vdd_v, 64);

        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("vin");
        c.vsource(vdd, Stimulus::Dc(vdd_v));
        c.vsource(vin, Stimulus::Wave(input.clone()));
        let outs = add_inverter_chain(&mut c, &self.pvt, &self.config.sizes(), vin, vdd);
        let out = *outs.last().expect("at least one stage");
        c.capacitor(out, c.gnd(), self.config.load.value());
        (c, input, outs)
    }

    fn collect(input: Waveform, outs: &[Node], res: &TransientResult) -> DriverWaveforms {
        let out = *outs.last().expect("at least one stage");
        DriverWaveforms {
            input,
            output: res.waveform(out).clone(),
            stages: outs.iter().map(|&n| res.waveform(n).clone()).collect(),
            stats: *res.stats(),
        }
    }

    /// Runs a transient of the driver transmitting `bits` at `bit_time`,
    /// including one trailing bit period for settling.
    ///
    /// Uses adaptive time-stepping: the driver output slews hard at bit
    /// edges but is flat between them, so the step-doubling controller
    /// skips most of each UI while the LTE bound keeps edges sharp. The
    /// result is resampled onto the same uniform grid a fixed run uses.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn drive(&self, bits: &[bool], bit_time: Time) -> Result<DriverWaveforms, SolverError> {
        let (c, input, outs) = self.build(bits, bit_time);
        let ui = bit_time.value();
        let t_end = (bits.len() + 1) as f64 * ui;
        let dt = (ui / 250.0).min(2.0e-12);
        let res = transient(
            &c,
            &TransientConfig::until(t_end).with_adaptive_steps(dt, 128.0 * dt, 8.0e-3),
        )?;
        Ok(Self::collect(input, &outs, &res))
    }

    /// [`TxDriver::drive`] through the pre-optimization reference solver
    /// (dense rebuilds, fixed stepping) — the baseline the benchmarks
    /// compare against.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn drive_reference(
        &self,
        bits: &[bool],
        bit_time: Time,
    ) -> Result<DriverWaveforms, SolverError> {
        let (c, input, outs) = self.build(bits, bit_time);
        let ui = bit_time.value();
        let t_end = (bits.len() + 1) as f64 * ui;
        let dt = (ui / 250.0).min(2.0e-12);
        let res = reference::transient(&c, &TransientConfig::until(t_end).with_fixed_dt(dt))?;
        Ok(Self::collect(input, &outs, &res))
    }

    /// Dynamic power estimate at the given data rate: `α·C·V²·f` over the
    /// load and every stage's input/parasitic capacitance, α = 0.5
    /// (random data toggles half the cycles). The termination sits
    /// behind the attenuating channel network, so only part of it swings
    /// the full rail — modelled by a 0.55 effective-load fraction.
    pub fn power(&self, data_rate: Hertz) -> Watt {
        let vdd = self.pvt.vdd.value();
        let mut c_total = self.config.load.value() * 0.55;
        for size in self.config.sizes() {
            let nmos = MosDevice::new(MosParams::sky130_nmos(&self.pvt), size.wn, 0.15);
            let pmos = MosDevice::new(MosParams::sky130_pmos(&self.pvt), size.wp, 0.15);
            c_total += nmos.gate_cap().value()
                + pmos.gate_cap().value()
                + nmos.drain_cap().value()
                + pmos.drain_cap().value();
        }
        // Short-circuit current adds ~15 % on top of C·V²·f in a well-
        // tapered chain.
        Watt::new(0.5 * c_total * vdd * vdd * data_rate.value() * 1.15)
    }

    /// Layout-area estimate: total device width at the standard-cell
    /// density (≈ 2.3 µm² per µm of transistor width for diffusion,
    /// poly and local routing).
    pub fn area(&self) -> AreaUm2 {
        let total_w: f64 = self.config.sizes().iter().map(|s| s.wn + s.wp).sum();
        AreaUm2::new(total_w * 2.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> TxDriver {
        TxDriver::new(DriverConfig::paper_default(), Pvt::nominal())
    }

    #[test]
    fn rail_to_rail_at_2gbps_into_2pf() {
        // The paper's Fig. 4(b): full swing at 2 Gb/s with 2 pF.
        let bits = [true, false, true, true, false, false, true, false];
        let w = driver()
            .drive(&bits, Time::from_ps(500.0))
            .expect("transient runs");
        let swing = w.output.amplitude();
        assert!(swing > 1.7, "output swing = {swing:.3} V");
        // Sliced at bit centres the output reproduces the pattern
        // (three inverting stages -> inverted polarity).
        let sliced = w
            .output
            .slice_bits(500e-12, 0.75 * 500e-12, 0.9, bits.len());
        let expected: Vec<bool> = bits.iter().map(|&b| !b).collect();
        assert_eq!(sliced, expected);
    }

    #[test]
    fn output_edges_fit_in_a_ui() {
        let bits = [false, true, false];
        let w = driver()
            .drive(&bits, Time::from_ps(500.0))
            .expect("transient runs");
        let rt = w.output.rise_time();
        // 20–80 % edge must fit comfortably inside the 500 ps UI.
        let rt = rt.expect("output falls then rises? at least one edge") * 1e12;
        assert!(rt < 350.0, "rise time = {rt:.0} ps");
    }

    #[test]
    fn smaller_load_is_faster() {
        let mut cfg = DriverConfig::paper_default();
        cfg.load = Farad::from_ff(200.0);
        let light = TxDriver::new(cfg, Pvt::nominal());
        let bits = [false, true, false];
        let heavy_w = driver().drive(&bits, Time::from_ps(500.0)).expect("ok");
        let light_w = light.drive(&bits, Time::from_ps(500.0)).expect("ok");
        let rt_heavy = heavy_w.output.rise_time().expect("edge");
        let rt_light = light_w.output.rise_time().expect("edge");
        assert!(rt_light < rt_heavy);
    }

    #[test]
    fn taper_produces_growing_stages() {
        let sizes = DriverConfig::paper_default().sizes();
        assert_eq!(sizes.len(), 3);
        assert!(sizes[1].wn > sizes[0].wn * 4.0);
        assert!(sizes[2].wn > sizes[1].wn * 4.0);
    }

    #[test]
    fn power_scales_with_rate_and_is_mw_scale() {
        let d = driver();
        let p2g = d.power(Hertz::from_ghz(2.0));
        let p1g = d.power(Hertz::from_ghz(1.0));
        assert!((p2g.value() / p1g.value() - 2.0).abs() < 1e-12);
        // The paper's TX burns 4.5 mW at 2 GHz; ours must land within a
        // small factor (same order).
        assert!(
            (1.0..12.0).contains(&p2g.mw()),
            "TX power = {:.2} mW",
            p2g.mw()
        );
    }

    #[test]
    fn area_is_tiny_fraction_of_a_square_mm() {
        // Fig. 11: the driver is ~0.2 % of 0.24 mm² ≈ 480 µm².
        let a = driver().area();
        assert!(
            (50.0..2000.0).contains(&a.value()),
            "driver area = {:.0} µm²",
            a.value()
        );
    }

    #[test]
    fn driver_circuit_lints_clean() {
        let report = driver().lint();
        assert!(report.is_clean(), "DRC findings:\n{report}");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        let mut cfg = DriverConfig::paper_default();
        cfg.stages = 0;
        let _ = TxDriver::new(cfg, Pvt::nominal());
    }
}
