//! Receive-side equalization — the RX equalization block of the paper's
//! generic SerDes architecture (§III, Fig. 3): a CTLE (continuous-time
//! linear equalizer) that peaks the high frequencies a lossy channel
//! attenuated, and a DFE (decision-feedback equalizer) that subtracts
//! the trailing ISI of already-decided bits.
//!
//! Like the TX FFE these are extensions: the paper's all-digital design
//! relies on the resistive-feedback inverter alone because its channels
//! are flat, but §III names CTLE/DFE as the standard alternatives, and a
//! downstream user pointing this SerDes at a real PCIe trace will want
//! them.

use crate::channel::ChannelModel;
use openserdes_analog::{EyeDiagram, Waveform};
use openserdes_pdk::units::Hertz;

/// A first-order peaking CTLE: one zero (boost onset) and one pole
/// (bandwidth limit), unity DC gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ctle {
    /// Peaking strength: how much of the high-pass content is added
    /// back (0 = flat, 2–4 = typical 6–12 dB of peaking).
    pub boost: f64,
    /// Zero frequency — boost engages above this.
    pub zero: Hertz,
    /// Pole frequency — the equalizer's own bandwidth.
    pub pole: Hertz,
}

impl Ctle {
    /// A CTLE tuned for NRZ at `rate`: zero at rate/4, pole at rate,
    /// with the given boost.
    pub fn for_rate(rate: Hertz, boost: f64) -> Self {
        Self {
            boost,
            zero: Hertz::new(rate.value() / 4.0),
            pole: rate,
        }
    }

    /// One-pole low-pass IIR over a waveform.
    fn lowpass(w: &Waveform, corner: Hertz) -> Waveform {
        let tau = 1.0 / (2.0 * std::f64::consts::PI * corner.value());
        let alpha = w.dt() / (tau + w.dt());
        let mut y = w.samples()[0];
        let out: Vec<f64> = w
            .samples()
            .iter()
            .map(|&x| {
                y += alpha * (x - y);
                y
            })
            .collect();
        Waveform::new(w.t0(), w.dt(), out)
    }

    /// Applies the equalizer: `y = LP_pole(x + boost · (x − LP_zero(x)))`.
    /// DC passes at unity; content above the zero is boosted by up to
    /// `1 + boost` until the pole rolls it off.
    pub fn apply(&self, input: &Waveform) -> Waveform {
        let lp_z = Self::lowpass(input, self.zero);
        let peaked = input.zip_with(&lp_z, |x, l| x + self.boost * (x - l));
        Self::lowpass(&peaked, self.pole)
    }

    /// Eye height through `channel` with and without this CTLE,
    /// `(without, with)` in volts.
    pub fn eye_improvement(
        &self,
        bits: &[bool],
        ui: f64,
        vdd: f64,
        channel: &ChannelModel,
    ) -> (f64, f64) {
        let tx = Waveform::nrz(bits, ui, ui / 10.0, 0.0, vdd, 32);
        let rx = channel.apply(&tx);
        let eq = self.apply(&rx);
        let measure = |w: &Waveform| {
            EyeDiagram::analyze(w, ui, 4.0 * ui, w.mean())
                .map(|e| e.height.max(0.0))
                .unwrap_or(0.0)
        };
        (measure(&rx), measure(&eq))
    }
}

/// A decision-feedback equalizer operating on the sampled waveform:
/// each decision subtracts the trailing ISI of the previous `taps.len()`
/// decided symbols before slicing.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfe {
    /// Tap weights in volts per previous symbol (tap 0 = 1 UI back).
    pub taps: Vec<f64>,
}

impl Dfe {
    /// A single-tap DFE cancelling the first post-cursor of a one-pole
    /// channel: `tap = a · swing/2` where `a = e^(−T/τ)`.
    pub fn one_tap_for(channel: &ChannelModel, ui: f64, rx_swing: f64) -> Self {
        let tau = 1.0 / (2.0 * std::f64::consts::PI * channel.bandwidth.value());
        let a = (-ui / tau).exp();
        Self {
            taps: vec![a * rx_swing / 2.0],
        }
    }

    /// Slices `count` bits from `waveform` at `phase + k·ui`, applying
    /// decision feedback around `threshold`. Returns the decided bits.
    pub fn decide(
        &self,
        waveform: &Waveform,
        ui: f64,
        phase: f64,
        threshold: f64,
        count: usize,
    ) -> Vec<bool> {
        let mut decided: Vec<bool> = Vec::with_capacity(count);
        for k in 0..count {
            let raw = waveform.sample_at(waveform.t0() + phase + k as f64 * ui);
            let feedback: f64 = self
                .taps
                .iter()
                .enumerate()
                .map(|(j, &tap)| {
                    let sym = match decided.len().checked_sub(j + 1) {
                        Some(i) => {
                            if decided[i] {
                                1.0
                            } else {
                                -1.0
                            }
                        }
                        None => 0.0,
                    };
                    tap * sym
                })
                .sum();
            decided.push(raw - feedback > threshold);
        }
        decided
    }

    /// Error counts slicing `bits` through `channel` with and without
    /// the DFE, `(without, with)`.
    pub fn error_improvement(
        &self,
        bits: &[bool],
        ui: f64,
        vdd: f64,
        channel: &ChannelModel,
    ) -> (usize, usize) {
        let tx = Waveform::nrz(bits, ui, ui / 10.0, 0.0, vdd, 32);
        let rx = channel.apply(&tx);
        let threshold = rx.mean();
        let phase = 0.75 * ui; // late sampling: post-cursor dominated
        let plain = Dfe { taps: vec![] }.decide(&rx, ui, phase, threshold, bits.len());
        let with = self.decide(&rx, ui, phase, threshold, bits.len());
        let score = |got: &[bool]| got.iter().zip(bits).skip(8).filter(|(a, b)| a != b).count();
        (score(&plain), score(&with))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChannelModel;

    fn test_bits() -> Vec<bool> {
        let mut x = 0xACE1u32;
        (0..256)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                (x >> 16) & 1 == 1
            })
            .collect()
    }

    fn harsh_channel() -> ChannelModel {
        let mut ch = ChannelModel::ideal();
        ch.bandwidth = Hertz::from_mhz(400.0); // 2 Gb/s data
        ch.attenuation_db = 8.0;
        ch
    }

    #[test]
    fn ctle_preserves_dc() {
        let ctle = Ctle::for_rate(Hertz::from_ghz(2.0), 3.0);
        let flat = Waveform::constant(0.9, 0.0, 10e-12, 500);
        let out = ctle.apply(&flat);
        assert!((out.sample_at(4e-9) - 0.9).abs() < 1e-6, "unity DC gain");
    }

    #[test]
    fn ctle_boosts_fast_edges() {
        // A step through the CTLE overshoots (the high-frequency boost).
        let ctle = Ctle::for_rate(Hertz::from_ghz(2.0), 3.0);
        let step = Waveform::from_fn(0.0, 2e-12, 2000, |t| if t > 0.5e-9 { 1.0 } else { 0.0 });
        let out = ctle.apply(&step);
        assert!(out.max() > 1.1, "peaking overshoot: max = {}", out.max());
        assert!((out.sample_at(3.9e-9) - 1.0).abs() < 0.02, "settles to DC");
    }

    #[test]
    fn ctle_opens_a_band_limited_eye() {
        let ctle = Ctle::for_rate(Hertz::from_ghz(2.0), 3.0);
        let (without, with) = ctle.eye_improvement(&test_bits(), 500e-12, 1.8, &harsh_channel());
        assert!(
            with > without * 1.2,
            "CTLE must open the eye: {with:.4} vs {without:.4}"
        );
    }

    #[test]
    fn dfe_cancels_post_cursor_errors() {
        // A channel harsh enough that the plain slicer actually fails
        // (pole at an eighth of the bit rate: a single-bit excursion no
        // longer crosses the threshold by the sampling instant).
        let mut ch = ChannelModel::ideal();
        ch.bandwidth = Hertz::from_mhz(250.0);
        ch.attenuation_db = 8.0;
        let rx_swing = 1.8 * ch.gain();
        let dfe = Dfe::one_tap_for(&ch, 500e-12, rx_swing);
        let (without, with) = dfe.error_improvement(&test_bits(), 500e-12, 1.8, &ch);
        assert!(without > 0, "the plain slicer must fail here");
        assert!(
            with < without,
            "DFE must reduce errors: {with} vs {without}"
        );
    }

    #[test]
    fn empty_dfe_is_a_plain_slicer() {
        let w = Waveform::nrz(&[true, false, true], 1e-9, 50e-12, 0.0, 1.0, 32);
        let dfe = Dfe { taps: vec![] };
        let got = dfe.decide(&w, 1e-9, 0.5e-9, 0.5, 3);
        assert_eq!(got, vec![true, false, true]);
    }

    #[test]
    fn one_tap_sizing_tracks_channel() {
        let mild = {
            let mut c = ChannelModel::ideal();
            c.bandwidth = Hertz::from_ghz(4.0);
            c
        };
        let harsh = harsh_channel();
        let t_mild = Dfe::one_tap_for(&mild, 500e-12, 0.1).taps[0];
        let t_harsh = Dfe::one_tap_for(&harsh, 500e-12, 0.1).taps[0];
        assert!(t_harsh > t_mild, "more ISI, bigger tap");
    }
}
