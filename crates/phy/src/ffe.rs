//! Transmit feed-forward equalization (FFE) — the TX equalization block
//! of the paper's generic SerDes architecture (§III, Fig. 3).
//!
//! The paper's own all-digital implementation omits equalization (its
//! channels are flat), but the architecture section motivates it: an FFE
//! pre-distorts the transmitted symbol over a few bit periods to cancel
//! the channel's inter-symbol interference. This module provides a
//! voltage-mode FIR FFE as an extension: per-bit levels from the tap
//! filter, a multi-level waveform generator, and eye-based evaluation
//! against band-limited channels.

use crate::channel::ChannelModel;
use openserdes_analog::{EyeDiagram, Waveform};

/// A transmit FIR equalizer. Tap 0 is the cursor (main) tap; taps 1..
/// apply to *previous* bits (post-cursors). Taps are normalized so the
/// peak output magnitude never exceeds the supply: `Σ|tap| = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct TxFfe {
    taps: Vec<f64>,
}

impl TxFfe {
    /// A pass-through (no equalization) single-tap FFE.
    pub fn passthrough() -> Self {
        Self { taps: vec![1.0] }
    }

    /// The classic 2-tap de-emphasis FFE: `post` is the post-cursor
    /// strength in `0.0..1.0` (e.g. 0.25 ≈ −2.5 dB de-emphasis).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= post < 1.0`.
    pub fn two_tap(post: f64) -> Self {
        assert!((0.0..1.0).contains(&post), "post-cursor in 0.0..1.0");
        Self::new(vec![1.0 - post, -post])
    }

    /// An FFE from raw tap weights (cursor first), normalized to
    /// `Σ|tap| = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty or all-zero.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "need at least the cursor tap");
        let norm: f64 = taps.iter().map(|t| t.abs()).sum();
        assert!(norm > 0.0, "taps must not all be zero");
        Self {
            taps: taps.into_iter().map(|t| t / norm).collect(),
        }
    }

    /// The normalized tap weights.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Per-bit output levels in `[-1, 1]` (bits map to ±1 before
    /// filtering; bits before the start are taken as the first bit).
    pub fn levels(&self, bits: &[bool]) -> Vec<f64> {
        let sym = |i: isize| -> f64 {
            let idx = i.clamp(0, bits.len() as isize - 1) as usize;
            if bits[idx] {
                1.0
            } else {
                -1.0
            }
        };
        (0..bits.len() as isize)
            .map(|i| {
                self.taps
                    .iter()
                    .enumerate()
                    .map(|(k, &t)| t * sym(i - k as isize))
                    .sum()
            })
            .collect()
    }

    /// Builds the multi-level transmit waveform: levels ride around
    /// `vdd/2` with full-scale swing `vdd`, linear transitions of `rise`
    /// seconds, `oversample` samples per UI.
    pub fn waveform(
        &self,
        bits: &[bool],
        ui: f64,
        rise: f64,
        vdd: f64,
        oversample: usize,
    ) -> Waveform {
        assert!(oversample >= 2, "need at least 2 samples per UI");
        let levels = self.levels(bits);
        let volt = |l: f64| 0.5 * vdd * (1.0 + l);
        let dt = ui / oversample as f64;
        Waveform::from_fn(0.0, dt, bits.len() * oversample, |t| {
            let k = ((t / ui).floor() as usize).min(levels.len() - 1);
            let target = volt(levels[k]);
            let prev = if k == 0 { target } else { volt(levels[k - 1]) };
            let into = t - k as f64 * ui;
            if into >= rise || (prev - target).abs() < 1e-12 {
                target
            } else {
                prev + (target - prev) * (into / rise)
            }
        })
    }

    /// Measures the post-channel eye height for `bits` through `channel`
    /// at the given UI, with and without this FFE. Returns
    /// `(without, with)` eye heights in volts (0 when the eye is closed
    /// or unmeasurable).
    pub fn eye_improvement(
        &self,
        bits: &[bool],
        ui: f64,
        vdd: f64,
        channel: &ChannelModel,
    ) -> (f64, f64) {
        let measure = |ffe: &TxFfe| -> f64 {
            let tx = ffe.waveform(bits, ui, ui / 10.0, vdd, 32);
            let rx = channel.apply(&tx);
            EyeDiagram::analyze(&rx, ui, 4.0 * ui, rx.mean())
                .map(|e| e.height.max(0.0))
                .unwrap_or(0.0)
        };
        (measure(&TxFfe::passthrough()), measure(self))
    }
}

impl Default for TxFfe {
    fn default() -> Self {
        Self::passthrough()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::units::Hertz;

    fn test_bits() -> Vec<bool> {
        // Mixed run lengths: the patterns ISI hurts most.
        let mut x = 0x5Au32;
        (0..96)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                (x >> 16) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn passthrough_levels_are_binary() {
        let ffe = TxFfe::passthrough();
        let bits = [true, false, true, true];
        assert_eq!(ffe.levels(&bits), vec![1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn two_tap_deemphasizes_repeats() {
        // After a transition the level is full scale; on a repeated bit
        // it relaxes toward the de-emphasized level.
        let ffe = TxFfe::two_tap(0.25);
        let levels = ffe.levels(&[false, true, true, true]);
        assert!(levels[1] > levels[2], "transition bit boosted");
        assert!((levels[2] - levels[3]).abs() < 1e-12, "steady state flat");
        assert!(
            (levels[1] - 1.0).abs() < 1e-12,
            "transition hits full scale"
        );
        assert!((levels[2] - 0.5).abs() < 1e-12, "repeat at 1−2·post");
    }

    #[test]
    fn taps_normalized() {
        let ffe = TxFfe::new(vec![3.0, -1.0]);
        let s: f64 = ffe.taps().iter().map(|t| t.abs()).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waveform_never_exceeds_rails() {
        let ffe = TxFfe::two_tap(0.3);
        let w = ffe.waveform(&test_bits(), 500e-12, 50e-12, 1.8, 16);
        assert!(w.min() >= -1e-9);
        assert!(w.max() <= 1.8 + 1e-9);
    }

    #[test]
    fn ffe_opens_the_eye_on_a_band_limited_channel() {
        // A single-pole channel with memory a = e^(−T/τ) is perfectly
        // equalized by a 2-tap FFE with post = a/(1+a). At 2 Gb/s over a
        // 350 MHz pole: a ≈ 0.33 → post ≈ 0.25. The heavy ISI without
        // equalization must give way to a visibly wider eye with it.
        let mut ch = ChannelModel::ideal();
        ch.bandwidth = Hertz::from_mhz(350.0);
        ch.attenuation_db = 6.0;
        let ffe = TxFfe::two_tap(0.25);
        let (without, with) = ffe.eye_improvement(&test_bits(), 500e-12, 1.8, &ch);
        assert!(
            with > without * 1.25,
            "FFE must open the eye: {with:.4} vs {without:.4}"
        );
    }

    #[test]
    fn optimal_tap_tracks_channel_memory() {
        // Sweep the post tap against a fixed channel: the best tap sits
        // near the analytic optimum, not at the extremes.
        let mut ch = ChannelModel::ideal();
        ch.bandwidth = Hertz::from_mhz(350.0);
        let bits = test_bits();
        let eye_at = |post: f64| {
            let ffe = if post == 0.0 {
                TxFfe::passthrough()
            } else {
                TxFfe::two_tap(post)
            };
            ffe.eye_improvement(&bits, 500e-12, 1.8, &ch).1
        };
        let weak = eye_at(0.05);
        let good = eye_at(0.25);
        let strong = eye_at(0.6);
        assert!(good > weak, "0.25 beats under-equalizing: {good} vs {weak}");
        assert!(
            good > strong,
            "0.25 beats over-equalizing: {good} vs {strong}"
        );
    }

    #[test]
    fn ffe_unnecessary_on_a_clean_channel() {
        // On a wideband channel de-emphasis just wastes swing.
        let ch = ChannelModel::ideal();
        let ffe = TxFfe::two_tap(0.3);
        let (without, with) = ffe.eye_improvement(&test_bits(), 500e-12, 1.8, &ch);
        assert!(without > with, "de-emphasis costs swing when ISI-free");
    }

    #[test]
    #[should_panic(expected = "post-cursor in 0.0..1.0")]
    fn post_tap_range_checked() {
        let _ = TxFfe::two_tap(1.5);
    }
}
