//! Monte-Carlo mismatch analysis of the receiver front end.
//!
//! The paper's silicon sensitivity (≈32 mV) is far above what an ideal
//! mismatch-free pair of inverters would need — local Vth variation
//! between the gain stage and the restorer shifts their switching
//! thresholds apart, and that offset eats directly into the input
//! budget. This module quantifies it: perturb every device's threshold
//! with the classic Pelgrom-style `σ(ΔVth) = A_vt / √(W·L)` model,
//! recompute both inverter thresholds, and refer the offset to the
//! front-end input. The statistics justify the `offset_margin`
//! guardband baked into [`crate::FrontEndConfig`].

use crate::frontend::{FrontEndConfig, RxFrontEnd};
use openserdes_analog::SolverError;
use openserdes_pdk::corner::Pvt;
use openserdes_pdk::mos::{MosDevice, MosParams};
use openserdes_pdk::units::Volt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pelgrom matching coefficient for a sky130-class node, in V·µm
/// (σ(ΔVth) ≈ 5 mV for a 1 µm² device).
pub const PELGROM_AVT: f64 = 5.0e-3;

/// Result of a mismatch Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchStats {
    /// Number of samples drawn.
    pub samples: usize,
    /// Mean input-referred offset (V); ≈0 by construction.
    pub mean: Volt,
    /// Standard deviation of the input-referred offset.
    pub sigma: Volt,
    /// 99.7th-percentile magnitude (≈3σ for a Gaussian).
    pub p997: Volt,
    /// Worst sample seen.
    pub worst: Volt,
}

impl MismatchStats {
    /// `true` if `margin` covers the 3σ offset population.
    pub fn covered_by(&self, margin: Volt) -> bool {
        self.p997.value() <= margin.value()
    }
}

/// Switching threshold of an inverter built from (possibly perturbed)
/// devices: the `vin = vout` point, found by bisection on the current
/// balance `Idn(v, v) = Idp(vdd−v, vdd−v)`.
fn switching_threshold(nmos: &MosDevice, pmos: &MosDevice, vdd: f64) -> f64 {
    let balance = |v: f64| nmos.ids(v, v) - pmos.ids(vdd - v, vdd - v);
    let (mut lo, mut hi) = (0.0, vdd);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if balance(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// σ(ΔVth) for a device of the given geometry, per the Pelgrom model.
pub fn vth_sigma(w_um: f64, l_um: f64) -> f64 {
    PELGROM_AVT / (w_um * l_um).sqrt()
}

/// Runs a mismatch Monte-Carlo on the front end: every one of the four
/// devices (gain-stage N/P, restorer N/P) receives an independent
/// Gaussian Vth perturbation; the input-referred offset is the gain
/// stage's threshold shift plus the restorer's shift divided by the
/// gain-stage DC gain.
///
/// # Errors
///
/// Propagates solver failures from the nominal characterization.
pub fn monte_carlo(
    frontend: &RxFrontEnd,
    pvt: &Pvt,
    samples: usize,
    seed: u64,
) -> Result<MismatchStats, SolverError> {
    let cfg: &FrontEndConfig = frontend.config();
    let vdd = pvt.vdd.value();
    let gain = frontend.small_signal()?.gain;
    let nominal_n = MosParams::sky130_nmos(pvt);
    let nominal_p = MosParams::sky130_pmos(pvt);

    let build = |params_n: MosParams, params_p: MosParams, scale: f64| {
        (
            MosDevice::new(params_n, 0.65 * scale, 0.15),
            MosDevice::new(params_p, 1.0 * scale, 0.15),
        )
    };
    let (nom_gn, nom_gp) = build(nominal_n, nominal_p, cfg.gain_stage_scale);
    let (nom_rn, nom_rp) = build(nominal_n, nominal_p, cfg.restorer_scale);
    let vm_gain_nom = switching_threshold(&nom_gn, &nom_gp, vdd);
    let vm_rest_nom = switching_threshold(&nom_rn, &nom_rp, vdd);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = move |sigma: f64| -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
    };

    let mut offsets = Vec::with_capacity(samples);
    for _ in 0..samples {
        let sg_n = vth_sigma(0.65 * cfg.gain_stage_scale, 0.15);
        let sg_p = vth_sigma(1.0 * cfg.gain_stage_scale, 0.15);
        let sr_n = vth_sigma(0.65 * cfg.restorer_scale, 0.15);
        let sr_p = vth_sigma(1.0 * cfg.restorer_scale, 0.15);
        let (gn, gp) = (
            MosDevice::new(
                nominal_n.with_vth_offset(gauss(sg_n)),
                0.65 * cfg.gain_stage_scale,
                0.15,
            ),
            MosDevice::new(
                nominal_p.with_vth_offset(gauss(sg_p)),
                1.0 * cfg.gain_stage_scale,
                0.15,
            ),
        );
        let (rn, rp) = (
            MosDevice::new(
                nominal_n.with_vth_offset(gauss(sr_n)),
                0.65 * cfg.restorer_scale,
                0.15,
            ),
            MosDevice::new(
                nominal_p.with_vth_offset(gauss(sr_p)),
                1.0 * cfg.restorer_scale,
                0.15,
            ),
        );
        let d_gain = switching_threshold(&gn, &gp, vdd) - vm_gain_nom;
        let d_rest = switching_threshold(&rn, &rp, vdd) - vm_rest_nom;
        // The gain-stage threshold shift appears directly at the input
        // (the feedback re-biases there); the restorer's shift is
        // attenuated by the gain stage.
        offsets.push(d_gain + d_rest / gain);
    }

    let n = offsets.len() as f64;
    let mean = offsets.iter().sum::<f64>() / n;
    let var = offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / n;
    let mut mags: Vec<f64> = offsets.iter().map(|o| o.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p997 = mags[((mags.len() as f64 * 0.997) as usize).min(mags.len() - 1)];
    let worst = *mags.last().expect("nonempty");

    Ok(MismatchStats {
        samples,
        mean: Volt::new(mean),
        sigma: Volt::new(var.sqrt()),
        p997: Volt::new(p997),
        worst: Volt::new(worst),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::FrontEndConfig;

    fn fe() -> RxFrontEnd {
        RxFrontEnd::new(FrontEndConfig::paper_default(), Pvt::nominal())
    }

    #[test]
    fn threshold_bisection_near_midrail() {
        let pvt = Pvt::nominal();
        let n = MosDevice::new(MosParams::sky130_nmos(&pvt), 0.65, 0.15);
        let p = MosDevice::new(MosParams::sky130_pmos(&pvt), 1.0, 0.15);
        let vm = switching_threshold(&n, &p, 1.8);
        assert!((0.7..1.1).contains(&vm), "V_M = {vm}");
        // Shifting the NMOS threshold up moves V_M up.
        let n_hi = MosDevice::new(
            MosParams::sky130_nmos(&pvt).with_vth_offset(0.1),
            0.65,
            0.15,
        );
        assert!(switching_threshold(&n_hi, &p, 1.8) > vm);
    }

    #[test]
    fn pelgrom_sigma_shrinks_with_area() {
        assert!(vth_sigma(1.0, 0.15) > vth_sigma(10.0, 0.15));
        // A 1 µm² device: 5 mV by definition of the coefficient.
        assert!((vth_sigma(1.0, 1.0) - 5.0e-3).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_statistics_sane() {
        let pvt = Pvt::nominal();
        let stats = monte_carlo(&fe(), &pvt, 500, 7).expect("runs");
        assert_eq!(stats.samples, 500);
        assert!(stats.mean.value().abs() < 2e-3, "mean ≈ 0: {}", stats.mean);
        assert!(stats.sigma.mv() > 0.1, "nonzero spread");
        assert!(stats.p997.value() >= stats.sigma.value());
        assert!(stats.worst.value() >= stats.p997.value());
    }

    #[test]
    fn configured_margin_covers_mismatch_population() {
        // The offset_margin guardband in the sensitivity model must
        // cover the 3σ mismatch population — this is the calibration's
        // justification.
        let pvt = Pvt::nominal();
        let frontend = fe();
        let stats = monte_carlo(&frontend, &pvt, 1_000, 42).expect("runs");
        assert!(
            stats.covered_by(frontend.config().offset_margin),
            "margin {} must cover p99.7 offset {}",
            frontend.config().offset_margin,
            stats.p997
        );
    }

    #[test]
    fn bigger_devices_match_better() {
        let pvt = Pvt::nominal();
        let small = {
            let mut c = FrontEndConfig::paper_default();
            c.gain_stage_scale = 2.0;
            c.restorer_scale = 2.0;
            RxFrontEnd::new(c, pvt)
        };
        let s_small = monte_carlo(&small, &pvt, 400, 3).expect("runs");
        let s_big = monte_carlo(&fe(), &pvt, 400, 3).expect("runs");
        assert!(
            s_big.sigma.value() < s_small.sigma.value(),
            "σ: big {} vs small {}",
            s_big.sigma,
            s_small.sigma
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let pvt = Pvt::nominal();
        let a = monte_carlo(&fe(), &pvt, 100, 9).expect("runs");
        let b = monte_carlo(&fe(), &pvt, 100, 9).expect("runs");
        assert_eq!(a, b);
    }
}
