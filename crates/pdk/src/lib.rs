//! # openserdes-pdk
//!
//! Process models for a sky130-class 130 nm node, the substrate beneath the
//! OpenSerDes reproduction. The real paper builds on the Skywater 130 nm
//! open PDK; this crate stands in for it with:
//!
//! * [`units`] — unit-safe scalar newtypes (volts, farads, seconds, …),
//! * [`corner`] — PVT corners (`tt`/`ss`/`ff`/`sf`/`fs`, supply, temperature),
//! * [`mos`] — a smooth alpha-power MOSFET model calibrated to sky130
//!   headline figures, with analytic derivatives for Newton solvers,
//! * [`stdcell`] — liberty-style standard cells with NLDM timing tables,
//! * [`library`] — full library characterization at any PVT point, and
//! * [`wire`] — metal-stack parasitics and wireload estimation.
//!
//! Everything downstream (netlists, the digital simulator, the RTL→layout
//! flow, the analog solver and finally the SerDes itself) consumes process
//! data exclusively through this crate, which is what makes the design
//! *process-portable*: retargeting is a re-characterization, not a rewrite.
//!
//! ```
//! use openserdes_pdk::prelude::*;
//!
//! let lib = Library::sky130(Pvt::nominal());
//! let inv = lib.cell(LogicFn::Inv, DriveStrength::X1)?;
//! let arc = inv.arc(Time::from_ps(20.0), Farad::from_ff(10.0));
//! assert!(arc.delay.ps() > 0.0 && arc.delay.ps() < 200.0);
//! # Ok::<(), openserdes_pdk::PdkError>(())
//! ```

#![warn(missing_docs)]

pub mod corner;
pub mod error;
pub mod library;
pub mod mos;
pub mod stdcell;
pub mod units;
pub mod wire;

pub use error::PdkError;

/// Convenient glob-import of the most used PDK types.
pub mod prelude {
    pub use crate::corner::{ProcessCorner, Pvt, NOMINAL_VDD};
    pub use crate::error::PdkError;
    pub use crate::library::Library;
    pub use crate::mos::{MosDevice, MosEval, MosParams, MosType};
    pub use crate::stdcell::{DriveStrength, LogicFn, Nldm, SeqTiming, StdCell, TimingArc};
    pub use crate::units::{Amp, AreaUm2, Farad, Hertz, Joule, Micron, Ohm, Time, Volt, Watt};
    pub use crate::wire::{MetalLayer, WireSegment, WireloadModel};
}
