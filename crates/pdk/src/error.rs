//! Error types for PDK queries.

use std::error::Error;
use std::fmt;

/// Errors returned by library and model lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdkError {
    /// The requested cell does not exist in the library.
    UnknownCell(String),
    /// A model parameter was outside its physically valid range.
    InvalidParameter {
        /// The offending parameter name.
        name: &'static str,
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
}

impl fmt::Display for PdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdkError::UnknownCell(name) => write!(f, "unknown standard cell `{name}`"),
            PdkError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for PdkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PdkError::UnknownCell("foo_x9".into());
        assert_eq!(e.to_string(), "unknown standard cell `foo_x9`");
        let e = PdkError::InvalidParameter {
            name: "w_um",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("w_um"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PdkError>();
    }
}
