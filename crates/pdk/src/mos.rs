//! Compact MOSFET model for a sky130-class 130 nm node.
//!
//! The paper's receiver hinges on analog behaviour of digital devices (a
//! resistive-feedback inverter biased at its switching threshold), so the
//! reproduction needs a device model that is
//!
//! * accurate enough to show the right VTC, self-bias point, gain and
//!   drive-current shape, and
//! * smooth enough (continuous value and first derivatives) for the
//!   Newton–Raphson transient solver in `openserdes-analog`.
//!
//! We use the Sakurai–Newton **alpha-power law** with a softplus-smoothed
//! overdrive so that the subthreshold-to-saturation transition is C¹. The
//! parameters are calibrated to published sky130 headline figures:
//! VDD = 1.8 V, |Vth| ≈ 0.45–0.5 V, NMOS drive ≈ 0.6 mA/µm and PMOS drive
//! ≈ 0.3 mA/µm at full gate drive, gate capacitance ≈ 2 fF/µm.
//!
//! ```
//! use openserdes_pdk::mos::{MosDevice, MosParams};
//! use openserdes_pdk::corner::Pvt;
//!
//! let nmos = MosDevice::new(MosParams::sky130_nmos(&Pvt::nominal()), 1.0, 0.15);
//! let on = nmos.ids(1.8, 1.8);
//! let off = nmos.ids(0.0, 1.8);
//! assert!(on > 1e-4 && off < 1e-8);
//! ```

use crate::corner::Pvt;
use crate::units::Farad;

/// Channel polarity of a MOS device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device (pull-down network).
    Nmos,
    /// P-channel device (pull-up network).
    Pmos,
}

/// Alpha-power-law model parameters.
///
/// All voltages are magnitudes: a PMOS device is described by the same
/// positive parameters and evaluated with source-referred magnitudes
/// (`vsg`, `vsd`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Polarity (used by circuit builders to orient the device).
    pub mos_type: MosType,
    /// Threshold voltage magnitude in volts.
    pub vth: f64,
    /// Velocity-saturation index (2.0 = long channel, →1 fully
    /// velocity-saturated; ≈1.3 for a 130 nm node).
    pub alpha: f64,
    /// Transconductance coefficient in A/V^alpha for a W/L = 1 device.
    pub beta: f64,
    /// Saturation-voltage coefficient: `Vdsat = pv · Vov^(alpha/2)`.
    pub pv: f64,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
    /// Softplus smoothing width for the overdrive, in volts.
    pub smoothing: f64,
    /// Effective channel length in µm (drawn L minus diffusion).
    pub leff_um: f64,
    /// Gate-oxide capacitance in fF/µm².
    pub cox_ff_per_um2: f64,
    /// Gate-source/drain overlap capacitance in fF/µm of width, per side.
    pub cov_ff_per_um: f64,
    /// Drain/source junction capacitance in fF/µm of width.
    pub cj_ff_per_um: f64,
}

impl MosParams {
    /// sky130-calibrated NMOS parameters at the given PVT point.
    pub fn sky130_nmos(pvt: &Pvt) -> Self {
        let mob = pvt.corner.nmos_mobility_factor() * pvt.mobility_temp_factor();
        Self {
            mos_type: MosType::Nmos,
            vth: (0.45 + pvt.corner.nmos_vth_shift() + pvt.vth_temp_shift()).max(0.05),
            alpha: 1.3,
            beta: 6.1e-5 * mob,
            pv: 0.58,
            lambda: 0.05,
            smoothing: 0.06,
            leff_um: 0.15,
            cox_ff_per_um2: 8.6,
            cov_ff_per_um: 0.35,
            cj_ff_per_um: 0.8,
        }
    }

    /// Returns a copy with the threshold shifted by `dv` volts —
    /// the hook Monte-Carlo mismatch analysis uses to model local
    /// Vth variation between matched devices.
    pub fn with_vth_offset(mut self, dv: f64) -> Self {
        self.vth = (self.vth + dv).max(0.05);
        self
    }

    /// sky130-calibrated PMOS parameters at the given PVT point.
    ///
    /// Voltage arguments to the evaluation methods must be source-referred
    /// magnitudes (`vsg`, `vsd`).
    pub fn sky130_pmos(pvt: &Pvt) -> Self {
        let mob = pvt.corner.pmos_mobility_factor() * pvt.mobility_temp_factor();
        Self {
            mos_type: MosType::Pmos,
            vth: (0.50 + pvt.corner.pmos_vth_shift() + pvt.vth_temp_shift()).max(0.05),
            alpha: 1.35,
            beta: 3.2e-5 * mob,
            pv: 0.60,
            lambda: 0.06,
            smoothing: 0.06,
            leff_um: 0.15,
            cox_ff_per_um2: 8.6,
            cov_ff_per_um: 0.35,
            cj_ff_per_um: 0.8,
        }
    }
}

/// Evaluated drain current and its small-signal derivatives.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosEval {
    /// Drain current magnitude in amperes.
    pub id: f64,
    /// Transconductance ∂Id/∂Vgs in siemens.
    pub gm: f64,
    /// Output conductance ∂Id/∂Vds in siemens.
    pub gds: f64,
}

/// A sized MOS transistor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosDevice {
    /// Model parameters.
    pub params: MosParams,
    /// Drawn channel width in µm.
    pub w_um: f64,
    /// Drawn channel length in µm.
    pub l_um: f64,
}

impl MosDevice {
    /// Creates a device with the given width and length in µm.
    ///
    /// # Panics
    ///
    /// Panics if `w_um` or `l_um` is not strictly positive and finite.
    pub fn new(params: MosParams, w_um: f64, l_um: f64) -> Self {
        assert!(w_um > 0.0 && w_um.is_finite(), "width must be positive");
        assert!(l_um > 0.0 && l_um.is_finite(), "length must be positive");
        Self { params, w_um, l_um }
    }

    /// Smoothed overdrive voltage and its derivative w.r.t. `vgs`.
    fn overdrive(&self, vgs: f64) -> (f64, f64) {
        let st = self.params.smoothing;
        let x = (vgs - self.params.vth) / st;
        // Numerically stable softplus and logistic.
        let (sp, sig) = if x > 30.0 {
            (x, 1.0)
        } else if x < -30.0 {
            (x.exp(), x.exp())
        } else {
            ((1.0 + x.exp()).ln(), 1.0 / (1.0 + (-x).exp()))
        };
        (st * sp, sig)
    }

    /// Effective W/L shape factor referenced to the effective length.
    fn shape(&self) -> f64 {
        let leff = (self.l_um - (0.15 - self.params.leff_um)).max(self.params.leff_um * 0.5);
        self.w_um / leff
    }

    /// Evaluates drain current and derivatives at the given source-referred
    /// bias. For NMOS pass (`vgs`, `vds`); for PMOS pass (`vsg`, `vsd`).
    ///
    /// Negative `vds` is evaluated by symmetry (source/drain swap) so the
    /// transient solver can hand in either polarity; `gm` is then the
    /// derivative with respect to the *same* `vgs` argument.
    pub fn eval(&self, vgs: f64, vds: f64) -> MosEval {
        if vds < 0.0 {
            // Swap source and drain: Id(vgs, vds) = -Id(vgd, -vds).
            let sw = self.eval(vgs - vds, -vds);
            return MosEval {
                id: -sw.id,
                // d(-Id(vgs-vds,-vds))/dvgs = -gm'
                gm: -sw.gm,
                // d/dvds = -(gm'·(-1)·(-1)... ) expand: f(vgs,vds) = -g(vgs-vds, -vds)
                // df/dvds = -( g_1·(-1) + g_2·(-1) ) = g_1 + g_2
                gds: sw.gm + sw.gds,
            };
        }
        let (vov, dvov) = self.overdrive(vgs);
        let shape = self.shape();
        let beta = self.params.beta * shape;
        let alpha = self.params.alpha;
        let isat0 = beta * vov.powf(alpha);
        let disat0_dvov = beta * alpha * vov.powf(alpha - 1.0);
        let vdsat = self.params.pv * vov.powf(alpha / 2.0);
        let dvdsat_dvov = self.params.pv * (alpha / 2.0) * vov.powf(alpha / 2.0 - 1.0);
        let clm = 1.0 + self.params.lambda * vds;

        if vds >= vdsat || vdsat <= 0.0 {
            MosEval {
                id: isat0 * clm,
                gm: disat0_dvov * dvov * clm,
                gds: isat0 * self.params.lambda,
            }
        } else {
            let x = vds / vdsat;
            let f = (2.0 - x) * x;
            let df_dvds = (2.0 - 2.0 * x) / vdsat;
            let df_dvov = (2.0 - 2.0 * x) * (-vds / (vdsat * vdsat)) * dvdsat_dvov;
            MosEval {
                id: isat0 * f * clm,
                gm: (disat0_dvov * f + isat0 * df_dvov) * dvov * clm,
                gds: isat0 * clm * df_dvds + isat0 * f * self.params.lambda,
            }
        }
    }

    /// Drain current magnitude in amperes at the given bias.
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.eval(vgs, vds).id
    }

    /// Total gate capacitance (channel plus both overlaps).
    pub fn gate_cap(&self) -> Farad {
        let ff =
            self.w_um * (self.l_um * self.params.cox_ff_per_um2 + 2.0 * self.params.cov_ff_per_um);
        Farad::from_ff(ff)
    }

    /// Drain junction capacitance.
    pub fn drain_cap(&self) -> Farad {
        Farad::from_ff(self.w_um * self.params.cj_ff_per_um)
    }

    /// Effective switching resistance for RC delay estimation:
    /// `R ≈ VDD / (2·Idsat(VDD))`.
    pub fn switching_resistance(&self, vdd: f64) -> f64 {
        let idsat = self.ids(vdd, vdd);
        vdd / (2.0 * idsat.max(1e-15))
    }

    /// Saturation drive current per µm of width at full gate drive, in A/µm.
    pub fn idsat_per_um(&self, vdd: f64) -> f64 {
        self.ids(vdd, vdd) / self.w_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::{ProcessCorner, Pvt};

    fn nmos_1um() -> MosDevice {
        MosDevice::new(MosParams::sky130_nmos(&Pvt::nominal()), 1.0, 0.15)
    }

    fn pmos_1um() -> MosDevice {
        MosDevice::new(MosParams::sky130_pmos(&Pvt::nominal()), 1.0, 0.15)
    }

    #[test]
    fn calibrated_drive_currents() {
        // Headline sky130 numbers: NMOS ≈ 0.6 mA/µm, PMOS ≈ 0.3 mA/µm
        // (±25 % tolerance; we reproduce shapes, not SPICE decks).
        let idn = nmos_1um().idsat_per_um(1.8);
        let idp = pmos_1um().idsat_per_um(1.8);
        assert!((idn - 0.6e-3).abs() / 0.6e-3 < 0.25, "idn = {idn}");
        assert!((idp - 0.3e-3).abs() / 0.3e-3 < 0.25, "idp = {idp}");
    }

    #[test]
    fn off_current_is_small() {
        assert!(nmos_1um().ids(0.0, 1.8) < 1e-8);
        assert!(pmos_1um().ids(0.0, 1.8) < 1e-8);
    }

    #[test]
    fn current_monotonic_in_vgs() {
        let d = nmos_1um();
        let mut prev = -1.0;
        for i in 0..=36 {
            let vgs = i as f64 * 0.05;
            let id = d.ids(vgs, 1.8);
            assert!(id >= prev, "Id must not decrease with Vgs");
            prev = id;
        }
    }

    #[test]
    fn current_monotonic_in_vds() {
        let d = nmos_1um();
        let mut prev = -1.0;
        for i in 0..=36 {
            let vds = i as f64 * 0.05;
            let id = d.ids(1.2, vds);
            assert!(id >= prev, "Id must not decrease with Vds (CLM)");
            prev = id;
        }
    }

    #[test]
    fn linear_region_below_saturation() {
        let d = nmos_1um();
        // Small Vds: device behaves like a resistor, current roughly
        // proportional to Vds.
        let i1 = d.ids(1.8, 0.05);
        let i2 = d.ids(1.8, 0.10);
        let ratio = i2 / i1;
        assert!((1.7..2.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let d = nmos_1um();
        let h = 1e-6;
        for &(vgs, vds) in &[
            (0.3, 0.9),
            (0.6, 0.1),
            (0.9, 0.9),
            (1.2, 0.2),
            (1.8, 1.8),
            (0.9, 0.45),
        ] {
            let e = d.eval(vgs, vds);
            let gm_fd = (d.ids(vgs + h, vds) - d.ids(vgs - h, vds)) / (2.0 * h);
            let gds_fd = (d.ids(vgs, vds + h) - d.ids(vgs, vds - h)) / (2.0 * h);
            let tol = 1e-3 * (e.id.abs() / 0.1 + 1e-9) + 1e-9;
            assert!(
                (e.gm - gm_fd).abs() < tol.max(1e-6 * gm_fd.abs().max(1.0)),
                "gm mismatch at ({vgs},{vds}): {} vs {}",
                e.gm,
                gm_fd
            );
            assert!(
                (e.gds - gds_fd).abs() < tol.max(1e-6 * gds_fd.abs().max(1.0)),
                "gds mismatch at ({vgs},{vds}): {} vs {}",
                e.gds,
                gds_fd
            );
        }
    }

    #[test]
    fn reverse_vds_antisymmetric() {
        let d = nmos_1um();
        // With vgs measured from the same terminal, swapping drain/source
        // mirrors the current: Id(vgs, -vds) = -Id(vgs + vds, vds).
        let fwd = d.ids(1.2 + 0.5, 0.5);
        let rev = d.ids(1.2, -0.5);
        assert!((fwd + rev).abs() < 1e-12, "fwd={fwd} rev={rev}");
    }

    #[test]
    fn reverse_vds_derivatives_match_fd() {
        let d = nmos_1um();
        let h = 1e-6;
        let (vgs, vds) = (1.0, -0.4);
        let e = d.eval(vgs, vds);
        let gm_fd = (d.ids(vgs + h, vds) - d.ids(vgs - h, vds)) / (2.0 * h);
        let gds_fd = (d.ids(vgs, vds + h) - d.ids(vgs, vds - h)) / (2.0 * h);
        assert!((e.gm - gm_fd).abs() < 1e-6 + 1e-4 * gm_fd.abs());
        assert!((e.gds - gds_fd).abs() < 1e-6 + 1e-4 * gds_fd.abs());
    }

    #[test]
    fn slow_corner_drives_less() {
        let tt = nmos_1um().idsat_per_um(1.8);
        let ss = MosDevice::new(
            MosParams::sky130_nmos(&Pvt::new(ProcessCorner::SlowSlow, 1.8, 25.0)),
            1.0,
            0.15,
        )
        .idsat_per_um(1.8);
        let ff = MosDevice::new(
            MosParams::sky130_nmos(&Pvt::new(ProcessCorner::FastFast, 1.8, 25.0)),
            1.0,
            0.15,
        )
        .idsat_per_um(1.8);
        assert!(ss < tt && tt < ff);
    }

    #[test]
    fn gate_cap_near_2ff_per_um() {
        let c = nmos_1um().gate_cap().ff();
        assert!((1.5..2.5).contains(&c), "gate cap = {c} fF/µm");
    }

    #[test]
    fn width_scales_current_and_cap() {
        let d1 = nmos_1um();
        let d4 = MosDevice::new(d1.params, 4.0, 0.15);
        let r = d4.ids(1.8, 1.8) / d1.ids(1.8, 1.8);
        assert!((r - 4.0).abs() < 1e-9);
        let rc = d4.gate_cap().ff() / d1.gate_cap().ff();
        assert!((rc - 4.0).abs() < 1e-9);
    }

    #[test]
    fn switching_resistance_order_of_magnitude() {
        // ~1 µm NMOS: R ≈ 1.8/(2·0.6 mA) ≈ 1.5 kΩ.
        let r = nmos_1um().switching_resistance(1.8);
        assert!((1.0e3..3.0e3).contains(&r), "R = {r}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = MosDevice::new(MosParams::sky130_nmos(&Pvt::nominal()), 0.0, 0.15);
    }

    #[test]
    fn longer_channel_reduces_current() {
        let short = nmos_1um();
        let long = MosDevice::new(short.params, 1.0, 0.5);
        assert!(long.ids(1.8, 1.8) < short.ids(1.8, 1.8));
    }
}
