//! Interconnect parasitics: per-layer wire RC and wireload estimation.
//!
//! The routing estimate in `openserdes-flow` converts net wirelength into
//! resistance and capacitance using these per-µm constants, which follow
//! the sky130 metal stack (thin lower metals are resistive, upper metals
//! are fat and fast). A simple fanout-based wireload model is provided for
//! pre-placement timing, mirroring what synthesis tools do before layout.

use crate::units::{Farad, Micron, Ohm, Time};
use std::fmt;

/// Routing metal layer of the sky130 five-metal stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetalLayer {
    /// Local interconnect / metal 1 — thin and resistive.
    M1,
    /// Metal 2.
    M2,
    /// Metal 3.
    M3,
    /// Metal 4.
    M4,
    /// Metal 5 — thick top metal for clocks and supplies.
    M5,
}

impl MetalLayer {
    /// All layers, bottom-up.
    pub const ALL: [MetalLayer; 5] = [
        MetalLayer::M1,
        MetalLayer::M2,
        MetalLayer::M3,
        MetalLayer::M4,
        MetalLayer::M5,
    ];

    /// Sheet-derived wire resistance per µm of minimum-width wire.
    pub fn r_per_um(self) -> Ohm {
        match self {
            MetalLayer::M1 => Ohm::new(1.2),
            MetalLayer::M2 => Ohm::new(0.9),
            MetalLayer::M3 => Ohm::new(0.5),
            MetalLayer::M4 => Ohm::new(0.3),
            MetalLayer::M5 => Ohm::new(0.03),
        }
    }

    /// Wire capacitance per µm (to ground plus coupling, lumped).
    pub fn c_per_um(self) -> Farad {
        match self {
            MetalLayer::M1 => Farad::from_ff(0.20),
            MetalLayer::M2 => Farad::from_ff(0.19),
            MetalLayer::M3 => Farad::from_ff(0.17),
            MetalLayer::M4 => Farad::from_ff(0.16),
            MetalLayer::M5 => Farad::from_ff(0.14),
        }
    }
}

impl fmt::Display for MetalLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "met{}", *self as u8 + 1)
    }
}

/// A routed wire segment on one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSegment {
    /// Layer the segment is routed on.
    pub layer: MetalLayer,
    /// Length of the segment.
    pub length: Micron,
}

impl WireSegment {
    /// Creates a segment of the given length (µm) on `layer`.
    pub fn new(layer: MetalLayer, length_um: f64) -> Self {
        Self {
            layer,
            length: Micron::new(length_um),
        }
    }

    /// Total segment resistance.
    pub fn resistance(&self) -> Ohm {
        self.layer.r_per_um() * self.length.value()
    }

    /// Total segment capacitance.
    pub fn capacitance(&self) -> Farad {
        self.layer.c_per_um() * self.length.value()
    }

    /// Elmore delay of this segment driving `load` at its far end, using
    /// the distributed-RC half-resistance approximation
    /// `d = R·(C/2 + C_load)`.
    pub fn elmore_delay(&self, load: Farad) -> Time {
        let r = self.resistance();
        let c = self.capacitance();
        Time::new(r.value() * (0.5 * c.value() + load.value()))
    }
}

/// Fanout-based wireload model for pre-layout estimation.
///
/// Statistical model in the spirit of liberty `wire_load` tables: the
/// expected routed length of a net grows roughly linearly with its fanout,
/// scaled by the average cell pitch of the block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireloadModel {
    /// Average µm of wire per sink pin.
    pub um_per_fanout: f64,
    /// Fixed overhead per net in µm.
    pub base_um: f64,
    /// Layer the estimate is referenced to.
    pub layer: MetalLayer,
}

impl WireloadModel {
    /// The model used for small blocks (< few thousand cells).
    pub fn small_block() -> Self {
        Self {
            um_per_fanout: 6.0,
            base_um: 4.0,
            layer: MetalLayer::M2,
        }
    }

    /// Estimated routed length of a net with the given fanout.
    pub fn length(&self, fanout: usize) -> Micron {
        Micron::new(self.base_um + self.um_per_fanout * fanout as f64)
    }

    /// Estimated net capacitance (wire only, excluding pins).
    pub fn capacitance(&self, fanout: usize) -> Farad {
        self.layer.c_per_um() * self.length(fanout).value()
    }

    /// Estimated net resistance.
    pub fn resistance(&self, fanout: usize) -> Ohm {
        self.layer.r_per_um() * self.length(fanout).value()
    }
}

impl Default for WireloadModel {
    fn default() -> Self {
        Self::small_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_metals_are_faster() {
        for w in MetalLayer::ALL.windows(2) {
            assert!(w[1].r_per_um().value() < w[0].r_per_um().value());
            assert!(w[1].c_per_um().value() <= w[0].c_per_um().value());
        }
    }

    #[test]
    fn segment_rc_scales_with_length() {
        let s1 = WireSegment::new(MetalLayer::M2, 100.0);
        let s2 = WireSegment::new(MetalLayer::M2, 200.0);
        assert!((s2.resistance().value() / s1.resistance().value() - 2.0).abs() < 1e-12);
        assert!((s2.capacitance().ff() / s1.capacitance().ff() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elmore_delay_reasonable() {
        // 1 mm of M2 driving 10 fF: R = 900 Ω, C = 190 fF
        // d = 900·(95f + 10f) ≈ 94.5 ps.
        let s = WireSegment::new(MetalLayer::M2, 1000.0);
        let d = s.elmore_delay(Farad::from_ff(10.0));
        assert!((80.0..110.0).contains(&d.ps()), "d = {} ps", d.ps());
    }

    #[test]
    fn elmore_monotonic_in_load() {
        let s = WireSegment::new(MetalLayer::M1, 50.0);
        let d1 = s.elmore_delay(Farad::from_ff(1.0));
        let d2 = s.elmore_delay(Farad::from_ff(10.0));
        assert!(d2 > d1);
    }

    #[test]
    fn wireload_grows_with_fanout() {
        let m = WireloadModel::small_block();
        assert!(m.length(1).value() < m.length(4).value());
        assert!(m.capacitance(1).ff() < m.capacitance(4).ff());
        assert!(
            m.resistance(0).value() > 0.0,
            "base overhead always present"
        );
    }

    #[test]
    fn layer_names() {
        assert_eq!(format!("{}", MetalLayer::M1), "met1");
        assert_eq!(format!("{}", MetalLayer::M5), "met5");
    }
}
