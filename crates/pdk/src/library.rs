//! Library construction: characterizing the standard cells at a PVT point.
//!
//! This is the "process portability" mechanism the paper leans on: the RTL
//! never changes; only this characterization step (and the device model it
//! consumes) re-runs when the design is retargeted. [`Library::sky130`]
//! builds the full cell set — every [`LogicFn`] at every
//! [`DriveStrength`] — with delay/slew NLDM tables derived from the
//! alpha-power MOS model, plus area, pin caps, leakage and switching
//! energy.
//!
//! ```
//! use openserdes_pdk::library::Library;
//! use openserdes_pdk::corner::Pvt;
//! use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
//! use openserdes_pdk::units::{Farad, Time};
//!
//! let lib = Library::sky130(Pvt::nominal());
//! let inv = lib.cell(LogicFn::Inv, DriveStrength::X4).unwrap();
//! let arc = inv.arc(Time::from_ps(50.0), Farad::from_ff(20.0));
//! assert!(arc.delay.ps() > 0.0);
//! ```

use crate::corner::Pvt;
use crate::error::PdkError;
use crate::mos::{MosDevice, MosParams};
use crate::stdcell::{DriveStrength, LogicFn, Nldm, SeqTiming, StdCell};
use crate::units::{AreaUm2, Farad, Time, Volt};
use std::collections::HashMap;

/// Per-function physical recipe at X1 drive.
struct CellRecipe {
    /// Pull-down width in µm (total per branch).
    wn: f64,
    /// Pull-up width in µm (total per branch).
    wp: f64,
    /// Number of series NMOS devices in the worst pull-down path.
    stack_n: u32,
    /// Number of series PMOS devices in the worst pull-up path.
    stack_p: u32,
    /// Gate width (µm) hanging off each data input pin (NMOS + PMOS).
    input_w: f64,
    /// Placed area at X1 in µm².
    area: f64,
    /// Extra intrinsic delay in ps (internal stages, e.g. the first
    /// inverter of a buffer or the latch stages of a flop).
    intrinsic_ps: f64,
    /// Total device width for leakage estimation.
    total_w: f64,
}

fn recipe(function: LogicFn) -> CellRecipe {
    // Widths follow the sky130_fd_sc_hd sizing style: Wn = 0.65 µm,
    // Wp = 1.0 µm for a unit inverter; series stacks are up-sized to keep
    // the worst-case pull path resistance comparable to the inverter.
    match function {
        LogicFn::Inv => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 1.65,
            area: 3.75,
            intrinsic_ps: 0.0,
            total_w: 1.65,
        },
        LogicFn::Buf | LogicFn::ClkBuf => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 0.85,
            area: 5.0,
            intrinsic_ps: 18.0,
            total_w: 2.5,
        },
        LogicFn::Nand2 => CellRecipe {
            wn: 1.3,
            wp: 1.0,
            stack_n: 2,
            stack_p: 1,
            input_w: 2.3,
            area: 5.0,
            intrinsic_ps: 2.0,
            total_w: 4.6,
        },
        LogicFn::Nand3 => CellRecipe {
            wn: 1.95,
            wp: 1.0,
            stack_n: 3,
            stack_p: 1,
            input_w: 2.95,
            area: 6.25,
            intrinsic_ps: 4.0,
            total_w: 8.85,
        },
        LogicFn::Nor2 => CellRecipe {
            wn: 0.65,
            wp: 2.0,
            stack_n: 1,
            stack_p: 2,
            input_w: 2.65,
            area: 5.0,
            intrinsic_ps: 2.0,
            total_w: 5.3,
        },
        LogicFn::Nor3 => CellRecipe {
            wn: 0.65,
            wp: 3.0,
            stack_n: 1,
            stack_p: 3,
            input_w: 3.65,
            area: 6.25,
            intrinsic_ps: 4.0,
            total_w: 10.95,
        },
        LogicFn::And2 => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 2.3,
            area: 6.25,
            intrinsic_ps: 22.0,
            total_w: 6.25,
        },
        LogicFn::Or2 => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 2.65,
            area: 6.25,
            intrinsic_ps: 24.0,
            total_w: 6.95,
        },
        LogicFn::Xor2 | LogicFn::Xnor2 => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 2,
            stack_p: 2,
            input_w: 3.3,
            area: 8.75,
            intrinsic_ps: 28.0,
            total_w: 9.9,
        },
        LogicFn::Mux2 => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 2,
            stack_p: 2,
            input_w: 2.3,
            area: 8.75,
            intrinsic_ps: 30.0,
            total_w: 9.2,
        },
        LogicFn::Aoi21 | LogicFn::Oai21 => CellRecipe {
            wn: 1.3,
            wp: 2.0,
            stack_n: 2,
            stack_p: 2,
            input_w: 2.3,
            area: 6.25,
            intrinsic_ps: 4.0,
            total_w: 6.9,
        },
        LogicFn::Dff => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 1.2,
            area: 19.6,
            intrinsic_ps: 150.0,
            total_w: 16.0,
        },
        LogicFn::DffRstN => CellRecipe {
            wn: 0.65,
            wp: 1.0,
            stack_n: 1,
            stack_p: 1,
            input_w: 1.2,
            area: 25.0,
            intrinsic_ps: 165.0,
            total_w: 20.0,
        },
    }
}

/// A characterized standard-cell library bound to one PVT point.
#[derive(Debug, Clone)]
pub struct Library {
    pvt: Pvt,
    cells: Vec<StdCell>,
    index: HashMap<(LogicFn, DriveStrength), usize>,
    by_name: HashMap<String, usize>,
}

impl Library {
    /// Characterizes the full sky130-class library at the given PVT point.
    pub fn sky130(pvt: Pvt) -> Self {
        let nmos_params = MosParams::sky130_nmos(&pvt);
        let pmos_params = MosParams::sky130_pmos(&pvt);
        let vdd = pvt.vdd.value();

        let mut cells = Vec::new();
        let mut index = HashMap::new();
        let mut by_name = HashMap::new();

        for &function in &LogicFn::ALL {
            let r = recipe(function);
            for &drive in &DriveStrength::ALL {
                let k = drive.factor();
                let nmos = MosDevice::new(nmos_params, r.wn * k, 0.15);
                let pmos = MosDevice::new(pmos_params, r.wp * k, 0.15);
                // Worst-path switching resistance: a series stack of N
                // devices has N× the single-device resistance.
                let rn = nmos.switching_resistance(vdd) * r.stack_n as f64;
                let rp = pmos.switching_resistance(vdd) * r.stack_p as f64;
                let r_eff = 0.5 * (rn + rp);
                // Output parasitics: drain junctions of the output stage.
                let c_par_ff = (r.wn + r.wp) * k * nmos_params.cj_ff_per_um;
                let intrinsic = r.intrinsic_ps;

                let timing = Nldm::characterize(
                    vec![5.0, 20.0, 60.0, 150.0, 400.0],
                    vec![1.0, 5.0, 20.0, 80.0, 320.0],
                    |slew_ps, load_ff| {
                        let c_total = (load_ff + c_par_ff) * 1.0e-15;
                        let d = intrinsic + 0.69 * r_eff * c_total * 1.0e12 + slew_ps / 6.0;
                        let s = 1.4 * r_eff * c_total * 1.0e12 + slew_ps / 10.0 + 2.0;
                        (d, s)
                    },
                );
                // Early (min-delay) arcs: the fastest transition through
                // the cell — the stronger pull branch alone, a reduced
                // intrinsic (the fast internal path, ~80 % of nominal)
                // and a shallower slew dependence. Every table entry is
                // strictly below the late table, so hold races use a
                // genuinely fast arc rather than the nominal one.
                let r_fast = rn.min(rp);
                let timing_min = Nldm::characterize(
                    vec![5.0, 20.0, 60.0, 150.0, 400.0],
                    vec![1.0, 5.0, 20.0, 80.0, 320.0],
                    |slew_ps, load_ff| {
                        let c_total = (load_ff + c_par_ff) * 1.0e-15;
                        let d = 0.8 * intrinsic + 0.55 * r_fast * c_total * 1.0e12 + slew_ps / 8.0;
                        let s = 1.1 * r_fast * c_total * 1.0e12 + slew_ps / 12.0 + 1.5;
                        (d, s)
                    },
                );

                let input_cap_ff = r.input_w
                    * k.clamp(1.0, 4.0)
                    * (0.15 * nmos_params.cox_ff_per_um2 + 2.0 * nmos_params.cov_ff_per_um);
                let seq = function.is_sequential().then(|| SeqTiming {
                    setup: Time::from_ps(90.0 / pvt.speed_index().max(0.1) * 0.6),
                    hold: Time::from_ps(20.0),
                    clk_to_q: Time::from_ps(intrinsic),
                });
                // Subthreshold leakage ≈ 30 pA per µm of device width.
                let leakage_w = r.total_w * k * 30.0e-12 * vdd;
                let internal_energy_j = 0.6 * c_par_ff * 1.0e-15 * vdd * vdd;

                let name = format!("osd130_{}_{}", function, drive.suffix());
                let idx = cells.len();
                index.insert((function, drive), idx);
                by_name.insert(name.clone(), idx);
                cells.push(StdCell {
                    name,
                    function,
                    drive,
                    area: AreaUm2::new(r.area * (1.0 + 0.55 * (k - 1.0))),
                    input_cap: Farad::from_ff(input_cap_ff),
                    clock_cap: if function.is_sequential() {
                        Farad::from_ff(1.5)
                    } else {
                        Farad::new(0.0)
                    },
                    max_load: Farad::from_ff(30.0 * k),
                    timing,
                    timing_min,
                    seq,
                    leakage_w,
                    internal_energy_j,
                });
            }
        }

        Self {
            pvt,
            cells,
            index,
            by_name,
        }
    }

    /// The PVT point this library was characterized at.
    pub fn pvt(&self) -> Pvt {
        self.pvt
    }

    /// The supply voltage of the characterization point.
    pub fn vdd(&self) -> Volt {
        self.pvt.vdd
    }

    /// Looks up a cell by function and drive strength.
    ///
    /// # Errors
    ///
    /// Returns [`PdkError::UnknownCell`] if no such cell exists in the
    /// library (cannot happen for the built-in generator, but guards
    /// future partial libraries).
    pub fn cell(&self, function: LogicFn, drive: DriveStrength) -> Result<&StdCell, PdkError> {
        self.index
            .get(&(function, drive))
            .map(|&i| &self.cells[i])
            .ok_or_else(|| PdkError::UnknownCell(format!("{function}_{}", drive.suffix())))
    }

    /// Looks up a cell by its library name.
    pub fn by_name(&self, name: &str) -> Option<&StdCell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// The weakest (smallest-area) cell implementing `function`.
    ///
    /// # Panics
    ///
    /// Panics if the library has no cell for `function` — the built-in
    /// generator always provides one.
    pub fn smallest(&self, function: LogicFn) -> &StdCell {
        self.cell(function, DriveStrength::X1)
            .expect("built-in library covers every function")
    }

    /// The weakest drive strength whose legal load limit covers `load`;
    /// falls back to the strongest cell when the load exceeds every limit.
    pub fn pick_drive(&self, function: LogicFn, load: Farad) -> &StdCell {
        for &drive in &DriveStrength::ALL {
            if let Ok(cell) = self.cell(function, drive) {
                if !cell.overloaded(load) {
                    return cell;
                }
            }
        }
        self.cell(function, DriveStrength::X16)
            .expect("built-in library covers every function")
    }

    /// Iterates over all cells in the library.
    pub fn iter(&self) -> impl Iterator<Item = &StdCell> {
        self.cells.iter()
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library contains no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    #[test]
    fn full_matrix_generated() {
        let l = lib();
        assert_eq!(l.len(), LogicFn::ALL.len() * DriveStrength::ALL.len());
        for &f in &LogicFn::ALL {
            for &d in &DriveStrength::ALL {
                assert!(l.cell(f, d).is_ok(), "missing {f} {d}");
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        let l = lib();
        let c = l.by_name("osd130_inv_4").expect("inv_x4 exists");
        assert_eq!(c.function, LogicFn::Inv);
        assert_eq!(c.drive, DriveStrength::X4);
        assert!(l.by_name("osd130_bogus_1").is_none());
    }

    #[test]
    fn stronger_drive_is_faster_under_load() {
        let l = lib();
        let load = Farad::from_ff(100.0);
        let slew = Time::from_ps(40.0);
        let d1 = l
            .cell(LogicFn::Inv, DriveStrength::X1)
            .unwrap()
            .arc(slew, load);
        let d8 = l
            .cell(LogicFn::Inv, DriveStrength::X8)
            .unwrap()
            .arc(slew, load);
        assert!(d8.delay < d1.delay);
        assert!(d8.out_slew < d1.out_slew);
    }

    #[test]
    fn delay_monotonic_in_load() {
        let l = lib();
        let inv = l.cell(LogicFn::Inv, DriveStrength::X2).unwrap();
        let slew = Time::from_ps(30.0);
        let mut prev = Time::new(0.0);
        for ff in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let arc = inv.arc(slew, Farad::from_ff(ff));
            assert!(arc.delay > prev);
            prev = arc.delay;
        }
    }

    #[test]
    fn fo4_delay_in_expected_range() {
        // Fanout-of-4 inverter delay should land in the tens of
        // picoseconds for a fast 130 nm library (needed for 2 GHz logic).
        let l = lib();
        let inv = l.cell(LogicFn::Inv, DriveStrength::X1).unwrap();
        let fo4 = inv.input_cap * 4.0;
        let arc = inv.arc(Time::from_ps(20.0), fo4);
        let ps = arc.delay.ps();
        assert!((10.0..120.0).contains(&ps), "FO4 = {ps} ps");
    }

    #[test]
    fn slow_corner_library_is_slower() {
        let tt = lib();
        let ss = Library::sky130(Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0));
        let load = Farad::from_ff(20.0);
        let slew = Time::from_ps(40.0);
        let d_tt = tt
            .cell(LogicFn::Nand2, DriveStrength::X2)
            .unwrap()
            .arc(slew, load);
        let d_ss = ss
            .cell(LogicFn::Nand2, DriveStrength::X2)
            .unwrap()
            .arc(slew, load);
        assert!(d_ss.delay > d_tt.delay);
    }

    #[test]
    fn flops_have_seq_timing_and_clock_cap() {
        let l = lib();
        let dff = l.cell(LogicFn::Dff, DriveStrength::X1).unwrap();
        let seq = dff.seq.expect("dff has sequential timing");
        assert!(seq.setup.ps() > 0.0);
        assert!(seq.clk_to_q.ps() > 0.0);
        assert!(dff.clock_cap.ff() > 0.0);
        let inv = l.cell(LogicFn::Inv, DriveStrength::X1).unwrap();
        assert!(inv.seq.is_none());
        assert_eq!(inv.clock_cap.ff(), 0.0);
    }

    #[test]
    fn pick_drive_scales_with_load() {
        let l = lib();
        let small = l.pick_drive(LogicFn::Inv, Farad::from_ff(5.0));
        let big = l.pick_drive(LogicFn::Inv, Farad::from_ff(200.0));
        assert!(small.drive < big.drive);
        // Huge loads saturate at the strongest cell.
        let max = l.pick_drive(LogicFn::Inv, Farad::from_pf(10.0));
        assert_eq!(max.drive, DriveStrength::X16);
    }

    #[test]
    fn min_arc_strictly_faster_than_late_arc() {
        // The early/late split is only sound if the min table is below
        // the late table everywhere the STA will look it up.
        let l = lib();
        for c in l.iter() {
            for slew_ps in [5.0, 40.0, 150.0, 400.0, 800.0] {
                for load_ff in [1.0, 20.0, 320.0, 600.0] {
                    let slew = Time::from_ps(slew_ps);
                    let load = Farad::from_ff(load_ff);
                    let late = c.arc(slew, load);
                    let early = c.min_arc(slew, load);
                    assert!(
                        early.delay < late.delay,
                        "{}: early {} >= late {} at {slew_ps} ps / {load_ff} fF",
                        c.name,
                        early.delay.ps(),
                        late.delay.ps()
                    );
                    assert!(early.out_slew <= late.out_slew, "{}", c.name);
                    assert!(early.delay.ps() > 0.0, "{}", c.name);
                }
            }
        }
    }

    #[test]
    fn area_grows_with_drive() {
        let l = lib();
        let a1 = l.cell(LogicFn::Inv, DriveStrength::X1).unwrap().area;
        let a16 = l.cell(LogicFn::Inv, DriveStrength::X16).unwrap().area;
        assert!(a16.value() > a1.value() * 4.0);
    }

    #[test]
    fn dff_dominates_inverter_area() {
        // The paper's deserializer area dominance comes from flop-heavy
        // blocks: a flop must cost several inverters.
        let l = lib();
        let dff = l.cell(LogicFn::Dff, DriveStrength::X1).unwrap().area;
        let inv = l.cell(LogicFn::Inv, DriveStrength::X1).unwrap().area;
        assert!(dff.value() > 4.0 * inv.value());
    }

    #[test]
    fn leakage_positive_and_small() {
        let l = lib();
        for c in l.iter() {
            assert!(c.leakage_w > 0.0);
            assert!(c.leakage_w < 1e-6, "{} leaks {} W", c.name, c.leakage_w);
        }
    }
}
