//! Standard-cell definitions and liberty-style timing tables.
//!
//! The OpenLANE flow that the paper uses consumes the
//! `sky130_fd_sc_hd` standard-cell library characterized as liberty NLDM
//! tables (delay and output slew indexed by input slew and output load).
//! This module reproduces that abstraction: a [`StdCell`] carries area,
//! pin capacitance, leakage and an [`Nldm`] timing table; the tables are
//! *characterized* from the compact MOS model in [`crate::mos`] rather
//! than copied from the PDK, which keeps the library process-portable —
//! re-characterizing at a new PVT point is just a function call.

use crate::units::{AreaUm2, Farad, Time};
use std::fmt;

/// Boolean function implemented by a combinational cell, or the
/// sequential element kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicFn {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `[a, b, sel]`, output `sel ? b : a`.
    Mux2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// Positive-edge D flip-flop; inputs `[d]` plus a clock pin.
    Dff,
    /// Positive-edge D flip-flop with active-low async reset;
    /// inputs `[d, rst_n]` plus a clock pin.
    DffRstN,
    /// Clock buffer (balanced rise/fall, used by CTS).
    ClkBuf,
}

impl LogicFn {
    /// All functions, for library construction and sweep tests.
    pub const ALL: [LogicFn; 16] = [
        LogicFn::Inv,
        LogicFn::Buf,
        LogicFn::Nand2,
        LogicFn::Nand3,
        LogicFn::Nor2,
        LogicFn::Nor3,
        LogicFn::And2,
        LogicFn::Or2,
        LogicFn::Xor2,
        LogicFn::Xnor2,
        LogicFn::Mux2,
        LogicFn::Aoi21,
        LogicFn::Oai21,
        LogicFn::Dff,
        LogicFn::DffRstN,
        LogicFn::ClkBuf,
    ];

    /// Number of data input pins (excludes the clock pin of sequential
    /// cells).
    pub fn input_count(self) -> usize {
        match self {
            LogicFn::Inv | LogicFn::Buf | LogicFn::ClkBuf | LogicFn::Dff => 1,
            LogicFn::Nand2
            | LogicFn::Nor2
            | LogicFn::And2
            | LogicFn::Or2
            | LogicFn::Xor2
            | LogicFn::Xnor2
            | LogicFn::DffRstN => 2,
            LogicFn::Nand3 | LogicFn::Nor3 | LogicFn::Mux2 | LogicFn::Aoi21 | LogicFn::Oai21 => 3,
        }
    }

    /// `true` for flip-flops (cells with a clock pin and state).
    pub fn is_sequential(self) -> bool {
        matches!(self, LogicFn::Dff | LogicFn::DffRstN)
    }

    /// `true` if the output is the logical complement of the implemented
    /// and/or expression (used by technology mapping).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            LogicFn::Inv
                | LogicFn::Nand2
                | LogicFn::Nand3
                | LogicFn::Nor2
                | LogicFn::Nor3
                | LogicFn::Xnor2
                | LogicFn::Aoi21
                | LogicFn::Oai21
        )
    }

    /// Evaluates the combinational function on boolean inputs.
    ///
    /// For sequential cells this evaluates the *next-state* function
    /// (`d` for a DFF; `d & rst_n` for a resettable DFF since reset
    /// clears the state).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            LogicFn::Inv => !inputs[0],
            LogicFn::Buf | LogicFn::ClkBuf | LogicFn::Dff => inputs[0],
            LogicFn::Nand2 => !(inputs[0] & inputs[1]),
            LogicFn::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            LogicFn::Nor2 => !(inputs[0] | inputs[1]),
            LogicFn::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            LogicFn::And2 => inputs[0] & inputs[1],
            LogicFn::Or2 => inputs[0] | inputs[1],
            LogicFn::Xor2 => inputs[0] ^ inputs[1],
            LogicFn::Xnor2 => !(inputs[0] ^ inputs[1]),
            LogicFn::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            LogicFn::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            LogicFn::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            LogicFn::DffRstN => inputs[0] & inputs[1],
        }
    }
}

impl fmt::Display for LogicFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogicFn::Inv => "inv",
            LogicFn::Buf => "buf",
            LogicFn::Nand2 => "nand2",
            LogicFn::Nand3 => "nand3",
            LogicFn::Nor2 => "nor2",
            LogicFn::Nor3 => "nor3",
            LogicFn::And2 => "and2",
            LogicFn::Or2 => "or2",
            LogicFn::Xor2 => "xor2",
            LogicFn::Xnor2 => "xnor2",
            LogicFn::Mux2 => "mux2",
            LogicFn::Aoi21 => "aoi21",
            LogicFn::Oai21 => "oai21",
            LogicFn::Dff => "dfxtp",
            LogicFn::DffRstN => "dfrtp",
            LogicFn::ClkBuf => "clkbuf",
        };
        f.write_str(s)
    }
}

/// Drive strength of a cell, mirroring the `_1` … `_16` suffixes of the
/// sky130 library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DriveStrength {
    /// Minimum-size drive.
    X1,
    /// 2× drive.
    X2,
    /// 4× drive.
    X4,
    /// 8× drive.
    X8,
    /// 16× drive.
    X16,
}

impl DriveStrength {
    /// All strengths, weakest first.
    pub const ALL: [DriveStrength; 5] = [
        DriveStrength::X1,
        DriveStrength::X2,
        DriveStrength::X4,
        DriveStrength::X8,
        DriveStrength::X16,
    ];

    /// The width/current multiplier relative to X1.
    pub fn factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
            DriveStrength::X8 => 8.0,
            DriveStrength::X16 => 16.0,
        }
    }

    /// The numeric suffix used in cell names.
    pub fn suffix(self) -> u32 {
        self.factor() as u32
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.suffix())
    }
}

/// A non-linear delay model table: delay and output slew as functions of
/// input slew and output load, with bilinear interpolation and linear
/// extrapolation at the table edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Nldm {
    slews_ps: Vec<f64>,
    loads_ff: Vec<f64>,
    delay_ps: Vec<Vec<f64>>,
    out_slew_ps: Vec<Vec<f64>>,
}

/// The result of an NLDM lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingArc {
    /// Propagation delay (50 % in → 50 % out).
    pub delay: Time,
    /// Output transition time (20–80 %).
    pub out_slew: Time,
}

impl Nldm {
    /// Builds a table by sampling `f(slew_ps, load_ff) -> (delay_ps,
    /// out_slew_ps)` on the given grid.
    ///
    /// # Panics
    ///
    /// Panics if either axis has fewer than two points or is not strictly
    /// increasing.
    pub fn characterize<F>(slews_ps: Vec<f64>, loads_ff: Vec<f64>, f: F) -> Self
    where
        F: Fn(f64, f64) -> (f64, f64),
    {
        assert!(slews_ps.len() >= 2 && loads_ff.len() >= 2, "grid too small");
        assert!(
            slews_ps.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            loads_ff.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        let mut delay = Vec::with_capacity(slews_ps.len());
        let mut slew = Vec::with_capacity(slews_ps.len());
        for &s in &slews_ps {
            let mut drow = Vec::with_capacity(loads_ff.len());
            let mut srow = Vec::with_capacity(loads_ff.len());
            for &l in &loads_ff {
                let (d, os) = f(s, l);
                drow.push(d);
                srow.push(os);
            }
            delay.push(drow);
            slew.push(srow);
        }
        Self {
            slews_ps,
            loads_ff,
            delay_ps: delay,
            out_slew_ps: slew,
        }
    }

    fn axis_pos(axis: &[f64], x: f64) -> (usize, f64) {
        // Index of the lower grid point and the fractional position;
        // fractions outside [0,1] extrapolate linearly.
        let n = axis.len();
        let mut i = 0;
        while i + 2 < n && x >= axis[i + 1] {
            i += 1;
        }
        let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
        (i, t)
    }

    fn bilinear(table: &[Vec<f64>], si: usize, st: f64, li: usize, lt: f64) -> f64 {
        let a = table[si][li] + (table[si][li + 1] - table[si][li]) * lt;
        let b = table[si + 1][li] + (table[si + 1][li + 1] - table[si + 1][li]) * lt;
        a + (b - a) * st
    }

    /// Looks up delay and output slew for the given input slew and load.
    pub fn lookup(&self, in_slew: Time, load: Farad) -> TimingArc {
        let (si, st) = Self::axis_pos(&self.slews_ps, in_slew.ps());
        let (li, lt) = Self::axis_pos(&self.loads_ff, load.ff());
        TimingArc {
            delay: Time::from_ps(Self::bilinear(&self.delay_ps, si, st, li, lt)),
            out_slew: Time::from_ps(Self::bilinear(&self.out_slew_ps, si, st, li, lt)),
        }
    }
}

/// Sequential timing constraints of a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqTiming {
    /// Setup time: data must be stable this long before the clock edge.
    pub setup: Time,
    /// Hold time: data must be stable this long after the clock edge.
    pub hold: Time,
    /// Clock-to-output delay.
    pub clk_to_q: Time,
}

/// A characterized standard cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StdCell {
    /// Full library-style name, e.g. `sky130_osd_inv_x4`.
    pub name: String,
    /// Implemented function.
    pub function: LogicFn,
    /// Drive strength.
    pub drive: DriveStrength,
    /// Placed area.
    pub area: AreaUm2,
    /// Capacitance of each data input pin.
    pub input_cap: Farad,
    /// Capacitance of the clock pin (sequential cells only, else zero).
    pub clock_cap: Farad,
    /// Maximum output load the cell may legally drive.
    pub max_load: Farad,
    /// Timing table for the data-input → output arc (clock → Q for
    /// sequential cells). Worst-case (late) arcs: setup analysis.
    pub timing: Nldm,
    /// Best-case (early) arc table for the same pin pair: the genuinely
    /// fast transition through the cell (fastest pull branch, reduced
    /// intrinsic). Hold analysis must use these, never `timing`.
    pub timing_min: Nldm,
    /// Sequential constraints, present only for flip-flops.
    pub seq: Option<SeqTiming>,
    /// Static leakage power in watts.
    pub leakage_w: f64,
    /// Internal (short-circuit + parasitic) energy per output switching
    /// event, in joules. Load energy `C·V²` is accounted separately by
    /// power analysis.
    pub internal_energy_j: f64,
}

impl StdCell {
    /// Delay and output slew driving `load` with the given input slew
    /// (worst-case/late arc, used for setup analysis).
    pub fn arc(&self, in_slew: Time, load: Farad) -> TimingArc {
        self.timing.lookup(in_slew, load)
    }

    /// Best-case (early) delay and output slew for the same transition —
    /// the min-delay arc hold analysis races against.
    pub fn min_arc(&self, in_slew: Time, load: Farad) -> TimingArc {
        self.timing_min.lookup(in_slew, load)
    }

    /// `true` if `load` exceeds the cell's legal maximum.
    pub fn overloaded(&self, load: Farad) -> bool {
        load > self.max_load
    }
}

impl fmt::Display for StdCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.2} µm²)", self.name, self.area.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts() {
        assert_eq!(LogicFn::Inv.input_count(), 1);
        assert_eq!(LogicFn::Nand2.input_count(), 2);
        assert_eq!(LogicFn::Mux2.input_count(), 3);
        assert_eq!(LogicFn::DffRstN.input_count(), 2);
    }

    #[test]
    fn truth_tables() {
        assert!(LogicFn::Inv.eval(&[false]));
        assert!(!LogicFn::Inv.eval(&[true]));
        assert!(LogicFn::Nand2.eval(&[true, false]));
        assert!(!LogicFn::Nand2.eval(&[true, true]));
        assert!(!LogicFn::Nor2.eval(&[true, false]));
        assert!(LogicFn::Nor2.eval(&[false, false]));
        assert!(LogicFn::Xor2.eval(&[true, false]));
        assert!(!LogicFn::Xor2.eval(&[true, true]));
        assert!(LogicFn::Xnor2.eval(&[true, true]));
        // Mux: sel=0 -> a, sel=1 -> b.
        assert!(LogicFn::Mux2.eval(&[true, false, false]));
        assert!(!LogicFn::Mux2.eval(&[true, false, true]));
        // AOI21: !((a&b)|c)
        assert!(!LogicFn::Aoi21.eval(&[true, true, false]));
        assert!(!LogicFn::Aoi21.eval(&[false, false, true]));
        assert!(LogicFn::Aoi21.eval(&[true, false, false]));
        // OAI21: !((a|b)&c)
        assert!(!LogicFn::Oai21.eval(&[true, false, true]));
        assert!(LogicFn::Oai21.eval(&[false, false, true]));
        assert!(LogicFn::Oai21.eval(&[true, true, false]));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_arity_checked() {
        let _ = LogicFn::Nand2.eval(&[true]);
    }

    #[test]
    fn inverting_classification() {
        assert!(LogicFn::Inv.is_inverting());
        assert!(LogicFn::Nand2.is_inverting());
        assert!(!LogicFn::And2.is_inverting());
        assert!(!LogicFn::Buf.is_inverting());
    }

    #[test]
    fn sequential_classification() {
        assert!(LogicFn::Dff.is_sequential());
        assert!(LogicFn::DffRstN.is_sequential());
        assert!(!LogicFn::Mux2.is_sequential());
    }

    #[test]
    fn drive_factors_double() {
        let f: Vec<f64> = DriveStrength::ALL.iter().map(|d| d.factor()).collect();
        assert_eq!(f, [1.0, 2.0, 4.0, 8.0, 16.0]);
        assert!(DriveStrength::X1 < DriveStrength::X16);
    }

    fn linear_table() -> Nldm {
        // delay = 10 + 2*slew + 3*load; out_slew = 5 + slew + load.
        Nldm::characterize(vec![10.0, 50.0, 100.0], vec![1.0, 10.0, 100.0], |s, l| {
            (10.0 + 2.0 * s + 3.0 * l, 5.0 + s + l)
        })
    }

    #[test]
    fn nldm_exact_on_grid_points() {
        let t = linear_table();
        let arc = t.lookup(Time::from_ps(50.0), Farad::from_ff(10.0));
        assert!((arc.delay.ps() - 140.0).abs() < 1e-9);
        assert!((arc.out_slew.ps() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn nldm_interpolates_linearly() {
        let t = linear_table();
        let arc = t.lookup(Time::from_ps(30.0), Farad::from_ff(5.5));
        assert!((arc.delay.ps() - (10.0 + 60.0 + 16.5)).abs() < 1e-9);
    }

    #[test]
    fn nldm_extrapolates_beyond_edges() {
        let t = linear_table();
        // Beyond the largest load the linear model must keep holding.
        let arc = t.lookup(Time::from_ps(50.0), Farad::from_ff(200.0));
        assert!((arc.delay.ps() - (10.0 + 100.0 + 600.0)).abs() < 1e-9);
        // Below the smallest slew too.
        let arc = t.lookup(Time::from_ps(0.0), Farad::from_ff(1.0));
        assert!((arc.delay.ps() - 13.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn nldm_needs_two_points() {
        let _ = Nldm::characterize(vec![1.0], vec![1.0, 2.0], |_, _| (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn nldm_axes_must_increase() {
        let _ = Nldm::characterize(vec![2.0, 1.0], vec![1.0, 2.0], |_, _| (0.0, 0.0));
    }
}
