//! Lightweight physical-unit newtypes.
//!
//! EDA code juggles volts, farads, ohms and seconds across many orders of
//! magnitude; mixing them up is a classic source of silent bugs. The
//! newtypes here give the public API static unit distinctions
//! while staying cheap (`Copy` wrappers over `f64`, SI base units inside).
//!
//! Construction helpers accept the scales that are natural for a 130 nm
//! process (`Farad::from_ff`, `Time::from_ps`, ...) and accessors convert
//! back (`.ff()`, `.ps()`, ...). Cross-unit arithmetic is implemented only
//! where physically meaningful, e.g. `Ohm * Farad = Time`.
//!
//! ```
//! use openserdes_pdk::units::{Ohm, Farad};
//! let tau = Ohm::new(1.0e3) * Farad::from_ff(20.0);
//! assert!((tau.ps() - 20.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $sym:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Wraps a raw value expressed in the SI base unit.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the SI base unit.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Componentwise maximum.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Componentwise minimum.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` if the value is finite (not NaN/inf).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $sym)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volt,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amp,
    "A"
);
unit!(
    /// Resistance in ohms.
    Ohm,
    "Ω"
);
unit!(
    /// Capacitance in farads.
    Farad,
    "F"
);
unit!(
    /// Time in seconds.
    Time,
    "s"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Power in watts.
    Watt,
    "W"
);
unit!(
    /// Energy in joules.
    Joule,
    "J"
);
unit!(
    /// Length in micrometres (the one non-SI base: layout speaks µm).
    Micron,
    "µm"
);
unit!(
    /// Area in square micrometres.
    AreaUm2,
    "µm²"
);

impl Volt {
    /// Constructs from millivolts.
    pub const fn from_mv(mv: f64) -> Self {
        Self(mv * 1.0e-3)
    }

    /// Value in millivolts.
    pub const fn mv(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Amp {
    /// Constructs from milliamperes.
    pub const fn from_ma(ma: f64) -> Self {
        Self(ma * 1.0e-3)
    }

    /// Constructs from microamperes.
    pub const fn from_ua(ua: f64) -> Self {
        Self(ua * 1.0e-6)
    }

    /// Value in milliamperes.
    pub const fn ma(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Value in microamperes.
    pub const fn ua(self) -> f64 {
        self.0 * 1.0e6
    }
}

impl Ohm {
    /// Constructs from kilo-ohms.
    pub const fn from_kohm(k: f64) -> Self {
        Self(k * 1.0e3)
    }

    /// Value in kilo-ohms.
    pub const fn kohm(self) -> f64 {
        self.0 * 1.0e-3
    }
}

impl Farad {
    /// Constructs from femtofarads.
    pub const fn from_ff(ff: f64) -> Self {
        Self(ff * 1.0e-15)
    }

    /// Constructs from picofarads.
    pub const fn from_pf(pf: f64) -> Self {
        Self(pf * 1.0e-12)
    }

    /// Value in femtofarads.
    pub const fn ff(self) -> f64 {
        self.0 * 1.0e15
    }

    /// Value in picofarads.
    pub const fn pf(self) -> f64 {
        self.0 * 1.0e12
    }
}

impl Time {
    /// Constructs from picoseconds.
    pub const fn from_ps(ps: f64) -> Self {
        Self(ps * 1.0e-12)
    }

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: f64) -> Self {
        Self(ns * 1.0e-9)
    }

    /// Value in picoseconds.
    pub const fn ps(self) -> f64 {
        self.0 * 1.0e12
    }

    /// Value in nanoseconds.
    pub const fn ns(self) -> f64 {
        self.0 * 1.0e9
    }

    /// The period of the given frequency.
    pub fn from_frequency(f: Hertz) -> Self {
        Self(1.0 / f.0)
    }
}

impl Hertz {
    /// Constructs from megahertz.
    pub const fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1.0e6)
    }

    /// Constructs from gigahertz.
    pub const fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1.0e9)
    }

    /// Value in megahertz.
    pub const fn mhz(self) -> f64 {
        self.0 * 1.0e-6
    }

    /// Value in gigahertz.
    pub const fn ghz(self) -> f64 {
        self.0 * 1.0e-9
    }

    /// The frequency whose period is the given time.
    pub fn from_period(t: Time) -> Self {
        Self(1.0 / t.0)
    }
}

impl Watt {
    /// Constructs from milliwatts.
    pub const fn from_mw(mw: f64) -> Self {
        Self(mw * 1.0e-3)
    }

    /// Constructs from microwatts.
    pub const fn from_uw(uw: f64) -> Self {
        Self(uw * 1.0e-6)
    }

    /// Value in milliwatts.
    pub const fn mw(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Value in microwatts.
    pub const fn uw(self) -> f64 {
        self.0 * 1.0e6
    }
}

impl Joule {
    /// Constructs from picojoules.
    pub const fn from_pj(pj: f64) -> Self {
        Self(pj * 1.0e-12)
    }

    /// Constructs from femtojoules.
    pub const fn from_fj(fj: f64) -> Self {
        Self(fj * 1.0e-15)
    }

    /// Value in picojoules.
    pub const fn pj(self) -> f64 {
        self.0 * 1.0e12
    }

    /// Value in femtojoules.
    pub const fn fj(self) -> f64 {
        self.0 * 1.0e15
    }
}

impl AreaUm2 {
    /// Value in square millimetres.
    pub const fn mm2(self) -> f64 {
        self.0 * 1.0e-6
    }
}

// --- physically meaningful cross-unit arithmetic -------------------------

impl Mul<Farad> for Ohm {
    type Output = Time;
    fn mul(self, rhs: Farad) -> Time {
        Time(self.0 * rhs.0)
    }
}

impl Mul<Ohm> for Farad {
    type Output = Time;
    fn mul(self, rhs: Ohm) -> Time {
        Time(self.0 * rhs.0)
    }
}

impl Div<Ohm> for Volt {
    type Output = Amp;
    fn div(self, rhs: Ohm) -> Amp {
        Amp(self.0 / rhs.0)
    }
}

impl Div<Amp> for Volt {
    type Output = Ohm;
    fn div(self, rhs: Amp) -> Ohm {
        Ohm(self.0 / rhs.0)
    }
}

impl Mul<Amp> for Volt {
    type Output = Watt;
    fn mul(self, rhs: Amp) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

impl Mul<Volt> for Amp {
    type Output = Watt;
    fn mul(self, rhs: Volt) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

impl Mul<Time> for Watt {
    type Output = Joule;
    fn mul(self, rhs: Time) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

impl Div<Time> for Joule {
    type Output = Watt;
    fn div(self, rhs: Time) -> Watt {
        Watt(self.0 / rhs.0)
    }
}

impl Mul<Micron> for Micron {
    type Output = AreaUm2;
    fn mul(self, rhs: Micron) -> AreaUm2 {
        AreaUm2(self.0 * rhs.0)
    }
}

impl Mul<Hertz> for Joule {
    /// Energy per event times event rate is average power.
    type Output = Watt;
    fn mul(self, rhs: Hertz) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        let tau = Ohm::from_kohm(2.0) * Farad::from_ff(50.0);
        assert!((tau.ps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ohms_law_round_trip() {
        let i = Volt::new(1.8) / Ohm::from_kohm(1.8);
        assert!((i.ma() - 1.0).abs() < 1e-12);
        let r = Volt::new(1.8) / i;
        assert!((r.kohm() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn power_and_energy() {
        let p = Volt::new(1.8) * Amp::from_ma(10.0);
        assert!((p.mw() - 18.0).abs() < 1e-9);
        let e = p * Time::from_ns(1.0);
        assert!((e.pj() - 18.0).abs() < 1e-9);
        let back = e / Time::from_ns(1.0);
        assert!((back.mw() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Hertz::from_ghz(2.0);
        let t = Time::from_frequency(f);
        assert!((t.ps() - 500.0).abs() < 1e-9);
        let f2 = Hertz::from_period(t);
        assert!((f2.ghz() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_helpers_round_trip() {
        assert!((Volt::from_mv(32.0).mv() - 32.0).abs() < 1e-12);
        assert!((Farad::from_pf(2.0).ff() - 2000.0).abs() < 1e-9);
        assert!((Time::from_ns(0.5).ps() - 500.0).abs() < 1e-9);
        assert!((Watt::from_mw(15.7).uw() - 15_700.0).abs() < 1e-9);
        assert!((Joule::from_pj(219.0).fj() - 219_000.0).abs() < 1e-6);
    }

    #[test]
    fn dimensionless_ratio() {
        let ratio = Volt::new(0.9) / Volt::new(1.8);
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arith() {
        let a = Time::from_ps(10.0);
        let b = Time::from_ps(20.0);
        assert!(a < b);
        assert_eq!((a + b).ps().round() as i64, 30);
        assert_eq!((b - a).ps().round() as i64, 10);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn sum_of_units() {
        let total: Watt = [Watt::from_mw(4.5), Watt::from_mw(11.2)].into_iter().sum();
        assert!((total.mw() - 15.7).abs() < 1e-9);
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(format!("{}", Volt::new(1.8)), "1.8 V");
        assert_eq!(format!("{}", Micron::new(0.15)), "0.15 µm");
    }

    #[test]
    fn area_from_lengths() {
        let a = Micron::new(480.0) * Micron::new(500.0);
        assert!((a.mm2() - 0.24).abs() < 1e-9);
    }

    #[test]
    fn energy_rate_is_power() {
        // 219 pJ/bit at 2 Gb/s -> 438 mW.
        let p = Joule::from_pj(219.0) * Hertz::from_ghz(2.0);
        assert!((p.mw() - 438.0).abs() < 1e-6);
    }
}
