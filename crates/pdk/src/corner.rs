//! Process / voltage / temperature (PVT) corners.
//!
//! The Skywater 130 nm PDK characterizes libraries at the usual five process
//! corners with supply and temperature variations. Our reproduction keeps
//! the same vocabulary: a [`ProcessCorner`] selects per-device speed
//! multipliers and threshold shifts, and a [`Pvt`] bundles it with supply
//! voltage and junction temperature.
//!
//! ```
//! use openserdes_pdk::corner::{Pvt, ProcessCorner};
//! let slow = Pvt::new(ProcessCorner::SlowSlow, 1.62, 125.0);
//! let fast = Pvt::new(ProcessCorner::FastFast, 1.98, -40.0);
//! assert!(slow.speed_index() < fast.speed_index());
//! ```

use crate::units::Volt;
use std::fmt;

/// Nominal supply for the sky130 1.8 V standard-cell domain.
pub const NOMINAL_VDD: Volt = Volt::new(1.8);

/// Nominal characterization temperature in Celsius.
pub const NOMINAL_TEMP_C: f64 = 25.0;

/// The five classic process corners.
///
/// The first letter refers to the NMOS device, the second to the PMOS
/// device: e.g. `SlowFast` means slow NMOS, fast PMOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Typical NMOS / typical PMOS — the nominal process.
    #[default]
    Typical,
    /// Slow NMOS / slow PMOS — worst-case speed.
    SlowSlow,
    /// Fast NMOS / fast PMOS — best-case speed, worst leakage.
    FastFast,
    /// Slow NMOS / fast PMOS — worst-case for pull-down-critical paths.
    SlowFast,
    /// Fast NMOS / slow PMOS — worst-case for pull-up-critical paths.
    FastSlow,
}

impl ProcessCorner {
    /// All corners in a canonical order, useful for corner sweeps.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Typical,
        ProcessCorner::SlowSlow,
        ProcessCorner::FastFast,
        ProcessCorner::SlowFast,
        ProcessCorner::FastSlow,
    ];

    /// Short canonical name (`tt`, `ss`, `ff`, `sf`, `fs`) matching PDK
    /// library naming.
    pub fn short_name(self) -> &'static str {
        match self {
            ProcessCorner::Typical => "tt",
            ProcessCorner::SlowSlow => "ss",
            ProcessCorner::FastFast => "ff",
            ProcessCorner::SlowFast => "sf",
            ProcessCorner::FastSlow => "fs",
        }
    }

    /// Mobility multiplier for the NMOS device (1.0 at typical).
    pub fn nmos_mobility_factor(self) -> f64 {
        match self {
            ProcessCorner::Typical => 1.0,
            ProcessCorner::SlowSlow | ProcessCorner::SlowFast => 0.85,
            ProcessCorner::FastFast | ProcessCorner::FastSlow => 1.15,
        }
    }

    /// Mobility multiplier for the PMOS device (1.0 at typical).
    pub fn pmos_mobility_factor(self) -> f64 {
        match self {
            ProcessCorner::Typical => 1.0,
            ProcessCorner::SlowSlow | ProcessCorner::FastSlow => 0.85,
            ProcessCorner::FastFast | ProcessCorner::SlowFast => 1.15,
        }
    }

    /// Threshold-voltage shift (in volts) for the NMOS device.
    pub fn nmos_vth_shift(self) -> f64 {
        match self {
            ProcessCorner::Typical => 0.0,
            ProcessCorner::SlowSlow | ProcessCorner::SlowFast => 0.06,
            ProcessCorner::FastFast | ProcessCorner::FastSlow => -0.06,
        }
    }

    /// Threshold-voltage magnitude shift (in volts) for the PMOS device.
    pub fn pmos_vth_shift(self) -> f64 {
        match self {
            ProcessCorner::Typical => 0.0,
            ProcessCorner::SlowSlow | ProcessCorner::FastSlow => 0.06,
            ProcessCorner::FastFast | ProcessCorner::SlowFast => -0.06,
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A complete process/voltage/temperature operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pvt {
    /// Process corner.
    pub corner: ProcessCorner,
    /// Supply voltage.
    pub vdd: Volt,
    /// Junction temperature in degrees Celsius.
    pub temp_c: f64,
}

impl Pvt {
    /// Creates a PVT point from a corner, a supply in volts and a
    /// temperature in Celsius.
    pub fn new(corner: ProcessCorner, vdd_v: f64, temp_c: f64) -> Self {
        Self {
            corner,
            vdd: Volt::new(vdd_v),
            temp_c,
        }
    }

    /// The nominal operating point: `tt`, 1.8 V, 25 °C.
    pub fn nominal() -> Self {
        Self {
            corner: ProcessCorner::Typical,
            vdd: NOMINAL_VDD,
            temp_c: NOMINAL_TEMP_C,
        }
    }

    /// The classic worst-case setup corner: `ss`, VDD − 10 %, 125 °C.
    pub fn worst_case() -> Self {
        Self::new(ProcessCorner::SlowSlow, NOMINAL_VDD.value() * 0.9, 125.0)
    }

    /// The classic best-case hold corner: `ff`, VDD + 10 %, −40 °C.
    pub fn best_case() -> Self {
        Self::new(ProcessCorner::FastFast, NOMINAL_VDD.value() * 1.1, -40.0)
    }

    /// Temperature-dependent mobility degradation factor relative to 25 °C.
    ///
    /// Uses the standard `(T/T0)^-1.5` power law with absolute temperatures.
    pub fn mobility_temp_factor(&self) -> f64 {
        let t = self.temp_c + 273.15;
        let t0 = NOMINAL_TEMP_C + 273.15;
        (t / t0).powf(-1.5)
    }

    /// Temperature-induced threshold shift in volts relative to 25 °C
    /// (−1 mV/K, i.e. thresholds drop as temperature rises).
    pub fn vth_temp_shift(&self) -> f64 {
        -(self.temp_c - NOMINAL_TEMP_C) * 1.0e-3
    }

    /// A scalar "how fast is this corner" figure of merit.
    ///
    /// Computed as the product of average mobility factor, supply headroom
    /// and the temperature factor; larger means faster logic. Only relative
    /// comparisons are meaningful.
    pub fn speed_index(&self) -> f64 {
        let mob = 0.5
            * (self.corner.nmos_mobility_factor() + self.corner.pmos_mobility_factor())
            * self.mobility_temp_factor();
        // Alpha-power-style drive dependence on overdrive, alpha ≈ 1.3.
        let overdrive = (self.vdd.value() - 0.45 - self.corner.nmos_vth_shift()).max(0.05);
        mob * overdrive.powf(1.3) / self.vdd.value()
    }
}

impl Default for Pvt {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for Pvt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{:.2}V/{:.0}C",
            self.corner,
            self.vdd.value(),
            self.temp_c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_names_match_pdk_convention() {
        let names: Vec<_> = ProcessCorner::ALL.iter().map(|c| c.short_name()).collect();
        assert_eq!(names, ["tt", "ss", "ff", "sf", "fs"]);
    }

    #[test]
    fn slow_corner_is_slower_than_fast() {
        assert!(Pvt::worst_case().speed_index() < Pvt::nominal().speed_index());
        assert!(Pvt::nominal().speed_index() < Pvt::best_case().speed_index());
    }

    #[test]
    fn skewed_corners_skew_the_right_device() {
        let sf = ProcessCorner::SlowFast;
        assert!(sf.nmos_mobility_factor() < 1.0);
        assert!(sf.pmos_mobility_factor() > 1.0);
        let fs = ProcessCorner::FastSlow;
        assert!(fs.nmos_mobility_factor() > 1.0);
        assert!(fs.pmos_mobility_factor() < 1.0);
    }

    #[test]
    fn hot_silicon_is_slower() {
        let hot = Pvt::new(ProcessCorner::Typical, 1.8, 125.0);
        let cold = Pvt::new(ProcessCorner::Typical, 1.8, -40.0);
        assert!(hot.mobility_temp_factor() < 1.0);
        assert!(cold.mobility_temp_factor() > 1.0);
        assert!(hot.speed_index() < cold.speed_index());
    }

    #[test]
    fn vth_drops_when_hot() {
        let hot = Pvt::new(ProcessCorner::Typical, 1.8, 125.0);
        assert!(hot.vth_temp_shift() < 0.0);
    }

    #[test]
    fn higher_supply_is_faster() {
        let lo = Pvt::new(ProcessCorner::Typical, 1.62, 25.0);
        let hi = Pvt::new(ProcessCorner::Typical, 1.98, 25.0);
        assert!(lo.speed_index() < hi.speed_index());
    }

    #[test]
    fn nominal_is_default() {
        assert_eq!(Pvt::default(), Pvt::nominal());
        assert_eq!(Pvt::nominal().vdd, NOMINAL_VDD);
    }

    #[test]
    fn display_round_trip_contains_corner() {
        let s = format!("{}", Pvt::worst_case());
        assert!(s.starts_with("ss@"));
    }
}
