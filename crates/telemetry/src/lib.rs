//! # openserdes-telemetry
//!
//! The workspace's observability substrate: hierarchical **spans** with
//! monotonic timing, named **counters**, and log-bucketed **histograms**,
//! recorded into a per-thread recorder (no locks on the recording path)
//! and merged **deterministically** at scope exit, so parallel sweeps
//! aggregate identically regardless of worker count (DESIGN.md §14).
//!
//! Recording is **zero-cost when disabled**: every entry point checks
//! one relaxed atomic load and returns immediately, so instrumented hot
//! paths pay a branch, not a measurement (the profile bench gates the
//! measured overhead at < 2 %).
//!
//! ```
//! use openserdes_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! let (sum, record) = telemetry::collect(|| {
//!     let _outer = telemetry::span("work");
//!     let mut sum = 0u64;
//!     for i in 0..4u64 {
//!         let _inner = telemetry::span("item");
//!         telemetry::counter("items", 1);
//!         telemetry::record_value("item_value", i);
//!         sum += i;
//!     }
//!     sum
//! });
//! telemetry::set_enabled(false);
//! assert_eq!(sum, 6);
//! assert_eq!(record.counter("items"), 4);
//! assert_eq!(record.span("work").unwrap().child("item").unwrap().count, 4);
//! assert_eq!(record.histogram("item_value").unwrap().count(), 4);
//! ```
//!
//! The merge contract: a [`Record`] is a value. [`collect`] captures
//! everything a closure records on the current thread; [`absorb`] folds
//! a record into the enclosing scope. Parallel engines collect one
//! record per work item and absorb them in **input-index order**, so
//! counters, histograms and span structure are bit-identical for any
//! worker count; only wall times vary run to run.

mod export;
mod record;

pub use record::{merge_span_lists, Histogram, Record, SpanNode, TraceEvent, HISTOGRAM_BUCKETS};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_EVENTS: AtomicBool = AtomicBool::new(false);
static MAX_EVENTS: AtomicUsize = AtomicUsize::new(1 << 18);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns recording on or off process-wide. Off by default; when off,
/// every recording call is a single relaxed load and an early return.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is enabled.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Also record one concrete [`TraceEvent`] per span occurrence (the
/// Chrome `trace_event` timeline). Off by default — aggregated span
/// trees stay bounded, event timelines grow with work done.
pub fn set_trace_events(on: bool) {
    TRACE_EVENTS.store(on, Ordering::Relaxed);
}

/// Whether concrete trace events are recorded.
pub fn trace_events_enabled() -> bool {
    TRACE_EVENTS.load(Ordering::Relaxed)
}

/// Caps the number of trace events a record holds; excess occurrences
/// are counted in [`Record::dropped_events`] instead of growing memory
/// without bound.
pub fn set_max_events(cap: usize) {
    MAX_EVENTS.store(cap, Ordering::Relaxed);
}

/// The current trace-event cap.
pub fn max_events() -> usize {
    MAX_EVENTS.load(Ordering::Relaxed)
}

/// The process-wide time origin for trace events (first use wins), so
/// events from different threads share one timeline.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable ordinal on the shared trace timeline.
fn tid() -> u64 {
    TID.with(|t| *t)
}

/// One collection scope's live state.
#[derive(Default)]
struct Frame {
    roots: Vec<SpanNode>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
    /// Open spans: index into the parent level's children plus start time.
    stack: Vec<(usize, Instant)>,
}

impl Frame {
    /// The children list of the innermost open span (or the roots).
    fn level_at(&mut self, depth: usize) -> &mut Vec<SpanNode> {
        let mut level = &mut self.roots;
        for &(idx, _) in self.stack[..depth].iter() {
            level = &mut level[idx].children;
        }
        level
    }

    fn open(&mut self, name: &'static str) {
        let depth = self.stack.len();
        let level = self.level_at(depth);
        let idx = match level.iter().position(|n| n.name == name) {
            Some(i) => i,
            None => {
                level.push(SpanNode::new(name));
                level.len() - 1
            }
        };
        level[idx].count += 1;
        self.stack.push((idx, Instant::now()));
    }

    fn close(&mut self) {
        let Some((idx, start)) = self.stack.pop() else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let depth = self.stack.len();
        let level = self.level_at(depth);
        let node = &mut level[idx];
        let name = node.name;
        node.total_ns += dur_ns;
        if trace_events_enabled() {
            if self.events.len() < max_events() {
                let start_ns = start
                    .saturating_duration_since(epoch())
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                self.events.push(TraceEvent {
                    name,
                    start_ns,
                    dur_ns,
                    tid: tid(),
                });
            } else {
                self.dropped_events += 1;
            }
        }
    }

    fn into_record(mut self) -> Record {
        // Close any spans left open (a guard leaked across the scope);
        // their time is charged up to the scope exit.
        while !self.stack.is_empty() {
            self.close();
        }
        Record {
            spans: self.roots,
            counters: self.counters,
            histograms: self.histograms,
            events: self.events,
            dropped_events: self.dropped_events,
        }
    }
}

/// The per-thread recorder: a stack of collection frames. Index 0 is
/// the thread's base scope ([`take`] drains it); [`collect`] pushes and
/// pops nested frames.
struct Recorder {
    frames: Vec<Frame>,
}

impl Recorder {
    fn new() -> Self {
        Self {
            frames: vec![Frame::default()],
        }
    }

    fn top(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("base frame always present")
    }
}

/// RAII guard returned by [`span`]; closes the span when dropped.
///
/// Must not be sent across threads (it closes the span on the recorder
/// of the thread that opened it) — it is `!Send` by construction.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    /// Frame index + stack depth this guard closes back to, or `None`
    /// when recording was disabled at open.
    anchor: Option<(usize, usize)>,
    /// Keeps the guard `!Send`/`!Sync`.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((frame_idx, depth)) = self.anchor else {
            return;
        };
        RECORDER.with(|r| {
            let mut rec = r.borrow_mut();
            // The guard's frame may already have been collected (a guard
            // held across a `collect` boundary): nothing left to close.
            if let Some(frame) = rec.frames.get_mut(frame_idx) {
                while frame.stack.len() > depth {
                    frame.close();
                }
            }
        });
    }
}

/// Opens a hierarchical timing span; the returned guard closes it on
/// drop. Repeated spans with the same name at the same position fold
/// into one aggregated [`SpanNode`] (count + total time).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            anchor: None,
            _not_send: std::marker::PhantomData,
        };
    }
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        let frame_idx = rec.frames.len() - 1;
        let top = rec.top();
        let depth = top.stack.len();
        top.open(name);
        SpanGuard {
            anchor: Some((frame_idx, depth)),
            _not_send: std::marker::PhantomData,
        }
    })
}

/// Adds `n` to the named counter.
#[inline]
pub fn counter(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        *r.borrow_mut().top().counters.entry(name).or_insert(0) += n;
    });
}

/// Records one value into the named log-bucketed histogram.
#[inline]
pub fn record_value(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut()
            .top()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    });
}

/// Runs `f` in a fresh collection scope on this thread and returns its
/// result together with everything it recorded. When recording is
/// disabled the closure runs bare and the record is empty.
///
/// Scopes nest: telemetry recorded inside an inner [`collect`] is only
/// visible to the enclosing scope once (and if) the inner record is
/// [`absorb`]ed.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Record) {
    if !is_enabled() {
        return (f(), Record::new());
    }
    RECORDER.with(|r| r.borrow_mut().frames.push(Frame::default()));
    let result = f();
    let record = RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        if rec.frames.len() > 1 {
            rec.frames.pop().expect("pushed above").into_record()
        } else {
            // The scope was torn down externally (reset); nothing left.
            Record::new()
        }
    });
    (result, record)
}

/// Folds a [`Record`] into the current scope: counters and histograms
/// add, the record's span roots become children of the innermost open
/// span (or roots of the scope). The caller chooses the absorb order —
/// parallel engines absorb per-item records in input-index order to
/// keep the merged record worker-count independent.
pub fn absorb(record: Record) {
    if !is_enabled() || record.is_empty() {
        return;
    }
    let cap = max_events();
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        let top = rec.top();
        let depth = top.stack.len();
        let Record {
            spans,
            counters,
            histograms,
            events,
            dropped_events,
        } = record;
        for (k, v) in counters {
            *top.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in histograms {
            top.histograms.entry(k).or_default().merge(&h);
        }
        top.dropped_events += dropped_events;
        let room = cap.saturating_sub(top.events.len());
        if events.len() > room {
            top.dropped_events += (events.len() - room) as u64;
        }
        top.events.extend(events.into_iter().take(room));
        let level = top.level_at(depth);
        merge_span_lists(level, spans);
    });
}

/// Drains this thread's base scope (everything recorded outside any
/// [`collect`]) into a [`Record`].
pub fn take() -> Record {
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        let base = std::mem::take(&mut rec.frames[0]);
        base.into_record()
    })
}

/// Clears this thread's recorder entirely, including nested scopes.
pub fn reset() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Recorder::new();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global flags are process-wide; tests that flip them serialize on
    /// this lock so `cargo test`'s parallel harness cannot interleave.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        set_trace_events(false);
        set_max_events(1 << 18);
        reset();
        r
    }

    #[test]
    fn disabled_recording_is_empty_and_returns_value() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let (v, rec) = collect(|| {
            let _s = span("never");
            counter("never", 3);
            record_value("never", 1);
            17u32
        });
        assert_eq!(v, 17);
        assert!(rec.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let rec = with_enabled(|| {
            let (_, rec) = collect(|| {
                let _a = span("outer");
                for _ in 0..3 {
                    let _b = span("inner");
                }
            });
            rec
        });
        let outer = rec.span("outer").expect("outer recorded");
        assert_eq!(outer.count, 1);
        let inner = outer.child("inner").expect("inner nested");
        assert_eq!(inner.count, 3);
        assert!(rec.span("inner").is_none(), "inner is not a root");
    }

    #[test]
    fn absorb_nests_under_open_span_and_merges_scalars() {
        let rec = with_enabled(|| {
            let (_, worker) = collect(|| {
                let _s = span("work_item");
                counter("items", 1);
                record_value("cost", 5);
            });
            let (_, rec) = collect(|| {
                let _p = span("fanout");
                counter("items", 1);
                absorb(worker.clone());
                absorb(worker);
            });
            rec
        });
        assert_eq!(rec.counter("items"), 3);
        assert_eq!(rec.histogram("cost").unwrap().count(), 2);
        let fanout = rec.span("fanout").expect("parent span");
        assert_eq!(fanout.child("work_item").expect("nested").count, 2);
    }

    #[test]
    fn collect_scopes_are_isolated() {
        let (outer, inner) = with_enabled(|| {
            let mut inner_rec = Record::new();
            let (_, outer_rec) = collect(|| {
                counter("outer_only", 1);
                let (_, r) = collect(|| counter("inner_only", 1));
                inner_rec = r;
            });
            (outer_rec, inner_rec)
        });
        assert_eq!(outer.counter("outer_only"), 1);
        assert_eq!(outer.counter("inner_only"), 0, "not absorbed");
        assert_eq!(inner.counter("inner_only"), 1);
    }

    #[test]
    fn trace_events_record_and_cap() {
        let rec = with_enabled(|| {
            set_trace_events(true);
            set_max_events(2);
            let (_, rec) = collect(|| {
                for _ in 0..5 {
                    let _s = span("ev");
                }
            });
            rec
        });
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.dropped_events, 3);
        assert_eq!(rec.span("ev").unwrap().count, 5, "aggregation unaffected");
    }

    #[test]
    fn take_drains_base_scope() {
        let rec = with_enabled(|| {
            counter("base", 2);
            let first = take();
            assert_eq!(first.counter("base"), 2);
            take()
        });
        assert!(rec.is_empty(), "second take finds a drained scope");
    }

    #[test]
    fn guard_dropped_after_inner_collect_still_closes() {
        let rec = with_enabled(|| {
            let (_, rec) = collect(|| {
                let outer = span("outer");
                let (_, inner) = collect(|| {
                    let _s = span("inner");
                });
                absorb(inner);
                drop(outer);
            });
            rec
        });
        let outer = rec.span("outer").expect("outer");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.child("inner").expect("absorbed inside").count, 1);
    }

    #[test]
    fn threads_get_independent_recorders() {
        let rec = with_enabled(|| {
            let (_, rec) = collect(|| {
                counter("main_thread", 1);
                std::thread::scope(|s| {
                    s.spawn(|| {
                        // Recording on another thread goes to its own
                        // recorder; without collect+absorb it is lost.
                        counter("worker_thread", 1);
                    });
                });
            });
            rec
        });
        assert_eq!(rec.counter("main_thread"), 1);
        assert_eq!(rec.counter("worker_thread"), 0);
    }
}
