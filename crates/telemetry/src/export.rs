//! Exporters: human-readable tree, machine JSON, and Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto).

use crate::record::{Histogram, Record, SpanNode};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_json(node: &SpanNode, out: &mut String) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"children\":[",
        json_escape(node.name),
        node.count,
        node.total_ns
    );
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(c, out);
    }
    out.push_str("]}");
}

fn histogram_json(h: &Histogram, out: &mut String) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.6},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.mean()
    );
    for (i, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}");
    }
    out.push_str("]}");
}

fn span_tree(node: &SpanNode, depth: usize, parent_ns: Option<u64>, out: &mut String) {
    let pct = parent_ns
        .filter(|&p| p > 0)
        .map(|p| format!(" ({:.0}%)", 100.0 * node.total_ns as f64 / p as f64))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "{:indent$}{:<30} {:>8}x {:>12.3} ms{}",
        "",
        node.name,
        node.count,
        node.total_ms(),
        pct,
        indent = 2 * depth
    );
    for c in &node.children {
        span_tree(c, depth + 1, Some(node.total_ns), out);
    }
}

impl Record {
    /// Renders the record as an indented human-readable report: the
    /// span tree with per-node counts, total times and share of the
    /// parent, then counters, then histogram summaries.
    pub fn to_tree_string(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                span_tree(s, 1, None, &mut out);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<40} count={} mean={:.1} min={} max={}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "(trace events dropped at cap: {})",
                self.dropped_events
            );
        }
        out
    }

    /// Serializes the record as machine-readable JSON: span tree,
    /// counters, histograms (non-empty buckets only) and the trace
    /// event count.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"openserdes-telemetry-record/1\",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(s, &mut out);
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(k));
            histogram_json(h, &mut out);
        }
        let _ = write!(
            out,
            "}},\"events\":{},\"dropped_events\":{}}}",
            self.events.len(),
            self.dropped_events
        );
        out
    }

    /// Serializes the record's concrete span occurrences in Chrome
    /// `trace_event` format — load the output in `chrome://tracing` or
    /// <https://ui.perfetto.dev>. Each event is a complete (`"X"`) slice
    /// with microsecond timestamps on the shared process timeline; the
    /// recording thread's ordinal becomes the trace `tid`.
    ///
    /// Requires trace events to have been enabled during recording
    /// ([`crate::set_trace_events`]); with none recorded the trace is
    /// valid but empty.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"openserdes\"}}",
        );
        for e in &self.events {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"openserdes\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                json_escape(e.name),
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                e.tid
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceEvent;

    fn sample() -> Record {
        let mut rec = Record::new();
        rec.spans = vec![SpanNode {
            name: "run",
            count: 1,
            total_ns: 2_000_000,
            children: vec![SpanNode {
                name: "stage",
                count: 4,
                total_ns: 1_000_000,
                children: vec![],
            }],
        }];
        rec.counters.insert("bits", 256);
        let mut h = Histogram::default();
        h.record(3);
        h.record(300);
        rec.histograms.insert("cost", h);
        rec.events.push(TraceEvent {
            name: "stage",
            start_ns: 1500,
            dur_ns: 250_000,
            tid: 2,
        });
        rec
    }

    #[test]
    fn tree_report_shows_all_sections() {
        let s = sample().to_tree_string();
        assert!(s.contains("spans:"));
        assert!(s.contains("run"));
        assert!(s.contains("stage"));
        assert!(s.contains("(50%)"), "child share of parent: {s}");
        assert!(s.contains("counters:"));
        assert!(s.contains("bits"));
        assert!(s.contains("histograms:"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"openserdes-telemetry-record/1\""));
        assert!(j.contains("\"name\":\"run\""));
        assert!(j.contains("\"counters\":{\"bits\":256}"));
        assert!(j.contains("\"lo\":2,\"hi\":3,\"count\":1"));
        assert!(j.contains("\"events\":1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let t = sample().to_chrome_trace();
        assert!(t.contains("\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"M\""));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ts\":1.500"));
        assert!(t.contains("\"dur\":250.000"));
        assert!(t.contains("\"tid\":2"));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
    }

    #[test]
    fn empty_record_exports_are_valid() {
        let r = Record::new();
        assert_eq!(r.to_tree_string(), "");
        assert!(r.to_json().contains("\"spans\":[]"));
        assert!(r.to_chrome_trace().ends_with("]}"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
