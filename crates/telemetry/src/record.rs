//! The mergeable telemetry artifact: span trees, counters, histograms
//! and optional trace events, with a deterministic merge.

use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per power of two
/// of the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` values.
///
/// Bucket 0 counts exact zeros; bucket `b ≥ 1` counts values in
/// `[2^(b-1), 2^b - 1]`. Buckets, count, sum, min and max are all plain
/// integer accumulators, so merging two histograms is associative and
/// commutative — the foundation of the deterministic parallel merge
/// (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                if b == 0 {
                    (0, 0, c)
                } else {
                    let hi = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
                    (1u64 << (b - 1), hi, c)
                }
            })
    }
}

/// One aggregated node of the span tree: every occurrence of a span
/// name at the same position in the hierarchy folds into one node
/// (count and total time accumulate; children merge recursively).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (static so recording never allocates for the key).
    pub name: &'static str,
    /// How many times the span ran at this tree position.
    pub count: u64,
    /// Summed wall time across occurrences, nanoseconds.
    pub total_ns: u64,
    /// Child spans in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A fresh node with zero occurrences.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            count: 0,
            total_ns: 0,
            children: Vec::new(),
        }
    }

    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Merges `src` span nodes into `dst`, folding by name at each level
/// and preserving `dst`-then-first-seen ordering. Counts and totals are
/// integer sums, so any association of merges yields the same counts;
/// the ordering is deterministic as long as merges happen in a
/// deterministic order (which the parallel engines guarantee by
/// absorbing worker records in input-index order).
pub fn merge_span_lists(dst: &mut Vec<SpanNode>, src: Vec<SpanNode>) {
    for node in src {
        match dst.iter_mut().find(|d| d.name == node.name) {
            Some(d) => {
                d.count += node.count;
                d.total_ns += node.total_ns;
                merge_span_lists(&mut d.children, node.children);
            }
            None => dst.push(node),
        }
    }
}

/// One concrete span occurrence for the Chrome `trace_event` timeline
/// (recorded only when trace events are enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Start time, nanoseconds since the process-wide telemetry epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Recording thread's ordinal (stable per thread, first-use order).
    pub tid: u64,
}

/// Everything recorded inside one [`crate::collect`] scope: the
/// deterministic, mergeable unit of telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    /// Aggregated span tree roots.
    pub spans: Vec<SpanNode>,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named log-bucketed histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Concrete span occurrences (when trace events are enabled).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the event cap was reached.
    pub dropped_events: u64,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
    }

    /// The value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram recorded under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Finds a root span by name.
    pub fn span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Merges `other` into `self`: counters and histogram buckets add,
    /// span trees fold by name, events concatenate up to `max_events`
    /// (overflow lands in [`Record::dropped_events`]).
    pub fn merge(&mut self, other: Record, max_events: usize) {
        merge_span_lists(&mut self.spans, other.spans);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.histograms {
            self.histograms.entry(k).or_default().merge(&h);
        }
        self.dropped_events += other.dropped_events;
        let room = max_events.saturating_sub(self.events.len());
        if other.events.len() > room {
            self.dropped_events += (other.events.len() - room) as u64;
        }
        self.events.extend(other.events.into_iter().take(room));
    }

    /// The deterministic half of the record — everything except wall
    /// times and trace events — as a canonical string. Two runs of the
    /// same workload must produce byte-identical deterministic parts
    /// regardless of worker count (DESIGN.md §14); tests compare this.
    pub fn deterministic_digest(&self) -> String {
        fn span(out: &mut String, node: &SpanNode, depth: usize) {
            out.push_str(&format!(
                "{}span {} x{}\n",
                "  ".repeat(depth),
                node.name,
                node.count
            ));
            for c in &node.children {
                span(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for s in &self.spans {
            span(&mut out, s, 0);
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k}: count={} sum={} min={} max={} buckets=[",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
            for (lo, hi, c) in h.nonzero_buckets() {
                out.push_str(&format!("({lo},{hi})x{c},"));
            }
            out.push_str("]\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 | 1 | 2..3 (x2) | 4..7 (x2) | 8..15 | 1024..2047 | top
        assert_eq!(buckets[0], (0, 0, 1));
        assert_eq!(buckets[1], (1, 1, 1));
        assert_eq!(buckets[2], (2, 3, 2));
        assert_eq!(buckets[3], (4, 7, 2));
        assert_eq!(buckets[4], (8, 15, 1));
        assert_eq!(buckets[5], (1024, 2047, 1));
        assert_eq!(buckets[6].2, 1);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [3, 9, 100] {
            a.record(v);
        }
        for v in [0, 5, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
    }

    #[test]
    fn empty_histogram_stats_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn span_lists_fold_by_name() {
        let mut dst = vec![SpanNode {
            name: "a",
            count: 1,
            total_ns: 10,
            children: vec![SpanNode {
                name: "x",
                count: 2,
                total_ns: 4,
                children: vec![],
            }],
        }];
        let src = vec![
            SpanNode {
                name: "a",
                count: 1,
                total_ns: 5,
                children: vec![SpanNode {
                    name: "y",
                    count: 1,
                    total_ns: 1,
                    children: vec![],
                }],
            },
            SpanNode {
                name: "b",
                count: 3,
                total_ns: 7,
                children: vec![],
            },
        ];
        merge_span_lists(&mut dst, src);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst[0].count, 2);
        assert_eq!(dst[0].total_ns, 15);
        assert_eq!(dst[0].children.len(), 2);
        assert_eq!(dst[0].child("x").unwrap().count, 2);
        assert_eq!(dst[0].child("y").unwrap().count, 1);
        assert_eq!(dst[1].name, "b");
    }

    #[test]
    fn record_merge_caps_events() {
        let ev = |n: u64| TraceEvent {
            name: "e",
            start_ns: n,
            dur_ns: 1,
            tid: 0,
        };
        let mut a = Record::new();
        a.events = vec![ev(0), ev(1)];
        let mut b = Record::new();
        b.events = vec![ev(2), ev(3), ev(4)];
        a.merge(b, 3);
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.dropped_events, 2);
    }

    #[test]
    fn deterministic_digest_ignores_times() {
        let mut a = Record::new();
        a.spans = vec![SpanNode {
            name: "s",
            count: 2,
            total_ns: 123,
            children: vec![],
        }];
        a.counters.insert("c", 7);
        let mut b = a.clone();
        b.spans[0].total_ns = 999_999;
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        b.counters.insert("c", 8);
        // counters replaced: digest differs
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
    }
}
