//! Per-rule severity overrides: allow, downgrade or promote any rule.

use crate::rules::{Rule, Severity};

/// What a [`LintConfig`] maps a rule to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// Drop findings for this rule entirely.
    Allow,
    /// Report at Info.
    Info,
    /// Report at Warn.
    Warn,
    /// Report at Error.
    Error,
}

impl LintLevel {
    /// The severity this level maps to, or `None` for [`LintLevel::Allow`].
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Info => Some(Severity::Info),
            LintLevel::Warn => Some(Severity::Warn),
            LintLevel::Error => Some(Severity::Error),
        }
    }
}

/// Per-rule overrides applied when findings are added to a
/// [`crate::LintReport`]. The default config reports every rule at its
/// catalog severity.
///
/// Built fluently:
///
/// ```
/// use openserdes_lint::{LintConfig, LintLevel, Rule, Severity};
/// let cfg = LintConfig::default()
///     .allow(Rule::UnusedInput)
///     .set_level(Rule::DanglingOutput, LintLevel::Error);
/// assert_eq!(cfg.effective(Rule::UnusedInput), None);
/// assert_eq!(cfg.effective(Rule::DanglingOutput), Some(Severity::Error));
/// assert_eq!(cfg.effective(Rule::UndrivenNet), Some(Severity::Error));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    overrides: Vec<(Rule, LintLevel)>,
}

impl LintConfig {
    /// A config with no overrides (all rules at default severity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an explicit level for `rule`, replacing any earlier override.
    pub fn set_level(mut self, rule: Rule, level: LintLevel) -> Self {
        self.overrides.retain(|(r, _)| *r != rule);
        self.overrides.push((rule, level));
        self
    }

    /// Suppress `rule` entirely.
    pub fn allow(self, rule: Rule) -> Self {
        self.set_level(rule, LintLevel::Allow)
    }

    /// Downgrade `rule` to Warn (the common "known issue" escape hatch).
    pub fn warn(self, rule: Rule) -> Self {
        self.set_level(rule, LintLevel::Warn)
    }

    /// The severity findings for `rule` get under this config, or
    /// `None` if the rule is allowed (findings dropped).
    pub fn effective(&self, rule: Rule) -> Option<Severity> {
        match self.overrides.iter().find(|(r, _)| *r == rule) {
            Some((_, level)) => level.severity(),
            None => Some(rule.default_severity()),
        }
    }

    /// True if no overrides are set.
    pub fn is_default(&self) -> bool {
        self.overrides.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_catalog_severity() {
        let cfg = LintConfig::default();
        for rule in Rule::ALL {
            assert_eq!(cfg.effective(rule), Some(rule.default_severity()));
        }
        assert!(cfg.is_default());
    }

    #[test]
    fn later_override_wins() {
        let cfg = LintConfig::default()
            .set_level(Rule::DeadLogic, LintLevel::Error)
            .allow(Rule::DeadLogic);
        assert_eq!(cfg.effective(Rule::DeadLogic), None);
        // Replacement, not accumulation.
        assert_eq!(cfg.overrides.len(), 1);
    }

    #[test]
    fn warn_downgrades() {
        let cfg = LintConfig::default().warn(Rule::UndrivenNet);
        assert_eq!(cfg.effective(Rule::UndrivenNet), Some(Severity::Warn));
    }
}
