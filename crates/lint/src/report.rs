//! Findings, locations and the [`LintReport`] container with its text
//! and JSON renderings.

use std::fmt;

use crate::config::LintConfig;
use crate::rules::{Rule, Severity};

/// What kind of design entity a finding is anchored to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A gate-level cell instance (`CellId`).
    Cell,
    /// A gate-level net (`NetId`).
    Net,
    /// An RTL IR signal (`Sig`).
    Sig,
    /// An RTL IR register index.
    Reg,
    /// An analog MNA node (`Node`).
    Node,
    /// An analog element (resistor/capacitor/MOS), by element index.
    Element,
    /// An independent source, by source index.
    Source,
}

impl EntityKind {
    /// Lower-case label used in text and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::Cell => "cell",
            EntityKind::Net => "net",
            EntityKind::Sig => "sig",
            EntityKind::Reg => "reg",
            EntityKind::Node => "node",
            EntityKind::Element => "element",
            EntityKind::Source => "source",
        }
    }
}

/// Where in the design a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The entity class the `name`/`id` pair refers to.
    pub kind: EntityKind,
    /// Human name of the entity (instance name, net name, node name…).
    pub name: String,
    /// Arena index of the entity inside its container.
    pub id: usize,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}` (#{})", self.kind.label(), self.name, self.id)
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Effective severity (default, unless a [`LintConfig`] remapped it
    /// when the finding was added to a report).
    pub severity: Severity,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// Primary anchor, if the violation points at a single entity.
    pub location: Option<Location>,
    /// Secondary entities involved (e.g. every cell on a loop).
    pub related: Vec<Location>,
}

impl Finding {
    /// A finding for `rule` at its default severity, not yet anchored.
    pub fn new(rule: Rule, message: impl Into<String>) -> Self {
        Finding {
            rule,
            severity: rule.default_severity(),
            message: message.into(),
            location: None,
            related: Vec::new(),
        }
    }

    /// Anchor the finding to an entity.
    pub fn at(mut self, kind: EntityKind, name: impl Into<String>, id: usize) -> Self {
        self.location = Some(Location {
            kind,
            name: name.into(),
            id,
        });
        self
    }

    /// Anchor the finding to a cell instance.
    pub fn at_cell(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Cell, name, id)
    }

    /// Anchor the finding to a net.
    pub fn at_net(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Net, name, id)
    }

    /// Anchor the finding to an IR signal.
    pub fn at_sig(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Sig, name, id)
    }

    /// Anchor the finding to an IR register.
    pub fn at_reg(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Reg, name, id)
    }

    /// Anchor the finding to an analog node.
    pub fn at_node(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Node, name, id)
    }

    /// Anchor the finding to an analog element.
    pub fn at_element(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Element, name, id)
    }

    /// Anchor the finding to an independent source.
    pub fn at_source(self, name: impl Into<String>, id: usize) -> Self {
        self.at(EntityKind::Source, name, id)
    }

    /// Attach a secondary entity (chainable).
    pub fn with_related(mut self, kind: EntityKind, name: impl Into<String>, id: usize) -> Self {
        self.related.push(Location {
            kind,
            name: name.into(),
            id,
        });
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity,
            self.rule.code(),
            self.message
        )?;
        if let Some(loc) = &self.location {
            write!(f, " — at {loc}")?;
        }
        if !self.related.is_empty() {
            write!(f, " (involving")?;
            for (i, r) in self.related.iter().enumerate() {
                write!(f, "{} {r}", if i == 0 { "" } else { "," })?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The result of running one lint pass over one design.
///
/// `Display` renders a human summary; [`LintReport::to_json`] renders a
/// machine-readable object for CI.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    design: String,
    domain: String,
    findings: Vec<Finding>,
    suppressed: usize,
}

impl LintReport {
    /// An empty report for `design`, produced by the `domain` pass
    /// (`"netlist"`, `"ir"` or `"analog"`).
    pub fn new(design: impl Into<String>, domain: impl Into<String>) -> Self {
        LintReport {
            design: design.into(),
            domain: domain.into(),
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    /// The design name this report describes.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// The pass domain (`"netlist"`, `"ir"`, `"analog"`).
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Record a finding, applying `cfg`'s per-rule overrides. Findings
    /// for allowed rules are dropped (counted as suppressed).
    pub fn add(&mut self, cfg: &LintConfig, mut finding: Finding) {
        match cfg.effective(finding.rule) {
            Some(sev) => {
                finding.severity = sev;
                self.findings.push(finding);
            }
            None => self.suppressed += 1,
        }
    }

    /// Merge another report's findings into this one (used by the lint
    /// bin to aggregate passes over the same design).
    pub fn absorb(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.suppressed += other.suppressed;
    }

    /// All recorded findings, in emission order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Number of findings dropped by `LintConfig::allow`.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Count of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// The most severe finding level, if any finding was recorded.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// True if any Error-level finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// True if any Warn-or-worse finding was recorded.
    pub fn has_warnings(&self) -> bool {
        self.worst() >= Some(Severity::Warn)
    }

    /// True if no findings at all were recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report as a JSON object (no external deps: the
    /// encoder is hand-rolled and escapes via [`json_escape`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 160 * self.findings.len());
        s.push_str("{\"design\":\"");
        s.push_str(&json_escape(&self.design));
        s.push_str("\",\"domain\":\"");
        s.push_str(&json_escape(&self.domain));
        s.push_str("\",\"errors\":");
        s.push_str(&self.count(Severity::Error).to_string());
        s.push_str(",\"warnings\":");
        s.push_str(&self.count(Severity::Warn).to_string());
        s.push_str(",\"infos\":");
        s.push_str(&self.count(Severity::Info).to_string());
        s.push_str(",\"suppressed\":");
        s.push_str(&self.suppressed.to_string());
        s.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rule\":\"");
            s.push_str(f.rule.code());
            s.push_str("\",\"title\":\"");
            s.push_str(f.rule.title());
            s.push_str("\",\"severity\":\"");
            s.push_str(f.severity.label());
            s.push_str("\",\"message\":\"");
            s.push_str(&json_escape(&f.message));
            s.push('"');
            if let Some(loc) = &f.location {
                s.push_str(",\"location\":");
                push_location(&mut s, loc);
            }
            if !f.related.is_empty() {
                s.push_str(",\"related\":[");
                for (j, r) in f.related.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    push_location(&mut s, r);
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn push_location(s: &mut String, loc: &Location) {
    s.push_str("{\"kind\":\"");
    s.push_str(loc.kind.label());
    s.push_str("\",\"name\":\"");
    s.push_str(&json_escape(&loc.name));
    s.push_str("\",\"id\":");
    s.push_str(&loc.id.to_string());
    s.push('}');
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint report for `{}` ({}): {} error(s), {} warning(s), {} info(s){}",
            self.design,
            self.domain,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            if self.suppressed > 0 {
                format!(", {} suppressed", self.suppressed)
            } else {
                String::new()
            }
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintLevel;

    fn sample() -> LintReport {
        let cfg = LintConfig::default();
        let mut r = LintReport::new("dut", "netlist");
        r.add(
            &cfg,
            Finding::new(Rule::UndrivenNet, "net `a` never driven").at_net("a", 3),
        );
        r.add(
            &cfg,
            Finding::new(Rule::DanglingOutput, "cell `u1` output unused")
                .at_cell("u1", 0)
                .with_related(EntityKind::Net, "y", 9),
        );
        r
    }

    #[test]
    fn counts_and_worst() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(r.has_errors() && r.has_warnings() && !r.is_clean());
    }

    #[test]
    fn config_overrides_apply_on_add() {
        let cfg = LintConfig::default()
            .allow(Rule::UndrivenNet)
            .set_level(Rule::DanglingOutput, LintLevel::Error);
        let mut r = LintReport::new("dut", "netlist");
        r.add(&cfg, Finding::new(Rule::UndrivenNet, "gone"));
        r.add(&cfg, Finding::new(Rule::DanglingOutput, "promoted"));
        assert_eq!(r.suppressed(), 1);
        assert_eq!(r.findings().len(), 1);
        assert_eq!(r.findings()[0].severity, Severity::Error);
    }

    #[test]
    fn display_lists_findings() {
        let text = sample().to_string();
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(text.contains("error [NL002]"));
        assert!(text.contains("net `a` (#3)"));
        assert!(text.contains("involving net `y` (#9)"));
    }

    #[test]
    fn json_is_well_formed() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"NL002\""));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"location\":{\"kind\":\"net\",\"name\":\"a\",\"id\":3}"));
        // Balanced braces/brackets (the encoder is hand-rolled).
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escape_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn absorb_merges() {
        let mut a = sample();
        let b = sample();
        a.absorb(b);
        assert_eq!(a.findings().len(), 4);
    }
}
