//! # openserdes-lint
//!
//! The shared diagnostics core of the design-lint engine (DESIGN.md §12):
//! the static DRC/ERC layer that rejects broken designs *before* they
//! reach synthesis, placement or a transient solve — the role yosys'
//! `check` and OpenSTA's sanity passes play in the paper's OpenLANE flow.
//!
//! This crate deliberately contains **no analysis passes**, only the
//! vocabulary they share:
//!
//! * [`Rule`] — the complete rule catalog (`NL0xx` netlist ERC, `IR0xx`
//!   RTL-IR checks, `AN0xx` analog DRC) with default severities,
//! * [`Finding`] / [`Location`] — one diagnostic, anchored to a named
//!   cell/net/signal/element,
//! * [`LintReport`] — a pass result that renders human text
//!   ([`std::fmt::Display`]) and machine JSON ([`LintReport::to_json`]),
//! * [`LintConfig`] — per-rule allow/downgrade/promote overrides.
//!
//! The passes themselves live next to the data structures they check —
//! `openserdes_netlist::lint` (gate-level ERC),
//! `openserdes_flow::lint` (RTL IR), `openserdes_analog::drc` (circuit
//! DRC) — because the flow and solver crates *gate* on lint results and
//! therefore must be allowed to depend on this crate without a cycle.
//! The `lint` binary in `openserdes-bench` aggregates all three over
//! every shipped design for CI.
//!
//! ```
//! use openserdes_lint::{Finding, LintConfig, LintReport, Rule, Severity};
//!
//! let cfg = LintConfig::default();
//! let mut report = LintReport::new("my_design", "netlist");
//! report.add(
//!     &cfg,
//!     Finding::new(Rule::UndrivenNet, "net `fb` is read but never driven")
//!         .at_net("fb", 7),
//! );
//! assert!(report.has_errors());
//! assert_eq!(report.findings()[0].rule.code(), "NL002");
//!
//! // The same finding can be suppressed per rule.
//! let relaxed = LintConfig::default().allow(Rule::UndrivenNet);
//! let mut quiet = LintReport::new("my_design", "netlist");
//! quiet.add(
//!     &relaxed,
//!     Finding::new(Rule::UndrivenNet, "net `fb` is read but never driven"),
//! );
//! assert!(quiet.is_clean());
//! ```

mod config;
mod report;
mod rules;

pub use config::{LintConfig, LintLevel};
pub use report::{json_escape, EntityKind, Finding, LintReport, Location};
pub use rules::{Rule, Severity};
