//! The rule catalog: every check the lint engine implements, with its
//! stable ID, default severity and rationale.
//!
//! Rule IDs are grouped by the data structure they inspect:
//!
//! * `NL0xx` — gate-level netlist ERC (`openserdes_netlist::lint`),
//! * `IR0xx` — RTL IR checks (`openserdes_flow::lint`),
//! * `AN0xx` — analog circuit DRC (`openserdes_analog::drc`),
//! * `TM0xx` — static-timing signoff findings (`openserdes_flow::sta`).
//!
//! IDs are stable across releases: rules may be retired but never
//! renumbered, so suppression lists in user configs keep meaning the
//! same thing.

use std::fmt;

/// How bad a finding is.
///
/// Ordered: `Info < Warn < Error`, so `report.worst()` comparisons read
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth a look, never gates anything.
    Info,
    /// Suspicious: almost always a latent bug; gates CI under
    /// `--deny warn`.
    Warn,
    /// Broken: the design cannot work; gates the flow and the solver.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rule of the catalog. See each variant for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    // ---- NL0xx: gate-level netlist ERC ---------------------------------
    /// `NL001` — a net is driven by more than one cell output, or a cell
    /// drives a primary input. Electrical contention: the resolved value
    /// is undefined.
    MultiplyDrivenNet,
    /// `NL002` — a net is read (by a pin or a primary output) but nothing
    /// drives it. The reader sees a floating input.
    UndrivenNet,
    /// `NL003` — a combinational feedback loop (Tarjan SCC over the
    /// combinational driver graph). Unclocked feedback is a latch at
    /// best and an oscillator at worst; no static timing exists.
    CombinationalLoop,
    /// `NL004` — a cell output drives nothing and is not a primary
    /// output. The cell burns area and leakage for no observable effect.
    DanglingOutput,
    /// `NL005` — a cell is not in the fan-in cone of any primary output
    /// (transitively dead, even though its output has local readers).
    DeadLogic,
    /// `NL006` — a flop's data cone crosses from another clock domain
    /// without a recognizable two-flop synchronizer, or crosses through
    /// multi-input combinational logic. Metastability hazard.
    UnsyncClockCrossing,
    /// `NL007` — a net's capacitive load (sink pins) exceeds the driving
    /// cell's library `max_load` for its drive strength. Slew collapse.
    DriveOverload,
    /// `NL008` — an instance references a net id that does not exist in
    /// this netlist, or a sequential cell has no clock. Corrupt
    /// structure.
    BadReference,

    // ---- IR0xx: RTL IR checks ------------------------------------------
    /// `IR001` — a register was declared but its data input was never
    /// connected. Synthesis would emit a flop with a floating D pin.
    UnconnectedRegister,
    /// `IR002` — a logic node is outside the fan-in cone of every output
    /// and every connected register: dead logic in the IR.
    DeadNode,
    /// `IR003` — three-valued constant propagation (inputs unknown,
    /// registers from their power-up value) proves a register never
    /// leaves a constant value: dead state, typically a wiring bug.
    ConstantRegister,
    /// `IR004` — a declared primary input drives nothing.
    UnusedInput,
    /// `IR005` — a bus-style port (`name[i]`) has a width gap: indices
    /// are not contiguous from 0. Almost always an off-by-one in a
    /// builder loop; downstream width assumptions break.
    RaggedBus,
    /// `IR006` — the same register carries more than one multicycle
    /// exception. The STA honours one; the duplicate is a stale edit.
    DuplicateMulticycle,

    // ---- AN0xx: analog circuit DRC -------------------------------------
    /// `AN001` — a node has no DC path to ground or to any voltage
    /// source (only capacitors or MOS gates reach it). The MNA matrix is
    /// structurally singular at DC without `gmin`; the bias point is
    /// undefined.
    NoDcPath,
    /// `AN002` — a resistor/capacitor value is zero, negative or
    /// non-finite, or a MOS device has non-positive geometry. The stamp
    /// is ill-conditioned or meaningless.
    NonPositiveElement,
    /// `AN003` — a degenerate element: both terminals of an R/C on the
    /// same node, or a MOS with drain shorted to source. Contributes
    /// nothing (or a self-short) to the solve.
    DegenerateElement,
    /// `AN004` — a node was declared but no element or source touches
    /// it. Usually a forgotten connection.
    UnusedNode,
    /// `AN005` — conflicting voltage sources: two sources on one node,
    /// or a source forcing the ground node.
    SourceConflict,
    /// `AN006` — a stimulus carries non-finite values or a
    /// piecewise-linear time axis that runs backwards.
    BadStimulus,

    // ---- TM0xx: static-timing signoff ----------------------------------
    /// `TM001` — a setup (max-delay) check failed: data arrives after the
    /// capture edge minus setup and uncertainty. The design cannot run at
    /// the requested clock; slowing the clock clears it, hence Warn.
    SetupViolation,
    /// `TM002` — a hold (min-delay) check failed: data races through and
    /// corrupts the *same* edge's capture. Hold failures are
    /// frequency-independent and kill silicon at every clock, hence Error.
    HoldViolation,
    /// `TM003` — an endpoint is clocked by a generated/derived clock with
    /// no period constraint: the check silently never runs. OpenSTA's
    /// "unconstrained endpoint" warning.
    UnconstrainedEndpoint,
    /// `TM004` — a net's transition time exceeds the configured
    /// max-transition limit. Slow edges burn short-circuit power and make
    /// every downstream NLDM lookup untrustworthy.
    MaxTransitionViolation,
    /// `TM005` — a net's capacitive load (pins + wire) exceeds the
    /// driving cell's library `max_load`. The delay model is
    /// extrapolating far off its table; the real edge is worse.
    MaxCapViolation,
    /// `TM006` — the clock insertion-delay spread inside one domain
    /// exceeds the configured skew limit: the CTS estimate cannot deliver
    /// a balanced tree for this netlist.
    ExcessiveClockSkew,
    /// `TM007` — a path crosses clock domains and is therefore untimed by
    /// default (no common capture edge exists). Informational: the NL006
    /// synchronizer audit decides whether the crossing is *safe*.
    UntimedCrossDomainPath,
    /// `TM008` — a timing exception references a cell that does not exist
    /// or is not sequential: the exception silently constrains nothing,
    /// which is always a stale or mistyped constraint.
    InvalidTimingException,
}

impl Rule {
    /// Every rule in the catalog, in ID order. Tests iterate this to
    /// assert one triggering fixture exists per rule.
    pub const ALL: [Rule; 28] = [
        Rule::MultiplyDrivenNet,
        Rule::UndrivenNet,
        Rule::CombinationalLoop,
        Rule::DanglingOutput,
        Rule::DeadLogic,
        Rule::UnsyncClockCrossing,
        Rule::DriveOverload,
        Rule::BadReference,
        Rule::UnconnectedRegister,
        Rule::DeadNode,
        Rule::ConstantRegister,
        Rule::UnusedInput,
        Rule::RaggedBus,
        Rule::DuplicateMulticycle,
        Rule::NoDcPath,
        Rule::NonPositiveElement,
        Rule::DegenerateElement,
        Rule::UnusedNode,
        Rule::SourceConflict,
        Rule::BadStimulus,
        Rule::SetupViolation,
        Rule::HoldViolation,
        Rule::UnconstrainedEndpoint,
        Rule::MaxTransitionViolation,
        Rule::MaxCapViolation,
        Rule::ExcessiveClockSkew,
        Rule::UntimedCrossDomainPath,
        Rule::InvalidTimingException,
    ];

    /// The stable rule ID (`NL001` …).
    pub fn code(self) -> &'static str {
        match self {
            Rule::MultiplyDrivenNet => "NL001",
            Rule::UndrivenNet => "NL002",
            Rule::CombinationalLoop => "NL003",
            Rule::DanglingOutput => "NL004",
            Rule::DeadLogic => "NL005",
            Rule::UnsyncClockCrossing => "NL006",
            Rule::DriveOverload => "NL007",
            Rule::BadReference => "NL008",
            Rule::UnconnectedRegister => "IR001",
            Rule::DeadNode => "IR002",
            Rule::ConstantRegister => "IR003",
            Rule::UnusedInput => "IR004",
            Rule::RaggedBus => "IR005",
            Rule::DuplicateMulticycle => "IR006",
            Rule::NoDcPath => "AN001",
            Rule::NonPositiveElement => "AN002",
            Rule::DegenerateElement => "AN003",
            Rule::UnusedNode => "AN004",
            Rule::SourceConflict => "AN005",
            Rule::BadStimulus => "AN006",
            Rule::SetupViolation => "TM001",
            Rule::HoldViolation => "TM002",
            Rule::UnconstrainedEndpoint => "TM003",
            Rule::MaxTransitionViolation => "TM004",
            Rule::MaxCapViolation => "TM005",
            Rule::ExcessiveClockSkew => "TM006",
            Rule::UntimedCrossDomainPath => "TM007",
            Rule::InvalidTimingException => "TM008",
        }
    }

    /// Short human title (kebab case, stable).
    pub fn title(self) -> &'static str {
        match self {
            Rule::MultiplyDrivenNet => "multiply-driven-net",
            Rule::UndrivenNet => "undriven-net",
            Rule::CombinationalLoop => "combinational-loop",
            Rule::DanglingOutput => "dangling-output",
            Rule::DeadLogic => "dead-logic",
            Rule::UnsyncClockCrossing => "unsynchronized-clock-crossing",
            Rule::DriveOverload => "drive-overload",
            Rule::BadReference => "bad-reference",
            Rule::UnconnectedRegister => "unconnected-register",
            Rule::DeadNode => "dead-node",
            Rule::ConstantRegister => "constant-register",
            Rule::UnusedInput => "unused-input",
            Rule::RaggedBus => "ragged-bus",
            Rule::DuplicateMulticycle => "duplicate-multicycle",
            Rule::NoDcPath => "no-dc-path",
            Rule::NonPositiveElement => "non-positive-element",
            Rule::DegenerateElement => "degenerate-element",
            Rule::UnusedNode => "unused-node",
            Rule::SourceConflict => "source-conflict",
            Rule::BadStimulus => "bad-stimulus",
            Rule::SetupViolation => "setup-violation",
            Rule::HoldViolation => "hold-violation",
            Rule::UnconstrainedEndpoint => "unconstrained-endpoint",
            Rule::MaxTransitionViolation => "max-transition-violation",
            Rule::MaxCapViolation => "max-capacitance-violation",
            Rule::ExcessiveClockSkew => "excessive-clock-skew",
            Rule::UntimedCrossDomainPath => "untimed-cross-domain-path",
            Rule::InvalidTimingException => "invalid-timing-exception",
        }
    }

    /// The severity a finding gets unless a [`crate::LintConfig`]
    /// overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::MultiplyDrivenNet
            | Rule::UndrivenNet
            | Rule::CombinationalLoop
            | Rule::BadReference
            | Rule::UnconnectedRegister
            | Rule::NoDcPath
            | Rule::NonPositiveElement
            | Rule::SourceConflict
            | Rule::BadStimulus
            | Rule::HoldViolation
            | Rule::InvalidTimingException => Severity::Error,
            Rule::DanglingOutput
            | Rule::DeadLogic
            | Rule::UnsyncClockCrossing
            | Rule::DriveOverload
            | Rule::DeadNode
            | Rule::ConstantRegister
            | Rule::RaggedBus
            | Rule::DuplicateMulticycle
            | Rule::DegenerateElement
            | Rule::UnusedNode
            | Rule::SetupViolation
            | Rule::UnconstrainedEndpoint
            | Rule::MaxTransitionViolation
            | Rule::MaxCapViolation
            | Rule::ExcessiveClockSkew => Severity::Warn,
            Rule::UnusedInput | Rule::UntimedCrossDomainPath => Severity::Info,
        }
    }

    /// The analysis domain this rule belongs to (`netlist`, `ir`,
    /// `analog` or `timing`), derived from the ID prefix.
    pub fn domain(self) -> &'static str {
        match &self.code()[..2] {
            "NL" => "netlist",
            "IR" => "ir",
            "TM" => "timing",
            _ => "analog",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.title())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate rule codes");
        for c in codes {
            assert_eq!(c.len(), 5);
            assert!(c.ends_with(|ch: char| ch.is_ascii_digit()));
        }
    }

    #[test]
    fn domains_follow_prefixes() {
        assert_eq!(Rule::MultiplyDrivenNet.domain(), "netlist");
        assert_eq!(Rule::DeadNode.domain(), "ir");
        assert_eq!(Rule::NoDcPath.domain(), "analog");
        assert_eq!(Rule::SetupViolation.domain(), "timing");
        assert_eq!(Rule::InvalidTimingException.domain(), "timing");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn catalog_has_at_least_twelve_rules() {
        assert!(Rule::ALL.len() >= 12);
    }

    #[test]
    fn display_carries_code_and_title() {
        let s = Rule::CombinationalLoop.to_string();
        assert!(s.contains("NL003") && s.contains("combinational-loop"));
    }
}
