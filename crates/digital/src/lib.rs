//! # openserdes-digital
//!
//! Digital simulation for the OpenSerDes reproduction:
//!
//! * [`Logic`] — four-value logic (`0`/`1`/`X`/`Z`) with pessimistic X
//!   propagation and controlling-value short-circuits,
//! * [`EventSim`] — an event-driven gate-level simulator with
//!   NLDM-accurate per-cell delays (transport-delay semantics, so real
//!   glitches propagate into the CDR, as in silicon),
//! * [`CycleSim`] — a zero-delay cycle-based simulator for fast
//!   functional runs and RTL↔netlist equivalence checks,
//! * [`Trace`] — value-change recording with VCD export.
//!
//! Together these stand in for the Verilog simulation environment the
//! paper uses around its synthesized SerDes blocks.
//!
//! ```
//! use openserdes_digital::{CycleSim, Logic};
//! use openserdes_netlist::Netlist;
//! use openserdes_pdk::stdcell::{DriveStrength, LogicFn};
//!
//! let mut nl = Netlist::new("xor");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[a, b]);
//! nl.mark_output("y", y);
//!
//! let mut sim = CycleSim::new(&nl)?;
//! sim.set_bit(a, true);
//! sim.set_bit(b, false);
//! sim.settle();
//! assert_eq!(sim.value(y), Logic::One);
//! # Ok::<(), openserdes_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

mod cycle;
mod logic;
mod sim;
mod trace;

pub use cycle::CycleSim;
pub use logic::Logic;
pub use sim::EventSim;
pub use trace::Trace;
