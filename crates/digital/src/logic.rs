//! Four-value logic (`0`, `1`, `X`, `Z`) with pessimistic X propagation.
//!
//! The digital simulators model unknown start-up state (`X`) and
//! undriven nets (`Z`) the way an RTL simulator does: controlling values
//! short-circuit (`0 NAND X = 1`), everything else propagates `X`. `Z`
//! reads as unknown at a gate input.

use openserdes_pdk::stdcell::LogicFn;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Strong logic low.
    Zero,
    /// Strong logic high.
    One,
    /// Unknown value.
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// Converts from `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Converts to `bool` when the value is known, `None` for `X`/`Z`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// `true` for `0` or `1`.
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Treats `Z` as `X` (what a CMOS gate input effectively sees).
    fn resolved(self) -> Logic {
        if self == Logic::Z {
            Logic::X
        } else {
            self
        }
    }

    /// Evaluates a library cell function over four-valued inputs with
    /// controlling-value short-circuits.
    ///
    /// For sequential functions this evaluates the next-state function,
    /// mirroring [`LogicFn::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != function.input_count()`.
    pub fn eval_fn(function: LogicFn, inputs: &[Logic]) -> Logic {
        assert_eq!(
            inputs.len(),
            function.input_count(),
            "{function} expects {} inputs",
            function.input_count()
        );
        let v: Vec<Logic> = inputs.iter().map(|l| l.resolved()).collect();
        match function {
            LogicFn::Inv => !v[0],
            LogicFn::Buf | LogicFn::ClkBuf | LogicFn::Dff => v[0],
            LogicFn::Nand2 => !(v[0] & v[1]),
            LogicFn::Nand3 => !(v[0] & v[1] & v[2]),
            LogicFn::Nor2 => !(v[0] | v[1]),
            LogicFn::Nor3 => !(v[0] | v[1] | v[2]),
            LogicFn::And2 => v[0] & v[1],
            LogicFn::Or2 => v[0] | v[1],
            LogicFn::Xor2 => v[0] ^ v[1],
            LogicFn::Xnor2 => !(v[0] ^ v[1]),
            LogicFn::Mux2 => match v[2] {
                Logic::Zero => v[0],
                Logic::One => v[1],
                // Unknown select: output known only if both inputs agree.
                _ => {
                    if v[0] == v[1] && v[0].is_known() {
                        v[0]
                    } else {
                        Logic::X
                    }
                }
            },
            LogicFn::Aoi21 => !((v[0] & v[1]) | v[2]),
            LogicFn::Oai21 => !((v[0] | v[1]) & v[2]),
            LogicFn::DffRstN => v[0] & v[1],
        }
    }
}

impl Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        match self.resolved() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        match (self.resolved(), rhs.resolved()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        match (self.resolved(), rhs.resolved()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.resolved(), rhs.resolved()) {
            (a, b) if a.is_known() && b.is_known() => Logic::from_bool(a != b),
            _ => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::Z.to_bool(), None);
        assert_eq!(Logic::from(true), Logic::One);
    }

    #[test]
    fn and_controlling_zero() {
        for &v in &ALL {
            assert_eq!(Logic::Zero & v, Logic::Zero);
            assert_eq!(v & Logic::Zero, Logic::Zero);
        }
        assert_eq!(Logic::One & Logic::One, Logic::One);
        assert_eq!(Logic::One & Logic::X, Logic::X);
        assert_eq!(Logic::One & Logic::Z, Logic::X);
    }

    #[test]
    fn or_controlling_one() {
        for &v in &ALL {
            assert_eq!(Logic::One | v, Logic::One);
            assert_eq!(v | Logic::One, Logic::One);
        }
        assert_eq!(Logic::Zero | Logic::Zero, Logic::Zero);
        assert_eq!(Logic::Zero | Logic::X, Logic::X);
    }

    #[test]
    fn xor_never_shortcircuits() {
        assert_eq!(Logic::One ^ Logic::Zero, Logic::One);
        assert_eq!(Logic::One ^ Logic::One, Logic::Zero);
        assert_eq!(Logic::One ^ Logic::X, Logic::X);
        assert_eq!(Logic::Zero ^ Logic::Z, Logic::X);
    }

    #[test]
    fn not_unknown_stays_unknown() {
        assert_eq!(!Logic::X, Logic::X);
        assert_eq!(!Logic::Z, Logic::X);
        assert_eq!(!Logic::One, Logic::Zero);
    }

    #[test]
    fn nand_with_zero_is_one_despite_x() {
        assert_eq!(
            Logic::eval_fn(LogicFn::Nand2, &[Logic::Zero, Logic::X]),
            Logic::One
        );
        assert_eq!(
            Logic::eval_fn(LogicFn::Nor2, &[Logic::One, Logic::X]),
            Logic::Zero
        );
    }

    #[test]
    fn mux_with_unknown_select() {
        // Both data inputs equal and known -> output known.
        assert_eq!(
            Logic::eval_fn(LogicFn::Mux2, &[Logic::One, Logic::One, Logic::X]),
            Logic::One
        );
        // Data inputs differ -> X.
        assert_eq!(
            Logic::eval_fn(LogicFn::Mux2, &[Logic::One, Logic::Zero, Logic::X]),
            Logic::X
        );
    }

    #[test]
    fn eval_matches_bool_eval_on_known_inputs() {
        for &function in &LogicFn::ALL {
            let n = function.input_count();
            for bits in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let logics: Vec<Logic> = bools.iter().map(|&b| Logic::from_bool(b)).collect();
                assert_eq!(
                    Logic::eval_fn(function, &logics),
                    Logic::from_bool(function.eval(&bools)),
                    "mismatch for {function} on {bools:?}"
                );
            }
        }
    }

    #[test]
    fn display_chars() {
        let s: String = ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(s, "01xz");
    }

    #[test]
    fn default_is_x() {
        assert_eq!(Logic::default(), Logic::X);
    }
}
