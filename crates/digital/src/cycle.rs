//! Zero-delay cycle-based simulation.
//!
//! [`CycleSim`] evaluates the combinational cloud in topological order and
//! advances all flip-flops together on [`CycleSim::tick`] — the fast
//! functional view used for equivalence checks between RTL and mapped
//! netlists, and for multi-thousand-cycle FSM runs where event-level
//! timing is irrelevant.
//!
//! All flops are assumed to share one clock (true for every block in the
//! paper's SerDes); the clock nets themselves are ignored. The async
//! reset of `DffRstN` is honoured combinationally: while `rst_n` is low
//! the flop output is forced to zero at the next settle.

use crate::logic::Logic;
use openserdes_netlist::{CellId, NetId, Netlist, NetlistError};
use openserdes_pdk::stdcell::LogicFn;

/// A cycle-accurate, zero-delay simulator for a single-clock netlist.
#[derive(Debug, Clone)]
pub struct CycleSim<'a> {
    netlist: &'a Netlist,
    values: Vec<Logic>,
    order: Vec<CellId>,
    flops: Vec<CellId>,
    cycles: u64,
}

impl<'a> CycleSim<'a> {
    /// Builds a cycle simulator; the netlist must validate.
    ///
    /// # Errors
    ///
    /// Returns any [`NetlistError`] found during validation (including
    /// combinational loops, which a cycle simulator cannot execute).
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.check()?;
        let order = netlist.topo_order()?;
        let flops = netlist
            .instances()
            .filter(|(_, i)| i.is_sequential())
            .map(|(id, _)| id)
            .collect();
        Ok(Self {
            netlist,
            values: vec![Logic::X; netlist.net_count()],
            order,
            flops,
            cycles: 0,
        })
    }

    /// Number of [`CycleSim::tick`]s executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sets a primary input (takes effect at the next settle).
    pub fn set_input(&mut self, net: NetId, value: Logic) {
        self.values[net.index()] = value;
    }

    /// Convenience: sets an input from a `bool`.
    pub fn set_bit(&mut self, net: NetId, value: bool) {
        self.set_input(net, Logic::from_bool(value));
    }

    /// Current value of a net (valid after [`CycleSim::settle`] or
    /// [`CycleSim::tick`]).
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Reads a bus of nets as an unsigned integer, `nets[0]` = LSB.
    /// Returns `None` if any bit is unknown.
    pub fn read_bus(&self, nets: &[NetId]) -> Option<u64> {
        let mut v = 0u64;
        for (i, &n) in nets.iter().enumerate() {
            match self.value(n).to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Propagates the combinational logic to a fixed point (one pass in
    /// topological order suffices for an acyclic cloud).
    pub fn settle(&mut self) {
        for &id in &self.order {
            let inst = self.netlist.instance(id);
            let inputs: Vec<Logic> = inst
                .inputs
                .iter()
                .map(|&n| self.values[n.index()])
                .collect();
            self.values[inst.output.index()] = Logic::eval_fn(inst.function, &inputs);
        }
        // Async reset overrides flop outputs while asserted.
        for &id in &self.flops {
            let inst = self.netlist.instance(id);
            if inst.function == LogicFn::DffRstN
                && self.values[inst.inputs[1].index()] == Logic::Zero
            {
                self.values[inst.output.index()] = Logic::Zero;
            }
        }
    }

    /// One clock cycle: settle, sample every flop's D, apply all Qs
    /// simultaneously, settle again.
    pub fn tick(&mut self) {
        self.settle();
        let next: Vec<(NetId, Logic)> = self
            .flops
            .iter()
            .map(|&id| {
                let inst = self.netlist.instance(id);
                let d = self.values[inst.inputs[0].index()];
                let q = match inst.function {
                    LogicFn::Dff => d,
                    LogicFn::DffRstN => d & self.values[inst.inputs[1].index()],
                    _ => unreachable!("only flops are sequential"),
                };
                (inst.output, q)
            })
            .collect();
        for (net, q) in next {
            self.values[net.index()] = q;
        }
        self.cycles += 1;
        self.settle();
    }

    /// Resets every flop output to zero and re-settles (a testbench
    /// convenience standing in for a global reset sequence).
    pub fn reset_flops(&mut self) {
        for &id in &self.flops {
            let out = self.netlist.instance(id).output;
            self.values[out.index()] = Logic::Zero;
        }
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::stdcell::DriveStrength;

    #[test]
    fn combinational_settles_in_topo_order() {
        let mut nl = Netlist::new("maj");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.gate(LogicFn::And2, DriveStrength::X1, &[a, b]);
        let bc = nl.gate(LogicFn::And2, DriveStrength::X1, &[b, c]);
        let ac = nl.gate(LogicFn::And2, DriveStrength::X1, &[a, c]);
        let o1 = nl.gate(LogicFn::Or2, DriveStrength::X1, &[ab, bc]);
        let maj = nl.gate(LogicFn::Or2, DriveStrength::X1, &[o1, ac]);
        nl.mark_output("maj", maj);
        let mut sim = CycleSim::new(&nl).expect("valid");
        for bits in 0..8u8 {
            sim.set_bit(a, bits & 1 != 0);
            sim.set_bit(b, bits & 2 != 0);
            sim.set_bit(c, bits & 4 != 0);
            sim.settle();
            let expect = (bits.count_ones() >= 2) as u8;
            assert_eq!(
                sim.value(maj),
                Logic::from_bool(expect == 1),
                "majority({bits:03b})"
            );
        }
    }

    #[test]
    fn three_bit_counter_counts() {
        // q0 toggles every cycle, classic ripple-free sync counter:
        // d0 = !q0; d1 = q1 ^ q0; d2 = q2 ^ (q1 & q0).
        let mut nl = Netlist::new("cnt3");
        let clk = nl.add_input("clk");
        let q0 = nl.add_net("q0");
        let q1 = nl.add_net("q1");
        let q2 = nl.add_net("q2");
        let d0 = nl.gate(LogicFn::Inv, DriveStrength::X1, &[q0]);
        let d1 = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[q1, q0]);
        let q10 = nl.gate(LogicFn::And2, DriveStrength::X1, &[q1, q0]);
        let d2 = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[q2, q10]);
        nl.dff_into(d0, clk, DriveStrength::X1, q0);
        nl.dff_into(d1, clk, DriveStrength::X1, q1);
        nl.dff_into(d2, clk, DriveStrength::X1, q2);
        nl.mark_output("q0", q0);
        nl.mark_output("q1", q1);
        nl.mark_output("q2", q2);
        let mut sim = CycleSim::new(&nl).expect("valid");
        sim.reset_flops();
        for expected in 1..=10u64 {
            sim.tick();
            assert_eq!(sim.read_bus(&[q0, q1, q2]), Some(expected % 8));
        }
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn x_propagates_until_reset() {
        let mut nl = Netlist::new("ff");
        let clk = nl.add_input("clk");
        let q = nl.add_net("q");
        let d = nl.gate(LogicFn::Inv, DriveStrength::X1, &[q]);
        nl.dff_into(d, clk, DriveStrength::X1, q);
        nl.mark_output("q", q);
        let mut sim = CycleSim::new(&nl).expect("valid");
        sim.tick();
        assert_eq!(sim.value(q), Logic::X, "uninitialized state is X");
        sim.reset_flops();
        sim.tick();
        assert_eq!(sim.value(q), Logic::One);
        sim.tick();
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn dff_rstn_clears_while_reset_low() {
        let mut nl = Netlist::new("r");
        let clk = nl.add_input("clk");
        let rst_n = nl.add_input("rst_n");
        let one = nl.add_input("one");
        let q = nl.dff_rstn(one, rst_n, clk, DriveStrength::X1);
        nl.mark_output("q", q);
        let mut sim = CycleSim::new(&nl).expect("valid");
        sim.set_bit(one, true);
        sim.set_bit(rst_n, false);
        sim.tick();
        assert_eq!(sim.value(q), Logic::Zero);
        sim.set_bit(rst_n, true);
        sim.tick();
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn read_bus_none_when_unknown() {
        let mut nl = Netlist::new("bus");
        let a = nl.add_input("a");
        let y = nl.gate(LogicFn::Buf, DriveStrength::X1, &[a]);
        nl.mark_output("y", y);
        let mut sim = CycleSim::new(&nl).expect("valid");
        sim.settle();
        assert_eq!(sim.read_bus(&[y]), None);
        sim.set_bit(a, true);
        sim.settle();
        assert_eq!(sim.read_bus(&[y]), Some(1));
    }

    #[test]
    fn loops_are_rejected() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let fb = nl.add_net("fb");
        let x = nl.gate(LogicFn::Nand2, DriveStrength::X1, &[a, fb]);
        nl.gate_into(LogicFn::Inv, DriveStrength::X1, &[x], fb);
        nl.mark_output("y", x);
        assert!(CycleSim::new(&nl).is_err());
    }
}
