//! Event-driven gate-level simulation with library-accurate delays.
//!
//! [`EventSim`] executes a mapped [`Netlist`] the way a timing simulator
//! does: every net transition is an event, gate outputs are scheduled
//! after their NLDM-derived propagation delay, and flip-flops sample on
//! the rising edge of their clock net and emit Q after clk→Q. Transport
//! delay semantics are used, so glitches propagate — which is exactly what
//! the paper's CDR glitch-correction logic exists to clean up.

use crate::logic::Logic;
use crate::trace::Trace;
use openserdes_netlist::{CellId, NetId, Netlist, NetlistError};
use openserdes_pdk::library::Library;
use openserdes_pdk::stdcell::LogicFn;
use openserdes_pdk::units::{Farad, Time};
use openserdes_pdk::wire::WireloadModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default input slew assumed for delay lookups, in ps.
const DEFAULT_SLEW_PS: f64 = 40.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ps: u64,
    seq: u64,
    net: NetId,
    value_tag: u8,
}

fn tag(l: Logic) -> u8 {
    match l {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::X => 2,
        Logic::Z => 3,
    }
}

fn untag(t: u8) -> Logic {
    match t {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::X,
        _ => Logic::Z,
    }
}

/// An event-driven simulator bound to one netlist and library.
#[derive(Debug)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    values: Vec<Logic>,
    delays_ps: Vec<u64>,
    clk_to_q_ps: Vec<u64>,
    fanout: Vec<Vec<CellId>>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    time_ps: u64,
    trace: Trace,
    events_processed: u64,
}

impl<'a> EventSim<'a> {
    /// Builds a simulator, validating the netlist and pre-computing every
    /// cell's propagation delay from its library timing table and the
    /// capacitive load of its output net (pin caps plus a fanout-based
    /// wireload estimate).
    ///
    /// # Errors
    ///
    /// Returns any [`NetlistError`] found during validation.
    pub fn new(netlist: &'a Netlist, library: &Library) -> Result<Self, NetlistError> {
        netlist.check()?;
        let wireload = WireloadModel::small_block();
        let fanout = netlist.fanout_table();
        let mut delays = Vec::with_capacity(netlist.cell_count());
        let mut clk_to_q = Vec::with_capacity(netlist.cell_count());
        for (_, inst) in netlist.instances() {
            let cell = library
                .cell(inst.function, inst.drive)
                .expect("netlist uses library cells");
            let sinks = &fanout[inst.output.index()];
            let mut load = wireload.capacitance(sinks.len()).value();
            for &sink in sinks {
                let sc = library
                    .cell(
                        netlist.instance(sink).function,
                        netlist.instance(sink).drive,
                    )
                    .expect("netlist uses library cells");
                load += sc.input_cap.value();
            }
            let arc = cell.arc(Time::from_ps(DEFAULT_SLEW_PS), Farad::new(load));
            delays.push((arc.delay.ps().round() as u64).max(1));
            clk_to_q.push(
                cell.seq
                    .map(|s| (s.clk_to_q.ps().round() as u64).max(1))
                    .unwrap_or(1),
            );
        }
        let names = netlist
            .net_ids()
            .map(|n| netlist.net_name(n).to_string())
            .collect();
        Ok(Self {
            netlist,
            values: vec![Logic::X; netlist.net_count()],
            delays_ps: delays,
            clk_to_q_ps: clk_to_q,
            fanout,
            queue: BinaryHeap::new(),
            seq: 0,
            time_ps: 0,
            trace: Trace::new(names),
            events_processed: 0,
        })
    }

    /// Current simulation time in ps.
    pub fn time_ps(&self) -> u64 {
        self.time_ps
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Total events processed so far (a determinism/performance metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Schedules a primary-input change at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time_ps` is in the simulator's past.
    pub fn schedule(&mut self, time_ps: u64, net: NetId, value: Logic) {
        assert!(time_ps >= self.time_ps, "cannot schedule in the past");
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time_ps,
            seq: self.seq,
            net,
            value_tag: tag(value),
        }));
    }

    /// Sets a primary input at the current time.
    pub fn set_input(&mut self, net: NetId, value: Logic) {
        self.schedule(self.time_ps, net, value);
    }

    /// Schedules a full clock waveform on `net`: rising edges at
    /// `offset_ps + k·period_ps`, 50 % duty, until `until_ps`.
    pub fn drive_clock(&mut self, net: NetId, period_ps: u64, offset_ps: u64, until_ps: u64) {
        assert!(period_ps >= 2, "period too small");
        self.schedule(self.time_ps, net, Logic::Zero);
        let mut t = offset_ps.max(self.time_ps);
        while t <= until_ps {
            self.schedule(t, net, Logic::One);
            if t + period_ps / 2 <= until_ps {
                self.schedule(t + period_ps / 2, net, Logic::Zero);
            }
            t += period_ps;
        }
    }

    /// Schedules an NRZ bit pattern on `net`, one bit every `bit_ps`
    /// starting at `start_ps`.
    pub fn drive_bits(&mut self, net: NetId, start_ps: u64, bit_ps: u64, bits: &[bool]) {
        for (i, &b) in bits.iter().enumerate() {
            self.schedule(start_ps + i as u64 * bit_ps, net, Logic::from_bool(b));
        }
    }

    /// Runs until the event queue is exhausted or `until_ps` is reached.
    pub fn run_until(&mut self, until_ps: u64) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time_ps > until_ps {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.apply(ev);
        }
        self.time_ps = self.time_ps.max(until_ps);
    }

    fn apply(&mut self, ev: Event) {
        self.time_ps = ev.time_ps;
        self.events_processed += 1;
        let new = untag(ev.value_tag);
        let old = self.values[ev.net.index()];
        if old == new {
            return;
        }
        self.values[ev.net.index()] = new;
        self.trace.record(ev.net, ev.time_ps, new);

        for i in 0..self.fanout[ev.net.index()].len() {
            let cell = self.fanout[ev.net.index()][i];
            let inst = self.netlist.instance(cell);
            if inst.is_sequential() {
                self.eval_sequential(cell, ev.net, old, new);
            } else {
                let inputs: Vec<Logic> = inst
                    .inputs
                    .iter()
                    .map(|&n| self.values[n.index()])
                    .collect();
                let out = Logic::eval_fn(inst.function, &inputs);
                let t = ev.time_ps + self.delays_ps[cell.index()];
                self.schedule_internal(t, inst.output, out);
            }
        }
    }

    fn eval_sequential(&mut self, cell: CellId, changed: NetId, old: Logic, new: Logic) {
        let inst = self.netlist.instance(cell);
        let t_q = self.time_ps + self.clk_to_q_ps[cell.index()];
        match inst.function {
            LogicFn::Dff => {
                if inst.clock == Some(changed) && old == Logic::Zero && new == Logic::One {
                    let d = self.values[inst.inputs[0].index()];
                    self.schedule_internal(t_q, inst.output, d);
                }
            }
            LogicFn::DffRstN => {
                let rst_n = self.values[inst.inputs[1].index()];
                if inst.inputs[1] == changed && new == Logic::Zero {
                    // Asynchronous reset assertion clears Q immediately.
                    self.schedule_internal(t_q, inst.output, Logic::Zero);
                } else if inst.clock == Some(changed)
                    && old == Logic::Zero
                    && new == Logic::One
                    && rst_n != Logic::Zero
                {
                    let d = self.values[inst.inputs[0].index()] & rst_n;
                    self.schedule_internal(t_q, inst.output, d);
                }
            }
            _ => unreachable!("only flops are sequential"),
        }
    }

    fn schedule_internal(&mut self, time_ps: u64, net: NetId, value: Logic) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time_ps,
            seq: self.seq,
            net,
            value_tag: tag(value),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openserdes_pdk::corner::Pvt;
    use openserdes_pdk::stdcell::DriveStrength;

    fn lib() -> Library {
        Library::sky130(Pvt::nominal())
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let mut n = a;
        for _ in 0..4 {
            n = nl.gate(LogicFn::Inv, DriveStrength::X1, &[n]);
        }
        nl.mark_output("y", n);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.set_input(a, Logic::Zero);
        sim.run_until(10_000);
        // Even number of inverters: y follows a.
        assert_eq!(sim.value(n), Logic::Zero);
        sim.set_input(a, Logic::One);
        sim.run_until(20_000);
        assert_eq!(sim.value(n), Logic::One);
        // The output changed strictly later than the input.
        let y_changes = sim.trace().changes(n);
        let last = y_changes.last().expect("y toggled");
        assert!(last.0 > 10_000);
    }

    #[test]
    fn nand_gate_function_in_time() {
        let mut nl = Netlist::new("nand");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.gate(LogicFn::Nand2, DriveStrength::X1, &[a, b]);
        nl.mark_output("y", y);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.set_input(a, Logic::One);
        sim.set_input(b, Logic::Zero);
        sim.run_until(1_000);
        assert_eq!(sim.value(y), Logic::One);
        sim.set_input(b, Logic::One);
        sim.run_until(2_000);
        assert_eq!(sim.value(y), Logic::Zero);
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut nl = Netlist::new("ff");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q = nl.dff(d, clk, DriveStrength::X1);
        nl.mark_output("q", q);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.set_input(clk, Logic::Zero);
        sim.set_input(d, Logic::One);
        sim.run_until(1_000);
        assert_eq!(sim.value(q), Logic::X, "no edge yet");
        // Falling edge must not sample.
        sim.schedule(1_100, clk, Logic::Zero);
        sim.run_until(1_500);
        assert_eq!(sim.value(q), Logic::X);
        // Rising edge samples d=1.
        sim.schedule(2_000, clk, Logic::One);
        sim.run_until(3_000);
        assert_eq!(sim.value(q), Logic::One);
        // Change d; q holds until next rising edge.
        sim.schedule(3_100, d, Logic::Zero);
        sim.run_until(4_000);
        assert_eq!(sim.value(q), Logic::One);
        sim.schedule(4_100, clk, Logic::Zero);
        sim.schedule(5_000, clk, Logic::One);
        sim.run_until(6_000);
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn toggle_flop_divides_clock_by_two() {
        let mut nl = Netlist::new("divider");
        let clk = nl.add_input("clk");
        let q = nl.add_net("q");
        let d = nl.gate(LogicFn::Inv, DriveStrength::X1, &[q]);
        nl.dff_into(d, clk, DriveStrength::X1, q);
        nl.mark_output("q", q);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        // Break the X deadlock with a defined init via long settling:
        // X inverted is X, so seed q through the first sample of inv(X)=X…
        // A real design uses a resettable flop; emulate by forcing q once.
        sim.schedule(10, q, Logic::Zero);
        sim.drive_clock(clk, 1_000, 500, 20_000);
        sim.run_until(25_000);
        let edges = sim.trace().rising_edges(q);
        // 20 clock rising edges -> ~10 q rising edges.
        assert!((8..=12).contains(&edges), "q rose {edges} times");
    }

    #[test]
    fn async_reset_clears_q() {
        let mut nl = Netlist::new("rst");
        let clk = nl.add_input("clk");
        let rst_n = nl.add_input("rst_n");
        let d = nl.add_input("d");
        let q = nl.dff_rstn(d, rst_n, clk, DriveStrength::X1);
        nl.mark_output("q", q);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.set_input(rst_n, Logic::One);
        sim.set_input(d, Logic::One);
        sim.set_input(clk, Logic::Zero);
        sim.schedule(1_000, clk, Logic::One);
        sim.run_until(2_000);
        assert_eq!(sim.value(q), Logic::One);
        // Assert reset with the clock idle: q clears asynchronously.
        sim.schedule(3_000, rst_n, Logic::Zero);
        sim.run_until(4_000);
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn deterministic_event_counts() {
        let mut nl = Netlist::new("xor_tree");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[a, b]);
        let y = nl.gate(LogicFn::Xor2, DriveStrength::X1, &[x, c]);
        nl.mark_output("y", y);
        let lib = lib();
        let run = || {
            let mut sim = EventSim::new(&nl, &lib).expect("valid");
            for (i, n) in [a, b, c].into_iter().enumerate() {
                sim.drive_bits(n, 100 * i as u64, 500, &[true, false, true, true]);
            }
            sim.run_until(10_000);
            (sim.events_processed(), sim.value(y))
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }

    #[test]
    fn drive_bits_produces_pattern() {
        let mut nl = Netlist::new("wire");
        let a = nl.add_input("a");
        let y = nl.gate(LogicFn::Buf, DriveStrength::X1, &[a]);
        nl.mark_output("y", y);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.drive_bits(a, 0, 100, &[true, false, true]);
        sim.run_until(1_000);
        assert_eq!(sim.trace().changes(a).len(), 3);
        assert_eq!(sim.trace().value_at(a, 150), Logic::Zero);
        assert_eq!(sim.trace().value_at(a, 250), Logic::One);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn past_scheduling_rejected() {
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        let y = nl.gate(LogicFn::Buf, DriveStrength::X1, &[a]);
        nl.mark_output("y", y);
        let lib = lib();
        let mut sim = EventSim::new(&nl, &lib).expect("valid");
        sim.schedule(1_000, a, Logic::One);
        sim.run_until(5_000);
        sim.schedule(100, a, Logic::Zero);
    }

    #[test]
    fn invalid_netlist_rejected() {
        let mut nl = Netlist::new("bad");
        let f = nl.add_net("floating");
        let y = nl.gate(LogicFn::Inv, DriveStrength::X1, &[f]);
        nl.mark_output("y", y);
        let lib = lib();
        assert!(EventSim::new(&nl, &lib).is_err());
    }
}
